//! Pipeline/monolith equivalence: the staged, shared-corpus batch path
//! must be **bit-identical** to the serial per-app path.
//!
//! These tests pin the ISSUE 2 acceptance criteria:
//!
//! - `enhance_all` over all 12 Polybench apps equals per-app `enhance`
//!   output (flags, knowledge, weaved AST — the whole `EnhancedApp`)
//!   for a fixed seed. CI re-runs this file under forced
//!   `RAYON_NUM_THREADS` values, so the identity holds at any thread
//!   count.
//! - The shared store performs COBAYN corpus construction (parse +
//!   features + iterative compilation per app) exactly **once** per
//!   `(app, dataset, config)` instead of once per target.
//! - A warm store answers repeated enhancements purely from cache, and
//!   a cold store over a persistence directory reloads knowledge
//!   instead of re-profiling, with identical results.

use polybench::{App, Dataset};
use socrates::{ArtifactStore, Toolchain};

fn quick() -> Toolchain {
    Toolchain {
        dataset: Dataset::Small,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
}

#[test]
fn enhance_all_is_bit_identical_to_per_app_enhance() {
    let toolchain = quick();
    let batch = toolchain.enhance_all(&App::ALL).expect("batch enhance");
    assert_eq!(batch.len(), App::ALL.len());
    for (batched, app) in batch.iter().zip(App::ALL) {
        let serial = toolchain.enhance(app).expect("serial enhance");
        // Whole-struct equality: flags, knowledge, weaved AST, metrics,
        // versions, features, profile, platform — everything.
        assert_eq!(*batched, serial, "{app}: batch != serial");
    }
}

#[test]
fn batch_preserves_input_order_and_handles_subsets() {
    let toolchain = quick();
    let subset = [App::Mvt, App::TwoMm, App::Syrk];
    let batch = toolchain.enhance_all(&subset).expect("subset enhance");
    let apps: Vec<App> = batch.iter().map(|e| e.app).collect();
    assert_eq!(apps, subset);
    // Leave-one-out semantics do not depend on batch membership: the
    // subset results equal the full-suite results for the same apps.
    let full = toolchain.enhance_all(&App::ALL).expect("full enhance");
    for e in &batch {
        let same = full.iter().find(|f| f.app == e.app).expect("in full run");
        assert_eq!(e, same);
    }
}

#[test]
fn duplicate_targets_are_computed_once_and_reexpanded() {
    let toolchain = quick();
    let store = ArtifactStore::new();
    let batch = toolchain
        .enhance_all_with_store(&[App::Atax, App::Atax, App::Atax], &store)
        .expect("duplicate batch");
    assert_eq!(batch.len(), 3);
    assert_eq!(batch[0], batch[1]);
    assert_eq!(batch[1], batch[2]);
    let stats = store.stats();
    // The per-target artifacts were built once, not three times, and a
    // single-target batch only warms the 11 sibling corpus entries.
    assert_eq!(stats.model_builds, 1, "{stats:?}");
    assert_eq!(stats.knowledge_builds, 1, "{stats:?}");
    assert_eq!(
        stats.corpus_builds,
        (App::ALL.len() - 1) as u64,
        "{stats:?}"
    );
}

#[test]
fn shared_corpus_is_built_exactly_once_per_app() {
    let toolchain = quick();
    let store = ArtifactStore::new();
    toolchain
        .enhance_all_with_store(&App::ALL, &store)
        .expect("batch enhance");
    let stats = store.stats();
    let n = App::ALL.len() as u64;
    // O(n), not O(n²): every shared artifact is computed once per app.
    assert_eq!(stats.parse_builds, n, "{stats:?}");
    assert_eq!(stats.feature_builds, n, "{stats:?}");
    assert_eq!(stats.corpus_builds, n, "{stats:?}");
    // Per-target artifacts: one leave-one-out model, one prediction,
    // one weave, one DSE per target.
    assert_eq!(stats.model_builds, n, "{stats:?}");
    assert_eq!(stats.prediction_builds, n, "{stats:?}");
    assert_eq!(stats.weave_builds, n, "{stats:?}");
    assert_eq!(stats.knowledge_builds, n, "{stats:?}");
}

#[test]
fn warm_store_rerun_is_a_pure_cache_walk() {
    let toolchain = quick();
    let store = ArtifactStore::new();
    let first = toolchain
        .enhance_with_store(App::Gemver, &store)
        .expect("cold run");
    let builds = store.stats().total_builds();
    let second = toolchain
        .enhance_with_store(App::Gemver, &store)
        .expect("warm run");
    assert_eq!(first, second);
    assert_eq!(
        store.stats().total_builds(),
        builds,
        "warm rerun must not rebuild anything: {:?}",
        store.stats()
    );
}

#[test]
fn cold_store_with_persistence_matches_in_memory_cache_hit() {
    let toolchain = quick();
    let dir = std::env::temp_dir().join(format!(
        "socrates-pipeline-equivalence-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Warm run: profiles the DSE and persists the knowledge as JSON.
    let warm = ArtifactStore::with_persist_dir(&dir);
    let fresh = toolchain
        .enhance_with_store(App::Doitgen, &warm)
        .expect("fresh enhance");
    assert_eq!(warm.stats().knowledge_builds, 1);

    // In-memory cache hit on the same store.
    let hit = toolchain
        .enhance_with_store(App::Doitgen, &warm)
        .expect("cache hit");
    assert_eq!(fresh, hit);

    // Cold store over the same directory: knowledge is reloaded from
    // the persisted artifact, not re-profiled, and the result is
    // identical to both the fresh run and the cache hit.
    let cold = ArtifactStore::with_persist_dir(&dir);
    let reloaded = toolchain
        .enhance_with_store(App::Doitgen, &cold)
        .expect("cold enhance");
    assert_eq!(cold.stats().knowledge_builds, 0, "{:?}", cold.stats());
    assert_eq!(cold.stats().knowledge_loads, 1, "{:?}", cold.stats());
    assert_eq!(fresh, reloaded);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn config_changes_invalidate_the_cache() {
    let base = quick();
    let store = ArtifactStore::new();
    let a = base.enhance_with_store(App::Atax, &store).unwrap();
    let other = Toolchain {
        seed: base.seed + 1,
        ..quick()
    };
    let b = other.enhance_with_store(App::Atax, &store).unwrap();
    // Different config fingerprints never collide in the store; the
    // noisy DSE knowledge must differ across seeds.
    assert_ne!(a.knowledge, b.knowledge);
    assert_eq!(store.stats().knowledge_builds, 2);
}
