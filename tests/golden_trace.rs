//! Golden-trace regression: a fixed-seed 300-virtual-second
//! `AdaptiveApplication` run serialises to **byte-identical** JSON
//! against the checked-in file under `tests/golden/`, pinning both the
//! runtime's determinism and the `TraceSample` serde schema (field
//! names, field order, float formatting).
//!
//! Regenerate after an *intentional* schema or model change with:
//!
//! ```sh
//! SOCRATES_REGEN_GOLDEN=1 cargo test -p socrates-suite --test golden_trace
//! ```

use margot::Rank;
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, Toolchain, TraceSample};
use std::path::PathBuf;

const GOLDEN_RELPATH: &str = "tests/golden/twomm_300s_trace.json";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_RELPATH)
}

/// The pinned scenario: 2mm, paper-scale Large dataset, one DSE
/// repetition, machine seed 1234, energy-efficient rank, 300 virtual
/// seconds (the paper's Fig. 5 horizon).
fn golden_trace() -> Vec<TraceSample> {
    let toolchain = Toolchain {
        dataset: Dataset::Large,
        dse_repetitions: 1,
        ..Toolchain::default()
    };
    let enhanced = toolchain.enhance(App::TwoMm).expect("enhance 2mm");
    let mut app = AdaptiveApplication::new(enhanced, Rank::throughput_per_watt2(), 1234);
    app.run_for(300.0);
    app.trace().to_vec()
}

#[test]
fn trace_is_byte_stable_against_the_golden_file() {
    let trace = golden_trace();
    let json = serde_json::to_string(&trace).expect("trace serialises");
    let path = golden_path();
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &json).expect("write golden");
        eprintln!("regenerated {} ({} bytes)", path.display(), json.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        json.len(),
        golden.len(),
        "serialised trace length drifted from the golden file"
    );
    assert_eq!(json, golden, "trace bytes drifted from the golden file");
}

#[test]
fn golden_file_round_trips_through_serde_byte_stably() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    let parsed: Vec<TraceSample> = serde_json::from_str(&golden).expect("golden parses");
    assert!(
        parsed.len() > 100,
        "300 s of 2mm must be hundreds of invocations, got {}",
        parsed.len()
    );
    // Byte-stable round-trip: format(parse(golden)) == golden.
    let reserialized = serde_json::to_string(&parsed).expect("reserialises");
    assert_eq!(reserialized, golden);
    // And value-stable: parse(format(parse(x))) == parse(x).
    let reparsed: Vec<TraceSample> = serde_json::from_str(&reserialized).expect("reparses");
    assert_eq!(reparsed, parsed);
}

#[test]
fn golden_trace_spans_the_full_300_seconds_monotonically() {
    let golden = std::fs::read_to_string(golden_path()).expect("golden file present");
    let parsed: Vec<TraceSample> = serde_json::from_str(&golden).expect("golden parses");
    let last = parsed.last().expect("non-empty");
    assert!(last.t_start_s < 300.0);
    assert!(last.t_start_s + last.time_s >= 300.0);
    for pair in parsed.windows(2) {
        assert!(pair[1].t_start_s > pair[0].t_start_s, "time must advance");
    }
    assert!(
        parsed.iter().all(|s| !s.forced),
        "a plain AdaptiveApplication never takes exploration steps"
    );
}
