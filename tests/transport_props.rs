//! Property-based convergence tests of the distributed knowledge
//! exchange: **any** seeded sequence of drops, reorders (latency
//! jitter) and duplicates must still converge — once the links drain
//! — to the canonical single-mutex [`margot::SharedKnowledge`]
//! reference fed the same observations in `(round, origin)` order;
//! and a late-joining instance must catch up exactly.
//!
//! The enhanced application is built once and shared across cases
//! (its design knowledge subsampled so the AS-RTM planning cost does
//! not drown the exchange being tested); every case derives its whole
//! schedule — loss, latency, duplication, topology, churn — from the
//! proptest-generated parameters, so failures replay deterministically.

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::{Knowledge, MetricValues, Rank, SharedKnowledge};
use polybench::{App, Dataset};
use proptest::prelude::*;
use socrates::transport::{Observation, Replica};
use socrates::{
    DistTopology, DistributedConfig, DistributedFleet, EnhancedApp, FleetConfig, LinkConfig,
    Toolchain,
};
use std::sync::OnceLock;

/// Points kept from the design knowledge (the version table is keyed
/// by (CO, BP) and stays complete, so every kept point dispatches).
const KNOWLEDGE_POINTS: usize = 48;

fn enhanced() -> &'static EnhancedApp {
    static ENHANCED: OnceLock<EnhancedApp> = OnceLock::new();
    ENHANCED.get_or_init(|| {
        let mut enhanced = Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        }
        .enhance(App::TwoMm)
        .expect("enhance 2mm");
        let points = enhanced.knowledge.points();
        let stride = (points.len() / KNOWLEDGE_POINTS).max(1);
        enhanced.knowledge = points
            .iter()
            .step_by(stride)
            .take(KNOWLEDGE_POINTS)
            .cloned()
            .collect::<Knowledge<_>>();
        enhanced
    })
}

#[derive(Debug, Clone)]
struct Scenario {
    seed: u64,
    nodes: usize,
    rounds: usize,
    drop_prob: f64,
    dup_prob: f64,
    max_latency: u64,
    gossip_fanout: Option<usize>,
    sync_interval: u64,
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        any::<u64>(),
        2usize..5,
        2usize..9,
        0.0f64..0.7,
        0.0f64..0.3,
        0u64..4,
        prop::option::of(1usize..4),
        1u64..5,
    )
        .prop_map(
            |(
                seed,
                nodes,
                rounds,
                drop_prob,
                dup_prob,
                max_latency,
                gossip_fanout,
                sync_interval,
            )| {
                Scenario {
                    seed,
                    nodes,
                    rounds,
                    drop_prob,
                    dup_prob,
                    max_latency,
                    gossip_fanout,
                    sync_interval,
                }
            },
        )
}

fn build_fleet(s: &Scenario) -> DistributedFleet {
    let topology = match s.gossip_fanout {
        Some(fanout) => DistTopology::Gossip { fanout },
        None => DistTopology::BrokerStar,
    };
    let config = FleetConfig {
        exploration_interval: 0,
        distributed: Some(DistributedConfig {
            topology,
            link: LinkConfig {
                seed: s.seed,
                min_latency: 0,
                max_latency: s.max_latency,
                drop_prob: s.drop_prob,
                dup_prob: s.dup_prob,
            },
            sync_interval: s.sync_interval,
            max_drain_rounds: 50_000,
        }),
        ..FleetConfig::default()
    };
    DistributedFleet::new(config, enhanced()).expect("valid scenario config")
}

/// Folds the fleet's canonical observation log into a single-mutex,
/// single-shard [`SharedKnowledge`] — the in-process reference every
/// reconciliation path must land on.
fn reference_fold(fleet: &DistributedFleet) -> Knowledge<platform_sim::KnobConfig> {
    let config = fleet.config();
    let reference = SharedKnowledge::new(enhanced().knowledge.clone(), config.knowledge_window)
        .with_min_observations(config.min_observations)
        .with_shards(1);
    for op in fleet.canonical_ops() {
        reference.publish(&op.config, &op.observed);
    }
    reference.knowledge()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Whatever the link does — drop, delay, reorder, duplicate —
    /// once the links drain, every node holds the same effective
    /// knowledge and epoch vector, equal to the canonical
    /// single-mutex fold of all observations.
    #[test]
    fn any_seeded_loss_schedule_converges_to_the_reference(s in scenario_strategy()) {
        let mut fleet = build_fleet(&s);
        fleet.spawn(&Rank::throughput_per_watt2(), s.seed ^ 0xf1ee7, s.nodes);
        for _ in 0..s.rounds {
            fleet.step_round();
        }
        fleet.drain().expect("any drop_prob < 1 must drain");
        prop_assert!(fleet.converged());
        // Every node made every round (nothing lost from the log):
        // own observations are retransmitted until acknowledged.
        prop_assert_eq!(fleet.canonical_ops().len(), s.nodes * s.rounds);
        let reference = reference_fold(&fleet);
        let vector0 = fleet.epoch_vector(0);
        for id in 0..s.nodes {
            prop_assert_eq!(
                fleet.node_knowledge(id),
                reference.clone(),
                "node {} diverged from the single-mutex reference",
                id
            );
            prop_assert_eq!(
                fleet.epoch_vector(id),
                vector0.clone(),
                "node {} epoch vector diverged",
                id
            );
        }
    }

    /// A node joining mid-run adopts a snapshot and catches up via
    /// deltas: after drain it holds exactly the fleet's knowledge.
    #[test]
    fn late_joiner_catches_up_exactly(s in scenario_strategy(), join_after in 1usize..5) {
        let mut fleet = build_fleet(&s);
        fleet.spawn(&Rank::throughput_per_watt2(), s.seed ^ 0x101, s.nodes);
        let join_after = join_after.min(s.rounds);
        for _ in 0..join_after {
            fleet.step_round();
        }
        let late = fleet.add_instance(
            Rank::throughput_per_watt2(),
            enhanced().platform.machine(s.seed ^ 0xbeef),
        );
        for _ in join_after..s.rounds {
            fleet.step_round();
        }
        fleet.drain().expect("any drop_prob < 1 must drain");
        prop_assert!(fleet.converged());
        let reference = reference_fold(&fleet);
        prop_assert_eq!(
            fleet.node_knowledge(late),
            reference,
            "the late joiner must land exactly on the reference fold"
        );
        prop_assert_eq!(fleet.epoch_vector(late), fleet.epoch_vector(0));
    }

    /// The replica's checkpointed fold is a pure function of the
    /// *set* of logged observations (plus design knowledge and warm
    /// seed): any arrival order — including orders that roll the fold
    /// back to a checkpoint or force full refolds — lands on exactly
    /// the canonical in-order fold, knowledge and epoch vector alike.
    /// Re-delivering observations that checkpoints already cover must
    /// be a no-op: no pending work, no extra rollback.
    #[test]
    fn replica_fold_is_arrival_order_independent(
        seed in any::<u64>(),
        warm in any::<bool>(),
        fold_stride in 1usize..7,
    ) {
        let design = enhanced().knowledge.clone();
        let configs = design.points();
        // 64 deterministic observations (4 origins × 16 rounds): well
        // past CHECKPOINT_EVERY, so rollbacks have checkpoints to hit.
        let ops: Vec<Observation> = (0..16u64)
            .flat_map(|round| (0..4u32).map(move |origin| (round, origin)))
            .map(|(round, origin)| {
                let p = &configs[(round as usize * 7 + origin as usize) % configs.len()];
                Observation {
                    origin,
                    seq: round,
                    round,
                    config: p.config.clone(),
                    observed: MetricValues::from_execution(
                        0.05 + (round as f64).mul_add(0.003, origin as f64 * 0.011),
                        60.0 + round as f64,
                    ),
                }
            })
            .collect();
        let build = || {
            let replica = Replica::new(design.clone(), 4, 1, 4);
            if warm {
                let seed_knowledge: Knowledge<platform_sim::KnobConfig> =
                    configs.iter().take(10).cloned().collect();
                replica.with_warm_seed(seed_knowledge, 3)
            } else {
                replica
            }
        };

        // Reference: canonical (round, origin) order, one fold.
        let mut reference = build();
        for op in &ops {
            prop_assert!(reference.insert(op.clone()));
        }
        reference.fold_pending();

        // Shuffled arrival with interleaved folds and duplicates.
        let mut order: Vec<usize> = (0..ops.len()).collect();
        order.sort_by_key(|i| {
            (seed ^ (*i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        });
        let mut replica = build();
        for (n, &i) in order.iter().enumerate() {
            prop_assert!(replica.insert(ops[i].clone()));
            if n % 5 == 4 {
                // Duplicate of an earlier delivery merges idempotently.
                prop_assert!(!replica.insert(ops[order[n / 2]].clone()));
            }
            if n % fold_stride == 0 {
                replica.fold_pending();
            }
        }
        replica.fold_pending();

        // Re-deliver the whole checkpointed prefix once more: every
        // insert is a duplicate, nothing becomes pending, and no
        // rollback is charged.
        let refolds_before = replica.refolds();
        for op in ops.iter().take(ops.len() / 2) {
            prop_assert!(!replica.insert(op.clone()));
        }
        prop_assert!(!replica.pending(), "duplicates must not dirty the fold");
        prop_assert_eq!(replica.refolds(), refolds_before);

        prop_assert_eq!(replica.knowledge(), reference.knowledge());
        prop_assert_eq!(replica.shard_epochs(), reference.shard_epochs());
        prop_assert_eq!(replica.epoch(), reference.epoch());
    }
}
