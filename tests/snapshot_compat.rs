//! Snapshot artifact compatibility: the shippable knowledge-snapshot
//! format ([`socrates::KnowledgeSnapshot`] / [`socrates::SnapshotDelta`])
//! must stay **byte-identical** against the checked-in goldens under
//! `tests/golden/`, decode adversarial input to typed errors (never a
//! panic), and fast-forward a mid-run cut to bit-identity with the live
//! knowledge base it was taken from.
//!
//! Regenerate the goldens after an *intentional* format change with:
//!
//! ```sh
//! SOCRATES_REGEN_GOLDEN=1 cargo test -p socrates-suite --test snapshot_compat
//! ```

use margot::{KnowledgeDelta, Metric, MetricValues, OperatingPoint, SharedKnowledge};
use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, KnobConfig, OptLevel};
use polybench::{App, Dataset};
use socrates::{
    KnowledgeSnapshot, SnapshotDelta, SnapshotFingerprint, SocratesError, Toolchain,
    SNAPSHOT_DELTA_MAGIC, SNAPSHOT_FORMAT_VERSION, SNAPSHOT_MAGIC,
};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn sample_point(i: usize) -> OperatingPoint<KnobConfig> {
    let co = if i == 0 {
        CompilerOptions::level(OptLevel::O2)
    } else {
        CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
    };
    let tn = 1u32 << i;
    OperatingPoint::new(
        KnobConfig::new(co, tn, BindingPolicy::Close),
        MetricValues::new()
            .with(Metric::exec_time(), 1.5 / f64::from(tn))
            .with(Metric::power(), 48.25 + f64::from(tn)),
    )
}

fn sample_fingerprint() -> SnapshotFingerprint {
    SnapshotFingerprint::new("2mm", "Medium", 0x0050_C7A7_E550_2055)
}

/// The pinned full-state snapshot: four points over three shards at a
/// mid-run epoch — a pure function of constants, so the golden bytes
/// cannot drift with unrelated library changes.
fn sample_snapshot() -> KnowledgeSnapshot {
    KnowledgeSnapshot {
        fingerprint: sample_fingerprint(),
        epoch: 5,
        shard_epochs: vec![2, 0, 3],
        knowledge: (0..4).map(sample_point).collect(),
    }
}

/// The pinned chain link: two changed points advancing epoch 5 → 8.
fn sample_delta() -> SnapshotDelta {
    SnapshotDelta {
        fingerprint: sample_fingerprint(),
        shard_epochs: vec![3, 0, 4],
        delta: KnowledgeDelta {
            from_epoch: 5,
            to_epoch: 8,
            changed: vec![(1, sample_point(1)), (3, sample_point(3))],
        },
    }
}

fn check_golden_bytes(name: &str, serialized: &[u8]) {
    let path = golden_path(name);
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, serialized).expect("write golden");
        eprintln!(
            "regenerated {} ({} bytes)",
            path.display(),
            serialized.len()
        );
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        serialized, golden,
        "{name}: artifact bytes drifted from the golden file"
    );
}

#[test]
fn snapshot_artifacts_are_byte_stable_against_the_golden_files() {
    check_golden_bytes("knowledge_snapshot.bin", &sample_snapshot().to_bytes());
    check_golden_bytes("snapshot_delta.bin", &sample_delta().to_bytes());
}

#[test]
fn golden_artifacts_round_trip_byte_stably() {
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        return; // the golden files are being rewritten concurrently
    }
    let golden = std::fs::read(golden_path("knowledge_snapshot.bin")).expect("golden present");
    let snap = KnowledgeSnapshot::from_bytes(&golden).expect("golden snapshot decodes");
    assert_eq!(snap, sample_snapshot(), "golden content drifted");
    assert_eq!(snap.to_bytes(), golden, "encode(decode(x)) != x");

    let golden = std::fs::read(golden_path("snapshot_delta.bin")).expect("golden present");
    let link = SnapshotDelta::from_bytes(&golden).expect("golden delta decodes");
    assert_eq!(link, sample_delta(), "golden content drifted");
    assert_eq!(link.to_bytes(), golden, "encode(decode(x)) != x");
}

/// Adversarial decoding: truncation at *every* byte boundary, a
/// trailing byte, and every single-byte corruption must come back as a
/// `Result` — a malformed artifact from disk or the wire must never
/// take the process down. Truncations and trailing bytes are always
/// errors; an interior bit-flip may decode to a (different) valid
/// artifact, which is fine — the test only demands control flow, not
/// detection of every flip.
#[test]
fn adversarial_snapshot_bytes_never_panic() {
    let snapshot = sample_snapshot().to_bytes();
    let delta = sample_delta().to_bytes();

    for (what, bytes) in [("snapshot", &snapshot), ("delta", &delta)] {
        for cut in 0..bytes.len() {
            assert!(
                decode_any(what, &bytes[..cut]).is_err(),
                "{what} truncated to {cut} bytes must not decode"
            );
        }
        let mut trailing = bytes.to_vec();
        trailing.push(0);
        let err = decode_any(what, &trailing).expect_err("trailing byte must not decode");
        assert!(matches!(err, SocratesError::Transport { .. }));

        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x40;
            let _ = decode_any(what, &flipped); // must return, Ok or Err
        }
    }
}

fn decode_any(what: &str, bytes: &[u8]) -> Result<(), SocratesError> {
    match what {
        "snapshot" => KnowledgeSnapshot::from_bytes(bytes).map(|_| ()),
        _ => SnapshotDelta::from_bytes(bytes).map(|_| ()),
    }
}

#[test]
fn version_skew_and_cross_magic_are_typed_errors() {
    // A future format version is refused outright — a build must never
    // misread an artifact written by a newer one.
    let mut future = sample_snapshot().to_bytes();
    future[4..8].copy_from_slice(&(SNAPSHOT_FORMAT_VERSION + 1).to_le_bytes());
    let err = KnowledgeSnapshot::from_bytes(&future).unwrap_err();
    assert!(matches!(err, SocratesError::Transport { .. }));
    assert!(err
        .to_string()
        .contains("unsupported snapshot format version"));

    // Feeding a delta artifact to the snapshot decoder (and vice versa)
    // fails on the magic, not somewhere deep in the payload.
    let mut cross = sample_snapshot().to_bytes();
    cross[..4].copy_from_slice(&SNAPSHOT_DELTA_MAGIC);
    let err = KnowledgeSnapshot::from_bytes(&cross).unwrap_err();
    assert!(err.to_string().contains("magic"), "unexpected error: {err}");
    let mut cross = sample_delta().to_bytes();
    cross[..4].copy_from_slice(&SNAPSHOT_MAGIC);
    let err = SnapshotDelta::from_bytes(&cross).unwrap_err();
    assert!(err.to_string().contains("magic"), "unexpected error: {err}");
}

/// The acceptance property of the whole snapshot subsystem: a snapshot
/// cut mid-run and fast-forwarded through the recorded delta chain —
/// with every artifact round-tripped through its binary encoding on
/// the way — reproduces the live [`SharedKnowledge`] **bit-identically**:
/// equal global epoch, equal per-shard epoch vectors and equal
/// per-shard content hashes.
#[test]
fn mid_run_cut_fast_forwards_to_bit_identity_with_the_live_base() {
    let enhanced = Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance");
    let machine = enhanced.platform.machine(11);
    let fingerprint = SnapshotFingerprint::of(
        &Toolchain {
            dataset: Dataset::Medium,
            dse_repetitions: 1,
            ..Toolchain::default()
        },
        App::TwoMm,
    );
    let shared = SharedKnowledge::new(enhanced.knowledge.clone(), 8).with_shards(4);
    let configs: Vec<KnobConfig> = enhanced
        .knowledge
        .points()
        .iter()
        .map(|p| p.config.clone())
        .collect();
    // Era boundaries: publish a slice of model-driven observations,
    // cut, repeat. The per-era stride varies which shards move.
    let publish_era = |era: usize| {
        for (i, config) in configs.iter().enumerate().skip(era * 7).step_by(era + 3) {
            let expected = machine.expected(&enhanced.profile, config);
            let wobble = 1.0 + (i % 5) as f64 * 0.01;
            assert!(shared.publish(
                config,
                &MetricValues::from_execution(expected.time_s * wobble, expected.power_w),
            ));
        }
    };

    publish_era(0);
    shared.drain_changes(); // the cut below owns the drain cursor
    let cut = KnowledgeSnapshot::capture(&shared, fingerprint.clone());
    let mut snap =
        KnowledgeSnapshot::from_bytes(&cut.to_bytes()).expect("snapshot survives its encoding");
    assert_eq!(snap, cut);

    let mut chain = Vec::new();
    let mut from_epoch = snap.epoch;
    for era in 1..4 {
        publish_era(era);
        let link = SnapshotDelta::cut(&shared, fingerprint.clone(), from_epoch);
        from_epoch = link.delta.to_epoch;
        chain.push(SnapshotDelta::from_bytes(&link.to_bytes()).expect("link survives encoding"));
    }

    snap.fast_forward_chain(&chain).expect("chain applies");
    assert_eq!(snap.epoch, shared.epoch(), "global epoch");
    let live_epochs: Vec<u64> = (0..shared.shard_count())
        .map(|s| shared.shard_epoch(s))
        .collect();
    assert_eq!(snap.shard_epochs, live_epochs, "shard epoch vector");
    assert_eq!(snap.shard_hashes(), shared.shard_hashes(), "shard hashes");
    assert_eq!(snap.knowledge, shared.knowledge(), "effective knowledge");

    // A chain is not a grab bag: replaying the first link onto the
    // fast-forwarded snapshot no longer chains.
    let err = snap.fast_forward(&chain[0]).unwrap_err();
    assert!(err.to_string().contains("does not chain"));
}
