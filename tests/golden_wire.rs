//! Golden wire-schema regression: the distributed runtime's
//! serialised knowledge exchange — [`margot::KnowledgeDelta`] and
//! every [`socrates::transport::WireMessage`] variant — must be
//! **byte-identical** against the checked-in files under
//! `tests/golden/`, in both encodings:
//!
//! - the **JSON compatibility layer** (`*.json`), pinning field
//!   names, field order, variant tags and float formatting (like the
//!   golden trace pins the `TraceSample` schema), and
//! - the **binary wire format** (`*.bin`) the runtime actually ships
//!   through the transport, pinning the frame layout byte-for-byte.
//!
//! A bridge test decodes the pinned JSON through the compatibility
//! layer and re-encodes it binary, asserting both goldens describe
//! the *same* in-memory messages.
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```sh
//! SOCRATES_REGEN_GOLDEN=1 cargo test -p socrates-suite --test golden_wire
//! ```

use margot::{Knowledge, KnowledgeDelta, Metric, MetricValues, OperatingPoint};
use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, KnobConfig, OptLevel};
use socrates::transport::{Observation, WireMessage};
use socrates::{
    delta_from_bytes, delta_from_json, delta_to_bytes, delta_to_json, wire_from_bytes,
    wire_from_json, wire_to_bytes, wire_to_json,
};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn sample_point(i: usize) -> OperatingPoint<KnobConfig> {
    let co = if i == 0 {
        CompilerOptions::level(OptLevel::O2)
    } else {
        CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
    };
    let tn = 1u32 << i;
    OperatingPoint::new(
        KnobConfig::new(co, tn, BindingPolicy::Close),
        MetricValues::new()
            .with(Metric::exec_time(), 1.5 / f64::from(tn))
            .with(Metric::power(), 48.25 + f64::from(tn)),
    )
}

/// The pinned delta: two changed points between epochs 3 and 5.
fn sample_delta() -> KnowledgeDelta<KnobConfig> {
    KnowledgeDelta {
        from_epoch: 3,
        to_epoch: 5,
        changed: vec![(0, sample_point(0)), (2, sample_point(2))],
    }
}

/// One pinned message per [`WireMessage`] variant, covering the whole
/// protocol surface.
fn sample_messages() -> Vec<WireMessage> {
    let knowledge: Knowledge<KnobConfig> = (0..2).map(sample_point).collect();
    vec![
        WireMessage::Join { node: 3 },
        WireMessage::Leave { node: 3 },
        WireMessage::Ops {
            ops: vec![Observation {
                origin: 1,
                seq: 4,
                round: 7,
                config: sample_point(1).config,
                observed: MetricValues::new()
                    .with(Metric::exec_time(), 0.75)
                    .with(Metric::power(), 52.5),
            }],
        },
        WireMessage::Ack { count: 5 },
        WireMessage::Delta {
            shard: 2,
            delta: sample_delta(),
        },
        WireMessage::SyncRequest {
            versions: vec![0, 4, 2],
        },
        WireMessage::SyncResponse {
            shard: 1,
            version: 4,
            points: vec![(1, sample_point(1))],
        },
        WireMessage::Summary {
            counts: vec![(0, 3), (2, 1)],
            reply: true,
        },
        WireMessage::Welcome {
            knowledge,
            versions: vec![1, 1, 0],
        },
        WireMessage::WelcomeLog { ops: Vec::new() },
    ]
}

fn check_golden(name: &str, serialized: &str) {
    let path = golden_path(name);
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, serialized).expect("write golden");
        eprintln!(
            "regenerated {} ({} bytes)",
            path.display(),
            serialized.len()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        serialized, golden,
        "{name}: wire bytes drifted from the golden file"
    );
}

fn check_golden_bytes(name: &str, serialized: &[u8]) {
    let path = golden_path(name);
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, serialized).expect("write golden");
        eprintln!(
            "regenerated {} ({} bytes)",
            path.display(),
            serialized.len()
        );
        return;
    }
    let golden = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        serialized, golden,
        "{name}: wire bytes drifted from the golden file"
    );
}

/// The container layout of `wire_messages.bin`: frame count (u32 LE),
/// then each frame as byte length (u32 LE) ++ frame bytes.
fn pack_frames(frames: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(
        &u32::try_from(frames.len())
            .expect("count fits u32")
            .to_le_bytes(),
    );
    for f in frames {
        out.extend_from_slice(
            &u32::try_from(f.len())
                .expect("frame fits u32")
                .to_le_bytes(),
        );
        out.extend_from_slice(f);
    }
    out
}

fn unpack_frames(bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut frames = Vec::new();
    let (count, mut rest) = bytes.split_at(4);
    for _ in 0..u32::from_le_bytes(count.try_into().expect("4")) {
        let (len, tail) = rest.split_at(4);
        let len = u32::from_le_bytes(len.try_into().expect("4")) as usize;
        frames.push(tail[..len].to_vec());
        rest = &tail[len..];
    }
    assert!(rest.is_empty(), "trailing bytes after the last frame");
    frames
}

#[test]
fn knowledge_delta_is_byte_stable_against_the_golden_file() {
    let json = delta_to_json(&sample_delta()).expect("delta serialises");
    check_golden("knowledge_delta.json", &json);
}

#[test]
fn wire_messages_are_byte_stable_against_the_golden_file() {
    let json: Vec<String> = sample_messages()
        .iter()
        .map(|m| wire_to_json(m).expect("message serialises"))
        .collect();
    check_golden("wire_messages.json", &format!("[{}]", json.join(",\n")));
}

#[test]
fn golden_delta_round_trips_byte_stably() {
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        return; // the golden file is being rewritten concurrently
    }
    let golden =
        std::fs::read_to_string(golden_path("knowledge_delta.json")).expect("golden delta present");
    let parsed = delta_from_json(&golden).expect("golden delta parses");
    assert_eq!(parsed, sample_delta(), "golden content drifted");
    let reserialized = delta_to_json(&parsed).expect("reserialises");
    assert_eq!(reserialized, golden, "format(parse(x)) != x");
}

#[test]
fn every_wire_variant_round_trips_through_serde() {
    for msg in sample_messages() {
        let json = wire_to_json(&msg).expect("serialises");
        let back = wire_from_json(&json).expect("parses");
        assert_eq!(back, msg, "round-trip changed the message");
    }
}

#[test]
fn binary_knowledge_delta_is_byte_stable_against_the_golden_file() {
    let bytes = delta_to_bytes(&sample_delta()).expect("delta encodes");
    check_golden_bytes("knowledge_delta.bin", &bytes);
}

#[test]
fn binary_wire_messages_are_byte_stable_against_the_golden_file() {
    let frames: Vec<Vec<u8>> = sample_messages()
        .iter()
        .map(|m| wire_to_bytes(m).expect("message encodes"))
        .collect();
    check_golden_bytes("wire_messages.bin", &pack_frames(&frames));
}

#[test]
fn golden_binary_delta_round_trips_byte_stably() {
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        return; // the golden file is being rewritten concurrently
    }
    let golden = std::fs::read(golden_path("knowledge_delta.bin")).expect("golden delta present");
    let parsed = delta_from_bytes(&golden).expect("golden delta decodes");
    assert_eq!(parsed, sample_delta(), "golden content drifted");
    let reencoded = delta_to_bytes(&parsed).expect("re-encodes");
    assert_eq!(reencoded, golden, "encode(decode(x)) != x");
}

/// The compatibility bridge: decoding the pinned *JSON* goldens
/// through the compat layer must yield exactly the in-memory messages
/// the pinned *binary* goldens decode to — the two encodings describe
/// one schema.
#[test]
fn json_goldens_decode_identically_to_binary_goldens() {
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        return; // the golden files are being rewritten concurrently
    }
    let delta_json = std::fs::read_to_string(golden_path("knowledge_delta.json"))
        .expect("golden JSON delta present");
    let delta_bin = std::fs::read(golden_path("knowledge_delta.bin")).expect("golden bin present");
    assert_eq!(
        delta_from_json(&delta_json).expect("compat layer decodes"),
        delta_from_bytes(&delta_bin).expect("binary decodes"),
        "the two delta goldens describe different deltas"
    );
    let msgs_json = std::fs::read_to_string(golden_path("wire_messages.json"))
        .expect("golden JSON messages present");
    let from_json: Vec<WireMessage> =
        serde_json::from_str(&msgs_json).expect("compat layer decodes the golden array");
    let msgs_bin = std::fs::read(golden_path("wire_messages.bin")).expect("golden bin present");
    let from_bin: Vec<WireMessage> = unpack_frames(&msgs_bin)
        .iter()
        .map(|f| wire_from_bytes(f).expect("binary decodes"))
        .collect();
    assert_eq!(
        from_json, from_bin,
        "the two message goldens describe different messages"
    );
    assert_eq!(from_bin, sample_messages(), "golden content drifted");
    // Re-encoding the compat-decoded messages reproduces the binary
    // golden byte-for-byte.
    let reencoded: Vec<Vec<u8>> = from_json
        .iter()
        .map(|m| wire_to_bytes(m).expect("encodes"))
        .collect();
    assert_eq!(pack_frames(&reencoded), msgs_bin);
}
