//! Golden wire-schema regression: the distributed runtime's
//! serialised knowledge exchange — [`margot::KnowledgeDelta`] and
//! every [`socrates::transport::WireMessage`] variant — must be
//! **byte-identical** against the checked-in files under
//! `tests/golden/`, pinning field names, field order, variant tags
//! and float formatting of the wire schema (like the golden trace
//! pins the `TraceSample` schema).
//!
//! Regenerate after an *intentional* schema change with:
//!
//! ```sh
//! SOCRATES_REGEN_GOLDEN=1 cargo test -p socrates-suite --test golden_wire
//! ```

use margot::{Knowledge, KnowledgeDelta, Metric, MetricValues, OperatingPoint};
use platform_sim::{BindingPolicy, CompilerFlag, CompilerOptions, KnobConfig, OptLevel};
use socrates::transport::{Observation, WireMessage};
use socrates::{delta_from_json, delta_to_json, wire_from_json, wire_to_json};
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("tests/golden/{name}"))
}

fn sample_point(i: usize) -> OperatingPoint<KnobConfig> {
    let co = if i == 0 {
        CompilerOptions::level(OptLevel::O2)
    } else {
        CompilerOptions::with_flags(OptLevel::O3, [CompilerFlag::UnrollAllLoops])
    };
    let tn = 1u32 << i;
    OperatingPoint::new(
        KnobConfig::new(co, tn, BindingPolicy::Close),
        MetricValues::new()
            .with(Metric::exec_time(), 1.5 / f64::from(tn))
            .with(Metric::power(), 48.25 + f64::from(tn)),
    )
}

/// The pinned delta: two changed points between epochs 3 and 5.
fn sample_delta() -> KnowledgeDelta<KnobConfig> {
    KnowledgeDelta {
        from_epoch: 3,
        to_epoch: 5,
        changed: vec![(0, sample_point(0)), (2, sample_point(2))],
    }
}

/// One pinned message per [`WireMessage`] variant, covering the whole
/// protocol surface.
fn sample_messages() -> Vec<WireMessage> {
    let knowledge: Knowledge<KnobConfig> = (0..2).map(sample_point).collect();
    vec![
        WireMessage::Join { node: 3 },
        WireMessage::Leave { node: 3 },
        WireMessage::Ops {
            ops: vec![Observation {
                origin: 1,
                seq: 4,
                round: 7,
                config: sample_point(1).config,
                observed: MetricValues::new()
                    .with(Metric::exec_time(), 0.75)
                    .with(Metric::power(), 52.5),
            }],
        },
        WireMessage::Ack { count: 5 },
        WireMessage::Delta {
            shard: 2,
            delta: sample_delta(),
        },
        WireMessage::SyncRequest {
            versions: vec![0, 4, 2],
        },
        WireMessage::SyncResponse {
            shard: 1,
            version: 4,
            points: vec![(1, sample_point(1))],
        },
        WireMessage::Summary {
            counts: vec![(0, 3), (2, 1)],
            reply: true,
        },
        WireMessage::Welcome {
            knowledge,
            versions: vec![1, 1, 0],
        },
        WireMessage::WelcomeLog { ops: Vec::new() },
    ]
}

fn check_golden(name: &str, serialized: &str) {
    let path = golden_path(name);
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, serialized).expect("write golden");
        eprintln!(
            "regenerated {} ({} bytes)",
            path.display(),
            serialized.len()
        );
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        serialized, golden,
        "{name}: wire bytes drifted from the golden file"
    );
}

#[test]
fn knowledge_delta_is_byte_stable_against_the_golden_file() {
    let json = delta_to_json(&sample_delta()).expect("delta serialises");
    check_golden("knowledge_delta.json", &json);
}

#[test]
fn wire_messages_are_byte_stable_against_the_golden_file() {
    let json: Vec<String> = sample_messages()
        .iter()
        .map(|m| wire_to_json(m).expect("message serialises"))
        .collect();
    check_golden("wire_messages.json", &format!("[{}]", json.join(",\n")));
}

#[test]
fn golden_delta_round_trips_byte_stably() {
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        return; // the golden file is being rewritten concurrently
    }
    let golden =
        std::fs::read_to_string(golden_path("knowledge_delta.json")).expect("golden delta present");
    let parsed = delta_from_json(&golden).expect("golden delta parses");
    assert_eq!(parsed, sample_delta(), "golden content drifted");
    let reserialized = delta_to_json(&parsed).expect("reserialises");
    assert_eq!(reserialized, golden, "format(parse(x)) != x");
}

#[test]
fn every_wire_variant_round_trips_through_serde() {
    for msg in sample_messages() {
        let json = wire_to_json(&msg).expect("serialises");
        let back = wire_from_json(&json).expect("parses");
        assert_eq!(back, msg, "round-trip changed the message");
    }
}
