//! Differential soundness of the static kernel analyzer against the
//! checked ("sanitizer") VM mode, the ISSUE 9 acceptance property:
//!
//! > analyzer-safe ⇒ the checked VM never traps.
//!
//! Property-tested over both program generators — the fault-free
//! [`minic::genprog::generate`] and the fault-injecting
//! [`minic::genprog::generate_adversarial`] — with arbitrary
//! specialization-parameter bindings, because conditional faults make
//! the verdict binding-dependent. Whenever the verdict is `Safe` the
//! checked run must also be **bit-identical** to the unchecked run
//! (the shadow bitmaps observe, never perturb).
//!
//! The analyzer's human-facing output is pinned too: diagnostics for
//! one intentionally broken kernel per fault class render byte-stably
//! against `tests/golden/analysis_diagnostics.txt` (regenerate after an
//! intentional wording change with `SOCRATES_REGEN_GOLDEN=1`).
//!
//! CI runs this suite at `RAYON_NUM_THREADS=1/2/8`; analysis and both
//! VM modes are single-threaded by construction, so thread-count
//! invariance is part of the contract.

use minic::genprog;
use minivm::{analyze, compile, SpecConfig, Verdict};
use proptest::prelude::*;
use std::path::PathBuf;

/// Binds every referenced parameter, cycling through the arbitrary
/// values (the `engine_equivalence` idiom).
fn spec_for(params: &[String], values: &[i64]) -> SpecConfig {
    let mut spec = SpecConfig::new();
    for (i, name) in params.iter().enumerate() {
        spec.set(name.clone(), values[i % values.len()]);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fault-free generated programs: the analyzer must not cry wolf
    /// with a definite fault, and the checked VM must complete
    /// bit-identically to the unchecked run.
    #[test]
    fn fault_free_programs_run_checked_bit_identically(
        seed in 0u64..1_000_000,
        values in prop::collection::vec(-100i64..100, 1..4),
    ) {
        let prog = genprog::generate(seed);
        let tu = minic::parse(&prog.source).expect("generated programs parse");
        let spec = spec_for(&prog.params, &values);
        let report = analyze(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: analysis failed: {e}\n{}", prog.source));
        prop_assert!(
            !report.diagnostics.iter().any(|d| d.definite),
            "seed {} is fault-free by construction but got a definite diagnostic:\n{}\n{}",
            seed, report.render_diagnostics(), prog.source
        );
        let kernel = compile(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{}", prog.source));
        let unchecked = kernel.run()
            .unwrap_or_else(|e| panic!("seed {seed}: unchecked run failed: {e}\n{}", prog.source));
        let checked = kernel.run_checked()
            .unwrap_or_else(|e| panic!("seed {seed}: checked run trapped: {e}\n{}", prog.source));
        prop_assert_eq!(unchecked, checked, "seed {} diverged:\n{}", seed, prog.source);
    }

    /// The soundness direction over fault-injecting programs: whenever
    /// the analyzer calls `(program, binding)` safe, the checked VM
    /// completes trap-free and bit-identically to the unchecked run.
    #[test]
    fn analyzer_safe_implies_the_checked_vm_never_traps(
        seed in 0u64..1_000_000,
        values in prop::collection::vec(-100i64..100, 1..4),
    ) {
        let prog = genprog::generate_adversarial(seed);
        let tu = minic::parse(&prog.source).expect("adversarial programs parse");
        let spec = spec_for(&prog.params, &values);
        let report = analyze(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: analysis failed: {e}\n{}", prog.source));
        if report.verdict != Verdict::Safe {
            return Ok(()); // not claimed safe — nothing to hold the analyzer to
        }
        let kernel = compile(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{}", prog.source));
        let checked = kernel.run_checked().unwrap_or_else(|e| panic!(
            "SOUNDNESS VIOLATION — seed {seed}: analyzer said Safe, checked VM trapped: {e}\n{}",
            prog.source
        ));
        let unchecked = kernel.run().expect("safe program runs unchecked");
        prop_assert_eq!(unchecked, checked, "seed {} diverged:\n{}", seed, prog.source);
    }
}

/// One intentionally broken kernel per fault class; their rendered
/// diagnostics (kind, function, source line, detail wording) are pinned
/// byte-stably against the golden file.
#[test]
fn diagnostics_render_byte_stably_against_the_golden_file() {
    let cases: [(&str, &str); 3] = [
        (
            "uninit-read",
            "double buf[6];
             void init_array() {
                 for (int i = 2; i < 6; i++) { buf[i] = 1.0; }
             }
             double kernel_gap() {
                 double s = 0.0;
                 for (int i = 0; i < 6; i++) { s = s + buf[i]; }
                 return s;
             }",
        ),
        (
            "out-of-bounds",
            "double row[8];
             void init_array() {
                 for (int i = 0; i < 8; i++) { row[i] = 0.5; }
             }
             double kernel_over() {
                 double s = 0.0;
                 for (int i = 0; i <= 8; i++) { s = s + row[i]; }
                 return s;
             }",
        ),
        (
            "div-by-zero",
            "long denom;
             double cell[4];
             void init_array() {
                 denom = 0;
                 for (int i = 0; i < 4; i++) { cell[i] = 2.0; }
             }
             double kernel_ratio() {
                 long q = 12 / denom;
                 return cell[0] + q;
             }",
        ),
    ];

    let mut rendered = String::new();
    for (label, src) in cases {
        let tu = minic::parse(src).expect("diagnostic fixture parses");
        let entry = tu
            .functions()
            .map(|f| f.name.clone())
            .find(|n| n.starts_with("kernel_"))
            .expect("fixture has a kernel");
        let report = analyze(&tu, &entry, &SpecConfig::new()).expect("fixture analyses");
        assert_eq!(
            report.verdict,
            Verdict::Unsafe,
            "fixture `{label}` must be definitely unsafe"
        );
        rendered.push_str(&format!("== {label} ==\n"));
        rendered.push_str(&report.render_diagnostics());
        rendered.push('\n');
    }

    let path =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/analysis_diagnostics.txt");
    if std::env::var("SOCRATES_REGEN_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        std::fs::write(&path, &rendered).expect("write golden");
        eprintln!("regenerated {} ({} bytes)", path.display(), rendered.len());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with SOCRATES_REGEN_GOLDEN=1",
            path.display()
        )
    });
    assert_eq!(
        rendered, golden,
        "analyzer diagnostics drifted from the golden file"
    );
}
