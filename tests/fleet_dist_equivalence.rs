//! Distributed-fleet determinism: over a **lossless zero-latency
//! link**, the distributed fleet must be **bit-identical** to the
//! in-process shared-knowledge fleet — same traces, same learned
//! knowledge — in both topologies, at any rayon thread count (CI
//! re-runs this file under forced `RAYON_NUM_THREADS` values).
//!
//! This pins the distributed runtime's determinism contract: an ideal
//! link is exactly the in-process round barrier, so every divergence
//! observed under loss/latency is attributable to the link model, not
//! to the exchange protocol.

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::Rank;
use polybench::{App, Dataset};
use socrates::{
    DistTopology, DistributedConfig, DistributedFleet, EnhancedApp, Fleet, FleetConfig, LinkConfig,
    Toolchain,
};

const INSTANCES: usize = 8;
const SEED: u64 = 2018;

fn quick_enhanced(app: App) -> EnhancedApp {
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(app)
    .unwrap()
}

/// The in-process reference: shared knowledge on, no cooperative
/// exploration, no power budget (the capabilities the distributed
/// mode models).
fn reference_config() -> FleetConfig {
    FleetConfig {
        exploration_interval: 0,
        ..FleetConfig::default()
    }
}

fn dist_config(topology: DistTopology) -> FleetConfig {
    FleetConfig {
        exploration_interval: 0,
        distributed: Some(DistributedConfig {
            topology,
            link: LinkConfig::ideal(0),
            ..DistributedConfig::default()
        }),
        ..FleetConfig::default()
    }
}

type Traces = Vec<Vec<socrates::TraceSample>>;
type Learned = margot::Knowledge<platform_sim::KnobConfig>;

fn run_reference(enhanced: &EnhancedApp, duration_s: f64) -> (Traces, Learned) {
    let mut fleet = Fleet::new(reference_config()).expect("valid config");
    fleet.spawn(enhanced, &Rank::throughput_per_watt2(), SEED, INSTANCES);
    fleet.run_for(duration_s);
    let traces = (0..INSTANCES).map(|id| fleet.trace(id)).collect();
    (traces, fleet.learned_knowledge(App::TwoMm).unwrap())
}

fn run_distributed(
    enhanced: &EnhancedApp,
    topology: DistTopology,
    duration_s: f64,
) -> (Traces, Learned) {
    let mut fleet = DistributedFleet::new(dist_config(topology), enhanced).expect("valid config");
    fleet.spawn(&Rank::throughput_per_watt2(), SEED, INSTANCES);
    fleet.run_for(duration_s);
    fleet.drain().expect("an ideal link drains immediately");
    assert!(fleet.converged());
    let traces = (0..INSTANCES).map(|id| fleet.trace(id)).collect();
    (traces, fleet.authoritative_knowledge())
}

#[test]
fn ideal_star_link_is_bit_identical_to_the_in_process_fleet() {
    let enhanced = quick_enhanced(App::TwoMm);
    let (ref_traces, ref_knowledge) = run_reference(&enhanced, 8.0);
    let (dist_traces, dist_knowledge) = run_distributed(&enhanced, DistTopology::BrokerStar, 8.0);
    for (id, (d, r)) in dist_traces.iter().zip(&ref_traces).enumerate() {
        assert_eq!(d, r, "instance {id}: distributed trace != in-process trace");
    }
    assert_eq!(
        dist_knowledge, ref_knowledge,
        "the broker's published knowledge must equal the in-process pool's"
    );
}

#[test]
fn ideal_full_mesh_gossip_is_bit_identical_to_the_in_process_fleet() {
    let enhanced = quick_enhanced(App::TwoMm);
    let (ref_traces, ref_knowledge) = run_reference(&enhanced, 6.0);
    // fanout >= peers: every round's observations reach every node by
    // the next round, exactly like the in-process barrier.
    let (dist_traces, dist_knowledge) = run_distributed(
        &enhanced,
        DistTopology::Gossip {
            fanout: INSTANCES - 1,
        },
        6.0,
    );
    for (id, (d, r)) in dist_traces.iter().zip(&ref_traces).enumerate() {
        assert_eq!(d, r, "instance {id}: gossip trace != in-process trace");
    }
    assert_eq!(dist_knowledge, ref_knowledge);
}

#[test]
fn parallel_and_serial_distributed_rounds_are_bit_identical() {
    let enhanced = quick_enhanced(App::TwoMm);
    let run = |parallel_step: bool| {
        let mut config = dist_config(DistTopology::BrokerStar);
        config.parallel_step = parallel_step;
        let mut fleet = DistributedFleet::new(config, &enhanced).expect("valid config");
        fleet.spawn(&Rank::throughput_per_watt2(), SEED, INSTANCES);
        fleet.run_for(5.0);
        fleet.drain().expect("ideal link drains");
        (
            (0..INSTANCES).map(|id| fleet.trace(id)).collect::<Vec<_>>(),
            fleet.authoritative_knowledge(),
            fleet.canonical_ops(),
        )
    };
    assert_eq!(run(true), run(false));
}

#[test]
fn repeated_distributed_runs_are_reproducible() {
    let enhanced = quick_enhanced(App::TwoMm);
    let run = || {
        let mut fleet =
            DistributedFleet::new(dist_config(DistTopology::Gossip { fanout: 2 }), &enhanced)
                .expect("valid config");
        fleet.spawn(&Rank::throughput_per_watt2(), SEED, 4);
        fleet.run_for(4.0);
        fleet.drain().expect("ideal link drains");
        (
            (0..4).map(|id| fleet.trace(id)).collect::<Vec<_>>(),
            fleet.node_knowledge(0),
            fleet.stats().net,
        )
    };
    assert_eq!(run(), run());
}
