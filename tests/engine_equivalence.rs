//! Differential equivalence suite: the bytecode engine must be
//! bit-identical to the reference AST interpreter.
//!
//! Three layers of evidence:
//! 1. property tests over randomly generated mini-C programs
//!    (`minic::genprog`) with arbitrary specialization-parameter
//!    bindings — every seed must produce identical [`ExecutionReport`]s
//!    (checksum + flop/load/store counts + return value) on both
//!    engines;
//! 2. the weaved path: LARA-multiversioned Polybench clones (with
//!    `num_threads(__socrates_num_threads)` pragmas woven in) run
//!    bit-identically under arbitrary thread-count bindings;
//! 3. error parity: invalid configurations (unbound pragma parameters)
//!    fail identically on both engines, before any execution.
//!
//! CI runs this suite at `RAYON_NUM_THREADS=1/2/8`; the engines are
//! single-threaded by construction, so thread-count invariance is part
//! of the contract.

use minic::genprog;
use minivm::{compile, interpret, EngineError, SpecConfig, VmState};
use polybench::{App, Dataset, KernelArg};
use proptest::prelude::*;

/// Builds the execution spec for a generated program: bind every
/// referenced parameter (cycling through the arbitrary values) — plus
/// the weaver's thread variable, which generated pragmas may reference.
fn spec_for(params: &[String], values: &[i64]) -> SpecConfig {
    let mut spec = SpecConfig::new();
    for (i, name) in params.iter().enumerate() {
        spec.set(name.clone(), values[i % values.len()]);
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary generated programs × arbitrary parameter bindings →
    /// bit-identical reports on both engines.
    #[test]
    fn generated_programs_run_bit_identically(
        seed in 0u64..1_000_000,
        values in prop::collection::vec(-100i64..100, 1..4),
    ) {
        let prog = genprog::generate(seed);
        let tu = minic::parse(&prog.source).expect("generated programs parse");
        let spec = spec_for(&prog.params, &values);
        let interpreted = interpret(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: interpreter failed: {e}\n{}", prog.source));
        let kernel = compile(&tu, &prog.entry, &spec)
            .unwrap_or_else(|e| panic!("seed {seed}: compile failed: {e}\n{}", prog.source));
        let compiled = kernel
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: vm failed: {e}\n{}", prog.source));
        prop_assert_eq!(interpreted, compiled, "seed {} diverged:\n{}", seed, prog.source);
    }

    /// Re-running a compiled kernel with a reused VmState never changes
    /// the report (no state leaks between runs).
    #[test]
    fn compiled_reruns_are_stable(seed in 0u64..1_000_000) {
        let prog = genprog::generate(seed);
        let tu = minic::parse(&prog.source).expect("generated programs parse");
        let spec = spec_for(&prog.params, &[7]);
        let kernel = compile(&tu, &prog.entry, &spec).expect("compiles");
        let mut vm = VmState::new();
        let first = kernel.run_with(&mut vm).expect("runs");
        let second = kernel.run_with(&mut vm).expect("runs");
        prop_assert_eq!(first, second);
    }

    /// The weaved path: a LARA-multiversioned Polybench clone (with the
    /// thread-count pragma woven in) runs bit-identically on both
    /// engines for arbitrary thread-count bindings, and the thread count
    /// does not perturb functional results (it is a pragma parameter,
    /// not a semantic input).
    #[test]
    fn weaved_clones_run_bit_identically(threads in 1i64..64) {
        let app = App::TwoMm;
        let src = polybench::source(app, Dataset::Mini);
        let tu = minic::parse(&src).expect("polybench parses");
        let mut weaver = lara::Weaver::new(tu);
        let versions = [lara::StaticVersion::new(["O2"], "close")];
        let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions)
            .expect("weaving succeeds");
        let (weaved_tu, _) = weaver.finish();
        let clone = &woven.version_functions[0];

        let dims: Vec<(&str, usize)> = app
            .dims(Dataset::Mini)
            .into_iter()
            .map(|(n, v)| (n, v.min(16)))
            .collect();
        let mut spec = SpecConfig::new().bind(lara::THREADS_VAR, threads);
        for &(name, v) in &dims {
            spec.set(name, v);
        }
        for arg in app.kernel_args(&dims) {
            spec = match arg {
                KernelArg::Int(v) => spec.arg(v),
                KernelArg::Double(v) => spec.arg(v),
            };
        }

        let interpreted = interpret(&weaved_tu, clone, &spec).expect("interpreter runs clone");
        let compiled = compile(&weaved_tu, clone, &spec).expect("clone compiles").run().expect("vm runs clone");
        prop_assert_eq!(interpreted, compiled);

        // The thread binding is configuration, not data: a different
        // binding yields the same functional result.
        let spec2 = spec.clone().bind(lara::THREADS_VAR, 1i64);
        let other = interpret(&weaved_tu, clone, &spec2).expect("interpreter runs clone");
        prop_assert_eq!(interpreted.checksum, other.checksum);
    }
}

/// Unbound pragma parameters fail identically on both engines, at
/// validation time, before any kernel work happens.
#[test]
fn unbound_pragma_parameter_errors_identically() {
    let app = App::Syrk;
    let src = polybench::source(app, Dataset::Mini);
    let tu = minic::parse(&src).unwrap();
    let mut weaver = lara::Weaver::new(tu);
    let versions = [lara::StaticVersion::new(["O2"], "close")];
    let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions).unwrap();
    let (weaved_tu, _) = weaver.finish();
    let clone = &woven.version_functions[0];

    // Dimensions bound, thread variable deliberately not.
    let mut spec = SpecConfig::new();
    for (name, v) in app.dims(Dataset::Mini) {
        spec.set(name, v.min(16));
    }
    for arg in app.kernel_args(&app.dims(Dataset::Mini)) {
        spec = match arg {
            KernelArg::Int(v) => spec.arg(v),
            KernelArg::Double(v) => spec.arg(v),
        };
    }
    let a = interpret(&weaved_tu, clone, &spec).unwrap_err();
    let b = compile(&weaved_tu, clone, &spec).map(|_| ()).unwrap_err();
    assert_eq!(a, b);
    assert!(
        matches!(
            &a,
            EngineError::UnboundPragmaParam { param, .. } if param == lara::THREADS_VAR
        ),
        "expected an unbound-pragma error, got: {a}"
    );
}
