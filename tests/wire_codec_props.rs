//! Property tests of the binary wire codec: **any** generated
//! [`WireMessage`] — every variant, arbitrary knob configurations and
//! arbitrary f64 *bit patterns* (subnormals, infinities, NaN payloads)
//! — must round-trip through `wire_to_bytes`/`wire_from_bytes`
//! bit-exactly. Bit-exactness is asserted on the *re-encoded frame*,
//! which covers NaN-carrying metric values that structural `==`
//! cannot compare, and structurally where `==` is meaningful.
//!
//! The companion compatibility property — decoding the committed JSON
//! goldens through the compat layer yields exactly the messages the
//! binary goldens decode to — is pinned in `tests/golden_wire.rs`
//! against the checked-in files.

use margot::{Knowledge, KnowledgeDelta, Metric, MetricValues, OperatingPoint};
use platform_sim::{BindingPolicy, CompilerOptions, KnobConfig, OptLevel};
use proptest::prelude::*;
use socrates::transport::{Observation, WireMessage};
use socrates::{delta_from_bytes, delta_to_bytes, wire_from_bytes, wire_to_bytes};

fn config_strategy() -> impl Strategy<Value = KnobConfig> {
    (0usize..4, 0u8..64, any::<u32>(), 0usize..2).prop_map(|(level, mask, tn, bp)| {
        KnobConfig::new(
            CompilerOptions::from_mask(OptLevel::ALL[level], mask),
            tn,
            BindingPolicy::ALL[bp],
        )
    })
}

/// Arbitrary f64 *bit patterns*: the codec ships raw IEEE-754 bits, so
/// the property space deliberately includes non-finite values and NaN
/// payloads that the JSON layer cannot represent.
fn value_strategy() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(f64::from_bits)
}

fn metrics_strategy() -> impl Strategy<Value = MetricValues> {
    prop::collection::vec(("\\PC{1,8}", value_strategy()), 0..4).prop_map(|pairs| {
        MetricValues::from_unvalidated(pairs.into_iter().map(|(name, v)| (Metric::custom(name), v)))
    })
}

fn point_strategy() -> impl Strategy<Value = OperatingPoint<KnobConfig>> {
    (config_strategy(), metrics_strategy())
        .prop_map(|(config, metrics)| OperatingPoint::new(config, metrics))
}

fn knowledge_strategy() -> impl Strategy<Value = Knowledge<KnobConfig>> {
    prop::collection::vec(point_strategy(), 0..4)
        .prop_map(|points| points.into_iter().collect::<Knowledge<_>>())
}

fn delta_strategy() -> impl Strategy<Value = KnowledgeDelta<KnobConfig>> {
    (
        any::<u64>(),
        any::<u64>(),
        prop::collection::vec((0usize..64, point_strategy()), 0..4),
    )
        .prop_map(|(from_epoch, to_epoch, changed)| KnowledgeDelta {
            from_epoch,
            to_epoch,
            changed,
        })
}

fn observation_strategy() -> impl Strategy<Value = Observation> {
    (
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        config_strategy(),
        metrics_strategy(),
    )
        .prop_map(|(origin, seq, round, config, observed)| Observation {
            origin,
            seq,
            round,
            config,
            observed,
        })
}

fn wire_strategy() -> impl Strategy<Value = WireMessage> {
    prop_oneof![
        any::<u32>().prop_map(|node| WireMessage::Join { node }),
        any::<u32>().prop_map(|node| WireMessage::Leave { node }),
        prop::collection::vec(observation_strategy(), 0..3)
            .prop_map(|ops| WireMessage::Ops { ops }),
        any::<u64>().prop_map(|count| WireMessage::Ack { count }),
        (0usize..16, delta_strategy())
            .prop_map(|(shard, delta)| WireMessage::Delta { shard, delta }),
        prop::collection::vec(any::<u64>(), 0..6)
            .prop_map(|versions| WireMessage::SyncRequest { versions }),
        (
            0usize..16,
            any::<u64>(),
            prop::collection::vec((0usize..64, point_strategy()), 0..3),
        )
            .prop_map(|(shard, version, points)| WireMessage::SyncResponse {
                shard,
                version,
                points,
            }),
        (
            prop::collection::vec((any::<u32>(), any::<u64>()), 0..4),
            any::<bool>(),
        )
            .prop_map(|(counts, reply)| WireMessage::Summary { counts, reply }),
        (
            knowledge_strategy(),
            prop::collection::vec(any::<u64>(), 0..6)
        )
            .prop_map(|(knowledge, versions)| WireMessage::Welcome {
                knowledge,
                versions,
            }),
        prop::collection::vec(observation_strategy(), 0..3)
            .prop_map(|ops| WireMessage::WelcomeLog { ops }),
    ]
}

/// `true` when every metric value in the message is finite, i.e. when
/// structural `==` is a meaningful round-trip check.
fn all_finite(msg: &WireMessage) -> bool {
    let mv_finite = |mv: &MetricValues| mv.iter().all(|(_, v)| v.is_finite());
    let point_finite = |p: &OperatingPoint<KnobConfig>| mv_finite(&p.metrics);
    match msg {
        WireMessage::Join { .. }
        | WireMessage::Leave { .. }
        | WireMessage::Ack { .. }
        | WireMessage::SyncRequest { .. }
        | WireMessage::Summary { .. } => true,
        WireMessage::Ops { ops } | WireMessage::WelcomeLog { ops } => {
            ops.iter().all(|o| mv_finite(&o.observed))
        }
        WireMessage::Delta { delta, .. } => delta.changed.iter().all(|(_, p)| point_finite(p)),
        WireMessage::SyncResponse { points, .. } => points.iter().all(|(_, p)| point_finite(p)),
        WireMessage::Welcome { knowledge, .. } => knowledge.points().iter().all(point_finite),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode → decode → encode is the identity on frames: every
    /// variant, every f64 bit pattern.
    #[test]
    fn every_wire_message_round_trips_bit_exactly(msg in wire_strategy()) {
        let bytes = wire_to_bytes(&msg).expect("encoding is total");
        let back = wire_from_bytes(&bytes).expect("own encoding decodes");
        let reencoded = wire_to_bytes(&back).expect("re-encoding is total");
        prop_assert_eq!(&reencoded, &bytes, "frame changed across a round-trip");
        if all_finite(&msg) {
            prop_assert_eq!(back, msg);
        }
    }

    /// Standalone delta frames round-trip the same way.
    #[test]
    fn every_delta_round_trips_bit_exactly(delta in delta_strategy()) {
        let bytes = delta_to_bytes(&delta).expect("encoding is total");
        let back = delta_from_bytes(&bytes).expect("own encoding decodes");
        let reencoded = delta_to_bytes(&back).expect("re-encoding is total");
        prop_assert_eq!(reencoded, bytes, "frame changed across a round-trip");
    }

    /// Truncating a valid frame anywhere must yield a decode error,
    /// never a panic or a silently different message.
    #[test]
    fn truncated_frames_are_rejected(msg in wire_strategy(), cut in any::<u64>()) {
        let bytes = wire_to_bytes(&msg).expect("encoding is total");
        let cut = (cut as usize) % bytes.len();
        prop_assert!(
            wire_from_bytes(&bytes[..cut]).is_err(),
            "truncated frame decoded"
        );
    }
}
