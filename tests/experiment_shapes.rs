//! Shape tests for the paper's experiments: these encode the qualitative
//! claims of Table I and Figures 3–5 as assertions, so a regression in
//! any layer (platform model, COBAYN, weaving, AS-RTM) that would change
//! the reproduced conclusions fails CI.

use margot::{AsRtm, Cmp, Constraint, Metric, Rank};
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, Toolchain};

fn quick() -> Toolchain {
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
}

// ---------- Table I ----------------------------------------------------

#[test]
fn table1_weaved_loc_is_order_of_magnitude_larger() {
    // Paper: average W-LOC (1353) ≈ 15x average O-LOC (92); per-app at
    // least ~5x. Ours must reproduce the order-of-magnitude blowup.
    let toolchain = quick();
    let mut ratios = Vec::new();
    for app in [App::TwoMm, App::Mvt, App::Seidel2d, App::Correlation] {
        let m = toolchain.enhance(app).unwrap().metrics;
        ratios.push(m.weaved_loc as f64 / m.original_loc as f64);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(avg > 5.0, "average W/O ratio {avg}");
}

#[test]
fn table1_bloat_varies_across_benchmarks() {
    // Paper: Bloat spans 1.91 (mvt) .. 10.46 (jacobi-2d): kernels differ.
    let toolchain = quick();
    let bloats: Vec<f64> = [App::TwoMm, App::Mvt, App::Correlation, App::Nussinov]
        .iter()
        .map(|&a| toolchain.enhance(a).unwrap().metrics.bloat())
        .collect();
    let min = bloats.iter().copied().fold(f64::INFINITY, f64::min);
    let max = bloats.iter().copied().fold(0.0f64, f64::max);
    assert!(max / min > 1.5, "bloat range too narrow: {bloats:?}");
}

// ---------- Figure 3 ---------------------------------------------------

#[test]
fn fig3_no_one_fits_all_configuration() {
    // The best-throughput configuration differs across apps, and the
    // normalized Pareto spans are wide.
    let toolchain = quick();
    let mut best_configs = std::collections::HashSet::new();
    for app in [App::TwoMm, App::Mvt, App::Seidel2d, App::Nussinov] {
        let e = toolchain.enhance(app).unwrap();
        let rtm = AsRtm::new(e.knowledge.clone(), Rank::maximize(Metric::throughput()));
        let best = rtm.best().unwrap().config.clone();
        best_configs.insert(format!("{best}"));
    }
    assert!(
        best_configs.len() >= 2,
        "a one-fits-all config would defeat the paper's premise: {best_configs:?}"
    );
}

#[test]
fn fig3_pareto_spans_are_wide() {
    let toolchain = quick();
    let e = toolchain.enhance(App::TwoMm).unwrap();
    let pareto = dse::power_throughput_pareto(&e.knowledge);
    let powers: Vec<f64> = pareto
        .points()
        .iter()
        .map(|p| p.metric(&Metric::power()).unwrap())
        .collect();
    let thrs: Vec<f64> = pareto
        .points()
        .iter()
        .map(|p| p.metric(&Metric::throughput()).unwrap())
        .collect();
    let span = |v: &[f64]| {
        v.iter().copied().fold(0.0f64, f64::max) / v.iter().copied().fold(f64::INFINITY, f64::min)
    };
    // Paper Fig. 3: normalized metrics spread between ~0.3 and ~2.5.
    assert!(span(&powers) > 1.5, "power span {:.2}", span(&powers));
    assert!(span(&thrs) > 3.0, "throughput span {:.2}", span(&thrs));
}

// ---------- Figure 4 ---------------------------------------------------

#[test]
fn fig4_exec_time_monotone_in_budget_and_knobs_nontrivial() {
    let toolchain = quick();
    let e = toolchain.enhance(App::TwoMm).unwrap();
    let mut rtm = AsRtm::new(e.knowledge.clone(), Rank::minimize(Metric::exec_time()));
    rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 45.0, 10));

    let mut last_time = f64::INFINITY;
    let mut compilers = std::collections::HashSet::new();
    let mut bindings = std::collections::HashSet::new();
    let mut threads = Vec::new();
    let mut budget = 45.0;
    while budget <= 140.0 {
        rtm.set_constraint_value(&Metric::power(), budget);
        let best = rtm.best().unwrap();
        let t = best.metric(&Metric::exec_time()).unwrap();
        assert!(
            t <= last_time + 1e-12,
            "exec time must not increase with budget ({budget} W)"
        );
        last_time = t;
        compilers.insert(best.config.co.clone());
        bindings.insert(best.config.bp);
        threads.push(best.config.tn);
        budget += 5.0;
    }
    // "No clear trend on the selected software-knobs": several distinct
    // compiler configs appear along the sweep, and threads grow overall.
    assert!(
        compilers.len() >= 3,
        "only {} compiler configs",
        compilers.len()
    );
    assert!(threads.last().unwrap() > threads.first().unwrap());
}

// ---------- Figure 5 ---------------------------------------------------

#[test]
fn fig5_requirement_switch_and_recovery() {
    let toolchain = quick();
    let e = toolchain.enhance(App::TwoMm).unwrap();
    let mut app = AdaptiveApplication::new(e, Rank::throughput_per_watt2(), 2018);

    app.run_for(5.0);
    let phase1: Vec<_> = app.trace().to_vec();
    app.set_rank(Rank::maximize(Metric::throughput()));
    app.run_for(5.0);
    let phase2: Vec<_> = app.trace()[phase1.len()..].to_vec();
    app.set_rank(Rank::throughput_per_watt2());
    app.run_for(5.0);
    let phase3: Vec<_> = app.trace()[phase1.len() + phase2.len()..].to_vec();

    let mean_power =
        |ts: &[socrates::TraceSample]| ts.iter().map(|s| s.power_w).sum::<f64>() / ts.len() as f64;
    let p1 = mean_power(&phase1);
    let p2 = mean_power(&phase2);
    let p3 = mean_power(&phase3);
    // Performance phase is hotter; the energy phase recovers.
    assert!(
        p2 > p1 * 1.15,
        "performance phase must raise power: {p1} -> {p2}"
    );
    assert!(
        (p3 / p1 - 1.0).abs() < 0.1,
        "energy phase must recover: {p1} vs {p3}"
    );

    // Thread counts move with the policy (paper: 5..35 swing).
    let mean_tn = |ts: &[socrates::TraceSample]| {
        ts.iter().map(|s| f64::from(s.config.tn)).sum::<f64>() / ts.len() as f64
    };
    assert!(mean_tn(&phase2) > mean_tn(&phase1) + 4.0);
}

#[test]
fn fig5_policies_pick_different_compiler_versions() {
    // In the paper's trace the CF label changes with the policy.
    let toolchain = quick();
    let e = toolchain.enhance(App::TwoMm).unwrap();
    let mut app = AdaptiveApplication::new(e, Rank::throughput_per_watt2(), 99);
    app.run_for(3.0);
    let v1 = app.trace().last().unwrap().version;
    app.set_rank(Rank::maximize(Metric::throughput()));
    app.run_for(3.0);
    let v2 = app.trace().last().unwrap().version;
    assert_ne!(v1, v2, "both policies picked version {v1}");
}
