//! Property-based tests of the autotuning stack: AS-RTM selection
//! invariants over randomly generated knowledge bases, Pareto-filter
//! laws, and platform-model monotonicity properties.

use margot::{AsRtm, Cmp, Constraint, Knowledge, Metric, MetricValues, OperatingPoint, Rank};
use platform_sim::{
    BindingPolicy, CompilerOptions, KnobConfig, Machine, OptLevel, WorkloadProfile,
};
use proptest::prelude::*;

/// Strategy: a synthetic operating point with coupled time/power.
fn op_strategy() -> impl Strategy<Value = OperatingPoint<u32>> {
    (1u32..10_000, 0.01f64..10.0, 40.0f64..150.0).prop_map(|(cfg, time, power)| {
        OperatingPoint::new(
            cfg,
            MetricValues::new()
                .with(Metric::exec_time(), time)
                .with(Metric::power(), power)
                .with(Metric::throughput(), 1.0 / time)
                .with(Metric::energy(), time * power),
        )
    })
}

fn knowledge_strategy() -> impl Strategy<Value = Knowledge<u32>> {
    prop::collection::vec(op_strategy(), 1..60)
        .prop_map(|ops| ops.into_iter().collect::<Knowledge<u32>>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If any point satisfies the constraint, the selected point must
    /// satisfy it too, and must be rank-optimal among satisfiers.
    #[test]
    fn selection_is_constrained_argmin(kb in knowledge_strategy(), budget in 45.0f64..150.0) {
        let mut rtm = AsRtm::new(kb.clone(), Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, budget, 10));
        let best = rtm.best().expect("non-empty knowledge");
        let feasible: Vec<&OperatingPoint<u32>> = kb
            .points()
            .iter()
            .filter(|p| p.metric(&Metric::power()).unwrap() <= budget)
            .collect();
        if feasible.is_empty() {
            // Fallback: closest violation — must minimise power distance.
            let min_power = kb
                .points()
                .iter()
                .map(|p| p.metric(&Metric::power()).unwrap())
                .fold(f64::INFINITY, f64::min);
            prop_assert!(
                (best.metric(&Metric::power()).unwrap() - min_power).abs() < 1e-9
            );
        } else {
            prop_assert!(best.metric(&Metric::power()).unwrap() <= budget);
            let best_time = feasible
                .iter()
                .map(|p| p.metric(&Metric::exec_time()).unwrap())
                .fold(f64::INFINITY, f64::min);
            prop_assert!((best.metric(&Metric::exec_time()).unwrap() - best_time).abs() < 1e-12);
        }
    }

    /// Relaxing the budget can only improve (never worsen) the achieved
    /// execution time.
    #[test]
    fn looser_budget_is_never_worse(kb in knowledge_strategy(), b1 in 45.0f64..150.0, extra in 0.0f64..50.0) {
        let mut rtm = AsRtm::new(kb, Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, b1, 10));
        let t1 = rtm.best().unwrap().metric(&Metric::exec_time()).unwrap();
        rtm.set_constraint_value(&Metric::power(), b1 + extra);
        let t2 = rtm.best().unwrap().metric(&Metric::exec_time()).unwrap();
        prop_assert!(t2 <= t1 + 1e-12, "budget {b1}+{extra}: {t2} > {t1}");
    }

    /// The Pareto frontier is a subset containing the per-objective
    /// optima, and no frontier point dominates another.
    #[test]
    fn pareto_frontier_laws(kb in knowledge_strategy()) {
        let objectives = [(Metric::throughput(), true), (Metric::power(), false)];
        let frontier = kb.pareto_filter(&objectives);
        prop_assert!(!frontier.is_empty());
        prop_assert!(frontier.len() <= kb.len());

        // Per-objective optima survive.
        let max_thr = kb
            .points()
            .iter()
            .map(|p| p.metric(&Metric::throughput()).unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(frontier
            .points()
            .iter()
            .any(|p| p.metric(&Metric::throughput()).unwrap() == max_thr));
        let min_power = kb
            .points()
            .iter()
            .map(|p| p.metric(&Metric::power()).unwrap())
            .fold(f64::INFINITY, f64::min);
        prop_assert!(frontier
            .points()
            .iter()
            .any(|p| p.metric(&Metric::power()).unwrap() == min_power));

        // Mutual non-domination.
        for a in frontier.points() {
            for b in frontier.points() {
                let strictly_better = b.metric(&Metric::throughput()).unwrap()
                    > a.metric(&Metric::throughput()).unwrap()
                    && b.metric(&Metric::power()).unwrap()
                        < a.metric(&Metric::power()).unwrap();
                prop_assert!(!strictly_better);
            }
        }
    }

    /// Pareto filtering is idempotent.
    #[test]
    fn pareto_filter_is_idempotent(kb in knowledge_strategy()) {
        let objectives = [(Metric::throughput(), true), (Metric::power(), false)];
        let once = kb.pareto_filter(&objectives);
        let twice = once.pareto_filter(&objectives);
        prop_assert_eq!(once.len(), twice.len());
    }

    /// Platform model: expected execution time decreases (weakly) in
    /// thread count for an embarrassingly parallel compute-bound kernel,
    /// and power increases (weakly).
    #[test]
    fn platform_monotonicity_in_threads(tn in 1u32..32) {
        let machine = Machine::xeon_e5_2630_v3(0).noiseless();
        let w = WorkloadProfile::builder("prop")
            .flops(5e9)
            .bytes(1e8)
            .parallel_fraction(1.0)
            .contention(0.0)
            .build();
        let cfg = |t| KnobConfig::new(CompilerOptions::level(OptLevel::O2), t, BindingPolicy::Close);
        let a = machine.expected(&w, &cfg(tn));
        let b = machine.expected(&w, &cfg(tn + 1));
        prop_assert!(b.time_s <= a.time_s * 1.001, "tn={tn}: {} -> {}", a.time_s, b.time_s);
        prop_assert!(b.power_w >= a.power_w * 0.999, "tn={tn}: {} -> {}", a.power_w, b.power_w);
    }

    /// Platform model: throughput-per-watt² evaluation agrees between
    /// Execution helpers and manual math for any config.
    #[test]
    fn execution_derived_metrics_consistent(tn in 1u32..=32, spread in any::<bool>()) {
        let machine = Machine::xeon_e5_2630_v3(1).noiseless();
        let w = WorkloadProfile::builder("prop2").flops(1e9).bytes(2e8).build();
        let bp = if spread { BindingPolicy::Spread } else { BindingPolicy::Close };
        let cfg = KnobConfig::new(CompilerOptions::level(OptLevel::O3), tn, bp);
        let e = machine.expected(&w, &cfg);
        prop_assert!((e.throughput() - 1.0 / e.time_s).abs() < 1e-12);
        let manual = (1.0 / e.time_s) / (e.power_w * e.power_w);
        prop_assert!((e.throughput_per_watt2() - manual).abs() < 1e-15);
        prop_assert!((e.energy_j - e.time_s * e.power_w).abs() < 1e-9);
    }
}

#[test]
fn feedback_only_rescales_never_reorders_equal_ratios() {
    // With a uniform adjustment on exec_time, the argmin must not change.
    let kb: Knowledge<u32> = (1..20u32)
        .map(|i| {
            OperatingPoint::new(
                i,
                MetricValues::new()
                    .with(Metric::exec_time(), f64::from(i) * 0.1)
                    .with(Metric::power(), 150.0 - f64::from(i)),
            )
        })
        .collect();
    let mut rtm = AsRtm::new(kb, Rank::minimize(Metric::exec_time()));
    let before = rtm.best().unwrap().config;
    rtm.set_adjustment(Metric::exec_time(), 2.0);
    let after = rtm.best().unwrap().config;
    assert_eq!(before, after);
}
