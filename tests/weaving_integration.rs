//! Integration tests of the weaving pipeline over all 12 real benchmark
//! sources — the Table I machinery.

use lara::{autotuner, multiversioning, StaticVersion, Weaver};
use minic::visit::{walk_stmt, walk_tu, Visitor};
use polybench::{App, Dataset};

fn paper_versions() -> Vec<StaticVersion> {
    // 8 CO × 2 BP, as the experiments use.
    let cos: [&[&str]; 8] = [
        &["Os"],
        &["O1"],
        &["O2"],
        &["O3"],
        &[
            "O3",
            "no-guess-branch-probability",
            "no-ivopts",
            "no-tree-loop-optimize",
            "no-inline-functions",
        ],
        &["O2", "no-inline-functions", "unroll-all-loops"],
        &[
            "O2",
            "unsafe-math-optimizations",
            "no-ivopts",
            "no-tree-loop-optimize",
            "unroll-all-loops",
        ],
        &["O2", "no-inline-functions"],
    ];
    let mut v = Vec::new();
    for co in cos {
        for bp in ["close", "spread"] {
            v.push(StaticVersion::new(co.iter().copied(), bp));
        }
    }
    v
}

fn weave(
    app: App,
) -> (
    minic::TranslationUnit,
    lara::Multiversioned,
    lara::WeavingMetrics,
) {
    let tu = minic::parse(&polybench::source(app, Dataset::Large)).unwrap();
    let mut w = Weaver::new(tu);
    let mv = multiversioning(&mut w, &app.kernel_name(), &paper_versions()).unwrap();
    autotuner(&mut w, &mv, "main").unwrap();
    let (weaved, metrics) = w.finish();
    (weaved, mv, metrics)
}

#[test]
fn all_apps_weave_into_valid_c() {
    for app in App::ALL {
        let (weaved, _, _) = weave(app);
        let printed = minic::print(&weaved);
        let reparsed =
            minic::parse(&printed).unwrap_or_else(|e| panic!("{app}: weaved C invalid: {e}"));
        assert_eq!(reparsed, weaved, "{app}: print/parse disagreement");
    }
}

#[test]
fn table_one_invariants_hold_for_all_apps() {
    for app in App::ALL {
        let (_, _, m) = weave(app);
        assert!(m.weaved_loc > m.original_loc * 4, "{app}: {m}");
        assert!(m.attributes > m.actions / 2, "{app}: {m}");
        assert!(m.bloat() > 1.0, "{app}: {m}");
        assert_eq!(m.delta_loc(), m.weaved_loc - m.original_loc, "{app}");
    }
}

#[test]
fn sixteen_clones_each_with_gcc_pragma() {
    for app in [App::TwoMm, App::Nussinov, App::Seidel2d] {
        let (weaved, mv, _) = weave(app);
        assert_eq!(mv.version_functions.len(), 16, "{app}");
        for vf in &mv.version_functions {
            let f = weaved.function(vf).unwrap_or_else(|| panic!("{app}: {vf}"));
            assert_eq!(f.pragmas.len(), 1, "{app}/{vf}");
            let flags = f.pragmas[0].as_gcc_optimize().unwrap();
            assert!(!flags.is_empty(), "{app}/{vf}");
        }
    }
}

#[test]
fn omp_pragmas_reference_runtime_thread_variable() {
    struct OmpCheck {
        found: usize,
        ok: bool,
    }
    impl Visitor for OmpCheck {
        fn visit_pragma(&mut self, p: &minic::Pragma) {
            if let Some(omp) = p.as_omp() {
                self.found += 1;
                self.ok &= omp.num_threads() == Some(lara::THREADS_VAR)
                    && matches!(omp.proc_bind(), Some("close") | Some("spread"));
            }
        }
        fn visit_stmt(&mut self, s: &minic::Stmt) {
            walk_stmt(self, s);
        }
    }
    for app in App::ALL {
        let (weaved, _, _) = weave(app);
        let mut v = OmpCheck { found: 0, ok: true };
        walk_tu(&mut v, &weaved);
        assert!(v.found >= 16, "{app}: only {} OMP pragmas", v.found);
        assert!(v.ok, "{app}: malformed OMP clause");
    }
}

#[test]
fn wrapper_covers_every_version() {
    let (weaved, mv, _) = weave(App::Mvt);
    let printed = minic::print(&weaved);
    for i in 0..mv.version_functions.len() {
        assert!(
            printed.contains(&format!("if ({} == {i})", mv.version_var)),
            "missing dispatch arm {i}"
        );
    }
}

#[test]
fn original_kernel_remains_untouched() {
    // The weaver adds code; the original kernel body must survive
    // verbatim so behaviour is unchanged when version 0 dispatches.
    for app in [App::Atax, App::Doitgen] {
        let original = minic::parse(&polybench::source(app, Dataset::Large)).unwrap();
        let (weaved, _, _) = weave(app);
        let orig_kernel = original.function(&app.kernel_name()).unwrap();
        let weaved_kernel = weaved.function(&app.kernel_name()).unwrap();
        assert_eq!(orig_kernel.body, weaved_kernel.body, "{app}");
    }
}

#[test]
fn main_is_instrumented_in_margot_order() {
    for app in App::ALL {
        let (weaved, mv, _) = weave(app);
        let printed = minic::print(&weaved);
        let pos = |needle: &str| {
            printed
                .find(needle)
                .unwrap_or_else(|| panic!("{app}: `{needle}` missing"))
        };
        let init = pos("margot_init()");
        let update = pos("margot_update(");
        let start = pos("margot_start_monitor()");
        let stop = pos("margot_stop_monitor()");
        let log = pos("margot_log()");
        assert!(init < update, "{app}");
        assert!(update < start, "{app}");
        // The wrapper *definition* appears earlier in the file; the call
        // site is the first occurrence after margot_start_monitor().
        let call_site = printed[start..]
            .find(&format!("{}(", mv.wrapper))
            .map(|i| i + start)
            .unwrap_or_else(|| panic!("{app}: instrumented call site missing"));
        assert!(start < call_site && call_site < stop && stop < log, "{app}");
        // And the wrapper definition precedes main (C visibility).
        let main_pos = pos("int main(");
        let def_pos = pos(&format!("{}(", mv.wrapper));
        assert!(def_pos < main_pos, "{app}: wrapper defined after main");
    }
}

#[test]
fn weaving_is_idempotent_per_input() {
    // Weaving the same source twice gives identical output and metrics.
    let (w1, _, m1) = weave(App::Syrk);
    let (w2, _, m2) = weave(App::Syrk);
    assert_eq!(w1, w2);
    assert_eq!(m1, m2);
}
