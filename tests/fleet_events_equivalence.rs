//! Equivalence and determinism guarantees of the event-driven fleet
//! runtime:
//!
//! 1. **Replay**: any seeded arrival/retire/publish schedule — curve
//!    shape, rate and churn all proptest-generated — replays
//!    bit-identically from its seed (same event digest, same stats,
//!    same learned knowledge).
//! 2. **Churn**: instance handles are never reused, however heavy the
//!    join/retire traffic, while the slot pool stays bounded by the
//!    peak live count.
//! 3. **Lockstep**: the unified [`FleetRuntime`] surface over
//!    `Schedule::Lockstep` is bit-identical to the legacy
//!    `step_round`/`run_for` loop on **every** polybench application.
//!
//! CI re-runs this file under forced `RAYON_NUM_THREADS` values
//! (1, 2, 8), so the identities hold at any worker count.

use margot::Rank;
use polybench::{App, Dataset};
use proptest::prelude::*;
use socrates::{
    trace_digest, EnhancedApp, EventFleet, Fleet, FleetConfig, FleetRuntime, Schedule, Toolchain,
    WorkloadCurve, WorkloadTrace,
};
use std::collections::HashSet;
use std::sync::OnceLock;

fn quick_enhanced(app: App) -> EnhancedApp {
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(app)
    .expect("toolchain")
}

/// The enhanced app shared across proptest cases (enhancing once, not
/// per case, keeps the suite seconds, not minutes).
fn enhanced() -> &'static EnhancedApp {
    static ENHANCED: OnceLock<EnhancedApp> = OnceLock::new();
    ENHANCED.get_or_init(|| quick_enhanced(App::TwoMm))
}

fn event_config() -> FleetConfig {
    FleetConfig::builder()
        .schedule(Schedule::EventDriven)
        .build()
        .expect("valid fleet config")
}

#[derive(Debug, Clone)]
struct TraceCase {
    seed: u64,
    horizon_s: f64,
    base_rate_hz: f64,
    mean_lifetime_s: f64,
    curve: WorkloadCurve,
    budget_w: Option<f64>,
}

fn curve_strategy() -> impl Strategy<Value = WorkloadCurve> {
    prop_oneof![
        Just(WorkloadCurve::Constant),
        (2.0f64..20.0, 0.0f64..1.0).prop_map(|(period_s, amplitude)| WorkloadCurve::Diurnal {
            period_s,
            amplitude,
        }),
        (0.0f64..6.0, 0.5f64..4.0, 1.0f64..6.0).prop_map(|(at_s, duration_s, multiplier)| {
            WorkloadCurve::FlashCrowd {
                at_s,
                duration_s,
                multiplier,
            }
        }),
    ]
}

fn trace_case_strategy() -> impl Strategy<Value = TraceCase> {
    (
        any::<u64>(),
        3.0f64..8.0,
        0.5f64..3.0,
        0.5f64..5.0,
        curve_strategy(),
        prop::option::of(100.0f64..1000.0),
    )
        .prop_map(
            |(seed, horizon_s, base_rate_hz, mean_lifetime_s, curve, budget_w)| TraceCase {
                seed,
                horizon_s,
                base_rate_hz,
                mean_lifetime_s,
                curve,
                budget_w,
            },
        )
}

/// One full event run over the case's workload trace; returns every
/// observable the replay property compares.
fn run_case(case: &TraceCase) -> (u64, u64, socrates::EventFleetStats, Option<u64>) {
    let trace = WorkloadTrace {
        seed: case.seed,
        horizon_s: case.horizon_s,
        base_rate_hz: case.base_rate_hz,
        mean_lifetime_s: case.mean_lifetime_s,
        curve: case.curve,
    };
    let mut fleet = EventFleet::new(event_config()).expect("valid fleet config");
    fleet.set_power_budget(case.budget_w);
    fleet
        .drive(&trace, enhanced(), &Rank::throughput_per_watt2())
        .expect("valid trace");
    fleet.run_until(case.horizon_s + 2.0);
    (
        fleet.event_digest(),
        fleet.events_processed(),
        fleet.stats(),
        fleet.knowledge_epoch(App::TwoMm),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Whatever the schedule — curve shape, arrival rate, lifetimes,
    /// power budget, churn — an event run is a pure function of its
    /// seed: re-running the same trace reproduces the same event
    /// stream bit for bit.
    #[test]
    fn seeded_event_schedules_replay_bit_identically(case in trace_case_strategy()) {
        let first = run_case(&case);
        let second = run_case(&case);
        prop_assert_eq!(&first, &second);
        // The digest folds every event's action, time and id — a
        // single reordered or perturbed event would flip it.
        prop_assert!(first.1 > 0, "the trace scheduled no events");
    }
}

/// Replays a churn-heavy join/retire trace against the sparse pool:
/// every handle handed out is distinct forever (a retired instance's
/// handle never aliases a later joiner), while the slot pool itself
/// stays bounded by the peak live count. Regression test for the
/// id-reuse bug class the generational slab exists to kill.
#[test]
fn churn_replay_never_reuses_handles() {
    let enhanced = enhanced();
    let rank = Rank::throughput_per_watt2();
    let mut fleet = EventFleet::new(event_config()).expect("valid fleet config");

    let mut issued = HashSet::new();
    let mut retired = Vec::new();
    let mut live = Vec::new();
    let mut peak_live = 0usize;
    // 12 waves of join/run/retire churn, retiring from alternating
    // ends so slot reuse interleaves with fresh allocation.
    for wave in 0..12u64 {
        let joiners = 2 + (wave % 3) as usize;
        for id in fleet.spawn(enhanced, &rank, 42, joiners) {
            assert!(
                issued.insert(id.raw()),
                "handle {id} was issued twice (wave {wave})"
            );
            live.push(id);
        }
        peak_live = peak_live.max(live.len());
        fleet.run_until(fleet.virtual_now_s() + 0.5);
        let drop_n = (wave % 2 + 1) as usize;
        for _ in 0..drop_n.min(live.len()) {
            let id = if wave % 2 == 0 {
                live.remove(0)
            } else {
                live.pop().expect("non-empty")
            };
            assert!(fleet.retire(id), "live handle {id} must retire");
            retired.push(id);
        }
        // Stale handles stay dead forever: re-retiring is a no-op,
        // and no stale handle ever reports live again.
        for id in &retired {
            assert!(!fleet.is_live(*id), "retired handle {id} came back");
            assert!(!fleet.retire(*id), "stale retire of {id} claimed success");
        }
    }
    let stats = fleet.stats();
    assert_eq!(stats.spawned as usize, issued.len());
    assert_eq!(stats.retired as usize, retired.len());
    assert!(
        stats.slots <= peak_live,
        "slot pool grew past the peak live count: {} slots > {} peak",
        stats.slots,
        peak_live
    );
    assert!(
        stats.slots < issued.len(),
        "no slot was ever reused across {} spawns",
        issued.len()
    );
}

/// Drives the legacy deprecated round loop for comparison; isolated in
/// one function so the rest of the suite stays deprecation-clean.
#[allow(deprecated)]
fn legacy_run(enhanced: &EnhancedApp, horizon_s: f64) -> Vec<u64> {
    let mut fleet = Fleet::new(FleetConfig::default()).expect("valid fleet config");
    fleet.spawn(enhanced, &Rank::throughput_per_watt2(), 2018, 3);
    fleet.set_power_budget(Some(3.0 * 90.0));
    fleet.run_for(horizon_s);
    (0..3).map(|id| trace_digest(&fleet.trace(id))).collect()
}

fn unified_run(enhanced: &EnhancedApp, horizon_s: f64) -> Vec<u64> {
    let mut fleet = Fleet::new(FleetConfig::default()).expect("valid fleet config");
    fleet.spawn(enhanced, &Rank::throughput_per_watt2(), 2018, 3);
    fleet.set_power_budget(Some(3.0 * 90.0));
    fleet.run_until(horizon_s);
    (0..3).map(|id| trace_digest(&fleet.trace(id))).collect()
}

/// `Schedule::Lockstep` under the unified [`FleetRuntime`] surface is
/// the legacy round loop, bit for bit, on every polybench application
/// — the compatibility contract that lets the deprecated surface go
/// away without anyone noticing.
#[test]
fn lockstep_runtime_matches_legacy_step_round_on_all_apps() {
    for app in App::ALL {
        let enhanced = quick_enhanced(app);
        assert_eq!(
            legacy_run(&enhanced, 1.5),
            unified_run(&enhanced, 1.5),
            "{app:?}: unified FleetRuntime trace != legacy step_round trace"
        );
    }
}
