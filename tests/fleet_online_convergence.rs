//! The ISSUE 3 acceptance scenario: a fleet of 8 instances sharing
//! online knowledge must converge to a **better-or-equal**
//! energy/throughput operating point than frozen design-time knowledge
//! under deployment drift (the machine running hotter than profiled).
//!
//! Frozen knowledge cannot recover here by construction: the drift is
//! non-uniform across operating points, and a uniform per-metric
//! feedback ratio never re-orders points under the geometric Thr/W²
//! rank — the stale argmax stays selected. The online fleet sweeps the
//! space cooperatively and re-ranks on true observations.
//! `fleet_bench` reports the full numbers in BENCH.md.

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::Rank;
use polybench::{App, Dataset};
use socrates::{Fleet, FleetConfig, Toolchain, TraceSample};

const DRIFT_FACTOR: f64 = 1.6;
const HORIZON_S: f64 = 150.0;
/// The analysis-pruned fleet gets a longer horizon: static pruning is
/// computed on the *design-time* platform, so under drift a point it
/// skipped can turn out relevant and must be rediscovered organically
/// (through AS-RTM selection) rather than via the cooperative sweep —
/// slightly slower, by design never blocked (pruning only shrinks the
/// schedule, never the knowledge).
const PRUNED_HORIZON_S: f64 = 250.0;
const FINAL_WINDOW_S: f64 = 50.0;
const INSTANCES: usize = 8;

/// Fleet-wide Thr/W² over the final window, planned samples only.
fn final_window_efficiency_at(fleet: &Fleet, horizon_s: f64) -> f64 {
    let samples: Vec<TraceSample> = (0..INSTANCES)
        .flat_map(|id| fleet.trace(id))
        .filter(|s| s.t_start_s >= horizon_s - FINAL_WINDOW_S && !s.forced)
        .collect();
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let mean_power = samples.iter().map(|s| s.power_w).sum::<f64>() / n;
    let mean_exec = samples.iter().map(|s| s.time_s).sum::<f64>() / n;
    (1.0 / mean_exec) / (mean_power * mean_power)
}

#[test]
fn online_fleet_beats_frozen_knowledge_under_deployment_drift() {
    let enhanced = Toolchain {
        dataset: Dataset::Large,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance 2mm");
    let drifted = enhanced.platform.hotter(DRIFT_FACTOR);

    let mut efficiency = Vec::new();
    for share_knowledge in [true, false] {
        let mut fleet = Fleet::new(FleetConfig {
            share_knowledge,
            ..FleetConfig::default()
        })
        .expect("valid fleet config");
        fleet.spawn_on(
            &enhanced,
            &Rank::throughput_per_watt2(),
            &drifted.machine(7),
            INSTANCES,
        );
        fleet.run_for(HORIZON_S);
        if share_knowledge {
            let (covered, total) = fleet.exploration_coverage(App::TwoMm).unwrap();
            assert_eq!(
                covered, total,
                "the cooperative sweep must cover the whole design space"
            );
        }
        efficiency.push(final_window_efficiency_at(&fleet, HORIZON_S));
    }
    let (online, frozen) = (efficiency[0], efficiency[1]);
    assert!(
        online >= frozen * 0.995,
        "online fleet must reach a better-or-equal operating point: \
         online {online:.4e} vs frozen {frozen:.4e} Thr/W²"
    );
}

/// The ISSUE 9 regression: switching on analysis-driven DSE pruning
/// (the static analyzer drops statically-dominated points from the
/// cooperative sweep) must not cost the fleet its convergence — the
/// pruned online fleet still beats frozen design-time knowledge under
/// the same drift, while sweeping a strictly smaller schedule.
#[test]
fn analysis_pruned_fleet_still_converges_under_drift() {
    let enhanced = Toolchain {
        dataset: Dataset::Large,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance 2mm");
    let drifted = enhanced.platform.hotter(DRIFT_FACTOR);

    let mut efficiency = Vec::new();
    for share_knowledge in [true, false] {
        let mut fleet = Fleet::new(FleetConfig {
            share_knowledge,
            analysis_prune: true,
            ..FleetConfig::default()
        })
        .expect("valid fleet config");
        fleet.spawn_on(
            &enhanced,
            &Rank::throughput_per_watt2(),
            &drifted.machine(7),
            INSTANCES,
        );
        fleet.run_for(PRUNED_HORIZON_S);
        if share_knowledge {
            let stats = fleet.stats();
            assert!(
                stats.schedule_pruned_dominated > 0,
                "pruning must actually shrink the sweep"
            );
            assert_eq!(stats.schedule_pruned_infeasible, 0);
            let (covered, total) = fleet.exploration_coverage(App::TwoMm).unwrap();
            assert_eq!(
                covered, total,
                "the cooperative sweep must cover the pruned schedule"
            );
            assert_eq!(
                total + stats.schedule_pruned_dominated as usize,
                enhanced.knowledge.len(),
                "schedule + pruned points must account for the design space"
            );
        }
        efficiency.push(final_window_efficiency_at(&fleet, PRUNED_HORIZON_S));
    }
    let (online, frozen) = (efficiency[0], efficiency[1]);
    assert!(
        online >= frozen * 0.995,
        "pruned online fleet must reach a better-or-equal operating point: \
         online {online:.4e} vs frozen {frozen:.4e} Thr/W²"
    );
}
