//! End-to-end integration tests: the full SOCRATES pipeline from C
//! source to adaptive execution, across several benchmarks.

use margot::{Cmp, Constraint, Metric, Rank};
use polybench::{App, Dataset};
use socrates::{AdaptiveApplication, Toolchain};

fn quick() -> Toolchain {
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
}

#[test]
fn pipeline_runs_for_every_benchmark() {
    // Batch enhancement over the whole suite: one shared artifact
    // store, the COBAYN corpus built once for all 12 targets.
    let toolchain = quick();
    let enhanced = toolchain
        .enhance_all(&App::ALL)
        .unwrap_or_else(|err| panic!("{err}"));
    assert_eq!(enhanced.len(), App::ALL.len());
    for e in &enhanced {
        let app = e.app;
        assert!(!e.knowledge.is_empty(), "{app}: empty knowledge");
        assert_eq!(
            e.multiversioned.version_functions.len(),
            e.versions.len(),
            "{app}: clone count mismatch"
        );
        // Weaved program must be valid C and still contain main.
        let printed = minic::print(&e.weaved);
        let reparsed = minic::parse(&printed).unwrap_or_else(|err| panic!("{app}: {err}"));
        assert!(reparsed.function("main").is_some(), "{app}");
    }
}

#[test]
fn adaptive_execution_respects_power_budget_on_three_apps() {
    let toolchain = quick();
    for app_id in [App::TwoMm, App::Jacobi2d, App::Syrk] {
        let enhanced = toolchain.enhance(app_id).unwrap();
        let mut app = AdaptiveApplication::new(enhanced, Rank::minimize(Metric::exec_time()), 77);
        app.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 90.0, 10));
        app.run_for(2.0);
        for s in app.trace() {
            assert!(
                s.power_w < 90.0 * 1.15,
                "{app_id}: {:.1} W exceeds budget at t={:.2}",
                s.power_w,
                s.t_start_s
            );
        }
    }
}

#[test]
fn performance_policy_beats_efficiency_policy_on_speed() {
    let toolchain = quick();
    let enhanced = toolchain.enhance(App::Doitgen).unwrap();

    let mut efficient = AdaptiveApplication::new(enhanced.clone(), Rank::throughput_per_watt2(), 5);
    efficient.run_for(2.0);
    let mut fast = AdaptiveApplication::new(enhanced, Rank::maximize(Metric::throughput()), 5);
    fast.run_for(2.0);

    let mean = |app: &AdaptiveApplication, f: &dyn Fn(&socrates::TraceSample) -> f64| {
        let t = app.trace();
        t.iter().map(f).sum::<f64>() / t.len() as f64
    };
    assert!(
        mean(&fast, &|s| s.time_s) < mean(&efficient, &|s| s.time_s),
        "throughput policy must be faster"
    );
    assert!(
        mean(&fast, &|s| s.power_w) > mean(&efficient, &|s| s.power_w),
        "throughput policy must be hungrier"
    );
    // And the efficiency policy must actually win on Thr/W².
    let eff_metric = |app: &AdaptiveApplication| {
        let t = app.trace();
        t.iter()
            .map(|s| (1.0 / s.time_s) / (s.power_w * s.power_w))
            .sum::<f64>()
            / t.len() as f64
    };
    assert!(eff_metric(&efficient) > eff_metric(&fast));
}

#[test]
fn energy_accounting_is_consistent_with_trace() {
    let toolchain = quick();
    let enhanced = toolchain.enhance(App::Atax).unwrap();
    let mut app = AdaptiveApplication::new(enhanced, Rank::maximize(Metric::throughput()), 3);
    app.run_for(1.0);
    let sum: f64 = app.trace().iter().map(|s| s.time_s * s.power_w).sum();
    assert!((app.energy_j() - sum).abs() < 1e-6);
    let total_time: f64 = app.trace().iter().map(|s| s.time_s).sum();
    assert!((app.now_s() - total_time).abs() < 1e-9);
}

#[test]
fn different_seeds_same_selection_policy() {
    // Noise changes observations, not the policy: the dominant selected
    // configuration must agree across seeds.
    let toolchain = quick();
    let enhanced = toolchain.enhance(App::Gemver).unwrap();
    let dominant = |seed: u64| {
        let mut app =
            AdaptiveApplication::new(enhanced.clone(), Rank::maximize(Metric::throughput()), seed);
        app.run_for(2.0);
        let mut counts = std::collections::HashMap::new();
        for s in app.trace() {
            *counts.entry(s.version).or_insert(0usize) += 1;
        }
        counts.into_iter().max_by_key(|(_, c)| *c).unwrap().0
    };
    assert_eq!(dominant(1), dominant(999));
}

#[test]
fn monitors_converge_to_observed_behaviour() {
    let toolchain = quick();
    let enhanced = toolchain.enhance(App::Syr2k).unwrap();
    let mut app = AdaptiveApplication::new(enhanced, Rank::maximize(Metric::throughput()), 11);
    app.run_for(2.0);
    let manager = app.manager_mut();
    let mon = manager.monitor(&Metric::exec_time()).expect("registered");
    assert!(mon.total_observations() > 10);
    let mean = mon.mean().expect("has data");
    let expected = manager
        .current()
        .expect("applied")
        .metric(&Metric::exec_time())
        .expect("profiled");
    // Observed matches design-time expectation within noise bounds.
    assert!(
        (mean / expected - 1.0).abs() < 0.1,
        "mean {mean} vs expected {expected}"
    );
}
