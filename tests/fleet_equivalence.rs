//! Fleet determinism: stepping a fleet over rayon must be
//! **bit-identical** to the sequential reference at any thread count.
//!
//! Mirrors `tests/pipeline_equivalence.rs`: the parallel phase of a
//! round only *reads* shared state; all mutation (observation merge +
//! exploration bookkeeping) happens at the round barrier in instance
//! order. CI re-runs this file under forced `RAYON_NUM_THREADS` values
//! (1, 2, 8), so the identity holds at any worker count.

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::{Metric, Rank};
use polybench::{App, Dataset};
use socrates::{EnhancedApp, Fleet, FleetConfig, Toolchain};

fn quick_enhanced(app: App) -> EnhancedApp {
    // Medium keeps kernel invocations ~50 ms of virtual time, so a
    // 10-virtual-second fleet run is a few hundred rounds, not tens of
    // thousands (Small kernels run in under a millisecond).
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(app)
    .unwrap()
}

fn build_fleet(parallel_step: bool, enhanced: &EnhancedApp) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig {
        parallel_step,
        exploration_interval: 2,
        ..FleetConfig::default()
    })
    .expect("valid fleet config");
    fleet.spawn(enhanced, &Rank::throughput_per_watt2(), 2018, 8);
    fleet.set_power_budget(Some(8.0 * 85.0));
    fleet
}

#[test]
fn parallel_fleet_is_bit_identical_to_serial_reference() {
    let enhanced = quick_enhanced(App::TwoMm);
    let mut parallel = build_fleet(true, &enhanced);
    let mut serial = build_fleet(false, &enhanced);
    parallel.run_for(10.0);
    serial.run_for(10.0);
    assert_eq!(parallel.rounds(), serial.rounds());
    for id in 0..8 {
        assert_eq!(
            parallel.trace(id),
            serial.trace(id),
            "instance {id}: parallel trace != serial trace"
        );
    }
    assert_eq!(
        parallel.knowledge_epoch(App::TwoMm),
        serial.knowledge_epoch(App::TwoMm)
    );
    assert_eq!(
        parallel.learned_knowledge(App::TwoMm),
        serial.learned_knowledge(App::TwoMm),
        "final shared knowledge must be identical"
    );
    assert_eq!(
        parallel.exploration_coverage(App::TwoMm),
        serial.exploration_coverage(App::TwoMm)
    );
}

#[test]
fn repeated_runs_are_reproducible() {
    let enhanced = quick_enhanced(App::TwoMm);
    let mut a = build_fleet(true, &enhanced);
    let mut b = build_fleet(true, &enhanced);
    a.run_for(5.0);
    b.run_for(5.0);
    for id in 0..8 {
        assert_eq!(a.trace(id), b.trace(id), "instance {id} diverged");
    }
    assert_eq!(
        a.learned_knowledge(App::TwoMm),
        b.learned_knowledge(App::TwoMm)
    );
}

#[test]
fn sharded_incremental_path_matches_the_single_mutex_reference() {
    // The scaling path (sharded knowledge + batched barrier merge +
    // incremental cache/delta adoption) must be bit-identical to the
    // single-shard, full-rebuild/full-clone reference — at any rayon
    // thread count (CI re-runs this under the forced thread matrix).
    let enhanced = quick_enhanced(App::TwoMm);
    let run = |knowledge_shards: usize, incremental_refresh: bool| {
        let mut fleet = Fleet::new(FleetConfig {
            exploration_interval: 2,
            knowledge_shards,
            incremental_refresh,
            ..FleetConfig::default()
        })
        .expect("valid fleet config");
        fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 2018, 8);
        fleet.set_power_budget(Some(8.0 * 85.0));
        fleet.run_for(6.0);
        let traces: Vec<_> = (0..8).map(|id| fleet.trace(id)).collect();
        (
            traces,
            fleet.learned_knowledge(App::TwoMm).unwrap(),
            fleet.knowledge_epoch(App::TwoMm).unwrap(),
            fleet.exploration_coverage(App::TwoMm).unwrap(),
        )
    };
    let sharded = run(margot::DEFAULT_SHARDS, true);
    let reference = run(1, false);
    assert_eq!(sharded.1, reference.1, "learned knowledge diverged");
    assert_eq!(sharded.2, reference.2, "epoch diverged");
    assert_eq!(sharded.3, reference.3, "coverage diverged");
    for (id, (s, r)) in sharded.0.iter().zip(&reference.0).enumerate() {
        assert_eq!(s, r, "instance {id}: sharded trace != reference trace");
    }
}

#[test]
fn membership_changes_mid_run_stay_deterministic() {
    let enhanced = quick_enhanced(App::TwoMm);
    let run = |parallel_step: bool| {
        let mut fleet = build_fleet(parallel_step, &enhanced);
        fleet.run_for(3.0);
        fleet.retire_instance(2);
        let late = fleet.add_instance(
            enhanced.clone(),
            Rank::minimize(Metric::exec_time()),
            enhanced.platform.machine(4242),
        );
        fleet.run_for(3.0);
        (0..=late).map(|id| fleet.trace(id)).collect::<Vec<_>>()
    };
    assert_eq!(run(true), run(false));
}
