//! # platform-sim — the simulated SOCRATES testbed
//!
//! The SOCRATES paper (DATE 2018) evaluates on a dual-socket NUMA machine
//! (2× Intel Xeon E5-2630 v3, 16 cores / 32 hyper-threads, 128 GB DDR4)
//! with RAPL power measurement. This crate replaces that hardware with an
//! analytic model that reproduces the *mechanisms* behind the paper's
//! trade-off space:
//!
//! - [`Topology`] + [`BindingPolicy`]: OpenMP `OMP_PLACES=cores` placement
//!   under `proc_bind(close|spread)`, with SMT sharing past 16 threads;
//! - [`FlagEffectModel`]: feature-dependent compiler-flag speedups (what
//!   COBAYN learns to predict);
//! - [`TimingParams`]: roofline compute/memory balance, Amdahl + USL
//!   scaling, NUMA bandwidth vs. locality;
//! - [`PowerParams`]: RAPL-style machine power (idle floor, uncore, core
//!   dynamic power, SMT increments, DRAM power);
//! - [`Machine`]: the composed testbed with reproducible measurement noise;
//! - [`VirtualClock`] / [`EnergyMeter`]: virtual time and energy counters
//!   so 300-second traces replay in milliseconds.
//!
//! ## Example
//!
//! ```
//! use platform_sim::{
//!     BindingPolicy, CompilerOptions, KnobConfig, Machine, OptLevel, WorkloadProfile,
//! };
//!
//! let mut machine = Machine::xeon_e5_2630_v3(42);
//! let kernel = WorkloadProfile::builder("gemm")
//!     .flops(2.0e9)
//!     .bytes(4.0e8)
//!     .parallel_fraction(0.97)
//!     .build();
//!
//! let slow = machine.execute(
//!     &kernel,
//!     &KnobConfig::new(CompilerOptions::level(OptLevel::Os), 1, BindingPolicy::Close),
//! );
//! let fast = machine.execute(
//!     &kernel,
//!     &KnobConfig::new(CompilerOptions::level(OptLevel::O3), 32, BindingPolicy::Spread),
//! );
//! assert!(fast.time_s < slow.time_s);
//! assert!(fast.power_w > slow.power_w);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod config;
pub mod flags;
pub mod machine;
pub mod power;
pub mod timing;
pub mod topology;
pub mod workload;

pub use clock::{EnergyMeter, EnergyReading, VirtualClock};
pub use config::{
    paper_cf_combos, BindingPolicy, CompilerFlag, CompilerOptions, KnobConfig, OptLevel,
    ParseConfigError,
};
pub use flags::FlagEffectModel;
pub use machine::{Execution, Machine, NoiseParams};
pub use power::PowerParams;
pub use timing::{TimingBreakdown, TimingParams};
pub use topology::{Placement, Topology};
pub use workload::{WorkloadProfile, WorkloadProfileBuilder};
