//! Virtual time and RAPL-style energy accounting.
//!
//! The Fig. 5 experiment replays 300 seconds of application time; the
//! [`VirtualClock`] advances by simulated kernel durations so the whole
//! trace costs milliseconds of host time. The [`EnergyMeter`] mimics a
//! RAPL energy counter: monotonically increasing joules, sampled by
//! differencing.

use serde::{Deserialize, Serialize};

/// A virtual clock measured in seconds since session start.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VirtualClock {
    now_s: f64,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current time in seconds.
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Advances the clock by a non-negative duration.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is negative or not finite.
    pub fn advance(&mut self, dt_s: f64) {
        assert!(dt_s.is_finite() && dt_s >= 0.0, "bad time step {dt_s}");
        self.now_s += dt_s;
    }
}

/// A monotonically increasing energy counter (joules), RAPL-style.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyMeter {
    total_j: f64,
}

impl EnergyMeter {
    /// A meter at zero joules.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total accumulated energy in joules.
    pub fn total_j(&self) -> f64 {
        self.total_j
    }

    /// Accounts `power_w` watts drawn for `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if either argument is negative or not finite.
    pub fn accumulate(&mut self, power_w: f64, dt_s: f64) {
        assert!(power_w.is_finite() && power_w >= 0.0, "bad power {power_w}");
        assert!(dt_s.is_finite() && dt_s >= 0.0, "bad time step {dt_s}");
        self.total_j += power_w * dt_s;
    }

    /// Takes a reading; average power between two readings is
    /// `(r2 - r1) / dt`, exactly how RAPL counters are used.
    pub fn reading(&self) -> EnergyReading {
        EnergyReading {
            energy_j: self.total_j,
        }
    }
}

/// A point-in-time energy counter sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyReading {
    /// Counter value at sample time, joules.
    pub energy_j: f64,
}

impl EnergyReading {
    /// Average power between an earlier reading `start` and this one over
    /// `dt_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `dt_s` is not strictly positive.
    pub fn average_power_since(&self, start: EnergyReading, dt_s: f64) -> f64 {
        assert!(dt_s > 0.0, "window must be positive, got {dt_s}");
        (self.energy_j - start.energy_j) / dt_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = VirtualClock::new();
        c.advance(1.5);
        c.advance(0.25);
        assert!((c.now_s() - 1.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "bad time step")]
    fn clock_rejects_negative_steps() {
        VirtualClock::new().advance(-1.0);
    }

    #[test]
    fn meter_integrates_power() {
        let mut m = EnergyMeter::new();
        m.accumulate(100.0, 2.0);
        m.accumulate(50.0, 1.0);
        assert!((m.total_j() - 250.0).abs() < 1e-12);
    }

    #[test]
    fn readings_give_average_power() {
        let mut m = EnergyMeter::new();
        let r0 = m.reading();
        m.accumulate(120.0, 0.5);
        m.accumulate(80.0, 0.5);
        let r1 = m.reading();
        assert!((r1.average_power_since(r0, 1.0) - 100.0).abs() < 1e-12);
    }

    #[test]
    fn meter_is_monotone() {
        let mut m = EnergyMeter::new();
        let mut last = m.total_j();
        for i in 0..10 {
            m.accumulate(f64::from(i), 0.1);
            assert!(m.total_j() >= last);
            last = m.total_j();
        }
    }
}
