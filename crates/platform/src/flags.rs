//! Compiler-flag response model.
//!
//! Replaces the real GCC in the simulation: maps a
//! ([`WorkloadProfile`], [`CompilerOptions`]) pair to a single-thread
//! *speedup* (relative to `-O1`) and a *power factor* (relative dynamic
//! power per active core). Effects are feature-dependent — unrolling helps
//! branch-free loop nests, unsafe-math helps FP-dense code, `-fno-inline`
//! hurts call-heavy code — plus a small deterministic per-(kernel, flags)
//! idiosyncrasy term that mimics the unpredictable interactions iterative
//! compilation observes in practice. The structured part is what COBAYN
//! learns; the idiosyncrasy is the noise floor it cannot.

use crate::config::{CompilerFlag, CompilerOptions, OptLevel};
use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Deterministic compiler-response model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlagEffectModel {
    /// Scale of the per-(kernel, flag-set) idiosyncrasy term (default 0.03,
    /// i.e. up to ±3% unexplained variation).
    pub idiosyncrasy: f64,
}

impl Default for FlagEffectModel {
    fn default() -> Self {
        FlagEffectModel { idiosyncrasy: 0.03 }
    }
}

impl FlagEffectModel {
    /// Creates the default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-thread speedup of `co` relative to `-O1` for this workload.
    /// Always strictly positive; typical range 0.7–1.8.
    pub fn speedup(&self, w: &WorkloadProfile, co: &CompilerOptions) -> f64 {
        let mut s = self.level_speedup(w, co.level);
        for flag in &co.flags {
            s *= self.flag_multiplier(w, *flag, co.level);
        }
        s *= 1.0 + self.idiosyncrasy_term(w, co);
        s.max(0.05)
    }

    /// Relative dynamic power per active core (1.0 = `-O1` baseline).
    ///
    /// Faster code keeps more functional units busy: the factor grows with
    /// the ILP-derived part of the speedup, and `-Os` runs slightly cooler.
    pub fn power_factor(&self, w: &WorkloadProfile, co: &CompilerOptions) -> f64 {
        let s = self.speedup(w, co);
        let base = match co.level {
            OptLevel::Os => 0.94,
            OptLevel::O1 => 1.0,
            OptLevel::O2 => 1.03,
            OptLevel::O3 => 1.07,
        };
        let unroll_extra = if co.has(CompilerFlag::UnrollAllLoops) {
            0.02
        } else {
            0.0
        };
        (base + 0.22 * (s - 1.0).max(0.0) + unroll_extra).clamp(0.85, 1.35)
    }

    fn level_speedup(&self, w: &WorkloadProfile, level: OptLevel) -> f64 {
        // Vectorisation (the big -O3 win) needs FP-dense, branch-poor loops.
        let vectorizability = w.fp_intensity * (1.0 - w.branch_density) * w.loop_nest_depth;
        match level {
            // -Os: smaller code; loses scheduling aggressiveness, gains a
            // little on branchy code through icache friendliness.
            OptLevel::Os => 0.86 + 0.06 * w.branch_density,
            OptLevel::O1 => 1.0,
            OptLevel::O2 => 1.18 + 0.05 * w.loop_nest_depth,
            OptLevel::O3 => 1.20 + 0.05 * w.loop_nest_depth + 0.22 * vectorizability,
        }
    }

    fn flag_multiplier(&self, w: &WorkloadProfile, flag: CompilerFlag, level: OptLevel) -> f64 {
        let stencil = if w.stencil { 1.0 } else { 0.0 };
        match flag {
            // Re-association / FMA contraction: helps FP reductions, more so
            // under -O3 where it unlocks vectorisation of reductions.
            CompilerFlag::UnsafeMathOptimizations => {
                let o3_bonus = if level == OptLevel::O3 { 0.05 } else { 0.0 };
                1.0 + (0.10 + o3_bonus) * w.fp_intensity * (1.0 - 0.4 * stencil)
            }
            // Static branch prediction off: mildly harmful with branches,
            // slightly helpful for perfectly regular code (shorter passes,
            // no profile-guided block reordering to get wrong).
            CompilerFlag::NoGuessBranchProbability => {
                1.0 + 0.025 * (1.0 - w.branch_density) - 0.07 * w.branch_density
            }
            // Induction-variable optimisation off: hurts deep loop nests,
            // occasionally helps stencils where ivopts picks bad candidates.
            CompilerFlag::NoIvopts => 1.0 - 0.06 * w.loop_nest_depth + 0.05 * stencil,
            // Loop optimiser off: loses interchange/distribution on deep
            // nests; near-neutral for flat or branchy code.
            CompilerFlag::NoTreeLoopOptimize => {
                1.0 - 0.09 * w.loop_nest_depth * (1.0 - w.branch_density)
            }
            // No inlining: costs call-dense code, trims icache pressure a
            // touch for large kernels.
            CompilerFlag::NoInlineFunctions => {
                1.0 - 0.14 * w.call_density + 0.01 * (1.0 - w.call_density)
            }
            // Aggressive unrolling: rewards branch-free loop nests, costs
            // branchy/stencil code icache and register pressure.
            CompilerFlag::UnrollAllLoops => {
                1.0 + 0.10 * (1.0 - w.branch_density) * w.loop_nest_depth
                    - 0.05 * w.branch_density
                    - 0.03 * stencil
            }
        }
    }

    /// Deterministic pseudo-random term in `[-idiosyncrasy, +idiosyncrasy]`
    /// derived from the kernel name and exact flag set.
    fn idiosyncrasy_term(&self, w: &WorkloadProfile, co: &CompilerOptions) -> f64 {
        let mut h = fnv1a(w.name.as_bytes());
        h = fnv1a_u64(h, co.level as u64 + 1);
        h = fnv1a_u64(h, u64::from(co.flag_mask()) + 0x9E37);
        // Map to [-1, 1), then scale.
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        (2.0 * unit - 1.0) * self.idiosyncrasy
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn fnv1a_u64(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerFlag::*, CompilerOptions as CO, OptLevel::*};

    fn gemm_like() -> WorkloadProfile {
        WorkloadProfile::builder("gemm")
            .fp_intensity(0.9)
            .branch_density(0.02)
            .loop_nest_depth(1.0)
            .build()
    }

    fn branchy() -> WorkloadProfile {
        WorkloadProfile::builder("nussinov")
            .fp_intensity(0.3)
            .branch_density(0.6)
            .loop_nest_depth(0.8)
            .build()
    }

    #[test]
    fn o3_beats_o1_for_vectorizable_code() {
        let m = FlagEffectModel::new();
        let w = gemm_like();
        assert!(m.speedup(&w, &CO::level(O3)) > m.speedup(&w, &CO::level(O1)) * 1.2);
    }

    #[test]
    fn os_is_slower_but_cooler() {
        let m = FlagEffectModel::new();
        let w = gemm_like();
        assert!(m.speedup(&w, &CO::level(Os)) < m.speedup(&w, &CO::level(O1)));
        assert!(m.power_factor(&w, &CO::level(Os)) < m.power_factor(&w, &CO::level(O3)));
    }

    #[test]
    fn unroll_helps_regular_hurts_branchy() {
        let m = FlagEffectModel { idiosyncrasy: 0.0 };
        let with = CO::with_flags(O2, [UnrollAllLoops]);
        let without = CO::level(O2);
        let w = gemm_like();
        assert!(m.speedup(&w, &with) > m.speedup(&w, &without));
        let b = branchy();
        // For branchy code the gain shrinks (relative benefit smaller).
        let gain_regular = m.speedup(&w, &with) / m.speedup(&w, &without);
        let gain_branchy = m.speedup(&b, &with) / m.speedup(&b, &without);
        assert!(gain_regular > gain_branchy);
    }

    #[test]
    fn unsafe_math_scales_with_fp_intensity() {
        let m = FlagEffectModel { idiosyncrasy: 0.0 };
        let co = CO::with_flags(O2, [UnsafeMathOptimizations]);
        let base = CO::level(O2);
        let hi = WorkloadProfile::builder("fp").fp_intensity(1.0).build();
        let lo = WorkloadProfile::builder("int").fp_intensity(0.1).build();
        let gain_hi = m.speedup(&hi, &co) / m.speedup(&hi, &base);
        let gain_lo = m.speedup(&lo, &co) / m.speedup(&lo, &base);
        assert!(gain_hi > gain_lo);
        assert!(gain_hi > 1.05);
    }

    #[test]
    fn no_inline_costs_call_dense_code() {
        let m = FlagEffectModel { idiosyncrasy: 0.0 };
        let co = CO::with_flags(O2, [NoInlineFunctions]);
        let callsy = WorkloadProfile::builder("callsy").call_density(0.8).build();
        let flat = WorkloadProfile::builder("flat").call_density(0.0).build();
        assert!(m.speedup(&callsy, &co) < m.speedup(&callsy, &CO::level(O2)));
        assert!(m.speedup(&flat, &co) >= m.speedup(&flat, &CO::level(O2)) * 0.99);
    }

    #[test]
    fn speedup_is_deterministic() {
        let m = FlagEffectModel::new();
        let w = gemm_like();
        let co = CO::with_flags(O3, [UnsafeMathOptimizations, UnrollAllLoops]);
        assert_eq!(m.speedup(&w, &co), m.speedup(&w, &co));
    }

    #[test]
    fn idiosyncrasy_differs_per_kernel_but_is_bounded() {
        let m = FlagEffectModel::new();
        let co = CO::with_flags(O2, [NoIvopts]);
        let w1 = WorkloadProfile::builder("a").build();
        let w2 = WorkloadProfile::builder("b").build();
        let s1 = m.speedup(&w1, &co);
        let s2 = m.speedup(&w2, &co);
        assert_ne!(s1, s2);
        let clean = FlagEffectModel { idiosyncrasy: 0.0 };
        let base = clean.speedup(&w1, &co);
        assert!((s1 / base - 1.0).abs() <= 0.0301);
    }

    #[test]
    fn speedups_stay_positive_over_whole_cobayn_space() {
        let m = FlagEffectModel::new();
        for w in [gemm_like(), branchy()] {
            for co in CO::cobayn_space() {
                let s = m.speedup(&w, &co);
                assert!(s > 0.0 && s.is_finite(), "{co} -> {s}");
                let p = m.power_factor(&w, &co);
                assert!((0.85..=1.35).contains(&p));
            }
        }
    }

    #[test]
    fn best_flags_differ_between_kernel_classes() {
        // The heterogeneity that motivates the whole paper: the argmax
        // configuration must differ between a dense FP kernel and a
        // branchy integer kernel.
        let m = FlagEffectModel::new();
        let best = |w: &WorkloadProfile| {
            CO::cobayn_space()
                .into_iter()
                .max_by(|a, b| {
                    m.speedup(w, a)
                        .partial_cmp(&m.speedup(w, b))
                        .expect("finite")
                })
                .expect("non-empty space")
        };
        assert_ne!(best(&gemm_like()), best(&branchy()));
    }
}
