//! The simulated machine: composes topology, timing, power and flag models
//! and adds measurement noise, playing the role of the paper's NUMA
//! testbed (2× Xeon E5-2630 v3, RAPL power readings).

use crate::config::KnobConfig;
use crate::flags::FlagEffectModel;
use crate::power::PowerParams;
use crate::timing::{TimingBreakdown, TimingParams};
use crate::topology::{Placement, Topology};
use crate::workload::WorkloadProfile;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The observable outcome of one kernel invocation — exactly what the
/// paper's monitors (timers + RAPL) would report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Wall-clock duration, seconds.
    pub time_s: f64,
    /// Average machine power over the run, watts.
    pub power_w: f64,
    /// Energy, joules (`time_s * power_w`).
    pub energy_j: f64,
    /// Where the threads ran.
    pub placement: Placement,
    /// Noise-free timing phases (for tests and model inspection).
    pub breakdown: TimingBreakdown,
}

impl Execution {
    /// Throughput in kernel invocations per second.
    pub fn throughput(&self) -> f64 {
        1.0 / self.time_s
    }

    /// The paper's energy-efficiency rank metric, Throughput / Watt².
    pub fn throughput_per_watt2(&self) -> f64 {
        self.throughput() / (self.power_w * self.power_w)
    }
}

/// Simulated dual-socket NUMA machine.
///
/// # Examples
///
/// ```
/// use platform_sim::{Machine, WorkloadProfile, KnobConfig, CompilerOptions, OptLevel, BindingPolicy};
///
/// let mut machine = Machine::xeon_e5_2630_v3(42);
/// let kernel = WorkloadProfile::builder("demo").flops(1e9).bytes(1e8).build();
/// let cfg = KnobConfig::new(CompilerOptions::level(OptLevel::O2), 8, BindingPolicy::Close);
/// let run = machine.execute(&kernel, &cfg);
/// assert!(run.time_s > 0.0 && run.power_w > 40.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    topology: Topology,
    timing: TimingParams,
    power: PowerParams,
    flags: FlagEffectModel,
    noise: NoiseParams,
    /// The construction seed, kept so [`Machine::fork`] can derive
    /// independent noise streams regardless of how much of `rng` has
    /// already been consumed.
    seed: u64,
    rng: ChaCha8Rng,
}

/// Measurement-noise configuration (multiplicative log-normal).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// Sigma of the time noise (0 disables).
    pub time_sigma: f64,
    /// Sigma of the power noise (0 disables).
    pub power_sigma: f64,
}

impl Default for NoiseParams {
    fn default() -> Self {
        NoiseParams {
            time_sigma: 0.025,
            power_sigma: 0.012,
        }
    }
}

impl Machine {
    /// Creates the paper's platform with the given RNG seed.
    pub fn xeon_e5_2630_v3(seed: u64) -> Self {
        Machine {
            topology: Topology::xeon_e5_2630_v3(),
            timing: TimingParams::default(),
            power: PowerParams::default(),
            flags: FlagEffectModel::new(),
            noise: NoiseParams::default(),
            seed,
            rng: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// The seed this machine was constructed with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Forks a machine with an identical platform model but an
    /// independent noise stream derived from `(self.seed, stream)`.
    ///
    /// The derivation depends only on the construction seed — not on
    /// how many executions the parent has already performed — so a set
    /// of forks is reproducible no matter where or in which order the
    /// forks run. This is what lets the DSE engine profile operating
    /// points across worker threads while staying bit-identical to a
    /// serial sweep.
    pub fn fork(&self, stream: u64) -> Self {
        // Hash seed and stream *sequentially* (not `seed ^ h(stream)`):
        // XOR composition would make nested forks commute —
        // `m.fork(a).fork(b) == m.fork(b).fork(a)` and
        // `m.fork(x).fork(x) == m` — silently correlating experiments.
        let mut state = self.seed;
        let hashed_seed = rand::split_mix_64(&mut state);
        let mut state = hashed_seed.wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F));
        let derived = rand::split_mix_64(&mut state);
        let mut fork = self.clone();
        fork.seed = derived;
        fork.rng = ChaCha8Rng::seed_from_u64(derived);
        fork
    }

    /// Builder-style: replaces the topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Builder-style: replaces the power coefficients (used by ablation
    /// studies to model a machine that runs hotter/cooler than profiled).
    pub fn with_power_params(mut self, power: PowerParams) -> Self {
        self.power = power;
        self
    }

    /// Builder-style: replaces the timing coefficients.
    pub fn with_timing_params(mut self, timing: TimingParams) -> Self {
        self.timing = timing;
        self
    }

    /// Builder-style: replaces the noise configuration.
    pub fn with_noise(mut self, noise: NoiseParams) -> Self {
        self.noise = noise;
        self
    }

    /// Builder-style: disables measurement noise entirely.
    pub fn noiseless(self) -> Self {
        self.with_noise(NoiseParams {
            time_sigma: 0.0,
            power_sigma: 0.0,
        })
    }

    /// The machine topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The timing coefficients.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The power coefficients.
    pub fn power(&self) -> &PowerParams {
        &self.power
    }

    /// The compiler-response model.
    pub fn flag_model(&self) -> &FlagEffectModel {
        &self.flags
    }

    /// Runs one kernel invocation with measurement noise.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.tn` is out of `1..=logical_cpus()` (same contract as
    /// [`Topology::place`]).
    pub fn execute(&mut self, w: &WorkloadProfile, cfg: &KnobConfig) -> Execution {
        let mut exec = self.expected(w, cfg);
        let tn = lognormal(&mut self.rng, self.noise.time_sigma);
        let pn = lognormal(&mut self.rng, self.noise.power_sigma);
        exec.time_s *= tn;
        exec.power_w *= pn;
        exec.energy_j = exec.time_s * exec.power_w;
        exec
    }

    /// The multiplicative `(time, power)` noise factors of invocation
    /// `step` on noise stream `stream` — **stateless** random access
    /// into the noise sequence, keyed off this machine's seed.
    ///
    /// An event-driven runtime with a million sparse instances cannot
    /// afford one forked [`Machine`] (and mutable RNG) per instance;
    /// instead it keeps one base machine per pool and derives each
    /// instance's noise on demand: `stream` plays the role of the
    /// [`fork`](Self::fork) stream id and `step` the invocation index
    /// within it. The derivation mirrors `fork` (hash the seed, mix the
    /// stream, then mix the step with a distinct odd constant), so
    /// distinct `(stream, step)` pairs draw decorrelated factors and
    /// the same pair always replays bit-identically.
    pub fn noise_factors_at(&self, stream: u64, step: u64) -> (f64, f64) {
        let mut state = self.seed;
        let hashed_seed = rand::split_mix_64(&mut state);
        let mut state = hashed_seed.wrapping_add(stream.wrapping_mul(0xA076_1D64_78BD_642F));
        let derived = rand::split_mix_64(&mut state);
        let mut state = derived.wrapping_add(step.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let per_step = rand::split_mix_64(&mut state);
        let mut rng = ChaCha8Rng::seed_from_u64(per_step);
        let tn = lognormal(&mut rng, self.noise.time_sigma);
        let pn = lognormal(&mut rng, self.noise.power_sigma);
        (tn, pn)
    }

    /// The noise-free expected outcome (model ground truth).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.tn` is out of `1..=logical_cpus()`.
    pub fn expected(&self, w: &WorkloadProfile, cfg: &KnobConfig) -> Execution {
        let placement = self.topology.place(cfg.tn, cfg.bp);
        let breakdown = self
            .timing
            .breakdown(w, cfg, &placement, &self.topology, &self.flags);
        let time_s = breakdown.total_s();
        let power_w =
            self.power
                .average_power(w, cfg, &placement, &breakdown, &self.timing, &self.flags);
        Execution {
            time_s,
            power_w,
            energy_j: time_s * power_w,
            placement,
            breakdown,
        }
    }
}

fn lognormal<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    // Box-Muller from two uniforms; ChaCha8 keeps this reproducible.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BindingPolicy, CompilerOptions, KnobConfig, OptLevel};

    fn kernel() -> WorkloadProfile {
        WorkloadProfile::builder("2mm-like")
            .flops(2.5e9)
            .bytes(6e8)
            .parallel_fraction(0.97)
            .build()
    }

    fn cfg(level: OptLevel, tn: u32, bp: BindingPolicy) -> KnobConfig {
        KnobConfig::new(CompilerOptions::level(level), tn, bp)
    }

    #[test]
    fn expected_is_deterministic() {
        let m = Machine::xeon_e5_2630_v3(1);
        let w = kernel();
        let c = cfg(OptLevel::O3, 16, BindingPolicy::Close);
        assert_eq!(m.expected(&w, &c), m.expected(&w, &c));
    }

    #[test]
    fn same_seed_same_noisy_trace() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 8, BindingPolicy::Spread);
        let mut m1 = Machine::xeon_e5_2630_v3(7);
        let mut m2 = Machine::xeon_e5_2630_v3(7);
        for _ in 0..5 {
            assert_eq!(m1.execute(&w, &c), m2.execute(&w, &c));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 8, BindingPolicy::Spread);
        let mut m1 = Machine::xeon_e5_2630_v3(1);
        let mut m2 = Machine::xeon_e5_2630_v3(2);
        assert_ne!(m1.execute(&w, &c).time_s, m2.execute(&w, &c).time_s);
    }

    #[test]
    fn noise_is_small_and_centred() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 8, BindingPolicy::Close);
        let mut m = Machine::xeon_e5_2630_v3(3);
        let expected = m.expected(&w, &c).time_s;
        let n = 300;
        let mean: f64 = (0..n).map(|_| m.execute(&w, &c).time_s).sum::<f64>() / f64::from(n);
        assert!(
            (mean / expected - 1.0).abs() < 0.01,
            "mean ratio {}",
            mean / expected
        );
    }

    #[test]
    fn noiseless_machine_reports_expectation() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 4, BindingPolicy::Close);
        let mut m = Machine::xeon_e5_2630_v3(4).noiseless();
        let e = m.expected(&w, &c);
        assert_eq!(m.execute(&w, &c), e);
    }

    #[test]
    fn forks_are_deterministic() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 8, BindingPolicy::Spread);
        let mut parent = Machine::xeon_e5_2630_v3(7);
        // Consuming the parent's stream must not change what forks see.
        let before = parent.fork(3).execute(&w, &c);
        let _ = parent.execute(&w, &c);
        let after = parent.fork(3).execute(&w, &c);
        assert_eq!(before, after);
        // And forks of equal-seeded machines agree.
        let other = Machine::xeon_e5_2630_v3(7);
        assert_eq!(other.fork(3).execute(&w, &c), before);
    }

    #[test]
    fn distinct_streams_get_distinct_noise() {
        let w = kernel();
        let c = cfg(OptLevel::O2, 8, BindingPolicy::Spread);
        let parent = Machine::xeon_e5_2630_v3(7);
        let a = parent.fork(0).execute(&w, &c);
        let b = parent.fork(1).execute(&w, &c);
        assert_ne!(a.time_s, b.time_s);
    }

    #[test]
    fn nested_forks_do_not_commute_or_cycle() {
        let parent = Machine::xeon_e5_2630_v3(7);
        // fork(a).fork(b) must differ from fork(b).fork(a) …
        assert_ne!(parent.fork(1).fork(2).seed(), parent.fork(2).fork(1).seed());
        // … and fork(x).fork(x) must not replay the parent's stream.
        assert_ne!(parent.fork(3).fork(3).seed(), parent.seed());
    }

    #[test]
    fn noise_factors_at_is_a_pure_function() {
        let m = Machine::xeon_e5_2630_v3(7);
        assert_eq!(m.noise_factors_at(3, 11), m.noise_factors_at(3, 11));
        // Equal-seeded machines agree; the call never mutates state.
        let twin = Machine::xeon_e5_2630_v3(7);
        assert_eq!(m.noise_factors_at(0, 0), twin.noise_factors_at(0, 0));
    }

    #[test]
    fn noise_factors_decorrelate_streams_and_steps() {
        let m = Machine::xeon_e5_2630_v3(7);
        assert_ne!(m.noise_factors_at(0, 0), m.noise_factors_at(1, 0));
        assert_ne!(m.noise_factors_at(0, 0), m.noise_factors_at(0, 1));
        // (stream, step) must not collapse onto (step, stream).
        assert_ne!(m.noise_factors_at(1, 2), m.noise_factors_at(2, 1));
        // Different base seeds see different noise sequences.
        assert_ne!(
            m.noise_factors_at(4, 9),
            Machine::xeon_e5_2630_v3(8).noise_factors_at(4, 9)
        );
    }

    #[test]
    fn noise_factors_share_the_fork_lognormal_model() {
        // Factors are lognormal with the machine's sigmas: centred near
        // one, and degenerate (exactly one) on a noiseless machine.
        let m = Machine::xeon_e5_2630_v3(3);
        let n = 400u64;
        let mean: f64 = (0..n).map(|s| m.noise_factors_at(0, s).0).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.01, "time-factor mean {mean}");
        let silent = Machine::xeon_e5_2630_v3(3).noiseless();
        assert_eq!(silent.noise_factors_at(5, 5), (1.0, 1.0));
    }

    #[test]
    fn fork_keeps_the_platform_model() {
        let w = kernel();
        let c = cfg(OptLevel::O3, 16, BindingPolicy::Close);
        let parent = Machine::xeon_e5_2630_v3(9).noiseless();
        let fork = parent.fork(5);
        assert_eq!(parent.expected(&w, &c), fork.expected(&w, &c));
    }

    #[test]
    fn energy_is_time_times_power() {
        let w = kernel();
        let c = cfg(OptLevel::O3, 32, BindingPolicy::Spread);
        let mut m = Machine::xeon_e5_2630_v3(5);
        let e = m.execute(&w, &c);
        assert!((e.energy_j - e.time_s * e.power_w).abs() < 1e-9);
    }

    #[test]
    fn best_time_config_has_many_threads() {
        let m = Machine::xeon_e5_2630_v3(6);
        let w = kernel();
        let mut best = (f64::INFINITY, 0u32);
        for tn in 1..=32 {
            for bp in BindingPolicy::ALL {
                let e = m.expected(&w, &cfg(OptLevel::O3, tn, bp));
                if e.time_s < best.0 {
                    best = (e.time_s, tn);
                }
            }
        }
        assert!(best.1 >= 16, "best thread count {} too low", best.1);
    }

    #[test]
    fn throughput_per_watt2_prefers_mid_power_configs() {
        // The Thr/W^2 rank must not pick the max-power point: the square
        // penalises power hard, which is what drives Fig. 5's switches.
        let m = Machine::xeon_e5_2630_v3(8);
        let w = kernel();
        let all: Vec<Execution> = (1..=32)
            .flat_map(|tn| BindingPolicy::ALL.into_iter().map(move |bp| (tn, bp)))
            .map(|(tn, bp)| m.expected(&w, &cfg(OptLevel::O3, tn, bp)))
            .collect();
        let best_perf = all
            .iter()
            .min_by(|a, b| a.time_s.partial_cmp(&b.time_s).expect("finite"))
            .expect("non-empty");
        let best_eff = all
            .iter()
            .max_by(|a, b| {
                a.throughput_per_watt2()
                    .partial_cmp(&b.throughput_per_watt2())
                    .expect("finite")
            })
            .expect("non-empty");
        assert!(
            best_eff.power_w < best_perf.power_w,
            "efficiency point must be cooler"
        );
        assert!(best_eff.time_s > best_perf.time_s, "and slower");
    }

    #[test]
    fn execution_time_envelope_is_paperlike() {
        // Slowest-selected / fastest-selected ratio in Fig. 4 is ~14x.
        let m = Machine::xeon_e5_2630_v3(9);
        let w = kernel();
        let slow = m
            .expected(&w, &cfg(OptLevel::Os, 1, BindingPolicy::Close))
            .time_s;
        let fast = (1..=32)
            .flat_map(|tn| BindingPolicy::ALL.into_iter().map(move |bp| (tn, bp)))
            .map(|(tn, bp)| m.expected(&w, &cfg(OptLevel::O3, tn, bp)).time_s)
            .fold(f64::INFINITY, f64::min);
        let ratio = slow / fast;
        assert!((8.0..40.0).contains(&ratio), "dynamic range ratio {ratio}");
    }
}
