//! Machine topology and OpenMP thread placement.
//!
//! Models the paper's testbed: a dual-socket NUMA machine where
//! `OMP_PLACES=cores` makes each *physical core* one place, and
//! `proc_bind(close|spread)` decides how threads map onto places.

use crate::config::BindingPolicy;
use serde::{Deserialize, Serialize};

/// Hardware topology: sockets × cores per socket × SMT ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Topology {
    /// Number of CPU sockets (NUMA nodes).
    pub sockets: u32,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Hardware threads per core (2 = hyper-threading).
    pub smt: u32,
}

impl Topology {
    /// The paper's platform: 2× Intel Xeon E5-2630 v3 (8 cores each,
    /// hyper-threading enabled) — 16 physical cores, 32 logical CPUs.
    pub fn xeon_e5_2630_v3() -> Self {
        Topology {
            sockets: 2,
            cores_per_socket: 8,
            smt: 2,
        }
    }

    /// Total physical cores.
    pub fn physical_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Total logical CPUs (the paper's TN upper bound).
    pub fn logical_cpus(&self) -> u32 {
        self.physical_cores() * self.smt
    }

    /// Computes where `tn` OpenMP threads land under `bp`.
    ///
    /// With `OMP_PLACES=cores`, places are physical cores.
    /// `close` packs threads onto consecutive places (socket 0 first);
    /// `spread` distributes them across sockets round-robin. Threads
    /// beyond the number of places share cores via SMT.
    ///
    /// # Panics
    ///
    /// Panics if `tn` is zero or exceeds the logical CPU count.
    pub fn place(&self, tn: u32, bp: BindingPolicy) -> Placement {
        assert!(tn >= 1, "thread count must be at least 1");
        assert!(
            tn <= self.logical_cpus(),
            "thread count {tn} exceeds logical CPUs {}",
            self.logical_cpus()
        );
        let sockets = self.sockets as usize;
        let mut threads_per_socket = vec![0u32; sockets];
        let places = self.physical_cores();
        // First pass: one thread per place; second pass: SMT siblings.
        for t in 0..tn {
            let place = t % places; // place index in round `t / places`
            let socket = match bp {
                BindingPolicy::Close => place / self.cores_per_socket,
                BindingPolicy::Spread => place % self.sockets,
            };
            threads_per_socket[socket as usize] += 1;
        }
        let cores_used_per_socket: Vec<u32> = threads_per_socket
            .iter()
            .map(|&t| t.min(self.cores_per_socket))
            .collect();
        let smt_threads_per_socket: Vec<u32> = threads_per_socket
            .iter()
            .zip(&cores_used_per_socket)
            .map(|(&t, &c)| t - c)
            .collect();
        Placement {
            threads: tn,
            threads_per_socket,
            cores_used_per_socket,
            smt_threads_per_socket,
        }
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::xeon_e5_2630_v3()
    }
}

/// Result of placing a team of threads on the machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Total threads placed.
    pub threads: u32,
    /// Threads landed on each socket.
    pub threads_per_socket: Vec<u32>,
    /// Physical cores with at least one thread, per socket.
    pub cores_used_per_socket: Vec<u32>,
    /// Threads sharing a core with another thread (SMT siblings), per socket.
    pub smt_threads_per_socket: Vec<u32>,
}

impl Placement {
    /// Number of sockets that have at least one thread.
    pub fn active_sockets(&self) -> u32 {
        self.threads_per_socket.iter().filter(|&&t| t > 0).count() as u32
    }

    /// Total physical cores in use.
    pub fn cores_used(&self) -> u32 {
        self.cores_used_per_socket.iter().sum()
    }

    /// Total SMT sibling threads (threads beyond one per core).
    pub fn smt_threads(&self) -> u32 {
        self.smt_threads_per_socket.iter().sum()
    }

    /// Effective parallelism: full speed per core plus a diminished
    /// contribution (`smt_yield`, typically ~0.35) per SMT sibling.
    pub fn effective_parallelism(&self, smt_yield: f64) -> f64 {
        f64::from(self.cores_used()) + smt_yield * f64::from(self.smt_threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::xeon_e5_2630_v3()
    }

    #[test]
    fn paper_platform_counts() {
        let t = topo();
        assert_eq!(t.physical_cores(), 16);
        assert_eq!(t.logical_cpus(), 32);
    }

    #[test]
    fn close_packs_one_socket_first() {
        let p = topo().place(8, BindingPolicy::Close);
        assert_eq!(p.threads_per_socket, vec![8, 0]);
        assert_eq!(p.active_sockets(), 1);
        assert_eq!(p.smt_threads(), 0);
    }

    #[test]
    fn close_spills_to_second_socket() {
        let p = topo().place(12, BindingPolicy::Close);
        assert_eq!(p.threads_per_socket, vec![8, 4]);
        assert_eq!(p.active_sockets(), 2);
    }

    #[test]
    fn spread_balances_sockets() {
        let p = topo().place(8, BindingPolicy::Spread);
        assert_eq!(p.threads_per_socket, vec![4, 4]);
        assert_eq!(p.active_sockets(), 2);
        assert_eq!(p.smt_threads(), 0);
    }

    #[test]
    fn smt_kicks_in_past_physical_cores() {
        let p = topo().place(20, BindingPolicy::Close);
        assert_eq!(p.cores_used(), 16);
        assert_eq!(p.smt_threads(), 4);
        // SMT siblings land where the second pass starts: socket 0.
        assert_eq!(p.smt_threads_per_socket, vec![4, 0]);
    }

    #[test]
    fn full_machine_uses_everything() {
        for bp in BindingPolicy::ALL {
            let p = topo().place(32, bp);
            assert_eq!(p.cores_used(), 16);
            assert_eq!(p.smt_threads(), 16);
            assert_eq!(p.effective_parallelism(0.35), 16.0 + 0.35 * 16.0);
        }
    }

    #[test]
    fn single_thread_close_vs_spread() {
        let pc = topo().place(1, BindingPolicy::Close);
        let ps = topo().place(1, BindingPolicy::Spread);
        assert_eq!(pc.active_sockets(), 1);
        assert_eq!(ps.active_sockets(), 1);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_threads_panics() {
        topo().place(0, BindingPolicy::Close);
    }

    #[test]
    #[should_panic(expected = "exceeds logical CPUs")]
    fn too_many_threads_panics() {
        topo().place(33, BindingPolicy::Close);
    }

    #[test]
    fn thread_conservation_property() {
        for tn in 1..=32 {
            for bp in BindingPolicy::ALL {
                let p = topo().place(tn, bp);
                let total: u32 = p.threads_per_socket.iter().sum();
                assert_eq!(total, tn);
                assert_eq!(p.cores_used() + p.smt_threads(), tn.min(32));
            }
        }
    }
}
