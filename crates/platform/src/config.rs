//! The SOCRATES autotuning knobs: compiler options (CO), thread number
//! (TN) and OpenMP binding policy (BP).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// GCC standard optimization level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OptLevel {
    /// `-Os`: optimize for size.
    Os,
    /// `-O1`
    O1,
    /// `-O2`
    O2,
    /// `-O3`
    O3,
}

impl OptLevel {
    /// All four standard levels used by the paper.
    pub const ALL: [OptLevel; 4] = [OptLevel::Os, OptLevel::O1, OptLevel::O2, OptLevel::O3];

    /// GCC spelling without the leading dash (as used in
    /// `#pragma GCC optimize`).
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::Os => "Os",
            OptLevel::O1 => "O1",
            OptLevel::O2 => "O2",
            OptLevel::O3 => "O3",
        }
    }
}

impl fmt::Display for OptLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for OptLevel {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim_start_matches('-') {
            "Os" => Ok(OptLevel::Os),
            "O1" => Ok(OptLevel::O1),
            "O2" => Ok(OptLevel::O2),
            "O3" => Ok(OptLevel::O3),
            other => Err(ParseConfigError(format!("unknown opt level `{other}`"))),
        }
    }
}

/// The individual GCC transformation flags explored by SOCRATES
/// (Section II of the paper, derived from Chen et al. 2012).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CompilerFlag {
    /// `-funsafe-math-optimizations`
    UnsafeMathOptimizations,
    /// `-fno-guess-branch-probability`
    NoGuessBranchProbability,
    /// `-fno-ivopts`
    NoIvopts,
    /// `-fno-tree-loop-optimize`
    NoTreeLoopOptimize,
    /// `-fno-inline-functions`
    NoInlineFunctions,
    /// `-funroll-all-loops`
    UnrollAllLoops,
}

impl CompilerFlag {
    /// All six transformation flags, in a fixed canonical order.
    pub const ALL: [CompilerFlag; 6] = [
        CompilerFlag::UnsafeMathOptimizations,
        CompilerFlag::NoGuessBranchProbability,
        CompilerFlag::NoIvopts,
        CompilerFlag::NoTreeLoopOptimize,
        CompilerFlag::NoInlineFunctions,
        CompilerFlag::UnrollAllLoops,
    ];

    /// GCC spelling without the `-f` prefix (pragma form).
    pub fn as_str(self) -> &'static str {
        match self {
            CompilerFlag::UnsafeMathOptimizations => "unsafe-math-optimizations",
            CompilerFlag::NoGuessBranchProbability => "no-guess-branch-probability",
            CompilerFlag::NoIvopts => "no-ivopts",
            CompilerFlag::NoTreeLoopOptimize => "no-tree-loop-optimize",
            CompilerFlag::NoInlineFunctions => "no-inline-functions",
            CompilerFlag::UnrollAllLoops => "unroll-all-loops",
        }
    }

    /// Index in [`CompilerFlag::ALL`] (used as a bit position).
    pub fn bit(self) -> usize {
        CompilerFlag::ALL
            .iter()
            .position(|f| *f == self)
            .expect("flag in ALL")
    }
}

impl fmt::Display for CompilerFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for CompilerFlag {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim_start_matches("-f");
        CompilerFlag::ALL
            .into_iter()
            .find(|f| f.as_str() == s)
            .ok_or_else(|| ParseConfigError(format!("unknown compiler flag `{s}`")))
    }
}

/// A complete compiler configuration: a base level plus a set of
/// transformation flags (possibly empty).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CompilerOptions {
    /// Base `-O` level.
    pub level: OptLevel,
    /// Additional transformation flags in canonical order.
    pub flags: Vec<CompilerFlag>,
}

impl CompilerOptions {
    /// A bare standard level.
    pub fn level(level: OptLevel) -> Self {
        CompilerOptions {
            level,
            flags: Vec::new(),
        }
    }

    /// A level plus flags; flags are sorted into canonical order and
    /// deduplicated so equal configurations compare equal.
    pub fn with_flags(level: OptLevel, flags: impl IntoIterator<Item = CompilerFlag>) -> Self {
        let mut flags: Vec<CompilerFlag> = flags.into_iter().collect();
        flags.sort();
        flags.dedup();
        CompilerOptions { level, flags }
    }

    /// Returns `true` if `flag` is enabled.
    pub fn has(&self, flag: CompilerFlag) -> bool {
        self.flags.contains(&flag)
    }

    /// The flag strings for `#pragma GCC optimize(...)`, level first.
    pub fn pragma_flags(&self) -> Vec<String> {
        let mut v = vec![self.level.as_str().to_string()];
        v.extend(self.flags.iter().map(|f| f.as_str().to_string()));
        v
    }

    /// Parses the pragma form back (`["O2", "no-ivopts", ...]`).
    ///
    /// # Errors
    ///
    /// Returns [`ParseConfigError`] when a token is not a level or flag.
    pub fn from_pragma_flags(flags: &[String]) -> Result<Self, ParseConfigError> {
        let mut level = None;
        let mut fs = Vec::new();
        for tok in flags {
            if let Ok(l) = tok.parse::<OptLevel>() {
                level = Some(l);
            } else {
                fs.push(tok.parse::<CompilerFlag>()?);
            }
        }
        let level = level.ok_or_else(|| ParseConfigError("missing opt level".into()))?;
        Ok(CompilerOptions::with_flags(level, fs))
    }

    /// Encodes the flag set as a bitmask (bit i = `CompilerFlag::ALL[i]`).
    pub fn flag_mask(&self) -> u8 {
        self.flags.iter().fold(0u8, |m, f| m | (1 << f.bit()))
    }

    /// Decodes a flag bitmask.
    pub fn from_mask(level: OptLevel, mask: u8) -> Self {
        let flags = CompilerFlag::ALL
            .into_iter()
            .filter(|f| mask & (1 << f.bit()) != 0);
        CompilerOptions::with_flags(level, flags)
    }

    /// The COBAYN search space from the original paper: base level in
    /// {O2, O3} × all 2^6 flag subsets = 128 combinations.
    pub fn cobayn_space() -> Vec<CompilerOptions> {
        let mut v = Vec::with_capacity(128);
        for level in [OptLevel::O2, OptLevel::O3] {
            for mask in 0u8..64 {
                v.push(CompilerOptions::from_mask(level, mask));
            }
        }
        v
    }
}

impl fmt::Display for CompilerOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "-{}", self.level)?;
        for fl in &self.flags {
            write!(f, ",{fl}")?;
        }
        Ok(())
    }
}

/// OpenMP binding policy (with `OMP_PLACES=cores`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BindingPolicy {
    /// `proc_bind(close)`: pack threads on consecutive cores.
    Close,
    /// `proc_bind(spread)`: spread threads across sockets.
    Spread,
}

impl BindingPolicy {
    /// Both policies, in paper order.
    pub const ALL: [BindingPolicy; 2] = [BindingPolicy::Close, BindingPolicy::Spread];

    /// The OpenMP clause spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            BindingPolicy::Close => "close",
            BindingPolicy::Spread => "spread",
        }
    }
}

impl fmt::Display for BindingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BindingPolicy {
    type Err = ParseConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "close" => Ok(BindingPolicy::Close),
            "spread" => Ok(BindingPolicy::Spread),
            other => Err(ParseConfigError(format!(
                "unknown binding policy `{other}`"
            ))),
        }
    }
}

/// One point of the SOCRATES autotuning space: (CO, TN, BP).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KnobConfig {
    /// Compiler options.
    pub co: CompilerOptions,
    /// Number of OpenMP threads (1 ..= logical cores).
    pub tn: u32,
    /// OpenMP binding policy.
    pub bp: BindingPolicy,
}

impl KnobConfig {
    /// Creates a configuration.
    pub fn new(co: CompilerOptions, tn: u32, bp: BindingPolicy) -> Self {
        KnobConfig { co, tn, bp }
    }
}

impl fmt::Display for KnobConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "co={} tn={} bp={}", self.co, self.tn, self.bp)
    }
}

/// Error parsing a knob value from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConfigError(pub String);

impl fmt::Display for ParseConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseConfigError {}

/// The custom flag combinations reported for 2mm in the paper (Fig. 4).
///
/// CF1: O3, no-guess-branch-probability, no-ivopts, no-tree-loop-optimize,
///      no-inline; CF2: O2, no-inline, unroll-all-loops; CF3: O2,
///      unsafe-math-optimizations, no-ivopts, no-tree-loop-optimize,
///      unroll-all-loops; CF4: O2, no-inline.
pub fn paper_cf_combos() -> [CompilerOptions; 4] {
    use CompilerFlag::*;
    [
        CompilerOptions::with_flags(
            OptLevel::O3,
            [
                NoGuessBranchProbability,
                NoIvopts,
                NoTreeLoopOptimize,
                NoInlineFunctions,
            ],
        ),
        CompilerOptions::with_flags(OptLevel::O2, [NoInlineFunctions, UnrollAllLoops]),
        CompilerOptions::with_flags(
            OptLevel::O2,
            [
                UnsafeMathOptimizations,
                NoIvopts,
                NoTreeLoopOptimize,
                UnrollAllLoops,
            ],
        ),
        CompilerOptions::with_flags(OptLevel::O2, [NoInlineFunctions]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_level_parses_with_or_without_dash() {
        assert_eq!("-O3".parse::<OptLevel>().unwrap(), OptLevel::O3);
        assert_eq!("Os".parse::<OptLevel>().unwrap(), OptLevel::Os);
        assert!("O9".parse::<OptLevel>().is_err());
    }

    #[test]
    fn flags_roundtrip_through_strings() {
        for f in CompilerFlag::ALL {
            assert_eq!(f.as_str().parse::<CompilerFlag>().unwrap(), f);
        }
    }

    #[test]
    fn with_flags_sorts_and_dedups() {
        let a = CompilerOptions::with_flags(
            OptLevel::O2,
            [
                CompilerFlag::UnrollAllLoops,
                CompilerFlag::NoIvopts,
                CompilerFlag::UnrollAllLoops,
            ],
        );
        let b = CompilerOptions::with_flags(
            OptLevel::O2,
            [CompilerFlag::NoIvopts, CompilerFlag::UnrollAllLoops],
        );
        assert_eq!(a, b);
    }

    #[test]
    fn pragma_flags_roundtrip() {
        let co = CompilerOptions::with_flags(
            OptLevel::O3,
            [
                CompilerFlag::UnsafeMathOptimizations,
                CompilerFlag::NoIvopts,
            ],
        );
        let flags = co.pragma_flags();
        assert_eq!(flags[0], "O3");
        let back = CompilerOptions::from_pragma_flags(&flags).unwrap();
        assert_eq!(back, co);
    }

    #[test]
    fn mask_roundtrip_covers_all_subsets() {
        for mask in 0u8..64 {
            let co = CompilerOptions::from_mask(OptLevel::O2, mask);
            assert_eq!(co.flag_mask(), mask);
        }
    }

    #[test]
    fn cobayn_space_has_128_unique_points() {
        let space = CompilerOptions::cobayn_space();
        assert_eq!(space.len(), 128);
        let set: std::collections::HashSet<_> = space.iter().collect();
        assert_eq!(set.len(), 128);
    }

    #[test]
    fn paper_cf_combos_match_section_iii() {
        let [cf1, cf2, cf3, cf4] = paper_cf_combos();
        assert_eq!(cf1.level, OptLevel::O3);
        assert_eq!(cf1.flags.len(), 4);
        assert!(cf2.has(CompilerFlag::UnrollAllLoops));
        assert!(cf3.has(CompilerFlag::UnsafeMathOptimizations));
        assert_eq!(cf4.flags, vec![CompilerFlag::NoInlineFunctions]);
    }

    #[test]
    fn knob_config_display_is_readable() {
        let c = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            8,
            BindingPolicy::Spread,
        );
        assert_eq!(c.to_string(), "co=-O2 tn=8 bp=spread");
    }

    #[test]
    fn binding_policy_parses() {
        assert_eq!(
            "close".parse::<BindingPolicy>().unwrap(),
            BindingPolicy::Close
        );
        assert!("scatter".parse::<BindingPolicy>().is_err());
    }
}
