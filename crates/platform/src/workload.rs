//! Workload characterisation used by the timing, power and flag models.
//!
//! A [`WorkloadProfile`] is the analytic abstraction of one kernel working
//! on one dataset: how much compute and memory traffic it generates and
//! the structural properties that decide how it responds to compiler flags,
//! thread counts and binding policies.

use serde::{Deserialize, Serialize};

/// Analytic description of a kernel + dataset.
///
/// All structural fields are in `[0, 1]` unless noted. Construct with
/// [`WorkloadProfile::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadProfile {
    /// Kernel name (used for deterministic per-kernel response variation).
    pub name: String,
    /// Total floating-point operations for one kernel invocation.
    pub flops: f64,
    /// Total DRAM traffic in bytes for one invocation.
    pub bytes: f64,
    /// Fraction of work that parallelises (Amdahl's p).
    pub parallel_fraction: f64,
    /// How much the kernel benefits from NUMA-local data (1 = fully local
    /// access pattern, 0 = data shared/streamed across sockets).
    pub locality: f64,
    /// Density of data-dependent branches in the inner loops.
    pub branch_density: f64,
    /// Share of floating-point work in the instruction mix.
    pub fp_intensity: f64,
    /// Density of function calls in hot code.
    pub call_density: f64,
    /// Normalised loop-nest depth (1.0 = triply-nested dense kernels).
    pub loop_nest_depth: f64,
    /// Whether the kernel is a stencil (affects unroll/ivopts response).
    pub stencil: bool,
    /// Working-set size in bytes (decides cache behaviour).
    pub working_set_bytes: f64,
    /// Coherence/synchronisation contention coefficient (USL kappa seed).
    pub contention: f64,
}

impl WorkloadProfile {
    /// Starts building a profile for the named kernel.
    pub fn builder(name: impl Into<String>) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder::new(name)
    }

    /// Arithmetic intensity in flops/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.bytes <= 0.0 {
            f64::INFINITY
        } else {
            self.flops / self.bytes
        }
    }

    /// Whether the kernel is memory-bound on a machine with the given
    /// balance point (flops/byte at which compute and memory time equal).
    pub fn is_memory_bound(&self, machine_balance: f64) -> bool {
        self.arithmetic_intensity() < machine_balance
    }

    /// Validates all invariants; returns a list of violations (empty when
    /// the profile is well-formed).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check_unit = |name: &str, v: f64| {
            if !(0.0..=1.0).contains(&v) {
                problems.push(format!("{name} = {v} outside [0, 1]"));
            }
        };
        check_unit("parallel_fraction", self.parallel_fraction);
        check_unit("locality", self.locality);
        check_unit("branch_density", self.branch_density);
        check_unit("fp_intensity", self.fp_intensity);
        check_unit("call_density", self.call_density);
        check_unit("loop_nest_depth", self.loop_nest_depth);
        check_unit("contention", self.contention);
        for (name, v) in [
            ("flops", self.flops),
            ("bytes", self.bytes),
            ("working_set_bytes", self.working_set_bytes),
        ] {
            if !v.is_finite() || v < 0.0 {
                problems.push(format!("{name} = {v} must be finite and non-negative"));
            }
        }
        if self.flops <= 0.0 && self.bytes <= 0.0 {
            problems.push("profile has neither compute nor memory work".into());
        }
        problems
    }
}

/// Builder for [`WorkloadProfile`] (defaults model a balanced dense kernel).
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    profile: WorkloadProfile,
}

impl WorkloadProfileBuilder {
    fn new(name: impl Into<String>) -> Self {
        WorkloadProfileBuilder {
            profile: WorkloadProfile {
                name: name.into(),
                flops: 1e9,
                bytes: 2.5e8,
                parallel_fraction: 0.95,
                locality: 0.7,
                branch_density: 0.05,
                fp_intensity: 0.8,
                call_density: 0.0,
                loop_nest_depth: 1.0,
                stencil: false,
                working_set_bytes: 2e7,
                contention: 0.02,
            },
        }
    }

    /// Sets total floating-point operations.
    pub fn flops(mut self, v: f64) -> Self {
        self.profile.flops = v;
        self
    }

    /// Sets total DRAM traffic in bytes.
    pub fn bytes(mut self, v: f64) -> Self {
        self.profile.bytes = v;
        self
    }

    /// Sets the parallel fraction (Amdahl's p).
    pub fn parallel_fraction(mut self, v: f64) -> Self {
        self.profile.parallel_fraction = v;
        self
    }

    /// Sets NUMA locality.
    pub fn locality(mut self, v: f64) -> Self {
        self.profile.locality = v;
        self
    }

    /// Sets branch density.
    pub fn branch_density(mut self, v: f64) -> Self {
        self.profile.branch_density = v;
        self
    }

    /// Sets floating-point intensity.
    pub fn fp_intensity(mut self, v: f64) -> Self {
        self.profile.fp_intensity = v;
        self
    }

    /// Sets call density.
    pub fn call_density(mut self, v: f64) -> Self {
        self.profile.call_density = v;
        self
    }

    /// Sets normalised loop-nest depth.
    pub fn loop_nest_depth(mut self, v: f64) -> Self {
        self.profile.loop_nest_depth = v;
        self
    }

    /// Marks the kernel as a stencil.
    pub fn stencil(mut self, v: bool) -> Self {
        self.profile.stencil = v;
        self
    }

    /// Sets working-set size in bytes.
    pub fn working_set_bytes(mut self, v: f64) -> Self {
        self.profile.working_set_bytes = v;
        self
    }

    /// Sets the contention coefficient.
    pub fn contention(mut self, v: f64) -> Self {
        self.profile.contention = v;
        self
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated (see
    /// [`WorkloadProfile::validate`]); profiles are build-time constants,
    /// so a panic here is a programming error, not a runtime condition.
    pub fn build(self) -> WorkloadProfile {
        let problems = self.profile.validate();
        assert!(
            problems.is_empty(),
            "invalid workload profile `{}`: {}",
            self.profile.name,
            problems.join("; ")
        );
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_valid_default() {
        let p = WorkloadProfile::builder("k").build();
        assert!(p.validate().is_empty());
        assert_eq!(p.name, "k");
    }

    #[test]
    fn arithmetic_intensity_computed() {
        let p = WorkloadProfile::builder("k").flops(8e9).bytes(2e9).build();
        assert!((p.arithmetic_intensity() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_classification() {
        let streaming = WorkloadProfile::builder("stream")
            .flops(1e8)
            .bytes(1e9)
            .build();
        let dense = WorkloadProfile::builder("gemm")
            .flops(1e10)
            .bytes(1e8)
            .build();
        assert!(streaming.is_memory_bound(5.0));
        assert!(!dense.is_memory_bound(5.0));
    }

    #[test]
    fn zero_bytes_gives_infinite_intensity() {
        let p = WorkloadProfile::builder("k").bytes(0.0).build();
        assert!(p.arithmetic_intensity().is_infinite());
    }

    #[test]
    #[should_panic(expected = "invalid workload profile")]
    fn out_of_range_fraction_panics() {
        let _ = WorkloadProfile::builder("k").parallel_fraction(1.5).build();
    }

    #[test]
    fn validate_reports_all_problems() {
        let mut p = WorkloadProfile::builder("k").build();
        p.locality = -0.1;
        p.branch_density = 2.0;
        p.flops = f64::NAN;
        assert_eq!(p.validate().len(), 3);
    }

    #[test]
    fn no_work_at_all_is_invalid() {
        let mut p = WorkloadProfile::builder("k").build();
        p.flops = 0.0;
        p.bytes = 0.0;
        assert!(!p.validate().is_empty());
    }
}
