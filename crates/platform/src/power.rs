//! RAPL-style power model: machine idle floor, per-socket uncore, per-core
//! dynamic power scaled by compiler-induced ILP, SMT increments and DRAM
//! power proportional to achieved bandwidth.

use crate::config::KnobConfig;
use crate::flags::FlagEffectModel;
use crate::timing::{TimingBreakdown, TimingParams};
use crate::topology::Placement;
use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the power model (watts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Machine floor: fans, VRs, DRAM refresh, both packages idle.
    pub idle_w: f64,
    /// Extra power when a socket has at least one active thread (uncore,
    /// L3, clocks out of deep sleep).
    pub uncore_w: f64,
    /// Dynamic power of one busy physical core at `-O1` IPC.
    pub core_w: f64,
    /// Extra power of a second SMT thread on a busy core.
    pub smt_w: f64,
    /// DRAM power at full (two-socket) bandwidth.
    pub dram_max_w: f64,
    /// Fraction of core power still burned while stalled on memory.
    pub stall_floor: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            idle_w: 38.0,
            uncore_w: 7.0,
            core_w: 3.7,
            smt_w: 1.1,
            dram_max_w: 14.0,
            stall_floor: 0.35,
        }
    }
}

impl PowerParams {
    /// Average power (watts) over one kernel invocation.
    ///
    /// The run is modelled as a serial phase (one busy core) followed by a
    /// parallel phase (all placed threads busy, derated by memory stalls);
    /// the reported value is the time-weighted average, which is what a
    /// RAPL-window measurement over the kernel region would observe.
    pub fn average_power(
        &self,
        w: &WorkloadProfile,
        cfg: &KnobConfig,
        placement: &Placement,
        breakdown: &TimingBreakdown,
        timing: &TimingParams,
        flags: &FlagEffectModel,
    ) -> f64 {
        let pf = flags.power_factor(w, &cfg.co);
        let total = breakdown.total_s();
        if total <= 0.0 {
            return self.idle_w;
        }

        let serial_power = self.idle_w + self.uncore_w + self.core_w * pf;

        let util = breakdown.compute_utilization();
        let activity = self.stall_floor + (1.0 - self.stall_floor) * util;
        let cores = f64::from(placement.cores_used());
        let smt = f64::from(placement.smt_threads());
        let sockets = f64::from(placement.active_sockets());
        let par = breakdown.parallel_s();
        let achieved_bw = if par > 0.0 { w.bytes / par } else { 0.0 };
        let max_bw = timing.bw_per_socket * f64::from(placement.threads_per_socket.len() as u32);
        let dram_power = self.dram_max_w * (achieved_bw / max_bw).min(1.0);
        let parallel_power = self.idle_w
            + self.uncore_w * sockets
            + self.core_w * pf * cores * activity
            + self.smt_w * smt * activity
            + dram_power;

        let serial_like = breakdown.serial_s + breakdown.overhead_s;
        (serial_like * serial_power + par * parallel_power) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{BindingPolicy, CompilerOptions, OptLevel};
    use crate::topology::Topology;

    struct Rig {
        pp: PowerParams,
        tp: TimingParams,
        topo: Topology,
        fm: FlagEffectModel,
    }

    impl Rig {
        fn new() -> Self {
            Rig {
                pp: PowerParams::default(),
                tp: TimingParams::default(),
                topo: Topology::xeon_e5_2630_v3(),
                fm: FlagEffectModel::new(),
            }
        }

        fn power(&self, w: &WorkloadProfile, tn: u32, bp: BindingPolicy, level: OptLevel) -> f64 {
            let cfg = KnobConfig::new(CompilerOptions::level(level), tn, bp);
            let placement = self.topo.place(tn, bp);
            let b = self.tp.breakdown(w, &cfg, &placement, &self.topo, &self.fm);
            self.pp
                .average_power(w, &cfg, &placement, &b, &self.tp, &self.fm)
        }
    }

    fn kernel() -> WorkloadProfile {
        // Polybench kernels are entire parallel loop nests: the serial
        // remainder is loop setup only.
        WorkloadProfile::builder("2mm-like")
            .flops(2.5e9)
            .bytes(6e8)
            .parallel_fraction(0.995)
            .build()
    }

    #[test]
    fn power_range_matches_paper_envelope() {
        // Fig. 4 sweeps power budgets 45..140 W: the platform's reachable
        // band must fall inside roughly that envelope.
        let r = Rig::new();
        let w = kernel();
        let min = r.power(&w, 1, BindingPolicy::Close, OptLevel::Os);
        let max = r.power(&w, 32, BindingPolicy::Spread, OptLevel::O3);
        assert!((44.0..56.0).contains(&min), "min power {min}");
        assert!((120.0..150.0).contains(&max), "max power {max}");
    }

    #[test]
    fn more_threads_draw_more_power() {
        let r = Rig::new();
        let w = kernel();
        let mut last = 0.0;
        for tn in [1, 4, 8, 16, 32] {
            let p = r.power(&w, tn, BindingPolicy::Close, OptLevel::O2);
            assert!(p > last, "tn={tn}: {p} <= {last}");
            last = p;
        }
    }

    #[test]
    fn spread_costs_more_at_low_thread_counts() {
        // Spread lights up both sockets' uncore immediately.
        let r = Rig::new();
        let w = kernel();
        let close = r.power(&w, 4, BindingPolicy::Close, OptLevel::O2);
        let spread = r.power(&w, 4, BindingPolicy::Spread, OptLevel::O2);
        assert!(spread > close, "close={close} spread={spread}");
    }

    #[test]
    fn o3_draws_more_power_than_os() {
        let r = Rig::new();
        let w = kernel();
        let os = r.power(&w, 16, BindingPolicy::Close, OptLevel::Os);
        let o3 = r.power(&w, 16, BindingPolicy::Close, OptLevel::O3);
        assert!(o3 > os);
    }

    #[test]
    fn memory_bound_kernels_burn_less_core_power() {
        let r = Rig::new();
        let compute = kernel();
        let memory = WorkloadProfile::builder("stream")
            .flops(1e8)
            .bytes(8e9)
            .build();
        let pc = r.power(&compute, 16, BindingPolicy::Close, OptLevel::O2);
        let pm = r.power(&memory, 16, BindingPolicy::Close, OptLevel::O2);
        assert!(pm < pc, "stalled cores must draw less: {pm} vs {pc}");
    }

    #[test]
    fn zero_duration_returns_idle() {
        let r = Rig::new();
        let w = kernel();
        let cfg = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            1,
            BindingPolicy::Close,
        );
        let placement = r.topo.place(1, BindingPolicy::Close);
        let b = TimingBreakdown {
            serial_s: 0.0,
            compute_s: 0.0,
            memory_s: 0.0,
            overhead_s: 0.0,
        };
        assert_eq!(
            r.pp.average_power(&w, &cfg, &placement, &b, &r.tp, &r.fm),
            r.pp.idle_w
        );
    }
}
