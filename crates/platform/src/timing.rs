//! Execution-time model: roofline compute/memory balance, Amdahl serial
//! fraction, USL-style contention, SMT yield and NUMA placement effects.

use crate::config::{BindingPolicy, KnobConfig};
use crate::flags::FlagEffectModel;
use crate::topology::{Placement, Topology};
use crate::workload::WorkloadProfile;
use serde::{Deserialize, Serialize};

/// Tunable coefficients of the timing model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Single-core flop rate at `-O1`, flops/s.
    pub base_flops_per_core: f64,
    /// Fraction of an extra core an SMT sibling thread contributes.
    pub smt_yield: f64,
    /// Peak DRAM bandwidth per socket, bytes/s.
    pub bw_per_socket: f64,
    /// Bandwidth saturation constant: `t` threads on a socket achieve
    /// `bw * t / (t + k)`.
    pub bw_saturation_k: f64,
    /// Compute-rate penalty per unit non-locality when threads span two
    /// sockets under `spread`.
    pub spread_remote_penalty: f64,
    /// Same, for `close` placements that spill onto the second socket.
    pub close_spill_penalty: f64,
    /// USL-style contention coefficient multiplier.
    pub contention_scale: f64,
    /// Fixed fork/join overhead, seconds.
    pub fork_join_base_s: f64,
    /// Additional fork/join overhead per thread, seconds.
    pub fork_join_per_thread_s: f64,
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams {
            base_flops_per_core: 1.3e9,
            smt_yield: 0.35,
            bw_per_socket: 28e9,
            bw_saturation_k: 2.0,
            spread_remote_penalty: 0.12,
            close_spill_penalty: 0.06,
            contention_scale: 0.08,
            fork_join_base_s: 60e-6,
            fork_join_per_thread_s: 2e-6,
        }
    }
}

/// Phase-level timing breakdown of one kernel invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingBreakdown {
    /// Serial (non-parallelisable) compute time, seconds.
    pub serial_s: f64,
    /// Parallel-phase compute time, seconds.
    pub compute_s: f64,
    /// Parallel-phase memory time, seconds.
    pub memory_s: f64,
    /// Fork/join and runtime overhead, seconds.
    pub overhead_s: f64,
}

impl TimingBreakdown {
    /// The parallel phase duration (compute and memory overlap; the
    /// longer one dominates — roofline).
    pub fn parallel_s(&self) -> f64 {
        self.compute_s.max(self.memory_s)
    }

    /// Total wall-clock duration.
    pub fn total_s(&self) -> f64 {
        self.serial_s + self.parallel_s() + self.overhead_s
    }

    /// Fraction of the parallel phase spent computing (1 = compute-bound).
    pub fn compute_utilization(&self) -> f64 {
        let p = self.parallel_s();
        if p <= 0.0 {
            1.0
        } else {
            self.compute_s / p
        }
    }
}

impl TimingParams {
    /// Computes the timing breakdown of one kernel invocation.
    pub fn breakdown(
        &self,
        w: &WorkloadProfile,
        cfg: &KnobConfig,
        placement: &Placement,
        topo: &Topology,
        flags: &FlagEffectModel,
    ) -> TimingBreakdown {
        let speedup = flags.speedup(w, &cfg.co);
        let rate1 = self.base_flops_per_core * speedup;

        let serial_flops = (1.0 - w.parallel_fraction) * w.flops;
        let parallel_flops = w.parallel_fraction * w.flops;

        // Effective parallelism: cores + SMT siblings, derated by
        // cross-socket coherence and USL contention.
        let coherence = self.coherence_efficiency(w, cfg.bp, placement);
        let contention = 1.0
            + w.contention * f64::from(placement.threads.saturating_sub(1)) * self.contention_scale;
        let n_eff = placement.effective_parallelism(self.smt_yield) * coherence / contention;

        let serial_s = serial_flops / rate1;
        let compute_s = parallel_flops / (rate1 * n_eff.max(1e-9));
        let memory_s = w.bytes / self.aggregate_bandwidth(placement).max(1.0);
        let overhead_s = if placement.threads > 1 {
            self.fork_join_base_s + self.fork_join_per_thread_s * f64::from(placement.threads)
        } else {
            0.0
        };
        let _ = topo; // topology is implicit in the placement
        TimingBreakdown {
            serial_s,
            compute_s,
            memory_s,
            overhead_s,
        }
    }

    /// Aggregate achievable DRAM bandwidth for a placement, bytes/s.
    pub fn aggregate_bandwidth(&self, placement: &Placement) -> f64 {
        placement
            .threads_per_socket
            .iter()
            .map(|&t| {
                let t = f64::from(t);
                if t <= 0.0 {
                    0.0
                } else {
                    self.bw_per_socket * t / (t + self.bw_saturation_k)
                }
            })
            .sum()
    }

    fn coherence_efficiency(
        &self,
        w: &WorkloadProfile,
        bp: BindingPolicy,
        placement: &Placement,
    ) -> f64 {
        if placement.active_sockets() <= 1 {
            return 1.0;
        }
        let penalty = match bp {
            BindingPolicy::Spread => self.spread_remote_penalty,
            BindingPolicy::Close => self.close_spill_penalty,
        };
        (1.0 - penalty * (1.0 - w.locality)).max(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CompilerOptions, OptLevel};

    fn setup() -> (TimingParams, Topology, FlagEffectModel) {
        (
            TimingParams::default(),
            Topology::xeon_e5_2630_v3(),
            FlagEffectModel::new(),
        )
    }

    fn cfg(tn: u32, bp: BindingPolicy) -> KnobConfig {
        KnobConfig::new(CompilerOptions::level(OptLevel::O2), tn, bp)
    }

    fn compute_bound() -> WorkloadProfile {
        WorkloadProfile::builder("2mm-like")
            .flops(2.5e9)
            .bytes(6e8)
            .parallel_fraction(0.97)
            .build()
    }

    fn memory_bound() -> WorkloadProfile {
        WorkloadProfile::builder("mvt-like")
            .flops(2e8)
            .bytes(4e9)
            .parallel_fraction(0.95)
            .locality(0.3)
            .build()
    }

    #[test]
    fn more_threads_reduce_time_for_parallel_kernels() {
        let (tp, topo, fm) = setup();
        let w = compute_bound();
        let t1 = tp
            .breakdown(
                &w,
                &cfg(1, BindingPolicy::Close),
                &topo.place(1, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        let t16 = tp
            .breakdown(
                &w,
                &cfg(16, BindingPolicy::Close),
                &topo.place(16, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        assert!(t16 < t1 / 8.0, "t1={t1} t16={t16}");
    }

    #[test]
    fn smt_gains_are_sublinear() {
        let (tp, topo, fm) = setup();
        let w = compute_bound();
        let t16 = tp
            .breakdown(
                &w,
                &cfg(16, BindingPolicy::Close),
                &topo.place(16, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        let t32 = tp
            .breakdown(
                &w,
                &cfg(32, BindingPolicy::Close),
                &topo.place(32, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        assert!(t32 < t16, "SMT should still help");
        assert!(t32 > t16 / 1.8, "SMT must not double performance");
    }

    #[test]
    fn memory_bound_kernels_prefer_spread_bandwidth() {
        let (tp, topo, fm) = setup();
        let w = memory_bound();
        let close = tp
            .breakdown(
                &w,
                &cfg(8, BindingPolicy::Close),
                &topo.place(8, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        let spread = tp
            .breakdown(
                &w,
                &cfg(8, BindingPolicy::Spread),
                &topo.place(8, BindingPolicy::Spread),
                &topo,
                &fm,
            )
            .total_s();
        // 8 threads close = 1 socket of bandwidth; spread = 2 sockets.
        assert!(spread < close, "close={close} spread={spread}");
    }

    #[test]
    fn compute_bound_kernel_single_socket_prefers_close() {
        let (tp, topo, fm) = setup();
        // Highly local, compute-bound: spread pays coherence for nothing.
        let w = WorkloadProfile::builder("local")
            .flops(5e9)
            .bytes(1e7)
            .locality(0.2)
            .build();
        let close = tp
            .breakdown(
                &w,
                &cfg(8, BindingPolicy::Close),
                &topo.place(8, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        let spread = tp
            .breakdown(
                &w,
                &cfg(8, BindingPolicy::Spread),
                &topo.place(8, BindingPolicy::Spread),
                &topo,
                &fm,
            )
            .total_s();
        assert!(close < spread, "close={close} spread={spread}");
    }

    #[test]
    fn amdahl_limits_speedup() {
        let (tp, topo, fm) = setup();
        let w = WorkloadProfile::builder("half-serial")
            .flops(1e9)
            .bytes(1e6)
            .parallel_fraction(0.5)
            .build();
        let t1 = tp
            .breakdown(
                &w,
                &cfg(1, BindingPolicy::Close),
                &topo.place(1, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        let t32 = tp
            .breakdown(
                &w,
                &cfg(32, BindingPolicy::Close),
                &topo.place(32, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s();
        assert!(t1 / t32 < 2.05, "speedup bounded by 1/(1-p)");
    }

    #[test]
    fn bandwidth_saturates_per_socket() {
        let tp = TimingParams::default();
        let topo = Topology::xeon_e5_2630_v3();
        let bw1 = tp.aggregate_bandwidth(&topo.place(1, BindingPolicy::Close));
        let bw8 = tp.aggregate_bandwidth(&topo.place(8, BindingPolicy::Close));
        let bw8s = tp.aggregate_bandwidth(&topo.place(8, BindingPolicy::Spread));
        assert!(bw8 > bw1 * 2.0);
        assert!(bw8 < tp.bw_per_socket);
        assert!(bw8s > bw8 * 1.3, "spread unlocks the second controller");
    }

    #[test]
    fn contention_throttles_high_thread_counts() {
        let (tp, topo, fm) = setup();
        let time_at = |contention: f64, tn: u32| {
            let w = WorkloadProfile::builder("contended")
                .flops(1e9)
                .bytes(1e6)
                .parallel_fraction(1.0)
                .contention(contention)
                .build();
            tp.breakdown(
                &w,
                &cfg(tn, BindingPolicy::Close),
                &topo.place(tn, BindingPolicy::Close),
                &topo,
                &fm,
            )
            .total_s()
        };
        // Scaling 8 -> 32 threads must degrade markedly under contention.
        let gain_clean = time_at(0.0, 8) / time_at(0.0, 32);
        let gain_contended = time_at(0.5, 8) / time_at(0.5, 32);
        assert!(
            gain_contended < 0.62 * gain_clean,
            "clean={gain_clean} contended={gain_contended}"
        );
    }

    #[test]
    fn breakdown_total_is_sum_of_phases() {
        let (tp, topo, fm) = setup();
        let w = compute_bound();
        let b = tp.breakdown(
            &w,
            &cfg(4, BindingPolicy::Close),
            &topo.place(4, BindingPolicy::Close),
            &topo,
            &fm,
        );
        let expected = b.serial_s + b.compute_s.max(b.memory_s) + b.overhead_s;
        assert!((b.total_s() - expected).abs() < 1e-15);
        assert!(b.compute_utilization() > 0.9, "compute-bound kernel");
    }

    #[test]
    fn single_thread_has_no_fork_join_overhead() {
        let (tp, topo, fm) = setup();
        let w = compute_bound();
        let b = tp.breakdown(
            &w,
            &cfg(1, BindingPolicy::Close),
            &topo.place(1, BindingPolicy::Close),
            &topo,
            &fm,
        );
        assert_eq!(b.overhead_s, 0.0);
    }
}
