//! Property-based tests of the platform model: physical sanity
//! invariants that must hold over the whole configuration space and a
//! wide range of workloads.

use platform_sim::{
    BindingPolicy, CompilerFlag, CompilerOptions, KnobConfig, Machine, OptLevel, Topology,
    WorkloadProfile,
};
use proptest::prelude::*;

fn workload_strategy() -> impl Strategy<Value = WorkloadProfile> {
    (
        1e7f64..1e10, // flops
        1e6f64..1e10, // bytes
        0.5f64..1.0,  // parallel fraction
        0.0f64..1.0,  // locality
        0.0f64..0.8,  // branch density
        0.1f64..1.0,  // fp intensity
        0.0f64..0.5,  // contention
    )
        .prop_map(|(flops, bytes, pf, loc, br, fp, cont)| {
            WorkloadProfile::builder("prop-kernel")
                .flops(flops)
                .bytes(bytes)
                .parallel_fraction(pf)
                .locality(loc)
                .branch_density(br)
                .fp_intensity(fp)
                .contention(cont)
                .build()
        })
}

fn config_strategy() -> impl Strategy<Value = KnobConfig> {
    (0usize..4, 0u8..64, 1u32..=32, prop::bool::ANY).prop_map(|(level, mask, tn, spread)| {
        let level = OptLevel::ALL[level];
        KnobConfig::new(
            CompilerOptions::from_mask(level, mask),
            tn,
            if spread {
                BindingPolicy::Spread
            } else {
                BindingPolicy::Close
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every execution has positive, finite time and a power inside the
    /// machine's physical envelope.
    #[test]
    fn executions_are_physical(w in workload_strategy(), cfg in config_strategy()) {
        let machine = Machine::xeon_e5_2630_v3(1).noiseless();
        let e = machine.expected(&w, &cfg);
        prop_assert!(e.time_s.is_finite() && e.time_s > 0.0);
        prop_assert!(e.power_w.is_finite());
        prop_assert!(e.power_w >= 38.0, "below idle floor: {}", e.power_w);
        prop_assert!(e.power_w <= 180.0, "above TDP envelope: {}", e.power_w);
        prop_assert!((e.energy_j - e.time_s * e.power_w).abs() < 1e-9);
    }

    /// Doubling the work at fixed configuration takes longer and at
    /// least as much energy.
    #[test]
    fn more_work_takes_longer(w in workload_strategy(), cfg in config_strategy()) {
        let machine = Machine::xeon_e5_2630_v3(2).noiseless();
        let mut double = w.clone();
        double.flops *= 2.0;
        double.bytes *= 2.0;
        let a = machine.expected(&w, &cfg);
        let b = machine.expected(&double, &cfg);
        prop_assert!(b.time_s > a.time_s);
        prop_assert!(b.energy_j > a.energy_j * 0.99);
    }

    /// The noisy execution is centred on the expectation: over many
    /// samples the mean ratio converges near 1.
    #[test]
    fn noise_is_unbiased(w in workload_strategy(), seed in 0u64..1000) {
        let cfg = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            8,
            BindingPolicy::Close,
        );
        let mut machine = Machine::xeon_e5_2630_v3(seed);
        let expected = machine.expected(&w, &cfg).time_s;
        let n = 60;
        let mean: f64 = (0..n).map(|_| machine.execute(&w, &cfg).time_s).sum::<f64>() / f64::from(n);
        prop_assert!((mean / expected - 1.0).abs() < 0.03, "bias {}", mean / expected);
    }

    /// Flag effects are bounded: no configuration is more than 3x faster
    /// or 3x slower than -O1 single-thread (compiler flags alone cannot
    /// do more on this workload class).
    #[test]
    fn flag_effects_are_bounded(w in workload_strategy(), mask in 0u8..64, level in 0usize..4) {
        let machine = Machine::xeon_e5_2630_v3(3).noiseless();
        let base = KnobConfig::new(CompilerOptions::level(OptLevel::O1), 1, BindingPolicy::Close);
        let test = KnobConfig::new(
            CompilerOptions::from_mask(OptLevel::ALL[level], mask),
            1,
            BindingPolicy::Close,
        );
        let tb = machine.expected(&w, &base).time_s;
        let tt = machine.expected(&w, &test).time_s;
        let ratio = tb / tt;
        prop_assert!((1.0 / 3.0..3.0).contains(&ratio), "speedup {ratio}");
    }

    /// Placement conservation: threads are neither created nor lost, for
    /// any (tn, bp) and for a range of topologies.
    #[test]
    fn placement_conserves_threads(
        sockets in 1u32..4,
        cores in 2u32..16,
        smt in 1u32..3,
        tn_seed in 1u32..1000,
        spread in prop::bool::ANY,
    ) {
        let topo = Topology { sockets, cores_per_socket: cores, smt };
        let tn = 1 + tn_seed % topo.logical_cpus();
        let bp = if spread { BindingPolicy::Spread } else { BindingPolicy::Close };
        let p = topo.place(tn, bp);
        prop_assert_eq!(p.threads_per_socket.iter().sum::<u32>(), tn);
        prop_assert_eq!(p.cores_used() + p.smt_threads(), tn);
        for (s, &c) in p.cores_used_per_socket.iter().enumerate() {
            prop_assert!(c <= topo.cores_per_socket, "socket {s} over-subscribed");
        }
    }

    /// Close placement never lights up more sockets than spread.
    #[test]
    fn close_is_socket_frugal(tn in 1u32..=32) {
        let topo = Topology::xeon_e5_2630_v3();
        let close = topo.place(tn, BindingPolicy::Close);
        let spread = topo.place(tn, BindingPolicy::Spread);
        prop_assert!(close.active_sockets() <= spread.active_sockets());
    }

    /// Power is monotone in thread count at fixed everything else.
    #[test]
    fn power_monotone_in_threads(w in workload_strategy(), tn in 1u32..32) {
        let machine = Machine::xeon_e5_2630_v3(4).noiseless();
        let cfg = |t| KnobConfig::new(CompilerOptions::level(OptLevel::O2), t, BindingPolicy::Close);
        let a = machine.expected(&w, &cfg(tn)).power_w;
        let b = machine.expected(&w, &cfg(tn + 1)).power_w;
        prop_assert!(b >= a * 0.995, "tn={tn}: {a} -> {b}");
    }
}

#[test]
fn compiler_flag_bits_are_consistent() {
    for (i, f) in CompilerFlag::ALL.iter().enumerate() {
        assert_eq!(f.bit(), i);
    }
}
