//! Criterion benchmark of batch enhancement over the 12-app Polybench
//! suite: serial per-target re-training (every `enhance` call rebuilds
//! the COBAYN corpus from scratch — the seed repository's O(n²)
//! behaviour) versus the shared-corpus staged pipeline
//! (`enhance_all`, which builds each corpus entry once and masks the
//! target at query time).
//!
//! The wall-clock gap between the two rows is the speedup the artifact
//! store buys; `BENCH.md` tracks the measured numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use polybench::{App, Dataset};
use socrates::Toolchain;

fn toolchain() -> Toolchain {
    Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
}

fn bench_enhance_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("enhance-batch");
    group.sample_size(5);
    let tc = toolchain();

    // The seed behaviour: one throwaway store per target, so the
    // corpus (parse + features + iterative compilation over the 11
    // siblings) is rebuilt for every app — 132 corpus constructions.
    group.bench_function("12apps-serial-retrain", |b| {
        b.iter(|| {
            App::ALL
                .iter()
                .map(|&app| tc.enhance(app).expect("enhance").knowledge.len())
                .sum::<usize>()
        });
    });

    // The staged pipeline: one shared store, 12 corpus constructions,
    // targets fanned out over rayon — bit-identical output (pinned by
    // tests/pipeline_equivalence.rs).
    group.bench_function("12apps-shared-corpus-batch", |b| {
        b.iter(|| tc.enhance_all(&App::ALL).expect("enhance_all").len());
    });

    group.finish();
}

criterion_group!(benches, bench_enhance_batch);
criterion_main!(benches);
