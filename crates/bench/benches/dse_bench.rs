//! Criterion benchmarks of the design-time pipeline: full-factorial DSE
//! profiling, COBAYN training/prediction and Milepost extraction — the
//! stages whose cost the SOCRATES toolchain pays once per application.

use cobayn::{iterative_compilation, Cobayn, CobaynConfig, TrainingApp};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use margot::Knowledge;
use milepost::extract_function;
use platform_sim::{BindingPolicy, KnobConfig, Machine, Topology};
use polybench::{App, Dataset};
use socrates::ExecutionEngine;

fn bench_full_factorial_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dse-profile");
    group.sample_size(10);
    let topo = Topology::xeon_e5_2630_v3();
    let space = dse::DesignSpace::socrates(platform_sim::paper_cf_combos().to_vec(), &topo);
    let configs = space.full_factorial();
    let profile = App::TwoMm.profile(Dataset::Large);
    // Serial versus parallel sweep of the same 512-point space: the two
    // paths produce bit-identical knowledge (see the dse crate's
    // parallel_equivalence tests), so the only difference is wall time.
    // The 20-repetition variant shows the regime where per-point work
    // dominates the fork/collect overhead.
    type ProfileFn =
        fn(&Machine, &platform_sim::WorkloadProfile, &[KnobConfig], u32) -> Knowledge<KnobConfig>;
    let paths: [(&str, ProfileFn); 2] =
        [("serial", dse::profile_serial), ("parallel", dse::profile)];
    for (label, profile_fn) in paths {
        for reps in [3u32, 20] {
            group.bench_function(format!("2mm-512x{reps}-{label}"), |b| {
                b.iter(|| {
                    let machine = Machine::xeon_e5_2630_v3(3);
                    profile_fn(&machine, &profile, &configs, reps).len()
                });
            });
        }
    }
    group.finish();
}

/// `--engine {ast,bytecode}` restricts the functional-execution
/// benchmarks to one engine (the offline criterion shim ignores
/// unknown CLI arguments, so the flag is free to claim).
fn engines_under_bench() -> Vec<ExecutionEngine> {
    let args: Vec<String> = std::env::args().collect();
    match args.iter().position(|a| a == "--engine") {
        Some(i) => vec![args
            .get(i + 1)
            .expect("--engine needs a value")
            .parse()
            .unwrap_or_else(|e| panic!("{e}"))],
        None => ExecutionEngine::ALL.to_vec(),
    }
}

fn bench_engine_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine-run");
    group.sample_size(10);
    for app in [App::TwoMm, App::Doitgen] {
        let tu = minic::parse(&polybench::source(app, Dataset::Large)).unwrap();
        let mut weaver = lara::Weaver::new(tu);
        let versions = [lara::StaticVersion::new(["O2"], "close")];
        let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions).unwrap();
        let (weaved, _) = weaver.finish();
        let entry = woven.version_functions[0].clone();
        let spec = socrates::functional_spec(app, Dataset::Large, 1);
        for engine in engines_under_bench() {
            let id = format!("{}-{engine}", app.name());
            match engine {
                ExecutionEngine::Ast => {
                    group.bench_function(id, |b| {
                        b.iter(|| minivm::interpret(&weaved, &entry, &spec).unwrap().checksum);
                    });
                }
                ExecutionEngine::Bytecode => {
                    let kernel = minivm::compile(&weaved, &entry, &spec).unwrap();
                    group.bench_function(id, |b| {
                        b.iter(|| kernel.run().unwrap().checksum);
                    });
                }
            }
        }
    }
    group.finish();
}

fn bench_milepost_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("milepost-extract");
    group.sample_size(40);
    for app in [App::TwoMm, App::Nussinov] {
        let tu = minic::parse(&polybench::source(app, Dataset::Large)).unwrap();
        let kernel = app.kernel_name();
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &tu, |b, tu| {
            b.iter(|| extract_function(tu, &kernel).unwrap());
        });
    }
    group.finish();
}

fn training_corpus() -> Vec<TrainingApp> {
    let machine = Machine::xeon_e5_2630_v3(1).noiseless();
    App::ALL
        .iter()
        .take(8)
        .map(|&app| {
            let tu = minic::parse(&polybench::source(app, Dataset::Large)).unwrap();
            let features = extract_function(&tu, &app.kernel_name()).unwrap();
            let profile = app.profile(Dataset::Large);
            let good = iterative_compilation(
                |co| {
                    let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
                    1.0 / machine.expected(&profile, &cfg).time_s
                },
                0.15,
            );
            TrainingApp { features, good }
        })
        .collect()
}

fn bench_cobayn_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("cobayn");
    group.sample_size(10);
    let corpus = training_corpus();
    group.bench_function("train-8apps", |b| {
        b.iter(|| Cobayn::train(&corpus, CobaynConfig::default()).unwrap());
    });
    let model = Cobayn::train(&corpus, CobaynConfig::default()).unwrap();
    let target = corpus[0].features.clone();
    group.bench_function("predict-top4", |b| {
        b.iter(|| model.predict(&target, 4));
    });
    group.finish();
}

fn bench_iterative_compilation(c: &mut Criterion) {
    let mut group = c.benchmark_group("iterative-compilation");
    group.sample_size(20);
    let machine = Machine::xeon_e5_2630_v3(5).noiseless();
    let profile = App::Syrk.profile(Dataset::Large);
    group.bench_function("syrk-128combos", |b| {
        b.iter(|| {
            iterative_compilation(
                |co| {
                    let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
                    1.0 / machine.expected(&profile, &cfg).time_s
                },
                0.15,
            )
            .len()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_factorial_profiling,
    bench_engine_execution,
    bench_milepost_extraction,
    bench_cobayn_train,
    bench_iterative_compilation
);
criterion_main!(benches);
