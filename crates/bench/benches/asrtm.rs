//! Criterion micro-benchmarks of the mARGOt runtime: AS-RTM selection
//! latency and monitor overhead. This quantifies the paper's claim that
//! mARGOt's intrusiveness (the per-invocation update/start/stop cost) is
//! small compared to kernel execution times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use margot::{
    ApplicationManager, AsRtm, Cmp, Constraint, Knowledge, Metric, MetricValues, Monitor,
    OperatingPoint, Rank,
};
use platform_sim::{KnobConfig, Machine, Topology};

/// Builds a knowledge base of `n` operating points over the real
/// configuration space using the platform model.
fn knowledge(n: usize) -> Knowledge<KnobConfig> {
    let machine = Machine::xeon_e5_2630_v3(7).noiseless();
    let profile = platform_sim::WorkloadProfile::builder("bench")
        .flops(2.5e9)
        .bytes(6e8)
        .parallel_fraction(0.995)
        .build();
    let topo = Topology::xeon_e5_2630_v3();
    let space = dse::DesignSpace::socrates(platform_sim::paper_cf_combos().to_vec(), &topo);
    space
        .full_factorial()
        .into_iter()
        .take(n)
        .map(|cfg| {
            let e = machine.expected(&profile, &cfg);
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), e.time_s)
                    .with(Metric::power(), e.power_w)
                    .with(Metric::throughput(), 1.0 / e.time_s)
                    .with(Metric::energy(), e.energy_j),
            )
        })
        .collect()
}

fn bench_best_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("asrtm-best");
    group.sample_size(40);
    for n in [64usize, 256, 512] {
        let mut rtm = AsRtm::new(knowledge(n), Rank::throughput_per_watt2());
        rtm.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            100.0,
            10,
        ));
        group.bench_with_input(BenchmarkId::from_parameter(n), &rtm, |b, rtm| {
            b.iter(|| rtm.best().unwrap().config.clone());
        });
    }
    group.finish();
}

fn bench_manager_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("manager-update");
    group.sample_size(40);
    let mut manager = ApplicationManager::new(knowledge(512), Rank::throughput_per_watt2());
    for metric in [Metric::exec_time(), Metric::power(), Metric::throughput()] {
        manager.add_monitor(metric, 5);
    }
    manager.update();
    manager.observe_execution(0.1, 90.0);
    group.bench_function("512-points-with-feedback", |b| {
        b.iter(|| manager.update().unwrap());
    });
    group.finish();
}

fn bench_monitor_push(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.sample_size(60);
    group.bench_function("push-and-mean-window32", |b| {
        let mut m = Monitor::new(32);
        let mut x = 0.0f64;
        b.iter(|| {
            x += 1.0;
            m.push(x % 17.0);
            m.mean().unwrap()
        });
    });
    group.finish();
}

fn bench_pareto_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto-filter");
    group.sample_size(20);
    let k = knowledge(512);
    group.bench_function("512-points", |b| {
        b.iter(|| dse::power_throughput_pareto(&k).len());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_best_selection,
    bench_manager_update,
    bench_monitor_push,
    bench_pareto_filter
);
criterion_main!(benches);
