//! Criterion micro-benchmarks of the LARA weaving pipeline (the
//! compile-time cost SOCRATES adds, Table I's machinery): parsing,
//! multiversioning with 16 static versions, autotuner integration and
//! printing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lara::{autotuner, multiversioning, StaticVersion, Weaver};
use polybench::{App, Dataset};

fn versions(n: usize) -> Vec<StaticVersion> {
    (0..n)
        .map(|i| {
            StaticVersion::new(
                [
                    format!("O{}", (i % 3) + 1),
                    "no-inline-functions".to_string(),
                ],
                if i % 2 == 0 { "close" } else { "spread" },
            )
        })
        .collect()
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("minic-parse");
    group.sample_size(30);
    for app in [App::TwoMm, App::Jacobi2d, App::Nussinov] {
        let src = polybench::source(app, Dataset::Large);
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &src, |b, src| {
            b.iter(|| minic::parse(src).unwrap());
        });
    }
    group.finish();
}

fn bench_weave(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave-full");
    group.sample_size(20);
    for app in [App::TwoMm, App::Seidel2d] {
        let src = polybench::source(app, Dataset::Large);
        let tu = minic::parse(&src).unwrap();
        let kernel = app.kernel_name();
        group.bench_with_input(BenchmarkId::from_parameter(app.name()), &tu, |b, tu| {
            b.iter(|| {
                let mut w = Weaver::new(tu.clone());
                let mv = multiversioning(&mut w, &kernel, &versions(16)).unwrap();
                autotuner(&mut w, &mv, "main").unwrap();
                w.finish()
            });
        });
    }
    group.finish();
}

fn bench_weave_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("weave-versions-scaling");
    group.sample_size(20);
    let src = polybench::source(App::TwoMm, Dataset::Large);
    let tu = minic::parse(&src).unwrap();
    for n in [4usize, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut w = Weaver::new(tu.clone());
                multiversioning(&mut w, "kernel_2mm", &versions(n)).unwrap();
                w.finish()
            });
        });
    }
    group.finish();
}

fn bench_print(c: &mut Criterion) {
    let src = polybench::source(App::TwoMm, Dataset::Large);
    let tu = minic::parse(&src).unwrap();
    let mut w = Weaver::new(tu);
    let mv = multiversioning(&mut w, "kernel_2mm", &versions(16)).unwrap();
    autotuner(&mut w, &mv, "main").unwrap();
    let (weaved, _) = w.finish();
    let mut group = c.benchmark_group("minic-print");
    group.sample_size(30);
    group.bench_function("weaved-2mm", |b| b.iter(|| minic::print(&weaved)));
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_weave,
    bench_weave_scaling,
    bench_print
);
criterion_main!(benches);
