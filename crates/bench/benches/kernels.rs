//! Criterion benchmarks of the executable Polybench kernel ports (the
//! functional layer, independent of the platform simulation) and of the
//! adaptive runtime loop end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use margot::{Metric, Rank};
use polybench::kernels::*;
use polybench::Matrix;

fn bench_gemm_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-gemm");
    group.sample_size(20);
    let n = 64;
    let a = Matrix::from_fn(n, n, |i, j| ((i + j) % 9) as f64 * 0.25);
    let b = Matrix::from_fn(n, n, |i, j| ((i * 2 + j) % 7) as f64 * 0.5);
    let cmat = Matrix::from_fn(n, n, |i, j| ((i + 3 * j) % 5) as f64);
    group.bench_function("2mm-64", |bench| {
        bench.iter(|| {
            let mut d = Matrix::from_fn(n, n, |i, j| (i + j) as f64);
            kernel_2mm(1.5, 1.2, &a, &b, &cmat, &mut d);
            d
        });
    });
    group.bench_function("3mm-64", |bench| {
        bench.iter(|| kernel_3mm(&a, &b, &cmat, &a));
    });
    group.bench_function("syrk-64", |bench| {
        bench.iter(|| {
            let mut cc = Matrix::zeros(n, n);
            kernel_syrk(1.5, 1.2, &a, &mut cc);
            cc
        });
    });
    group.finish();
}

fn bench_stencils(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-stencil");
    group.sample_size(20);
    let n = 128;
    group.bench_function("jacobi2d-128x10", |bench| {
        bench.iter(|| {
            let mut a = Matrix::from_fn(n, n, |i, j| (i * j % 13) as f64);
            let mut b = a.clone();
            kernel_jacobi_2d(&mut a, &mut b, 10);
            a
        });
    });
    group.bench_function("seidel2d-128x10", |bench| {
        bench.iter(|| {
            let mut a = Matrix::from_fn(n, n, |i, j| (i * j % 13) as f64);
            kernel_seidel_2d(&mut a, 10);
            a
        });
    });
    group.finish();
}

fn bench_linear_algebra(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-blas2");
    group.sample_size(20);
    let n = 256;
    let a = Matrix::from_fn(n, n, |i, j| ((i * j) % 17) as f64 * 0.1);
    let x: Vec<f64> = (0..n).map(|i| i as f64 * 0.01).collect();
    group.bench_function("atax-256", |bench| {
        bench.iter(|| kernel_atax(&a, &x));
    });
    group.bench_function("mvt-256", |bench| {
        bench.iter(|| {
            let mut x1 = vec![0.5; n];
            let mut x2 = vec![0.25; n];
            kernel_mvt(&a, &mut x1, &mut x2, &x, &x);
            (x1, x2)
        });
    });
    group.finish();
}

fn bench_dynamic_programs(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels-dp");
    group.sample_size(10);
    let seq: Vec<u8> = (0..96).map(|i| (i * 7 % 4) as u8).collect();
    group.bench_function("nussinov-96", |bench| {
        bench.iter(|| kernel_nussinov(&seq));
    });
    let data = Matrix::from_fn(80, 24, |i, j| ((i * 3 + j * 5) % 23) as f64);
    group.bench_function("correlation-80x24", |bench| {
        bench.iter(|| kernel_correlation(&data));
    });
    group.finish();
}

fn bench_adaptive_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive-runtime");
    group.sample_size(10);
    let toolchain = socrates::Toolchain {
        dataset: polybench::Dataset::Medium,
        dse_repetitions: 1,
        ..socrates::Toolchain::default()
    };
    let enhanced = toolchain.enhance(polybench::App::TwoMm).unwrap();
    group.bench_function("mape-k-step", |bench| {
        let mut app = socrates::AdaptiveApplication::new(
            enhanced.clone(),
            Rank::maximize(Metric::throughput()),
            9,
        );
        bench.iter(|| app.step());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_family,
    bench_stencils,
    bench_linear_algebra,
    bench_dynamic_programs,
    bench_adaptive_loop
);
criterion_main!(benches);
