//! Shared helpers for the experiment binaries (`table1`, `fig3`, `fig4`,
//! `fig5`) that regenerate the paper's Table I and Figures 3–5.

#![warn(missing_docs)]

use margot::{Knowledge, Metric};
use platform_sim::{CompilerOptions, KnobConfig, OptLevel};
use polybench::{App, Dataset};
use serde::Serialize;
use socrates::{EnhancedApp, Toolchain};
use std::path::{Path, PathBuf};

/// Five-number summary of a sample (the boxplot statistics of Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BoxStats {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl BoxStats {
    /// Computes the five-number summary.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains non-finite numbers.
    pub fn from_values(values: &[f64]) -> BoxStats {
        assert!(!values.is_empty(), "empty sample");
        assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite sample value"
        );
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        BoxStats {
            min: sorted[0],
            q1: quantile(&sorted, 0.25),
            median: quantile(&sorted, 0.5),
            q3: quantile(&sorted, 0.75),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Inter-quartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }

    /// Full range (max - min).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Linear-interpolated quantile of an already sorted sample.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Human label for a compiler option in the version table: standard
/// levels as `-O2`, COBAYN predictions as `CF1`..`CFn` (paper Fig. 4).
pub fn co_label(co: &CompilerOptions, cobayn_flags: &[CompilerOptions]) -> String {
    if co.flags.is_empty() {
        return format!("-{}", co.level);
    }
    match cobayn_flags.iter().position(|c| c == co) {
        Some(i) => format!("CF{}", i + 1),
        None => co.to_string(),
    }
}

/// A numeric index for plotting the CO axis of Fig. 4: standard levels
/// first (0..4), then CF combinations (4..).
pub fn co_axis_index(co: &CompilerOptions, cobayn_flags: &[CompilerOptions]) -> usize {
    if co.flags.is_empty() {
        return OptLevel::ALL
            .iter()
            .position(|l| *l == co.level)
            .expect("level in ALL");
    }
    match cobayn_flags.iter().position(|c| c == co) {
        Some(i) => OptLevel::ALL.len() + i,
        None => OptLevel::ALL.len() + cobayn_flags.len(),
    }
}

/// Normalises a metric across operating points by its mean (the Fig. 3
/// y-axis is "normalized metrics").
///
/// # Panics
///
/// Panics if the knowledge is empty or the metric missing everywhere.
pub fn normalized_metric(knowledge: &Knowledge<KnobConfig>, metric: &Metric) -> Vec<f64> {
    let values: Vec<f64> = knowledge
        .points()
        .iter()
        .filter_map(|p| p.metric(metric))
        .collect();
    assert!(!values.is_empty(), "metric {metric} missing");
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    values.into_iter().map(|v| v / mean).collect()
}

/// Directory where experiment binaries drop their JSON outputs
/// (`<workspace>/results`). Creates it if missing.
///
/// # Panics
///
/// Panics if the directory cannot be created.
pub fn results_dir() -> PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

fn workspace_root() -> PathBuf {
    // crates/bench -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// The 2mm deployment (Medium dataset, one DSE repetition) with its
/// design knowledge subsampled evenly to `points` operating points —
/// the shared workload of the fleet-scaling and distributed-fleet
/// benches. The version table is keyed by (CO, BP) and stays
/// complete, so every kept point dispatches.
///
/// # Panics
///
/// Panics if the toolchain fails or `points` is zero.
pub fn subsampled_twomm(points: usize) -> EnhancedApp {
    assert!(points > 0, "need at least one operating point");
    let mut enhanced = Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance 2mm");
    let all = enhanced.knowledge.points();
    let stride = (all.len() / points).max(1);
    enhanced.knowledge = all
        .iter()
        .step_by(stride)
        .take(points)
        .cloned()
        .collect::<Knowledge<_>>();
    enhanced
}

/// Earliest virtual time after which every later *planned* selection
/// of `trace` has true efficiency within 1.5% of the oracle (infinity
/// if the instance never converges; forced exploration steps execute
/// arbitrary configurations by design and are excluded).
pub fn convergence_time_s(
    trace: &[socrates::TraceSample],
    true_eff: &impl Fn(&KnobConfig) -> f64,
    oracle_eff: f64,
) -> f64 {
    let mut converged_since = f64::INFINITY;
    for s in trace.iter().filter(|s| !s.forced) {
        if true_eff(&s.config) >= 0.985 * oracle_eff {
            if converged_since.is_infinite() {
                converged_since = s.t_start_s;
            }
        } else {
            converged_since = f64::INFINITY;
        }
    }
    converged_since
}

/// Median of a sample (mean of the middle pair for even lengths).
/// Infinite values are allowed — a "never converged" instance sorts
/// after every finite time.
///
/// # Panics
///
/// Panics if `values` is empty or contains a NaN.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of an empty sample");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("comparable"));
    let mid = sorted.len() / 2;
    if sorted.len().is_multiple_of(2) {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    } else {
        sorted[mid]
    }
}

/// Serialises a value as pretty JSON into `results/<name>.json`.
///
/// # Panics
///
/// Panics on I/O or serialisation failure (experiment binaries want loud
/// failures).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialise");
    std::fs::write(&path, json).expect("write results file");
    eprintln!("wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform_sim::CompilerFlag;

    #[test]
    fn boxstats_on_known_sample() {
        let s = BoxStats::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.iqr(), 2.0);
        assert_eq!(s.range(), 4.0);
    }

    #[test]
    fn boxstats_single_value() {
        let s = BoxStats::from_values(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.q3, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn boxstats_rejects_empty() {
        let _ = BoxStats::from_values(&[]);
    }

    #[test]
    fn co_labels_match_figure_4_axis() {
        let cf = vec![CompilerOptions::with_flags(
            OptLevel::O2,
            [CompilerFlag::NoInlineFunctions],
        )];
        assert_eq!(co_label(&CompilerOptions::level(OptLevel::O3), &cf), "-O3");
        assert_eq!(co_label(&cf[0], &cf), "CF1");
        assert_eq!(co_axis_index(&CompilerOptions::level(OptLevel::Os), &cf), 0);
        assert_eq!(co_axis_index(&cf[0], &cf), 4);
    }
}
