//! Event-driven fleet scaling: per-event cost of the sparse
//! discrete-event scheduler as the concurrent instance count grows
//! from thousands to a million.
//!
//! For each fleet size N the same deployment is booted as N **sparse**
//! event-pool entries (one slab slot + one heap event each — no
//! per-instance knowledge clone, no application object) and a fixed
//! number of heap events is processed off the scheduler. The claim
//! under test is the one that justifies the event-driven redesign:
//! **per-event cost is independent of the total instance count** — the
//! heap pop is `O(log n)`, everything else an event touches (slab
//! slot, pool selection cache, per-position execution cache, sharded
//! publish) is `O(1)` amortised — so the `events/s` column stays flat
//! from N = 4096 to N = 1048576 instead of collapsing the way the
//! barrier loop's `O(N)` rounds do.
//!
//! The full configuration additionally runs a **diurnal** cell: a
//! seeded [`socrates::WorkloadTrace`] churns tens of thousands of
//! arrivals/retirements through the slab (generational handles, slot
//! reuse) while the load follows a day-curve — the deployment shape
//! the event runtime exists to serve.
//!
//! Numbers land in `results/fleet_events.json`
//! (`results/fleet_events_smoke.json` for the smoke configuration, so
//! the committed baseline is never clobbered by CI) and BENCH.md.
//!
//! `--check` compares the run against the committed baseline in
//! `results/fleet_events.json`: every measured `(mode, instances)`
//! cell **must** have a baseline counterpart (a missing cell fails the
//! gate), and any cell whose event throughput fell below `tolerance ×
//! baseline` (default 0.4 — CI runners are slower and noisier than the
//! machine that produced the baseline) fails the process. Tune with
//! `--tolerance <ratio>`.
//!
//! Run with `cargo run -p socrates-bench --bin fleet_events_bench
//! --release` (`--smoke --check` is the CI regression-gate
//! configuration).

use margot::Rank;
use polybench::App;
use serde::{Deserialize, Serialize};
use socrates::{EventFleet, FleetConfig, FleetRuntime, Schedule, WorkloadCurve, WorkloadTrace};
use std::time::Instant;

/// Design-knowledge subsample handed to every pool.
const KNOWLEDGE_POINTS: usize = 64;
/// Untimed events processed before the clock starts, so first-touch
/// cache fills (selection scan, per-position execution cache) don't
/// pollute the smallest cell.
const WARMUP_EVENTS: u64 = 1_000;
/// Default `--check` tolerance: a cell regresses when its event
/// throughput falls below this fraction of the committed baseline.
const DEFAULT_TOLERANCE: f64 = 0.4;
/// The flatness gate (full runs): the worst per-event cost across the
/// static cells may not exceed this multiple of the best, or the
/// "per-event cost is independent of N" claim is broken.
const FLATNESS_BOUND: f64 = 3.0;

#[derive(Serialize, Deserialize)]
struct EventRow {
    mode: String,
    instances: usize,
    events: u64,
    knowledge_points: usize,
    spawn_wall_ms: f64,
    per_event_us: f64,
    events_per_s: f64,
    knowledge_epoch: u64,
    covered: usize,
    spawned: u64,
    retired: u64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => args
            .get(i + 1)
            .expect("--tolerance needs a value")
            .parse::<f64>()
            .expect("--tolerance takes a ratio"),
        None => DEFAULT_TOLERANCE,
    };
    // The smoke sizes are a subset of the full sizes so every smoke
    // cell has a committed-baseline counterpart for `--check`.
    let sizes: &[usize] = if smoke {
        &[4096, 65536]
    } else {
        &[4096, 65536, 1_048_576]
    };
    let events: u64 = if smoke { 100_000 } else { 2_000_000 };
    let enhanced = socrates_bench::subsampled_twomm(KNOWLEDGE_POINTS);
    let rank = Rank::throughput_per_watt2();
    let config = || {
        FleetConfig::builder()
            .schedule(Schedule::EventDriven)
            .build()
            .expect("valid fleet config")
    };
    println!(
        "Event-driven fleet scaling — per-event cost vs concurrent sparse instances\n\
         ({KNOWLEDGE_POINTS}-point knowledge, {events} timed events per cell)\n"
    );
    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>14} {:>14} {:>8}",
        "mode", "instances", "events", "spawn [ms]", "event [µs]", "events/s", "epoch"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut fleet = EventFleet::new(config()).expect("valid fleet config");
        let spawn_wall = Instant::now();
        fleet.spawn(&enhanced, &rank, 2018, n);
        let spawn_ms = spawn_wall.elapsed().as_secs_f64() * 1e3;
        fleet.run_events(WARMUP_EVENTS);
        let wall = Instant::now();
        fleet.run_events(events);
        let wall_s = wall.elapsed().as_secs_f64();
        let stats = fleet.stats();
        assert_eq!(
            stats.events,
            WARMUP_EVENTS + events,
            "the scheduler processed a different number of events than asked"
        );
        rows.push(report(EventRow {
            mode: "static".into(),
            instances: n,
            events,
            knowledge_points: KNOWLEDGE_POINTS,
            spawn_wall_ms: spawn_ms,
            per_event_us: wall_s * 1e6 / events as f64,
            events_per_s: events as f64 / wall_s,
            knowledge_epoch: fleet.knowledge_epoch(App::TwoMm).expect("pool exists"),
            covered: fleet
                .exploration_coverage(App::TwoMm)
                .expect("pool exists")
                .0,
            spawned: stats.spawned,
            retired: stats.retired,
        }));
    }
    if !smoke {
        rows.push(diurnal_cell(&enhanced, &rank, config()));
    }
    let static_costs: Vec<f64> = rows
        .iter()
        .filter(|r| r.mode == "static")
        .map(|r| r.per_event_us)
        .collect();
    let worst = static_costs.iter().cloned().fold(f64::MIN, f64::max);
    let best = static_costs.iter().cloned().fold(f64::MAX, f64::min);
    println!(
        "\nper-event flatness: worst {:.2} µs / best {:.2} µs = x{:.2} across N = {} .. {}",
        worst,
        best,
        worst / best,
        sizes.first().expect("sizes"),
        sizes.last().expect("sizes"),
    );
    // The flatness claim is only gated on full runs: the smoke sizes
    // span a factor of 16, not 256, and CI wall clocks are noisy.
    if !smoke {
        assert!(
            worst / best <= FLATNESS_BOUND,
            "per-event cost is not flat in N: worst {worst:.2} µs is x{:.2} of best \
             {best:.2} µs (bound x{FLATNESS_BOUND})",
            worst / best
        );
    }
    let name = if smoke {
        "fleet_events_smoke"
    } else {
        "fleet_events"
    };
    socrates_bench::write_json(name, &rows);
    if check {
        check_against_baseline(&rows, tolerance);
    }
}

/// Prints one result line and passes the row through.
fn report(row: EventRow) -> EventRow {
    println!(
        "{:>8} {:>10} {:>10} {:>14.1} {:>14.2} {:>14.0} {:>8}",
        row.mode,
        row.instances,
        row.events,
        row.spawn_wall_ms,
        row.per_event_us,
        row.events_per_s,
        row.knowledge_epoch
    );
    row
}

/// The churn cell: a 60-virtual-second diurnal workload trace (about
/// 12k seeded arrivals, exponential lifetimes) run to completion —
/// arrivals, retirements and publishes are all heap events, so the
/// timed quantity is the same per-event cost as the static cells, just
/// under continuous slab churn.
fn diurnal_cell(enhanced: &socrates::EnhancedApp, rank: &Rank, config: FleetConfig) -> EventRow {
    let trace = WorkloadTrace {
        seed: 7,
        horizon_s: 60.0,
        base_rate_hz: 200.0,
        mean_lifetime_s: 5.0,
        curve: WorkloadCurve::Diurnal {
            period_s: 30.0,
            amplitude: 0.6,
        },
    };
    let mut fleet = EventFleet::new(config).expect("valid fleet config");
    let spawn_wall = Instant::now();
    let arrivals = fleet.drive(&trace, enhanced, rank).expect("valid trace");
    let spawn_ms = spawn_wall.elapsed().as_secs_f64() * 1e3;
    let wall = Instant::now();
    fleet.run_until(trace.horizon_s + 30.0);
    let wall_s = wall.elapsed().as_secs_f64();
    let stats = fleet.stats();
    assert_eq!(stats.spawned as usize, arrivals, "every arrival admits");
    assert!(
        stats.retired > 0,
        "a 60 s trace with 5 s mean lifetimes retires instances"
    );
    report(EventRow {
        mode: "diurnal".into(),
        instances: arrivals,
        events: stats.events,
        knowledge_points: KNOWLEDGE_POINTS,
        spawn_wall_ms: spawn_ms,
        per_event_us: wall_s * 1e6 / stats.events as f64,
        events_per_s: stats.events as f64 / wall_s,
        knowledge_epoch: fleet.knowledge_epoch(App::TwoMm).expect("pool exists"),
        covered: fleet
            .exploration_coverage(App::TwoMm)
            .expect("pool exists")
            .0,
        spawned: stats.spawned,
        retired: stats.retired,
    })
}

/// Compares the run against `results/fleet_events.json` and exits
/// nonzero on regression (the CI gate).
fn check_against_baseline(rows: &[EventRow], tolerance: f64) {
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "tolerance {tolerance} must be a positive ratio"
    );
    let path = socrates_bench::results_dir().join("fleet_events.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", path.display()));
    let baseline: Vec<EventRow> =
        serde_json::from_str(&json).expect("committed baseline parses as EventRow list");
    let mut compared = 0;
    let mut regressions = Vec::new();
    println!(
        "regression check against {} (tolerance {tolerance}):",
        path.display()
    );
    for row in rows {
        // A measured cell with no baseline counterpart is a hard
        // failure: silently skipping it would let new bench cells
        // dodge the regression gate entirely.
        let base = baseline
            .iter()
            .find(|b| b.instances == row.instances && b.mode == row.mode)
            .unwrap_or_else(|| {
                panic!(
                    "measured cell ({}, N={}) has no counterpart in the committed \
                     baseline {} — re-record the baseline to cover it",
                    row.mode,
                    row.instances,
                    path.display()
                )
            });
        compared += 1;
        let ratio = row.events_per_s / base.events_per_s;
        let verdict = if ratio < tolerance { "REGRESSED" } else { "ok" };
        println!(
            "  {:>8} {:>10}: {:>12.0} events/s vs baseline {:>12.0} events/s (x{:.2}) {}",
            row.mode, row.instances, row.events_per_s, base.events_per_s, ratio, verdict
        );
        if ratio < tolerance {
            regressions.push(format!(
                "{} N={}: throughput fell to {:.0} events/s, x{:.2} of the baseline \
                 {:.0} (tolerance x{tolerance})",
                row.mode, row.instances, row.events_per_s, ratio, base.events_per_s
            ));
        }
    }
    assert!(
        compared > 0,
        "no overlapping (mode, instances) cells between this run and the committed \
         baseline — the gate compared nothing"
    );
    if !regressions.is_empty() {
        eprintln!("\nbench regression gate FAILED:");
        for r in &regressions {
            eprintln!("  - {r}");
        }
        std::process::exit(1);
    }
    println!("bench regression gate passed ({compared} cells compared)");
}
