//! Warm-start experiment: shippable knowledge snapshots against the
//! cold-boot baseline.
//!
//! Every fleet in `fleet_bench` pays ~210 virtual seconds of online
//! learning before its selections stay within 1.5% of the oracle. This
//! bench measures what shipping a [`socrates::KnowledgeSnapshot`] with
//! the deployment buys: time-to-≤1.5%-of-oracle for three seeding
//! scenarios, each in both deployment modes:
//!
//! - **cold** — the empty-state baseline (design-time knowledge only);
//! - **warm-same-app** — the snapshot a previous deployment of the
//!   *same* application cut after converging on the drifted platform;
//! - **warm-nearest-neighbour** — the target has no snapshot of its
//!   own, so [`socrates::ArtifactStore::warm_start_snapshot`] seeds it
//!   from the nearest MILEPOST-feature neighbour's snapshot (cosine
//!   distance over the COBAYN feature vectors);
//!
//! crossed with **in-process** ([`socrates::Fleet`]) and
//! **distributed** ([`socrates::DistributedFleet`], broker star over
//! an ideal link, no cooperative exploration — the transport does not
//! model assignment hand-off) deployments. The deployment drifts like
//! `fleet_bench`: the machines run 1.6× hotter per-core than the
//! design-time platform, so the design-time optimum is stale and cold
//! fleets must re-learn the ranking online.
//!
//! Numbers land in `results/warm_start.json`
//! (`results/warm_start_smoke.json` for the smoke configuration, so
//! the committed baseline is never clobbered by CI) and BENCH.md.
//!
//! # Regression gate
//!
//! `--check` enforces two properties: every measured `(scenario,
//! deployment, engine)` cell must have a counterpart in the committed
//! `results/warm_start.json` (a missing cell fails the gate), and the
//! warm-same-app in-process fleet must converge within `tolerance`
//! (default 0.05) of the *committed baseline's* cold-start virtual
//! time — the headline zero-cold-start claim, re-proven on every CI
//! run. Comparing against the recorded full-scale cold start (rather
//! than this run's own cold cell) keeps the gate meaningful under
//! `--smoke`, whose subsampled knowledge makes even cold fleets
//! converge in a couple of virtual seconds. Tune with `--tolerance
//! <fraction>`.
//!
//! Run with `cargo run -p socrates-bench --bin warm_start_bench
//! --release` (`--smoke --check` is the CI configuration).

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::{Knowledge, Rank};
use platform_sim::KnobConfig;
use polybench::{App, Dataset};
use serde::{Deserialize, Serialize};
use socrates::{
    cosine_distance, ArtifactStore, DistributedFleet, EnhancedApp, ExecutionEngine, Fleet,
    FleetConfig, KnowledgeSnapshot, SnapshotFingerprint, Toolchain, TraceSample,
};

/// Deployment drift: per-core dynamic power × 1.6 (idle floor
/// unchanged), same as `fleet_bench`.
const DRIFT_FACTOR: f64 = 1.6;
/// Target application and its snapshot-donor universe. ThreeMm and
/// Mvt both get considered as nearest-neighbour donors for TwoMm.
const UNIVERSE: [App; 3] = [App::TwoMm, App::ThreeMm, App::Mvt];
/// Default `--check` tolerance: the warm-same-app in-process fleet
/// must converge within this fraction of the committed baseline's
/// cold-start virtual time.
const DEFAULT_TOLERANCE: f64 = 0.05;

/// One measured `(scenario, deployment)` cell.
#[derive(Serialize, Deserialize)]
struct WarmStartRow {
    scenario: String,
    deployment: String,
    engine: String,
    instances: usize,
    horizon_s: f64,
    /// Which application's snapshot seeded the fleet (`"none"` for the
    /// cold baseline).
    seed_app: String,
    oracle_thr_per_w2: f64,
    /// Median time-to-≤1.5%-of-oracle over the instances; `None` when
    /// the median instance never converged within the horizon.
    median_convergence_time_s: Option<f64>,
    /// Instances whose planned selections stayed within 1.5% of the
    /// oracle from some point on.
    converged_instances: usize,
    /// Mean true-efficiency regret of the final third of the horizon
    /// (planned selections only), relative to the oracle.
    final_window_regret: f64,
}

/// The headline numbers the regression gate and BENCH.md read.
#[derive(Serialize, Deserialize)]
struct WarmStartSummary {
    cold_in_process_convergence_s: Option<f64>,
    warm_same_app_in_process_convergence_s: Option<f64>,
    /// Warm-same-app convergence as a fraction of the cold-start
    /// virtual time (never-converged cells count as the full horizon).
    warm_same_app_fraction_of_cold: f64,
}

#[derive(Serialize, Deserialize)]
struct WarmStartReport {
    cells: Vec<WarmStartRow>,
    summary: WarmStartSummary,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => args
            .get(i + 1)
            .expect("--tolerance needs a value")
            .parse::<f64>()
            .expect("--tolerance takes a fraction"),
        None => DEFAULT_TOLERANCE,
    };
    let engine: ExecutionEngine = match args.iter().position(|a| a == "--engine") {
        Some(i) => args
            .get(i + 1)
            .expect("--engine needs a value")
            .parse()
            .unwrap_or_else(|e| panic!("{e}")),
        None => ExecutionEngine::default(),
    };
    let (instances, horizon_s, knowledge_points) = if smoke {
        (4usize, 60.0, Some(64))
    } else {
        (8usize, 300.0, None)
    };

    let toolchain = Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        engine,
        ..Toolchain::default()
    };
    let mut apps = toolchain.enhance_all(&UNIVERSE).expect("enhance universe");
    if let Some(points) = knowledge_points {
        for enhanced in &mut apps {
            subsample_knowledge(enhanced, points);
        }
    }
    let target = apps[0].clone();
    let rank = Rank::throughput_per_watt2();

    // The oracle: the noise-free Thr/W² argmax on the drifted machine.
    let drifted = target.platform.hotter(DRIFT_FACTOR);
    let oracle_machine = drifted.machine(0);
    let true_eff = |config: &KnobConfig| {
        oracle_machine
            .expected(&target.profile, config)
            .throughput_per_watt2()
    };
    let oracle_eff = target
        .knowledge
        .points()
        .iter()
        .map(|p| true_eff(&p.config))
        .max_by(|a, b| a.partial_cmp(b).expect("finite"))
        .expect("non-empty knowledge");

    println!(
        "Warm-start convergence — shipped snapshots vs cold boot ({engine} engine)\n\
         deployment drift {DRIFT_FACTOR}x, {instances} instances, rank Thr/W², \
         {horizon_s} virtual s per cell\n"
    );

    // ── donor runs ─────────────────────────────────────────────────
    // The cold in-process run *is* the cold cell; the snapshot it cuts
    // after converging is the warm-same-app seed.
    let mut cold_fleet = in_process(&target, &drifted, engine, None, instances);
    cold_fleet.run_for(horizon_s);
    let cold_traces: Vec<Vec<TraceSample>> =
        (0..instances).map(|id| cold_fleet.trace(id)).collect();
    let same_app_seed = cold_fleet
        .knowledge_snapshot(App::TwoMm, SnapshotFingerprint::of(&toolchain, App::TwoMm))
        .expect("target pool exists");

    // The nearest-neighbour donor: pick the feature-nearest sibling,
    // let a fleet of *that* app converge on its own drifted platform,
    // persist its snapshot and let the artifact store's selection rule
    // hand it to the (snapshot-less) target.
    let store_dir =
        std::env::temp_dir().join(format!("socrates-warm-start-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ArtifactStore::with_persist_dir(&store_dir);
    let target_features = store
        .kernel_features(&toolchain, App::TwoMm)
        .expect("target features");
    let nn_app = UNIVERSE[1..]
        .iter()
        .copied()
        .min_by(|&a, &b| {
            let da = donor_distance(&store, &toolchain, target_features.features.as_slice(), a);
            let db = donor_distance(&store, &toolchain, target_features.features.as_slice(), b);
            da.partial_cmp(&db).expect("finite distances")
        })
        .expect("non-empty donor set");
    let donor = apps
        .iter()
        .find(|e| e.app == nn_app)
        .expect("donor enhanced");
    println!(
        "nearest MILEPOST neighbour of {}: {} (donor fleet converging …)",
        App::TwoMm.name(),
        nn_app.name()
    );
    let donor_drifted = donor.platform.hotter(DRIFT_FACTOR);
    let mut donor_fleet = in_process(donor, &donor_drifted, engine, None, instances);
    donor_fleet.run_for(horizon_s);
    let donor_snapshot = donor_fleet
        .knowledge_snapshot(nn_app, SnapshotFingerprint::of(&toolchain, nn_app))
        .expect("donor pool exists");
    store
        .save_snapshot(&toolchain, nn_app, &donor_snapshot)
        .expect("persist donor snapshot");
    let nn_seed = store
        .warm_start_snapshot(&toolchain, App::TwoMm, &UNIVERSE)
        .expect("snapshot selection")
        .expect("a donor snapshot exists");
    assert_eq!(
        nn_seed.fingerprint.app,
        nn_app.name(),
        "the store must pick the feature-nearest donor"
    );

    // ── cells ──────────────────────────────────────────────────────
    let scenarios: [(&str, Option<&KnowledgeSnapshot>, String); 3] = [
        ("cold", None, "none".to_string()),
        (
            "warm-same-app",
            Some(&same_app_seed),
            App::TwoMm.name().to_string(),
        ),
        (
            "warm-nearest-neighbour",
            Some(&nn_seed),
            nn_app.name().to_string(),
        ),
    ];
    println!(
        "{:>24} {:>12} {:>9} {:>16} {:>11} {:>13}",
        "scenario", "deployment", "engine", "convergence [s]", "converged", "tail regret"
    );
    let mut cells = Vec::new();
    for (scenario, seed, seed_app) in &scenarios {
        for deployment in ["in-process", "distributed"] {
            let traces = match (*scenario, deployment) {
                ("cold", "in-process") => cold_traces.clone(),
                (_, "in-process") => {
                    let mut fleet = in_process(&target, &drifted, engine, seed.cloned(), instances);
                    fleet.run_for(horizon_s);
                    (0..instances).map(|id| fleet.trace(id)).collect()
                }
                _ => {
                    let mut fleet = distributed(&target, engine, seed.cloned(), instances);
                    fleet.spawn_on(&rank, &drifted.machine(7), instances);
                    fleet.run_for(horizon_s);
                    (0..instances).map(|id| fleet.trace(id)).collect()
                }
            };
            let times: Vec<f64> = traces
                .iter()
                .map(|t| socrates_bench::convergence_time_s(t, &true_eff, oracle_eff))
                .collect();
            let median = socrates_bench::median(&times);
            let converged = times.iter().filter(|t| t.is_finite()).count();
            let window_start = horizon_s * 2.0 / 3.0;
            let tail: Vec<f64> = traces
                .iter()
                .flatten()
                .filter(|s| s.t_start_s >= window_start && !s.forced)
                .map(|s| true_eff(&s.config))
                .collect();
            let tail_mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
            let row = WarmStartRow {
                scenario: (*scenario).to_string(),
                deployment: deployment.to_string(),
                engine: engine.label().to_string(),
                instances,
                horizon_s,
                seed_app: seed_app.clone(),
                oracle_thr_per_w2: oracle_eff,
                median_convergence_time_s: median.is_finite().then_some(median),
                converged_instances: converged,
                final_window_regret: (oracle_eff - tail_mean) / oracle_eff,
            };
            println!(
                "{:>24} {:>12} {:>9} {:>16} {:>11} {:>12.1}%",
                row.scenario,
                row.deployment,
                row.engine,
                row.median_convergence_time_s
                    .map_or("never".to_string(), |t| format!("{t:.1}")),
                format!("{}/{}", row.converged_instances, instances),
                row.final_window_regret * 100.0
            );
            cells.push(row);
        }
    }
    std::fs::remove_dir_all(&store_dir).ok();

    let cell = |scenario: &str, deployment: &str| {
        cells
            .iter()
            .find(|c| c.scenario == scenario && c.deployment == deployment)
            .expect("cell measured")
    };
    let cold = cell("cold", "in-process").median_convergence_time_s;
    let warm = cell("warm-same-app", "in-process").median_convergence_time_s;
    let summary = WarmStartSummary {
        cold_in_process_convergence_s: cold,
        warm_same_app_in_process_convergence_s: warm,
        warm_same_app_fraction_of_cold: warm.unwrap_or(horizon_s)
            / cold.map_or(horizon_s, |c| c.min(horizon_s)).max(1e-9),
    };
    println!(
        "\nwarm-same-app converges in {:.1}% of the cold-start virtual time \
         ({} s vs {} s)",
        summary.warm_same_app_fraction_of_cold * 100.0,
        warm.map_or("never".to_string(), |t| format!("{t:.1}")),
        cold.map_or("never".to_string(), |t| format!("{t:.1}")),
    );
    let report = WarmStartReport { cells, summary };
    // The smoke configuration never overwrites the committed
    // full-scale baseline it is compared against.
    let name = if smoke {
        "warm_start_smoke"
    } else {
        "warm_start"
    };
    socrates_bench::write_json(name, &report);
    if check {
        check_against_baseline(&report, tolerance);
    }
}

/// The shared observation window, scaled to the fleet: the default
/// window of 8 is sized for a single instance, but `instances` peers
/// all publishing into one pool roll the entire window every round —
/// the pooled mean then carries full single-sample noise (~2% here)
/// while the near-optimal configurations sit within 1% of each other,
/// so selection ping-pongs across the 1.5%-of-oracle line forever
/// (both cold and warm). Eight samples *per instance* keeps the
/// pooled-mean noise sub-percent at any fleet size.
fn fleet_window(instances: usize) -> usize {
    8 * instances.max(1)
}

/// An in-process fleet of the default policy (cooperative exploration
/// on) deployed onto the drifted platform.
fn in_process(
    enhanced: &EnhancedApp,
    drifted: &socrates::Platform,
    engine: ExecutionEngine,
    warm_start: Option<KnowledgeSnapshot>,
    instances: usize,
) -> Fleet {
    let mut fleet = Fleet::new(FleetConfig {
        engine,
        warm_start,
        knowledge_window: fleet_window(instances),
        ..FleetConfig::default()
    })
    .expect("valid fleet config");
    fleet.spawn_on(
        enhanced,
        &Rank::throughput_per_watt2(),
        &drifted.machine(7),
        instances,
    );
    fleet
}

/// A broker-star distributed fleet over an ideal link (no cooperative
/// exploration — the transport does not model assignment hand-off).
fn distributed(
    enhanced: &EnhancedApp,
    engine: ExecutionEngine,
    warm_start: Option<KnowledgeSnapshot>,
    instances: usize,
) -> DistributedFleet {
    DistributedFleet::new(
        FleetConfig {
            engine,
            warm_start,
            knowledge_window: fleet_window(instances),
            exploration_interval: 0,
            distributed: Some(socrates::DistributedConfig::default()),
            ..FleetConfig::default()
        },
        enhanced,
    )
    .expect("valid distributed config")
}

/// Cosine distance from the target's feature vector to `donor`'s.
fn donor_distance(store: &ArtifactStore, toolchain: &Toolchain, target: &[f64], donor: App) -> f64 {
    let features = store
        .kernel_features(toolchain, donor)
        .expect("donor features");
    cosine_distance(target, features.features.as_slice())
}

/// Evenly subsamples an enhanced app's design knowledge to `points`
/// operating points (the smoke configuration's speed lever; the
/// version table is keyed by (CO, BP) and stays complete).
fn subsample_knowledge(enhanced: &mut EnhancedApp, points: usize) {
    let all = enhanced.knowledge.points();
    let stride = (all.len() / points).max(1);
    enhanced.knowledge = all
        .iter()
        .step_by(stride)
        .take(points)
        .cloned()
        .collect::<Knowledge<_>>();
}

/// Compares the run against `results/warm_start.json` and exits
/// nonzero when a cell is missing from the baseline or the
/// warm-same-app fleet lost its zero-cold-start property (the CI
/// gate). The warm convergence is judged against the *baseline's*
/// cold-start time — the full-scale cold boot is the quantity the
/// snapshot is supposed to eliminate, whatever configuration this
/// run used.
fn check_against_baseline(report: &WarmStartReport, tolerance: f64) {
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "tolerance {tolerance} must be a positive fraction"
    );
    let path = socrates_bench::results_dir().join("warm_start.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", path.display()));
    let baseline: WarmStartReport =
        serde_json::from_str(&json).expect("committed baseline parses as WarmStartReport");
    println!(
        "regression check against {} (tolerance {tolerance}):",
        path.display()
    );
    for row in &report.cells {
        // A measured cell with no baseline counterpart is a hard
        // failure: silently skipping it would let new bench cells
        // dodge the gate entirely.
        baseline
            .cells
            .iter()
            .find(|b| {
                b.scenario == row.scenario
                    && b.deployment == row.deployment
                    && b.engine == row.engine
            })
            .unwrap_or_else(|| {
                panic!(
                    "measured cell ({}, {}, {}) has no counterpart in the committed \
                     baseline {} — re-record the baseline to cover it",
                    row.scenario,
                    row.deployment,
                    row.engine,
                    path.display()
                )
            });
    }
    let baseline_cold_cell = baseline
        .cells
        .iter()
        .find(|c| c.scenario == "cold" && c.deployment == "in-process")
        .expect("baseline records a cold in-process cell");
    let baseline_cold = baseline
        .summary
        .cold_in_process_convergence_s
        .map_or(baseline_cold_cell.horizon_s, |c| {
            c.min(baseline_cold_cell.horizon_s)
        })
        .max(1e-9);
    let warm_cell = report
        .cells
        .iter()
        .find(|c| c.scenario == "warm-same-app" && c.deployment == "in-process")
        .expect("run measured a warm-same-app in-process cell");
    let warm = warm_cell
        .median_convergence_time_s
        .unwrap_or(warm_cell.horizon_s);
    let fraction = warm / baseline_cold;
    println!(
        "  warm-same-app convergence {warm:.1} s vs baseline cold start {baseline_cold:.1} s: \
         fraction {fraction:.3} (tolerance {tolerance}) — {}",
        if fraction <= tolerance {
            "ok"
        } else {
            "REGRESSED"
        }
    );
    if fraction > tolerance {
        eprintln!(
            "\nbench regression gate FAILED: warm-same-app convergence took {:.1}% of the \
             recorded cold-start time (allowed {:.1}%) — the shipped snapshot no longer \
             eliminates the cold start",
            fraction * 100.0,
            tolerance * 100.0
        );
        std::process::exit(1);
    }
    println!(
        "bench regression gate passed ({} cells covered)",
        report.cells.len()
    );
}
