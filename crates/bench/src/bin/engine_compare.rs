//! Interpreter-vs-compiled engine comparison: every Polybench kernel
//! executed functionally on both [`ExecutionEngine`]s.
//!
//! For each of the 12 apps the weaved clone is specialized for one
//! thread (the profiling sweep's single-core shape) and
//!
//! - the **AST** engine re-interprets the tree per invocation (the
//!   reference oracle),
//! - the **bytecode** engine lowers once (`compile` column) and then
//!   re-runs the cached register code per invocation.
//!
//! Reports must be bit-identical between the engines — the run aborts
//! otherwise. Rows land in `results/engine_compare.json` and BENCH.md;
//! the geometric-mean speedup is the repo's "compiled kernels are ≥ 5×
//! faster than interpretation" acceptance number.
//!
//! `--engine {ast,bytecode}` restricts the run to one engine (no
//! speedup column in that case). Run with `cargo run -p socrates-bench
//! --bin engine_compare --release`.

use polybench::{App, Dataset};
use serde::Serialize;
use socrates::{compile_kernel, functional_spec, ExecutionEngine};
use std::time::Instant;

/// The dataset the functional specs are derived from (dimensions are
/// clamped to [`socrates::FUNCTIONAL_DIM_CAP`] either way).
const DATASET: Dataset = Dataset::Large;
/// Wall-clock budget per timing measurement.
const TARGET_S: f64 = 0.2;

#[derive(Serialize)]
struct EngineRow {
    app: String,
    checksum: String,
    flops: u64,
    ast_run_us: Option<f64>,
    bytecode_compile_us: Option<f64>,
    bytecode_run_us: Option<f64>,
    speedup: Option<f64>,
}

#[derive(Serialize)]
struct EngineCompare {
    dataset: String,
    threads: u32,
    rows: Vec<EngineRow>,
    geomean_speedup: Option<f64>,
}

fn weaved_clone(app: App) -> (minic::TranslationUnit, String) {
    let tu = minic::parse(&polybench::source(app, DATASET)).expect("bundled source parses");
    let mut weaver = lara::Weaver::new(tu);
    let versions = [lara::StaticVersion::new(["O2"], "close")];
    let woven = lara::multiversioning(&mut weaver, &app.kernel_name(), &versions).expect("weaving");
    let (weaved, _) = weaver.finish();
    (weaved, woven.version_functions[0].clone())
}

/// Mean seconds per invocation: one warm-up, one probe to size the
/// batch toward [`TARGET_S`], then the timed batch.
fn time_per_run(mut f: impl FnMut()) -> f64 {
    f();
    let probe = Instant::now();
    f();
    let t1 = probe.elapsed().as_secs_f64();
    let reps = ((TARGET_S / t1.max(1e-9)).ceil() as usize).clamp(3, 100_000);
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let engines: Vec<ExecutionEngine> = match args.iter().position(|a| a == "--engine") {
        Some(i) => vec![args
            .get(i + 1)
            .expect("--engine needs a value")
            .parse()
            .unwrap_or_else(|e| panic!("{e}"))],
        None => ExecutionEngine::ALL.to_vec(),
    };
    let ast = engines.contains(&ExecutionEngine::Ast);
    let byte = engines.contains(&ExecutionEngine::Bytecode);
    println!(
        "Functional execution engines — AST interpreter vs config-specialized bytecode\n\
         ({DATASET:?} dataset dims clamped to {}, 1 thread)\n",
        socrates::FUNCTIONAL_DIM_CAP
    );
    println!(
        "{:>12} {:>14} {:>12} {:>14} {:>12} {:>9}",
        "app", "ast run [µs]", "compile [µs]", "byte run [µs]", "flops", "speedup"
    );
    let mut rows = Vec::new();
    let mut log_speedup_sum = 0.0;
    for app in App::ALL {
        let (tu, entry) = weaved_clone(app);
        let spec = functional_spec(app, DATASET, 1);
        // Build both artifacts through the shared entry point so the
        // bit-identity contract is asserted exactly where consumers
        // rely on it.
        let compiled = engines
            .iter()
            .map(|&e| compile_kernel(e, &tu, &entry, app, &spec).expect("kernel lowers"))
            .collect::<Vec<_>>();
        for pair in compiled.windows(2) {
            assert_eq!(
                pair[0].report, pair[1].report,
                "{app:?}: engines diverged — the bit-identity contract is broken"
            );
        }
        let report = compiled[0].report;
        let ast_run_us = ast.then(|| {
            1e6 * time_per_run(|| {
                minivm::interpret(&tu, &entry, &spec).expect("interprets");
            })
        });
        let (bytecode_compile_us, bytecode_run_us) = if byte {
            let compile_us = 1e6
                * time_per_run(|| {
                    minivm::compile(&tu, &entry, &spec).expect("lowers");
                });
            let kernel = minivm::compile(&tu, &entry, &spec).expect("lowers");
            let run_us = 1e6
                * time_per_run(|| {
                    kernel.run().expect("runs");
                });
            (Some(compile_us), Some(run_us))
        } else {
            (None, None)
        };
        let speedup = match (ast_run_us, bytecode_run_us) {
            (Some(a), Some(b)) => Some(a / b),
            _ => None,
        };
        if let Some(s) = speedup {
            log_speedup_sum += s.ln();
        }
        let fmt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.2}"),
            None => "-".to_string(),
        };
        println!(
            "{:>12} {:>14} {:>12} {:>14} {:>12} {:>9}",
            app.name(),
            fmt(ast_run_us),
            fmt(bytecode_compile_us),
            fmt(bytecode_run_us),
            report.flops,
            match speedup {
                Some(s) => format!("{s:.1}x"),
                None => "-".to_string(),
            }
        );
        rows.push(EngineRow {
            app: app.name().to_string(),
            checksum: format!("{:016x}", report.checksum),
            flops: report.flops,
            ast_run_us,
            bytecode_compile_us,
            bytecode_run_us,
            speedup,
        });
    }
    let geomean_speedup = (ast && byte).then(|| (log_speedup_sum / App::ALL.len() as f64).exp());
    if let Some(g) = geomean_speedup {
        println!("\ngeomean speedup (compiled vs interpreted): {g:.1}x");
    }
    socrates_bench::write_json(
        "engine_compare",
        &EngineCompare {
            dataset: format!("{DATASET:?}"),
            threads: 1,
            rows,
            geomean_speedup,
        },
    );
}
