//! Ablation studies for the design choices DESIGN.md calls out — what
//! each SOCRATES component buys beyond the paper's headline figures.
//!
//! 1. **COBAYN value**: per app (leave-one-out), single-thread speedup
//!    over `-O1` of (a) the best GCC standard level, (b) the best of the
//!    4 COBAYN-predicted combinations, (c) the oracle best of all 128
//!    combinations. Prediction quality = how much of the oracle headroom
//!    the 4 predictions recover.
//! 2. **Feedback value**: profile on the nominal machine, deploy on one
//!    whose cores draw ~30% more power. Measure power-budget violations
//!    with the mARGOt monitor-feedback loop enabled vs disabled.
//! 3. **Adaptation value**: a power budget that changes during the run;
//!    adaptive selection vs the best *static* configuration picked for
//!    either budget extreme.
//!
//! Run with `cargo run -p socrates-bench --bin ablation --release`.

use margot::{Cmp, Constraint, Metric, Rank};
use platform_sim::{BindingPolicy, KnobConfig, Machine, PowerParams};
use polybench::App;
use serde::Serialize;
use socrates::{AdaptiveApplication, ArtifactStore, Toolchain};

fn main() {
    let toolchain = Toolchain::default();
    // One artifact store for all three studies: ablations 2 and 3 reuse
    // the 2mm artifacts (corpus, weave, knowledge) computed by the
    // batch run of ablation 1.
    let store = ArtifactStore::new();
    cobayn_value(&toolchain, &store);
    feedback_value(&toolchain, &store);
    adaptation_value(&toolchain, &store);
}

#[derive(Serialize)]
struct CobaynRow {
    benchmark: String,
    best_std_speedup: f64,
    best_predicted_speedup: f64,
    oracle_speedup: f64,
    headroom_recovered: f64,
}

/// Ablation 1: how good are the 4 predicted flag combinations?
fn cobayn_value(toolchain: &Toolchain, store: &ArtifactStore) {
    println!("=== Ablation 1: COBAYN prediction quality (leave-one-out) ===");
    println!(
        "{:<12} {:>9} {:>10} {:>8} {:>10}",
        "Benchmark", "best-std", "best-pred", "oracle", "recovered"
    );
    let machine = toolchain.platform.machine(toolchain.seed).noiseless();
    let enhanced_apps = toolchain
        .enhance_all_with_store(&App::ALL, store)
        .expect("batch enhance");
    let mut rows = Vec::new();
    for enhanced in &enhanced_apps {
        let app = enhanced.app;
        let profile = app.profile(toolchain.dataset);
        let speed = |co: &platform_sim::CompilerOptions| {
            let cfg = KnobConfig::new(co.clone(), 1, BindingPolicy::Close);
            1.0 / machine.expected(&profile, &cfg).time_s
        };
        let o1 = speed(&platform_sim::CompilerOptions::level(
            platform_sim::OptLevel::O1,
        ));
        let best_std = platform_sim::OptLevel::ALL
            .iter()
            .map(|&l| speed(&platform_sim::CompilerOptions::level(l)))
            .fold(0.0f64, f64::max)
            / o1;
        let best_pred = enhanced
            .cobayn_flags
            .iter()
            .map(&speed)
            .fold(0.0f64, f64::max)
            / o1;
        let oracle = platform_sim::CompilerOptions::cobayn_space()
            .iter()
            .map(speed)
            .fold(0.0f64, f64::max)
            / o1;
        // Fraction of the (oracle - best_std) headroom the predictions
        // recover; clamped at 0 when predictions trail the std levels.
        let headroom = if oracle > best_std {
            ((best_pred - best_std) / (oracle - best_std)).max(0.0)
        } else {
            1.0
        };
        println!(
            "{:<12} {:>9.3} {:>10.3} {:>8.3} {:>9.0}%",
            app.name(),
            best_std,
            best_pred,
            oracle,
            headroom * 100.0
        );
        rows.push(CobaynRow {
            benchmark: app.name().to_string(),
            best_std_speedup: best_std,
            best_predicted_speedup: best_pred,
            oracle_speedup: oracle,
            headroom_recovered: headroom,
        });
    }
    let mean = rows.iter().map(|r| r.headroom_recovered).sum::<f64>() / rows.len() as f64;
    println!(
        "mean oracle-headroom recovered by 4 predictions: {:.0}%",
        mean * 100.0
    );
    println!();
    socrates_bench::write_json("ablation_cobayn", &rows);
}

#[derive(Serialize)]
struct FeedbackResult {
    budget_w: f64,
    violation_rate_without_feedback: f64,
    violation_rate_with_feedback: f64,
}

/// Ablation 2: the monitor-feedback loop under deployment drift.
fn feedback_value(toolchain: &Toolchain, store: &ArtifactStore) {
    println!("=== Ablation 2: mARGOt feedback under a hotter-than-profiled machine ===");
    // Pure cache walk: 2mm was already enhanced by ablation 1.
    let enhanced = toolchain
        .enhance_with_store(App::TwoMm, store)
        .expect("enhance");
    let budget = 100.0;

    // The deployed machine draws ~30% more core power than profiled.
    let hot_power = PowerParams {
        core_w: PowerParams::default().core_w * 1.3,
        smt_w: PowerParams::default().smt_w * 1.3,
        ..PowerParams::default()
    };
    let hot_machine = || Machine::xeon_e5_2630_v3(97).with_power_params(hot_power.clone());

    let violation_rate = |feedback: bool| -> f64 {
        let mut app = AdaptiveApplication::with_machine(
            enhanced.clone(),
            Rank::minimize(Metric::exec_time()),
            hot_machine(),
        );
        app.set_feedback(feedback);
        app.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            budget,
            10,
        ));
        app.run_for(20.0);
        let violations = app.trace().iter().filter(|s| s.power_w > budget).count();
        violations as f64 / app.trace().len() as f64
    };

    let without = violation_rate(false);
    let with = violation_rate(true);
    println!("power budget: {budget} W; deployed core power: +30% vs profiled");
    println!("violation rate without feedback: {:>5.1}%", without * 100.0);
    println!("violation rate with feedback   : {:>5.1}%", with * 100.0);
    assert!(
        with < without || without == 0.0,
        "feedback must not increase violations"
    );
    println!();
    socrates_bench::write_json(
        "ablation_feedback",
        &FeedbackResult {
            budget_w: budget,
            violation_rate_without_feedback: without,
            violation_rate_with_feedback: with,
        },
    );
}

#[derive(Serialize)]
struct AdaptationRow {
    strategy: String,
    mean_exec_ms: f64,
    violation_rate: f64,
}

/// Ablation 3: adaptive selection vs one-fits-all static configurations
/// under a time-varying power budget (the paper's motivating scenario).
fn adaptation_value(toolchain: &Toolchain, store: &ArtifactStore) {
    println!("=== Ablation 3: adaptive vs static under a changing power budget ===");
    let enhanced = toolchain
        .enhance_with_store(App::TwoMm, store)
        .expect("enhance");
    // Budget schedule: generous -> tight -> medium, 10 virtual s each.
    let schedule = [140.0, 60.0, 100.0];

    // Adaptive run.
    let mut app =
        AdaptiveApplication::new(enhanced.clone(), Rank::minimize(Metric::exec_time()), 55);
    app.add_constraint(Constraint::new(
        Metric::power(),
        Cmp::LessOrEqual,
        schedule[0],
        10,
    ));
    let mut adaptive_samples = Vec::new();
    let mut budgets_per_sample = Vec::new();
    for &budget in &schedule {
        app.manager_mut()
            .asrtm_mut()
            .set_constraint_value(&Metric::power(), budget);
        for s in app.run_for(10.0) {
            adaptive_samples.push(s.clone());
            budgets_per_sample.push(budget);
        }
    }

    // Static baselines: the config a non-adaptive deployment would pick
    // for the loose or the tight budget, run unchanged across the day.
    let static_best_for = |budget: f64| {
        let mut rtm = margot::AsRtm::new(
            enhanced.knowledge.clone(),
            Rank::minimize(Metric::exec_time()),
        );
        rtm.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            budget,
            10,
        ));
        rtm.best().expect("non-empty").config.clone()
    };

    let run_static = |config: &KnobConfig| {
        let mut machine = Machine::xeon_e5_2630_v3(55);
        let mut samples = Vec::new();
        let mut budgets = Vec::new();
        let mut t = 0.0;
        for &budget in &schedule {
            let deadline = t + 10.0;
            while t < deadline {
                let run = machine.execute(&enhanced.profile, config);
                t += run.time_s;
                samples.push((run.time_s, run.power_w));
                budgets.push(budget);
            }
        }
        (samples, budgets)
    };

    let stats = |execs: &[(f64, f64)], budgets: &[f64]| {
        let mean_exec = execs.iter().map(|(t, _)| t).sum::<f64>() / execs.len() as f64 * 1e3;
        let violations = execs
            .iter()
            .zip(budgets)
            .filter(|((_, p), b)| p > *b)
            .count() as f64
            / execs.len() as f64;
        (mean_exec, violations)
    };

    println!(
        "{:<24} {:>13} {:>12}",
        "strategy", "mean exec", "violations"
    );
    let mut rows = Vec::new();
    let adaptive_execs: Vec<(f64, f64)> = adaptive_samples
        .iter()
        .map(|s| (s.time_s, s.power_w))
        .collect();
    let (ae, av) = stats(&adaptive_execs, &budgets_per_sample);
    println!(
        "{:<24} {:>10.1} ms {:>11.1}%",
        "adaptive (SOCRATES)",
        ae,
        av * 100.0
    );
    rows.push(AdaptationRow {
        strategy: "adaptive".into(),
        mean_exec_ms: ae,
        violation_rate: av,
    });

    for (label, budget) in [("static-for-140W", 140.0), ("static-for-60W", 60.0)] {
        let cfg = static_best_for(budget);
        let (samples, budgets) = run_static(&cfg);
        let (me, mv) = stats(&samples, &budgets);
        println!("{:<24} {:>10.1} ms {:>11.1}%", label, me, mv * 100.0);
        rows.push(AdaptationRow {
            strategy: label.into(),
            mean_exec_ms: me,
            violation_rate: mv,
        });
    }
    println!();
    println!(
        "the fast static config violates the tight budget; the safe static config \
         wastes the loose budget; only the adaptive run gets both right"
    );
    socrates_bench::write_json("ablation_adaptation", &rows);
}
