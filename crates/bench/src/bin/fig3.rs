//! Regenerates the paper's **Figure 3**: the power/throughput
//! distribution over the Pareto-optimal configurations of every
//! benchmark (normalized metrics, shown as boxplot statistics).
//!
//! The experiment performs the full-factorial DSE per application, keeps
//! the Pareto frontier (maximize throughput, minimize power), normalizes
//! each metric by its per-app mean over the frontier and prints the
//! five-number summaries. The wide, app-dependent spans demonstrate the
//! paper's conclusion: there is no one-fits-all configuration.
//!
//! Run with `cargo run -p socrates-bench --bin fig3 --release`.

use margot::Metric;
use polybench::App;
use serde::Serialize;
use socrates::Toolchain;
use socrates_bench::{normalized_metric, BoxStats};

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    pareto_points: usize,
    power: BoxStats,
    throughput: BoxStats,
}

fn main() {
    let toolchain = Toolchain::default();
    println!("Figure 3 — power/throughput distribution over the Pareto curve");
    println!("(values normalized by the per-app mean over the Pareto set)");
    println!();
    println!(
        "{:<12} {:>4} | {:>28} | {:>28}",
        "Benchmark", "#P", "Power (min q1 med q3 max)", "Thr (min q1 med q3 max)"
    );

    // Batch enhancement: one shared artifact store, the COBAYN corpus
    // built once for all 12 apps instead of once per app.
    let enhanced_apps = toolchain
        .enhance_all(&App::ALL)
        .unwrap_or_else(|e| panic!("{e}"));

    let mut entries = Vec::new();
    for enhanced in &enhanced_apps {
        let app = enhanced.app;
        let pareto = dse::power_throughput_pareto(&enhanced.knowledge);
        let power = BoxStats::from_values(&normalized_metric(&pareto, &Metric::power()));
        let thr = BoxStats::from_values(&normalized_metric(&pareto, &Metric::throughput()));
        println!(
            "{:<12} {:>4} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2} | {:>5.2} {:>5.2} {:>5.2} {:>5.2} {:>5.2}",
            app.name(),
            pareto.len(),
            power.min,
            power.q1,
            power.median,
            power.q3,
            power.max,
            thr.min,
            thr.q1,
            thr.median,
            thr.q3,
            thr.max,
        );
        entries.push(Entry {
            benchmark: app.name().to_string(),
            pareto_points: pareto.len(),
            power,
            throughput: thr,
        });
    }

    // The paper's headline: the swing across the Pareto set is large.
    let max_power_swing = entries
        .iter()
        .map(|e| e.power.range())
        .fold(0.0f64, f64::max);
    let max_thr_swing = entries
        .iter()
        .map(|e| e.throughput.range())
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "largest normalized swing: power {max_power_swing:.2}, throughput {max_thr_swing:.2} \
         => no one-fits-all configuration"
    );

    socrates_bench::write_json("fig3", &entries);
}
