//! Distributed-fleet convergence experiment: how long the knowledge
//! exchange takes to reconcile as the link degrades.
//!
//! For each (topology, drop probability, latency) cell a fleet of
//! [`NODES`] instances runs [`ROUNDS`] synchronized rounds over the
//! seeded lossy transport, then drains: anti-entropy repair rounds —
//! no application steps — until every node holds the same effective
//! knowledge. The *drain round count* is the convergence time the
//! paper-style crowdsourcing loop cares about: how far behind the
//! fleet's common knowledge can be once the exchange quiesces.
//!
//! Every cell is verified, not just timed: after the drain the bench
//! asserts all nodes converged onto the canonical single-mutex
//! [`margot::SharedKnowledge`] fold of every observation (the same
//! invariant `tests/transport_props.rs` pins property-wise).
//!
//! Numbers land in `results/fleet_dist.json`
//! (`results/fleet_dist_smoke.json` for the CI smoke configuration)
//! and BENCH.md.
//!
//! Run with `cargo run -p socrates-bench --bin fleet_dist_bench
//! --release` (`--smoke` for the small CI configuration).

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::{Rank, SharedKnowledge};

use serde::Serialize;
use socrates::{
    DistTopology, DistributedConfig, DistributedFleet, EnhancedApp, FleetConfig, LinkConfig,
};
use std::time::Instant;

/// Design-knowledge subsample handed to every instance.
const KNOWLEDGE_POINTS: usize = 64;
/// Fleet size per cell (full / smoke).
const NODES: usize = 16;
const NODES_SMOKE: usize = 8;
/// Synchronized application rounds per cell (full / smoke).
const ROUNDS: usize = 12;
const ROUNDS_SMOKE: usize = 6;

#[derive(Serialize)]
struct DistRow {
    topology: String,
    nodes: usize,
    rounds: usize,
    drop_prob: f64,
    dup_prob: f64,
    max_latency: u64,
    /// Anti-entropy repair rounds until every node held the same
    /// effective knowledge (the convergence time).
    drain_rounds: u64,
    msgs_sent: u64,
    msgs_delivered: u64,
    msgs_dropped: u64,
    msgs_duplicated: u64,
    /// Encoded wire bytes handed to the transport.
    bytes_sent: u64,
    /// Fold rollbacks forced by out-of-canonical-order arrivals
    /// (checkpoint rollbacks and full refolds alike).
    refolds: u64,
    /// Observations re-folded by those rollbacks — the actual replay
    /// overhead, suffix-proportional under checkpointed refolds.
    refold_ops_replayed: u64,
    wall_ms: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (nodes, rounds) = if smoke {
        (NODES_SMOKE, ROUNDS_SMOKE)
    } else {
        (NODES, ROUNDS)
    };
    let drops: &[f64] = if smoke {
        &[0.0, 0.3]
    } else {
        &[0.0, 0.1, 0.3, 0.5]
    };
    let latencies: &[u64] = if smoke { &[0, 2] } else { &[0, 2, 6] };
    let enhanced = socrates_bench::subsampled_twomm(KNOWLEDGE_POINTS);
    println!(
        "Distributed fleet convergence — drain rounds vs loss/latency\n\
         ({nodes} nodes, {rounds} rounds, {KNOWLEDGE_POINTS}-point knowledge, dup 10%)\n"
    );
    println!(
        "{:>10} {:>6} {:>8} {:>13} {:>10} {:>9} {:>9} {:>9} {:>10}",
        "topology",
        "drop",
        "latency",
        "drain rounds",
        "sent",
        "dropped",
        "refolds",
        "replayed",
        "wall [ms]"
    );
    let mut out = Vec::new();
    for topology in [DistTopology::BrokerStar, DistTopology::Gossip { fanout: 2 }] {
        for &drop_prob in drops {
            for &max_latency in latencies {
                let dup_prob = if drop_prob > 0.0 { 0.1 } else { 0.0 };
                let config = FleetConfig {
                    exploration_interval: 0,
                    distributed: Some(DistributedConfig {
                        topology: topology.clone(),
                        link: LinkConfig {
                            seed: 2018,
                            min_latency: 0,
                            max_latency,
                            drop_prob,
                            dup_prob,
                        },
                        ..DistributedConfig::default()
                    }),
                    ..FleetConfig::default()
                };
                let wall = Instant::now();
                let mut fleet =
                    DistributedFleet::new(config, &enhanced).expect("valid fleet config");
                fleet.spawn(&Rank::throughput_per_watt2(), 2018, nodes);
                for _ in 0..rounds {
                    fleet.step_round();
                }
                let drain_rounds = fleet.drain().expect("drop_prob < 1 must drain");
                let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
                verify_converged(&fleet, &enhanced, nodes);
                let stats = fleet.stats();
                let label = match topology {
                    DistTopology::BrokerStar => "star",
                    DistTopology::Gossip { .. } => "gossip-2",
                };
                let row = DistRow {
                    topology: label.to_string(),
                    nodes,
                    rounds,
                    drop_prob,
                    dup_prob,
                    max_latency,
                    drain_rounds,
                    msgs_sent: stats.net.sent,
                    msgs_delivered: stats.net.delivered,
                    msgs_dropped: stats.net.dropped,
                    msgs_duplicated: stats.net.duplicated,
                    bytes_sent: stats.net.bytes_sent,
                    refolds: stats.refolds,
                    refold_ops_replayed: stats.refold_ops_replayed,
                    wall_ms,
                };
                println!(
                    "{:>10} {:>6.2} {:>8} {:>13} {:>10} {:>9} {:>9} {:>9} {:>10.1}",
                    row.topology,
                    row.drop_prob,
                    row.max_latency,
                    row.drain_rounds,
                    row.msgs_sent,
                    row.msgs_dropped,
                    row.refolds,
                    row.refold_ops_replayed,
                    row.wall_ms
                );
                out.push(row);
            }
        }
        println!();
    }
    let name = if smoke {
        "fleet_dist_smoke"
    } else {
        "fleet_dist"
    };
    socrates_bench::write_json(name, &out);
}

/// Asserts the cell actually converged onto the canonical
/// single-mutex reference fold (drain guarantees it; the bench
/// re-checks rather than trusting the implementation it measures).
fn verify_converged(fleet: &DistributedFleet, enhanced: &EnhancedApp, nodes: usize) {
    assert!(fleet.converged(), "drain returned but fleet not converged");
    let config = fleet.config();
    let reference = SharedKnowledge::new(enhanced.knowledge.clone(), config.knowledge_window)
        .with_min_observations(config.min_observations)
        .with_shards(1);
    for op in fleet.canonical_ops() {
        reference.publish(&op.config, &op.observed);
    }
    let reference = reference.knowledge();
    for id in 0..nodes {
        assert_eq!(
            fleet.node_knowledge(id),
            reference,
            "node {id} diverged from the single-mutex reference"
        );
    }
}
