//! Regenerates the paper's **Table I**: metrics collected from the
//! application of the LARA strategies to the 12 Polybench benchmarks.
//!
//! Columns: Att (attributes checked), Act (actions performed), O-LOC
//! (original logical LOC), W-LOC (weaved), D-LOC (difference) and Bloat
//! (D-LOC per line of aspect code).
//!
//! Run with `cargo run -p socrates-bench --bin table1 --release`.

use polybench::App;
use serde::Serialize;
use socrates::Toolchain;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    att: usize,
    act: usize,
    o_loc: usize,
    w_loc: usize,
    d_loc: usize,
    bloat: f64,
}

fn main() {
    let toolchain = Toolchain::default();
    println!("Table I — metrics collected from the application of LARA strategies");
    println!("(strategy logical LOC: {})", lara::STRATEGY_LOC);
    println!();
    println!(
        "{:<12} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7}",
        "Benchmark", "Att", "Act", "O-LOC", "W-LOC", "D-LOC", "Bloat"
    );

    // One shared-corpus batch run over the whole suite.
    let enhanced_apps = toolchain
        .enhance_all(&App::ALL)
        .unwrap_or_else(|e| panic!("{e}"));

    let mut rows = Vec::new();
    for enhanced in &enhanced_apps {
        let app = enhanced.app;
        let m = enhanced.metrics;
        println!(
            "{:<12} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7.2}",
            app.name(),
            m.attributes,
            m.actions,
            m.original_loc,
            m.weaved_loc,
            m.delta_loc(),
            m.bloat()
        );
        rows.push(Row {
            benchmark: app.name().to_string(),
            att: m.attributes,
            act: m.actions,
            o_loc: m.original_loc,
            w_loc: m.weaved_loc,
            d_loc: m.delta_loc(),
            bloat: m.bloat(),
        });
    }

    let n = rows.len() as f64;
    let avg = |f: &dyn Fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / n;
    println!(
        "{:<12} {:>6.0} {:>6.0} {:>7.0} {:>7.0} {:>7.0} {:>7.2}",
        "Average",
        avg(&|r| r.att as f64),
        avg(&|r| r.act as f64),
        avg(&|r| r.o_loc as f64),
        avg(&|r| r.w_loc as f64),
        avg(&|r| r.d_loc as f64),
        avg(&|r| r.bloat),
    );

    socrates_bench::write_json("table1", &rows);
}
