//! Regenerates the paper's **Figure 5**: a 300-second execution trace of
//! the adaptive 2mm binary while the application requirement changes at
//! runtime:
//!
//! - 0 s – 100 s: energy-efficient policy, maximize Thr/W²;
//! - 100 s – 200 s: performance policy, maximize Throughput;
//! - 200 s – 300 s: back to Thr/W².
//!
//! The trace reports, per invocation, the observed power, execution
//! time, binding policy, compiler configuration and thread count —
//! the five panels of the paper's figure.
//!
//! Run with `cargo run -p socrates-bench --bin fig5 --release`.

use margot::{Metric, Rank};
use platform_sim::BindingPolicy;
use polybench::App;
use serde::Serialize;
use socrates::{AdaptiveApplication, ArtifactStore, Toolchain};
use socrates_bench::co_label;

#[derive(Serialize)]
struct Sample {
    t_s: f64,
    power_w: f64,
    exec_time_ms: f64,
    binding: String,
    compiler: String,
    threads: u32,
    phase: String,
}

fn main() {
    let toolchain = Toolchain::default();
    let store = ArtifactStore::new();
    let enhanced = toolchain
        .enhance_with_store(App::TwoMm, &store)
        .expect("enhance 2mm");
    let cobayn_flags = enhanced.cobayn_flags.clone();
    let mut app = AdaptiveApplication::new(enhanced, Rank::throughput_per_watt2(), 2018);

    println!("Figure 5 — 2mm execution trace with runtime requirement changes");
    println!("phases: [0,100) Thr/W^2, [100,200) Throughput, [200,300) Thr/W^2");
    println!();

    let phases = [
        ("Thr/W^2", 100.0),
        ("Throughput", 100.0),
        ("Thr/W^2", 100.0),
    ];
    let mut samples: Vec<Sample> = Vec::new();
    for (i, (phase, duration)) in phases.iter().enumerate() {
        match i {
            1 => app.set_rank(Rank::maximize(Metric::throughput())),
            2 => app.set_rank(Rank::throughput_per_watt2()),
            _ => {}
        }
        for s in app.run_for(*duration) {
            samples.push(Sample {
                t_s: s.t_start_s,
                power_w: s.power_w,
                exec_time_ms: s.time_s * 1e3,
                binding: s.config.bp.to_string(),
                compiler: co_label(&s.config.co, &cobayn_flags),
                threads: s.config.tn,
                phase: phase.to_string(),
            });
        }
    }

    // Print a decimated trace (~every 5 virtual seconds) in panel order.
    println!(
        "{:>8} {:>9} {:>10} {:>6} {:>9} {:>8}  Phase",
        "t [s]", "Power[W]", "Exec[ms]", "Bind", "Compiler", "Threads"
    );
    let mut next_print = 0.0;
    for s in &samples {
        if s.t_s >= next_print {
            println!(
                "{:>8.1} {:>9.1} {:>10.1} {:>6} {:>9} {:>8}  {}",
                s.t_s,
                s.power_w,
                s.exec_time_ms,
                if s.binding == BindingPolicy::Close.to_string() {
                    "C"
                } else {
                    "S"
                },
                s.compiler,
                s.threads,
                s.phase
            );
            next_print += 5.0;
        }
    }

    // Phase summary: the paper's observable effect.
    println!();
    for phase in ["Thr/W^2", "Throughput"] {
        let phase_samples: Vec<&Sample> = samples.iter().filter(|s| s.phase == phase).collect();
        let mean_power =
            phase_samples.iter().map(|s| s.power_w).sum::<f64>() / phase_samples.len() as f64;
        let mean_exec =
            phase_samples.iter().map(|s| s.exec_time_ms).sum::<f64>() / phase_samples.len() as f64;
        let mean_threads = phase_samples
            .iter()
            .map(|s| f64::from(s.threads))
            .sum::<f64>()
            / phase_samples.len() as f64;
        println!(
            "phase {phase:<11}: mean power {mean_power:6.1} W, mean exec {mean_exec:7.1} ms, \
             mean threads {mean_threads:4.1} ({} invocations)",
            phase_samples.len()
        );
    }

    socrates_bench::write_json("fig5", &samples);
}
