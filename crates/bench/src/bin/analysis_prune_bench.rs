//! Analysis-driven DSE pruning: how much of the SOCRATES configuration
//! space the static analyzer removes before a single profile run is
//! paid for, and what the analysis itself costs.
//!
//! For every Polybench app the bench (1) runs the static analyzer over
//! the weaved kernel once per candidate thread count (through the
//! [`socrates::ArtifactStore`] analysis cache, so a fleet would pay
//! this exactly once), (2) derives the static workload — the analyzer's
//! flop/load/store counters, extrapolated to the *real* dataset scale
//! through the symbolic cost polynomials where the kernel admits them
//! ([`socrates::full_scale_spec`]) — and (3) prunes the full-factorial
//! design space with [`dse::DesignSpace::pruned_factorial`]:
//! analyzer-unsafe specializations are infeasible, and feasible points
//! strictly Pareto-dominated on the deterministic `(time, power)`
//! expectation are skipped.
//!
//! Everything here is deterministic (the analyzer is exact on these
//! kernels and [`platform_sim::Machine::expected`] is noise-free), so
//! the committed baseline in `results/analysis_prune.json` pins the
//! per-app prune *counts* bit-exactly; only the wall-clock column is
//! machine-dependent and exempt from the gate.
//!
//! Run with `cargo run -p socrates-bench --bin analysis_prune_bench
//! --release` (`--smoke --check` is the CI configuration: a 4-app
//! subset checked against the committed full baseline, written to
//! `results/analysis_prune_smoke.json` so the baseline is never
//! clobbered).

use platform_sim::KnobConfig;
use polybench::App;
use serde::{Deserialize, Serialize};
use socrates::{full_scale_spec, ArtifactStore, Toolchain};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// The CI smoke subset: two cost-exact kernels, one stencil, and one
/// data-dependent kernel (Correlation — no cost polynomial, so the
/// fallback path stays covered).
const SMOKE_APPS: [App; 4] = [App::TwoMm, App::Mvt, App::Jacobi2d, App::Correlation];

/// One app's pruning outcome.
#[derive(Serialize, Deserialize)]
struct PruneRow {
    app: String,
    dataset: String,
    /// Full-factorial space size before pruning.
    space: usize,
    /// Configurations surviving the prune (what the fleet sweeps).
    kept: usize,
    /// Analyzer-rejected (unsafe) specializations.
    infeasible: usize,
    /// Statically Pareto-dominated points.
    dominated: usize,
    /// `(infeasible + dominated) / space`.
    prune_ratio: f64,
    /// Whether the symbolic cost model is exact for this kernel (the
    /// static workload then extrapolates to the full dataset scale).
    cost_exact: bool,
    /// Static flop count backing the expectation (full-scale where the
    /// cost model allows, functional-scale otherwise).
    static_flops: u64,
    /// Static DRAM traffic backing the expectation (8 bytes per
    /// counted load/store).
    static_bytes: u64,
    /// Wall-clock of the analyses + prune for this app, milliseconds.
    /// Machine-dependent; not gated.
    analysis_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct PruneSummary {
    apps: usize,
    mean_prune_ratio: f64,
    total_analysis_ms: f64,
}

#[derive(Serialize, Deserialize)]
struct PruneBenchReport {
    rows: Vec<PruneRow>,
    summary: PruneSummary,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");

    let apps: Vec<App> = if smoke {
        SMOKE_APPS.to_vec()
    } else {
        App::ALL.to_vec()
    };
    let toolchain = Toolchain {
        dse_repetitions: 1,
        ..Toolchain::default()
    };
    let store = ArtifactStore::new();
    let thread_counts: Vec<u32> = (1..=toolchain.platform.topology.logical_cpus()).collect();

    println!(
        "Static analysis-driven DSE pruning — {} dataset, {} thread counts\n",
        format!("{:?}", toolchain.dataset).to_lowercase(),
        thread_counts.len()
    );
    println!(
        "{:>12} {:>6} {:>6} {:>11} {:>10} {:>7} {:>11} {:>13}",
        "app", "space", "kept", "infeasible", "dominated", "ratio", "cost", "analysis [ms]"
    );

    let mut rows = Vec::new();
    for &app in &apps {
        let started = Instant::now();
        // One analysis per candidate thread count, through the store's
        // cache (the same reports a pruning fleet would reuse).
        let mut reports: HashMap<u32, Arc<minivm::AnalysisReport>> = HashMap::new();
        for &tn in &thread_counts {
            let report = store
                .analysis(&toolchain, app, tn)
                .unwrap_or_else(|e| panic!("{e}"));
            reports.insert(tn, report);
        }
        let base = &reports[&1];
        // Static workload: analyzer counters, extrapolated to the real
        // dataset dimensions through the cost polynomials when exact.
        let (flops, loads, stores) = base
            .cost
            .as_ref()
            .and_then(|c| c.eval_at(&full_scale_spec(app, toolchain.dataset, 1)))
            .unwrap_or((base.flops, base.loads, base.stores));
        let static_bytes = (loads + stores).saturating_mul(8);
        let mut workload = app.profile(toolchain.dataset);
        workload.name = format!("{}-static", app.name());
        workload.flops = flops as f64;
        workload.bytes = static_bytes as f64;

        let predictions = store
            .flag_predictions(&toolchain, app)
            .unwrap_or_else(|e| panic!("{e}"));
        let space =
            dse::DesignSpace::socrates(predictions.flags.clone(), &toolchain.platform.topology);
        let machine = toolchain.platform.machine(0);
        let pruned = space.pruned_factorial(
            |cfg: &KnobConfig| reports[&cfg.tn].is_safe(),
            |cfg: &KnobConfig| {
                let e = machine.expected(&workload, cfg);
                (e.time_s, e.power_w)
            },
        );
        let analysis_ms = started.elapsed().as_secs_f64() * 1e3;

        let row = PruneRow {
            app: app.name().to_string(),
            dataset: format!("{:?}", toolchain.dataset).to_lowercase(),
            space: space.size(),
            kept: pruned.kept.len(),
            infeasible: pruned.infeasible,
            dominated: pruned.dominated,
            prune_ratio: pruned.prune_ratio(),
            cost_exact: base.cost.as_ref().is_some_and(|c| c.exact),
            static_flops: flops,
            static_bytes,
            analysis_ms,
        };
        println!(
            "{:>12} {:>6} {:>6} {:>11} {:>10} {:>6.1}% {:>11} {:>13.1}",
            row.app,
            row.space,
            row.kept,
            row.infeasible,
            row.dominated,
            row.prune_ratio * 100.0,
            if row.cost_exact { "exact" } else { "fallback" },
            row.analysis_ms
        );
        rows.push(row);
    }

    let mean_prune_ratio = rows.iter().map(|r| r.prune_ratio).sum::<f64>() / rows.len() as f64;
    let total_analysis_ms = rows.iter().map(|r| r.analysis_ms).sum::<f64>();
    println!(
        "\nmean prune ratio {:.1}% — {:.0} ms of analysis replaces {} profile points",
        mean_prune_ratio * 100.0,
        total_analysis_ms,
        rows.iter()
            .map(|r| r.infeasible + r.dominated)
            .sum::<usize>()
    );
    let report = PruneBenchReport {
        rows,
        summary: PruneSummary {
            apps: apps.len(),
            mean_prune_ratio,
            total_analysis_ms,
        },
    };
    // The smoke configuration never overwrites the committed baseline
    // it is compared against.
    let name = if smoke {
        "analysis_prune_smoke"
    } else {
        "analysis_prune"
    };
    socrates_bench::write_json(name, &report);
    if check {
        check_against_baseline(&report);
    }
}

/// Compares the run against the committed `results/analysis_prune.json`
/// and exits nonzero on divergence (the CI gate). The prune *counts*
/// are deterministic — analyzer verdicts, cost polynomials and the
/// noise-free platform expectation — so the gate demands bit-exact
/// agreement per app and tolerates no drift; only the wall-clock
/// column is machine-dependent and exempt.
fn check_against_baseline(report: &PruneBenchReport) {
    let path = socrates_bench::results_dir().join("analysis_prune.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", path.display()));
    let baseline: PruneBenchReport =
        serde_json::from_str(&json).expect("committed baseline parses as PruneBenchReport");
    println!("regression check against {}:", path.display());
    let mut failures = 0usize;
    for row in &report.rows {
        let Some(b) = baseline.rows.iter().find(|b| b.app == row.app) else {
            println!("  {:>12}: MISSING from the committed baseline", row.app);
            failures += 1;
            continue;
        };
        let same = (row.space, row.kept, row.infeasible, row.dominated)
            == (b.space, b.kept, b.infeasible, b.dominated)
            && row.cost_exact == b.cost_exact
            && row.static_flops == b.static_flops
            && row.static_bytes == b.static_bytes;
        if same {
            println!(
                "  {:>12}: ok ({:.1}% pruned)",
                row.app,
                row.prune_ratio * 100.0
            );
        } else {
            println!(
                "  {:>12}: DIVERGED — measured kept/inf/dom {}/{}/{} vs baseline {}/{}/{}",
                row.app, row.kept, row.infeasible, row.dominated, b.kept, b.infeasible, b.dominated
            );
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!("analysis_prune_bench: {failures} app(s) diverged from the baseline");
        std::process::exit(1);
    }
    println!(
        "all {} app(s) match the committed baseline",
        report.rows.len()
    );
}
