//! Fleet experiment: the paper's *online* loop at deployment scale.
//!
//! Two studies, numbers recorded in `BENCH.md`:
//!
//! 1. **Scaling** — N-instance fleets (N = 1, 2, 4, 8, 16) of the
//!    adaptive 2mm binary stepped over rayon for 60 virtual seconds:
//!    total invocations, virtual throughput and host wall time.
//! 2. **Online convergence under drift** — the fleet deploys onto a
//!    machine running hotter than the design-time platform
//!    (`Platform::hotter(DRIFT_FACTOR)`: per-core dynamic power +60%,
//!    idle floor unchanged — a *non-uniform* drift). Frozen design-time
//!    knowledge keeps selecting the stale Thr/W² optimum (a uniform
//!    feedback ratio cannot re-order operating points under a
//!    geometric rank); the online fleet sweeps the space
//!    cooperatively, merges true observations into the shared
//!    knowledge and locks onto the genuinely best point. Reported
//!    against the oracle (noise-free argmax on the drifted machine).
//!
//! Run with `cargo run -p socrates-bench --bin fleet_bench --release`.

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::{Metric, Rank};
use platform_sim::KnobConfig;
use polybench::App;
use serde::Serialize;
use socrates::{EnhancedApp, ExecutionEngine, Fleet, FleetConfig, Toolchain, TraceSample};
use std::time::Instant;

const DRIFT_FACTOR: f64 = 1.6;
const HORIZON_S: f64 = 300.0;
const FINAL_WINDOW_S: f64 = 100.0;
const INSTANCES: usize = 8;

#[derive(Serialize)]
struct ScalingRow {
    instances: usize,
    engine: String,
    virtual_seconds: f64,
    total_invocations: usize,
    invocations_per_virtual_s: f64,
    host_wall_ms: f64,
    kernel_builds: u64,
    kernel_cache_hits: u64,
}

#[derive(Serialize)]
struct ConvergenceRow {
    mode: String,
    instances: usize,
    final_window_thr_per_w2: f64,
    final_window_mean_power_w: f64,
    final_window_mean_exec_ms: f64,
    energy_per_invocation_j: f64,
    oracle_thr_per_w2: f64,
    regret_vs_oracle: f64,
    median_convergence_time_s: f64,
    instances_on_oracle_config: usize,
    explored_points: usize,
    total_points: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // `--engine {ast,bytecode}` selects the functional engine the
    // fleet's kernels are lowered for (default: bytecode).
    let engine: ExecutionEngine = match args.iter().position(|a| a == "--engine") {
        Some(i) => args
            .get(i + 1)
            .expect("--engine needs a value")
            .parse()
            .unwrap_or_else(|e| panic!("{e}")),
        None => ExecutionEngine::default(),
    };
    let toolchain = Toolchain {
        engine,
        ..Toolchain::default()
    };
    let enhanced = toolchain.enhance(App::TwoMm).expect("enhance 2mm");

    println!("Fleet runtime — online knowledge sharing at deployment scale ({engine} engine)");
    println!();
    scaling_study(&enhanced, engine);
    println!();
    convergence_study(&enhanced, engine);
}

fn scaling_study(enhanced: &EnhancedApp, engine: ExecutionEngine) {
    println!("── N-instance throughput scaling (60 virtual seconds each) ──");
    println!(
        "{:>10} {:>14} {:>12} {:>14} {:>12}",
        "instances", "invocations", "inv/virt-s", "host wall [ms]", "kernels b/h"
    );
    let mut rows = Vec::new();
    for n in [1usize, 2, 4, 8, 16] {
        let mut fleet = Fleet::new(FleetConfig {
            engine,
            ..FleetConfig::default()
        })
        .expect("valid fleet config");
        fleet.spawn(enhanced, &Rank::throughput_per_watt2(), 2018, n);
        let wall = Instant::now();
        fleet.run_for(60.0);
        let host_wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        let total: usize = (0..n).map(|id| fleet.trace(id).len()).sum();
        let stats = fleet.stats();
        let row = ScalingRow {
            instances: n,
            engine: engine.label().to_string(),
            virtual_seconds: 60.0,
            total_invocations: total,
            invocations_per_virtual_s: total as f64 / 60.0,
            host_wall_ms,
            kernel_builds: stats.kernel_builds,
            kernel_cache_hits: stats.kernel_cache_hits,
        };
        println!(
            "{:>10} {:>14} {:>12.1} {:>14.1} {:>12}",
            row.instances,
            row.total_invocations,
            row.invocations_per_virtual_s,
            row.host_wall_ms,
            format!("{}/{}", row.kernel_builds, row.kernel_cache_hits)
        );
        rows.push(row);
    }
    socrates_bench::write_json("fleet_scaling", &rows);
}

fn convergence_study(enhanced: &EnhancedApp, engine: ExecutionEngine) {
    println!("── Online knowledge vs frozen design-time knowledge under drift ──");
    println!(
        "deployment drift: {DRIFT_FACTOR}x per-core dynamic power (idle floor unchanged), \
         {INSTANCES} instances, rank Thr/W², {HORIZON_S} virtual s"
    );

    // The oracle: the noise-free Thr/W² argmax on the drifted machine.
    let drifted = enhanced.platform.hotter(DRIFT_FACTOR);
    let oracle_machine = drifted.machine(0);
    let (oracle_config, oracle_eff) = enhanced
        .knowledge
        .points()
        .iter()
        .map(|p| {
            let e = oracle_machine.expected(&enhanced.profile, &p.config);
            (p.config.clone(), e.throughput_per_watt2())
        })
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty knowledge");
    println!(
        "oracle config on the drifted machine: {} threads, {} binding ({oracle_eff:.3e} Thr/W²)",
        oracle_config.tn, oracle_config.bp
    );

    let mut rows = Vec::new();
    for (mode, share) in [("online", true), ("frozen", false)] {
        let mut fleet = Fleet::new(FleetConfig {
            share_knowledge: share,
            engine,
            ..FleetConfig::default()
        })
        .expect("valid fleet config");
        let base = drifted.machine(7);
        fleet.spawn_on(enhanced, &Rank::throughput_per_watt2(), &base, INSTANCES);
        fleet.run_for(HORIZON_S);

        let traces: Vec<Vec<TraceSample>> = (0..INSTANCES).map(|id| fleet.trace(id)).collect();
        let window_start = HORIZON_S - FINAL_WINDOW_S;
        let tail: Vec<&TraceSample> = traces
            .iter()
            .flatten()
            .filter(|s| s.t_start_s >= window_start && !s.forced)
            .collect();
        let inv = tail.len() as f64;
        let mean_power = tail.iter().map(|s| s.power_w).sum::<f64>() / inv;
        let mean_exec = tail.iter().map(|s| s.time_s).sum::<f64>() / inv;
        let throughput = 1.0 / mean_exec;
        let eff = throughput / (mean_power * mean_power);
        let energy: f64 = tail.iter().map(|s| s.time_s * s.power_w).sum::<f64>() / inv;
        // Convergence: earliest virtual time after which every later
        // planned selection's *true* efficiency (noise-free, on the
        // drifted machine) stays within 1.5% of the oracle.
        let true_eff = |config: &KnobConfig| {
            oracle_machine
                .expected(&enhanced.profile, config)
                .throughput_per_watt2()
        };
        let convergence_times: Vec<f64> = traces
            .iter()
            .map(|t| socrates_bench::convergence_time_s(t, &true_eff, oracle_eff))
            .collect();
        let median_lock = socrates_bench::median(&convergence_times);
        let on_oracle = traces
            .iter()
            .filter(|t| {
                t.iter()
                    .rev()
                    .find(|s| !s.forced)
                    .is_some_and(|s| s.config == oracle_config)
            })
            .count();
        let (explored, total) = fleet.exploration_coverage(App::TwoMm).expect("pool exists");
        let row = ConvergenceRow {
            mode: mode.to_string(),
            instances: INSTANCES,
            final_window_thr_per_w2: eff,
            final_window_mean_power_w: mean_power,
            final_window_mean_exec_ms: mean_exec * 1e3,
            energy_per_invocation_j: energy,
            oracle_thr_per_w2: oracle_eff,
            regret_vs_oracle: (oracle_eff - eff) / oracle_eff,
            median_convergence_time_s: median_lock,
            instances_on_oracle_config: on_oracle,
            explored_points: explored,
            total_points: total,
        };
        println!();
        println!(
            "{mode:>7}: Thr/W² {:.3e} (oracle {:.3e}, regret {:+.1}%), \
             power {:.1} W, exec {:.1} ms, energy {:.2} J/inv",
            row.final_window_thr_per_w2,
            row.oracle_thr_per_w2,
            row.regret_vs_oracle * 100.0,
            row.final_window_mean_power_w,
            row.final_window_mean_exec_ms,
            row.energy_per_invocation_j,
        );
        println!(
            "         time to within 1.5% of oracle (median) {} virtual s, {} / {INSTANCES} \
             instances on the oracle config, online coverage {}/{}",
            if row.median_convergence_time_s.is_finite() {
                format!("{:.1}", row.median_convergence_time_s)
            } else {
                "never".to_string()
            },
            row.instances_on_oracle_config,
            row.explored_points,
            row.total_points,
        );
        rows.push(row);
    }
    socrates_bench::write_json("fleet_convergence", &rows);

    // Fleet-level power-budget arbitration demo rides on the same
    // drifted deployment: a global budget, instances leaving.
    println!();
    arbiter_study(enhanced);
}

fn arbiter_study(enhanced: &EnhancedApp) {
    let drifted = enhanced.platform.hotter(DRIFT_FACTOR);
    let budget = 8.0 * 80.0;
    println!("── Power-budget arbitration (global {budget} W, minimize exec time) ──");
    let mut fleet = Fleet::new(FleetConfig::default()).expect("valid fleet config");
    let base = drifted.machine(7);
    fleet.spawn_on(enhanced, &Rank::minimize(Metric::exec_time()), &base, 8);
    fleet.set_power_budget(Some(budget));
    fleet.run_for(60.0);
    let before: f64 = mean_tail_power(&fleet, 0..8, 30.0);
    // Half the fleet leaves: the survivors' slice doubles. Only the
    // survivors' traces enter the "after" mean — the retired
    // instances' traces end frozen in the 80 W-share era.
    for id in 0..4 {
        fleet.retire_instance(id);
    }
    fleet.run_for(60.0);
    let after: f64 = mean_tail_power(&fleet, 4..8, 30.0);
    println!(
        "mean per-instance power, last 30 s: {before:.1} W with 8 instances \
         -> {after:.1} W after 4 leave (share {:.0} W -> {:.0} W)",
        budget / 8.0,
        budget / 4.0
    );
    #[derive(Serialize)]
    struct ArbiterRow {
        budget_w: f64,
        mean_power_8_instances_w: f64,
        mean_power_4_instances_w: f64,
    }
    socrates_bench::write_json(
        "fleet_arbiter",
        &ArbiterRow {
            budget_w: budget,
            mean_power_8_instances_w: before,
            mean_power_4_instances_w: after,
        },
    );
}

/// Mean observed power over each instance's last `window_s` of
/// *planned* samples (exploration steps excluded — they execute
/// arbitrary configurations by design).
fn mean_tail_power(fleet: &Fleet, ids: std::ops::Range<usize>, window_s: f64) -> f64 {
    let mut values = Vec::new();
    for id in ids {
        let trace = fleet.trace(id);
        let Some(end) = trace.last().map(|s| s.t_start_s + s.time_s) else {
            continue;
        };
        for s in trace
            .iter()
            .filter(|s| s.t_start_s >= end - window_s && !s.forced)
        {
            values.push(s.power_w);
        }
    }
    values.iter().sum::<f64>() / values.len() as f64
}
