//! Regenerates the paper's **Figure 4**: static (compile-time) analysis
//! of the proposed approach on 2mm — minimize execution time given a
//! power budget swept from 45 W to 140 W.
//!
//! For every budget the AS-RTM solves the constrained problem
//! `min exec_time s.t. power <= budget` over the design-time knowledge
//! and reports the selected execution time, compiler flags
//! (-Os/-O1/-O2/-O3 or CF1..CF4), OpenMP thread count and binding policy.
//!
//! Run with `cargo run -p socrates-bench --bin fig4 --release`.

use margot::{AsRtm, Cmp, Constraint, Metric, Rank};
use polybench::App;
use serde::Serialize;
use socrates::{socrates_pipeline, ArtifactStore, StageContext, Toolchain};
use socrates_bench::{co_axis_index, co_label};

#[derive(Serialize)]
struct Point {
    budget_w: f64,
    exec_time_ms: f64,
    expected_power_w: f64,
    compiler: String,
    compiler_axis: usize,
    threads: u32,
    binding: String,
    feasible: bool,
}

fn main() {
    let toolchain = Toolchain::default();
    // Run the canonical staged pipeline explicitly (the composable form
    // of `Toolchain::enhance`).
    let store = ArtifactStore::new();
    let pipeline = socrates_pipeline();
    eprintln!("stages: {}", pipeline.stage_names().join(" -> "));
    let ctx = StageContext::new(&toolchain, &store, App::TwoMm);
    let enhanced = pipeline.run(&ctx, ()).expect("enhance 2mm");
    println!("Figure 4 — static tuning of 2mm: min exec time s.t. power <= budget");
    println!();
    println!(
        "{:>8} {:>12} {:>10} {:>9} {:>8} {:>7}",
        "Budget W", "Exec [ms]", "Power [W]", "Compiler", "Threads", "Bind"
    );

    let mut rtm = AsRtm::new(
        enhanced.knowledge.clone(),
        Rank::minimize(Metric::exec_time()),
    );
    rtm.add_constraint(Constraint::new(
        Metric::power(),
        Cmp::LessOrEqual,
        f64::MAX,
        10,
    ));

    let mut points = Vec::new();
    let mut budget = 45.0;
    while budget <= 140.0 + 1e-9 {
        rtm.set_constraint_value(&Metric::power(), budget);
        let best = rtm.best().expect("knowledge non-empty");
        let time_ms = best.metric(&Metric::exec_time()).expect("profiled") * 1e3;
        let power = best.metric(&Metric::power()).expect("profiled");
        let feasible = power <= budget;
        println!(
            "{:>8.0} {:>12.1} {:>10.1} {:>9} {:>8} {:>7}{}",
            budget,
            time_ms,
            power,
            co_label(&best.config.co, &enhanced.cobayn_flags),
            best.config.tn,
            best.config.bp,
            if feasible {
                ""
            } else {
                "  (budget infeasible)"
            }
        );
        points.push(Point {
            budget_w: budget,
            exec_time_ms: time_ms,
            expected_power_w: power,
            compiler: co_label(&best.config.co, &enhanced.cobayn_flags),
            compiler_axis: co_axis_index(&best.config.co, &enhanced.cobayn_flags),
            threads: best.config.tn,
            binding: best.config.bp.to_string(),
            feasible,
        });
        budget += 2.0;
    }

    let fastest = points
        .iter()
        .map(|p| p.exec_time_ms)
        .fold(f64::INFINITY, f64::min);
    let slowest = points.iter().map(|p| p.exec_time_ms).fold(0.0f64, f64::max);
    println!();
    println!(
        "exec-time dynamic range across budgets: {slowest:.0} ms -> {fastest:.0} ms \
         ({:.1}x)",
        slowest / fastest
    );

    socrates_bench::write_json("fig4", &points);
}
