//! Fleet scaling experiment: the sharded, incrementally-refreshed
//! knowledge layer against the single-mutex / full-rebuild baseline.
//!
//! For each fleet size N the same deployment is stepped for a fixed
//! number of synchronized rounds in two modes:
//!
//! - **baseline** — `knowledge_shards = 1`, `incremental_refresh =
//!   false`: every publish serialises on one global lock, every epoch
//!   move rebuilds the pool's effective knowledge from scratch and
//!   every instance re-clones the full knowledge before its next step
//!   (the pre-sharding behaviour).
//! - **sharded** — the defaults: config-hash lock shards, one lock
//!   acquisition per shard per round (batched barrier merge), dirty
//!   points patched incrementally into the pool cache, instances
//!   adopting [`margot::KnowledgeDelta`]s.
//!
//! Both modes are bit-identical in output (pinned by
//! `tests/fleet_equivalence.rs` and re-asserted here on the learned
//! knowledge), so the comparison is pure overhead. Numbers land in
//! `results/fleet_scale.json` and BENCH.md.
//!
//! The design knowledge is subsampled to [`KNOWLEDGE_POINTS`] points so
//! the AS-RTM planning cost (linear in points, identical in both
//! modes) does not drown the knowledge-layer cost being measured at
//! N = 4096.
//!
//! Run with `cargo run -p socrates-bench --bin fleet_scale_bench
//! --release` (`--smoke` for the small-N CI smoke configuration).

use margot::{Knowledge, Rank};
use polybench::{App, Dataset};
use serde::Serialize;
use socrates::{EnhancedApp, Fleet, FleetConfig, Toolchain};
use std::time::Instant;

/// Design-knowledge subsample handed to every instance.
const KNOWLEDGE_POINTS: usize = 64;
/// Synchronized rounds timed per (N, mode) cell.
const ROUNDS: usize = 12;

#[derive(Serialize)]
struct ScaleRow {
    mode: String,
    instances: usize,
    rounds: usize,
    knowledge_points: usize,
    knowledge_shards: usize,
    total_steps: usize,
    mean_round_wall_ms: f64,
    publish_throughput_obs_per_s: f64,
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let sizes: &[usize] = if smoke {
        &[16, 64]
    } else {
        &[64, 256, 1024, 4096]
    };
    let enhanced = subsampled_enhanced();
    println!(
        "Fleet knowledge-layer scaling — sharded/incremental vs single-mutex baseline\n\
         ({KNOWLEDGE_POINTS}-point knowledge, {ROUNDS} synchronized rounds per cell)\n"
    );
    println!(
        "{:>10} {:>10} {:>8} {:>18} {:>16}",
        "instances", "mode", "shards", "round wall [ms]", "publish [obs/s]"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut learned = Vec::new();
        for (mode, config) in [
            (
                "baseline",
                FleetConfig {
                    knowledge_shards: 1,
                    incremental_refresh: false,
                    ..FleetConfig::default()
                },
            ),
            ("sharded", FleetConfig::default()),
        ] {
            let shards = config.knowledge_shards;
            let mut fleet = Fleet::new(config).expect("valid fleet config");
            fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 2018, n);
            let wall = Instant::now();
            let mut total_steps = 0;
            for _ in 0..ROUNDS {
                total_steps += fleet.step_round();
            }
            let wall_s = wall.elapsed().as_secs_f64();
            let row = ScaleRow {
                mode: mode.to_string(),
                instances: n,
                rounds: ROUNDS,
                knowledge_points: KNOWLEDGE_POINTS,
                knowledge_shards: shards,
                total_steps,
                mean_round_wall_ms: wall_s * 1e3 / ROUNDS as f64,
                // Every step publishes exactly one observation into the
                // shared knowledge at the barrier.
                publish_throughput_obs_per_s: total_steps as f64 / wall_s,
            };
            println!(
                "{:>10} {:>10} {:>8} {:>18.1} {:>16.0}",
                row.instances,
                row.mode,
                row.knowledge_shards,
                row.mean_round_wall_ms,
                row.publish_throughput_obs_per_s
            );
            learned.push(fleet.learned_knowledge(App::TwoMm).expect("pool exists"));
            rows.push(row);
        }
        assert_eq!(
            learned[0], learned[1],
            "baseline and sharded modes must learn bit-identical knowledge"
        );
        println!();
    }
    socrates_bench::write_json("fleet_scale", &rows);
}

/// The 2mm deployment with its design knowledge subsampled evenly to
/// [`KNOWLEDGE_POINTS`] operating points (the version table is keyed
/// by (CO, BP) and stays complete, so every kept point dispatches).
fn subsampled_enhanced() -> EnhancedApp {
    let mut enhanced = Toolchain {
        dataset: Dataset::Medium,
        dse_repetitions: 1,
        ..Toolchain::default()
    }
    .enhance(App::TwoMm)
    .expect("enhance 2mm");
    let points = enhanced.knowledge.points();
    let stride = (points.len() / KNOWLEDGE_POINTS).max(1);
    enhanced.knowledge = points
        .iter()
        .step_by(stride)
        .take(KNOWLEDGE_POINTS)
        .cloned()
        .collect::<Knowledge<_>>();
    enhanced
}
