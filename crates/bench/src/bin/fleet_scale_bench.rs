//! Fleet scaling experiment: the sharded, incrementally-refreshed
//! knowledge layer against the single-mutex / full-rebuild baseline.
//!
//! For each fleet size N the same deployment is stepped for a fixed
//! number of synchronized rounds in two modes:
//!
//! - **baseline** — `knowledge_shards = 1`, `incremental_refresh =
//!   false`: every publish serialises on one global lock, every epoch
//!   move rebuilds the pool's effective knowledge from scratch and
//!   every instance re-clones the full knowledge before its next step
//!   (the pre-sharding behaviour).
//! - **sharded** — the defaults: config-hash lock shards, one lock
//!   acquisition per shard per round (batched barrier merge), dirty
//!   points patched incrementally into the pool cache, instances
//!   adopting [`margot::KnowledgeDelta`]s.
//!
//! Both modes are bit-identical in output (pinned by
//! `tests/fleet_equivalence.rs` and re-asserted here on the learned
//! knowledge), so the comparison is pure overhead. Numbers land in
//! `results/fleet_scale.json` (`results/fleet_scale_smoke.json` for
//! the smoke configuration, so the committed baseline is never
//! clobbered by CI) and BENCH.md.
//!
//! The design knowledge is subsampled to [`KNOWLEDGE_POINTS`] points so
//! the AS-RTM planning cost (linear in points, identical in both
//! modes) does not drown the knowledge-layer cost being measured at
//! N = 4096.
//!
//! # Regression gate
//!
//! Each fleet size also runs a **sharded + AST-engine** reference cell:
//! the functional engine compiles kernels only at the round barrier, so
//! neither engine may perturb publish throughput, and the committed
//! baseline gates the default bytecode cell explicitly. Restrict a run
//! to one engine with `--engine {ast,bytecode}`.
//!
//! `--check` compares the run against the committed baseline in
//! `results/fleet_scale.json`: every measured `(instances, mode,
//! engine)` cell **must** have a baseline counterpart (a missing cell fails
//! the gate — new cells can't dodge it), and if any cell's publish
//! throughput fell below `tolerance × baseline` (default 0.4 — loose
//! on purpose, CI runners are slower and noisier than the machine
//! that produced the baseline), the process exits nonzero so CI
//! fails instead of silently drifting. Tune with `--tolerance
//! <ratio>`.
//!
//! Run with `cargo run -p socrates-bench --bin fleet_scale_bench
//! --release` (`--smoke --check` is the CI regression-gate
//! configuration).

// These suites pin the deprecated round surface on purpose: it must
// stay bit-identical to the unified FleetRuntime path until removal.
#![allow(deprecated)]

use margot::Rank;
use polybench::App;
use serde::{Deserialize, Serialize};
use socrates::{ExecutionEngine, Fleet, FleetConfig};
use std::time::Instant;

/// Design-knowledge subsample handed to every instance.
const KNOWLEDGE_POINTS: usize = 64;
/// Synchronized rounds timed per (N, mode) cell.
const ROUNDS: usize = 12;
/// Default `--check` tolerance: a cell regresses when its publish
/// throughput falls below this fraction of the committed baseline.
const DEFAULT_TOLERANCE: f64 = 0.4;

#[derive(Serialize, Deserialize)]
struct ScaleRow {
    mode: String,
    engine: String,
    instances: usize,
    rounds: usize,
    knowledge_points: usize,
    knowledge_shards: usize,
    total_steps: usize,
    kernel_builds: u64,
    kernel_cache_hits: u64,
    mean_round_wall_ms: f64,
    publish_throughput_obs_per_s: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let tolerance = match args.iter().position(|a| a == "--tolerance") {
        Some(i) => args
            .get(i + 1)
            .expect("--tolerance needs a value")
            .parse::<f64>()
            .expect("--tolerance takes a ratio"),
        None => DEFAULT_TOLERANCE,
    };
    // `--engine {ast,bytecode}` restricts the run to one functional
    // engine; the default measures bytecode in both modes plus an AST
    // reference cell, so the committed baseline gates the compiled
    // path *and* proves the engine never perturbs throughput.
    let cells: Vec<(&str, ExecutionEngine)> = match args.iter().position(|a| a == "--engine") {
        Some(i) => {
            let engine: ExecutionEngine = args
                .get(i + 1)
                .expect("--engine needs a value")
                .parse()
                .unwrap_or_else(|e| panic!("{e}"));
            vec![("baseline", engine), ("sharded", engine)]
        }
        None => vec![
            ("baseline", ExecutionEngine::Bytecode),
            ("sharded", ExecutionEngine::Bytecode),
            ("sharded", ExecutionEngine::Ast),
        ],
    };
    // The smoke sizes are a subset of the full sizes so every smoke
    // cell has a committed-baseline counterpart for `--check`.
    let sizes: &[usize] = if smoke {
        &[16, 64]
    } else {
        &[16, 64, 256, 1024, 4096]
    };
    let enhanced = socrates_bench::subsampled_twomm(KNOWLEDGE_POINTS);
    println!(
        "Fleet knowledge-layer scaling — sharded/incremental vs single-mutex baseline\n\
         ({KNOWLEDGE_POINTS}-point knowledge, {ROUNDS} synchronized rounds per cell)\n"
    );
    println!(
        "{:>10} {:>10} {:>9} {:>8} {:>14} {:>18} {:>16}",
        "instances",
        "mode",
        "engine",
        "shards",
        "kernels b/h",
        "round wall [ms]",
        "publish [obs/s]"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut learned = Vec::new();
        for &(mode, engine) in &cells {
            let config = match mode {
                "baseline" => FleetConfig {
                    knowledge_shards: 1,
                    incremental_refresh: false,
                    engine,
                    ..FleetConfig::default()
                },
                _ => FleetConfig {
                    engine,
                    ..FleetConfig::default()
                },
            };
            let shards = config.knowledge_shards;
            let mut fleet = Fleet::new(config).expect("valid fleet config");
            fleet.spawn(&enhanced, &Rank::throughput_per_watt2(), 2018, n);
            // One untimed warm-up round: kernel lowering for the
            // first-round configurations (milliseconds on the AST
            // engine) would otherwise dominate small-N cells and make
            // the gate noisy.
            fleet.step_round();
            let wall = Instant::now();
            let mut total_steps = 0;
            for _ in 0..ROUNDS {
                total_steps += fleet.step_round();
            }
            let wall_s = wall.elapsed().as_secs_f64();
            let stats = fleet.stats();
            let row = ScaleRow {
                mode: mode.to_string(),
                engine: engine.label().to_string(),
                instances: n,
                rounds: ROUNDS,
                knowledge_points: KNOWLEDGE_POINTS,
                knowledge_shards: shards,
                total_steps,
                kernel_builds: stats.kernel_builds,
                kernel_cache_hits: stats.kernel_cache_hits,
                mean_round_wall_ms: wall_s * 1e3 / ROUNDS as f64,
                // Every step publishes exactly one observation into the
                // shared knowledge at the barrier.
                publish_throughput_obs_per_s: total_steps as f64 / wall_s,
            };
            println!(
                "{:>10} {:>10} {:>9} {:>8} {:>14} {:>18.1} {:>16.0}",
                row.instances,
                row.mode,
                row.engine,
                row.knowledge_shards,
                format!("{}/{}", row.kernel_builds, row.kernel_cache_hits),
                row.mean_round_wall_ms,
                row.publish_throughput_obs_per_s
            );
            learned.push(fleet.learned_knowledge(App::TwoMm).expect("pool exists"));
            rows.push(row);
        }
        for other in &learned[1..] {
            assert_eq!(
                &learned[0], other,
                "every (mode, engine) cell must learn bit-identical knowledge"
            );
        }
        println!();
    }
    // The smoke configuration never overwrites the committed
    // full-scale baseline it is compared against.
    let name = if smoke {
        "fleet_scale_smoke"
    } else {
        "fleet_scale"
    };
    socrates_bench::write_json(name, &rows);
    if check {
        check_against_baseline(&rows, tolerance);
    }
}

/// Compares the run against `results/fleet_scale.json` and exits
/// nonzero on regression (the CI gate).
fn check_against_baseline(rows: &[ScaleRow], tolerance: f64) {
    assert!(
        tolerance.is_finite() && tolerance > 0.0,
        "tolerance {tolerance} must be a positive ratio"
    );
    let path = socrates_bench::results_dir().join("fleet_scale.json");
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no committed baseline at {}: {e}", path.display()));
    let baseline: Vec<ScaleRow> =
        serde_json::from_str(&json).expect("committed baseline parses as ScaleRow list");
    let mut compared = 0;
    let mut regressions = Vec::new();
    println!(
        "regression check against {} (tolerance {tolerance}):",
        path.display()
    );
    for row in rows {
        // A measured cell with no baseline counterpart is a hard
        // failure: silently skipping it would let new bench cells
        // dodge the regression gate entirely.
        let base = baseline
            .iter()
            .find(|b| b.instances == row.instances && b.mode == row.mode && b.engine == row.engine)
            .unwrap_or_else(|| {
                panic!(
                    "measured cell (N={}, {}, {}) has no counterpart in the committed \
                     baseline {} — re-record the baseline to cover it",
                    row.instances,
                    row.mode,
                    row.engine,
                    path.display()
                )
            });
        compared += 1;
        let ratio = row.publish_throughput_obs_per_s / base.publish_throughput_obs_per_s;
        let verdict = if ratio < tolerance { "REGRESSED" } else { "ok" };
        println!(
            "  {:>6} {:>10} {:>9}: {:>10.0} obs/s vs baseline {:>10.0} obs/s (x{:.2}) {}",
            row.instances,
            row.mode,
            row.engine,
            row.publish_throughput_obs_per_s,
            base.publish_throughput_obs_per_s,
            ratio,
            verdict
        );
        if ratio < tolerance {
            regressions.push(format!(
                "{} N={}: throughput fell to {:.0} obs/s, x{:.2} of the baseline {:.0} \
                 (tolerance x{tolerance})",
                row.mode,
                row.instances,
                row.publish_throughput_obs_per_s,
                ratio,
                base.publish_throughput_obs_per_s
            ));
        }
    }
    assert!(
        compared > 0,
        "no overlapping (instances, mode) cells between this run and the committed \
         baseline — the gate compared nothing"
    );
    if !regressions.is_empty() {
        eprintln!("\nbench regression gate FAILED:");
        for r in &regressions {
            eprintln!("  - {r}");
        }
        std::process::exit(1);
    }
    println!("bench regression gate passed ({compared} cells compared)");
}
