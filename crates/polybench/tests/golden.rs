//! Golden-value regression tests: each kernel computed on a small, fixed
//! input with its output checksum pinned. Any semantic drift in a kernel
//! port (loop bounds, index transposition, scaling) breaks these.

use polybench::kernels::*;
use polybench::Matrix;

/// Deterministic Polybench-style initialisation.
fn init(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * cols + j * 3 + salt) % 11) as f64 / 11.0 - 0.4
    })
}

fn checksum(m: &Matrix) -> f64 {
    // Position-weighted sum so permutations change the value.
    m.as_slice()
        .iter()
        .enumerate()
        .map(|(k, v)| v * ((k % 17) as f64 + 1.0))
        .sum()
}

fn vec_checksum(v: &[f64]) -> f64 {
    v.iter()
        .enumerate()
        .map(|(k, x)| x * ((k % 13) as f64 + 1.0))
        .sum()
}

fn assert_close(actual: f64, golden: f64, what: &str) {
    assert!(
        (actual - golden).abs() < 1e-9,
        "{what}: checksum {actual:.12} != golden {golden:.12}"
    );
}

#[test]
fn golden_2mm() {
    let a = init(6, 5, 1);
    let b = init(5, 7, 2);
    let c = init(7, 4, 3);
    let mut d = init(6, 4, 4);
    kernel_2mm(1.5, 1.2, &a, &b, &c, &mut d);
    assert_close(checksum(&d), 5.492682193839, "2mm D");
}

#[test]
fn golden_3mm() {
    let a = init(4, 5, 1);
    let b = init(5, 3, 2);
    let c = init(3, 6, 3);
    let d = init(6, 4, 4);
    let g = kernel_3mm(&a, &b, &c, &d);
    assert_close(checksum(&g), 0.416166108872, "3mm G");
}

#[test]
fn golden_atax() {
    let a = init(8, 6, 5);
    let x: Vec<f64> = (0..6).map(|i| (i as f64) * 0.25 - 0.5).collect();
    let y = kernel_atax(&a, &x);
    assert_close(vec_checksum(&y), 2.274049586777, "atax y");
}

#[test]
fn golden_correlation() {
    let data = init(20, 6, 7);
    let corr = kernel_correlation(&data);
    assert_close(checksum(&corr), 0.487689363921, "correlation");
}

#[test]
fn golden_doitgen() {
    let c4 = init(5, 5, 1);
    let mut a = vec![init(4, 5, 2), init(4, 5, 3)];
    kernel_doitgen(&mut a, &c4);
    let total = checksum(&a[0]) + 2.0 * checksum(&a[1]);
    assert_close(total, 18.520661157025, "doitgen");
}

#[test]
fn golden_gemver() {
    let a = init(6, 6, 9);
    let u1: Vec<f64> = (0..6).map(|i| i as f64 * 0.1).collect();
    let v1: Vec<f64> = (0..6).map(|i| 0.5 - i as f64 * 0.05).collect();
    let u2: Vec<f64> = (0..6).map(|i| ((i * 3) % 4) as f64 * 0.2).collect();
    let v2: Vec<f64> = (0..6).map(|i| ((i + 2) % 3) as f64 * 0.3).collect();
    let y: Vec<f64> = (0..6).map(|i| 1.0 - i as f64 * 0.1).collect();
    let z: Vec<f64> = (0..6).map(|i| i as f64 * 0.05).collect();
    let out = kernel_gemver(1.5, 1.2, &a, &u1, &v1, &u2, &v2, &y, &z);
    assert_close(vec_checksum(&out.w), 90.118665000000, "gemver w");
}

#[test]
fn golden_jacobi_2d() {
    let mut a = init(10, 10, 11);
    let mut b = init(10, 10, 12);
    kernel_jacobi_2d(&mut a, &mut b, 4);
    assert_close(checksum(&a), 53.861202385455, "jacobi A");
}

#[test]
fn golden_mvt() {
    let a = init(7, 7, 13);
    let mut x1: Vec<f64> = (0..7).map(|i| i as f64 * 0.1).collect();
    let mut x2: Vec<f64> = (0..7).map(|i| 0.7 - i as f64 * 0.1).collect();
    let y1: Vec<f64> = (0..7).map(|i| ((i * 5) % 3) as f64 * 0.2).collect();
    let y2: Vec<f64> = (0..7).map(|i| ((i + 1) % 4) as f64 * 0.15).collect();
    kernel_mvt(&a, &mut x1, &mut x2, &y1, &y2);
    assert_close(
        vec_checksum(&x1) + vec_checksum(&x2),
        22.154545454545,
        "mvt",
    );
}

#[test]
fn golden_nussinov() {
    let seq: Vec<u8> = (0..16).map(|i| ((i * 7 + 3) % 4) as u8).collect();
    let table = kernel_nussinov(&seq);
    assert_eq!(table[(0, 15)], 7.0, "nussinov optimum");
    assert_close(checksum(&table), 2280.0, "nussinov table");
}

#[test]
fn golden_seidel_2d() {
    let mut a = init(9, 9, 15);
    kernel_seidel_2d(&mut a, 3);
    assert_close(checksum(&a), 21.592376697803, "seidel A");
}

#[test]
fn golden_syr2k() {
    let a = init(5, 4, 17);
    let b = init(5, 4, 18);
    let mut c = init(5, 5, 19);
    let sym = Matrix::from_fn(5, 5, |i, j| c[(i, j)] + c[(j, i)]);
    c = sym;
    kernel_syr2k(1.5, 1.2, &a, &b, &mut c);
    assert_close(checksum(&c), 35.840826446281, "syr2k C");
}

#[test]
fn golden_syrk() {
    let a = init(5, 4, 21);
    let mut c = init(5, 5, 22);
    let sym = Matrix::from_fn(5, 5, |i, j| c[(i, j)] + c[(j, i)]);
    c = sym;
    kernel_syrk(1.5, 1.2, &a, &mut c);
    assert_close(checksum(&c), 40.227272727273, "syrk C");
}
