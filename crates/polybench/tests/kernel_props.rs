//! Property-based tests of the kernel ports: algebraic invariants that
//! must hold for arbitrary well-formed inputs.

use polybench::kernels::*;
use polybench::Matrix;
use proptest::prelude::*;

fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_fn(rows, cols, |i, j| data[i * cols + j]))
}

fn vector_strategy(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-5.0f64..5.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 2mm with alpha=0 reduces to a pure scaling of D.
    #[test]
    fn k2mm_alpha_zero_is_scaling(
        a in matrix_strategy(4, 3),
        b in matrix_strategy(3, 5),
        c in matrix_strategy(5, 2),
        d0 in matrix_strategy(4, 2),
        beta in -2.0f64..2.0,
    ) {
        let mut d = d0.clone();
        kernel_2mm(0.0, beta, &a, &b, &c, &mut d);
        for i in 0..4 {
            for j in 0..2 {
                prop_assert!((d[(i, j)] - beta * d0[(i, j)]).abs() < 1e-9);
            }
        }
    }

    /// 2mm is linear in alpha: doubling alpha doubles (D - beta*D0).
    #[test]
    fn k2mm_linear_in_alpha(
        a in matrix_strategy(3, 3),
        b in matrix_strategy(3, 3),
        c in matrix_strategy(3, 3),
        d0 in matrix_strategy(3, 3),
        alpha in 0.1f64..2.0,
    ) {
        let beta = 1.0;
        let mut d1 = d0.clone();
        kernel_2mm(alpha, beta, &a, &b, &c, &mut d1);
        let mut d2 = d0.clone();
        kernel_2mm(2.0 * alpha, beta, &a, &b, &c, &mut d2);
        for i in 0..3 {
            for j in 0..3 {
                let part1 = d1[(i, j)] - beta * d0[(i, j)];
                let part2 = d2[(i, j)] - beta * d0[(i, j)];
                prop_assert!((part2 - 2.0 * part1).abs() < 1e-6, "({i},{j})");
            }
        }
    }

    /// atax output equals the matrix-algebra reference for random input.
    #[test]
    fn atax_matches_reference(a in matrix_strategy(6, 4), x in vector_strategy(4)) {
        let y = kernel_atax(&a, &x);
        let xm = Matrix::from_fn(4, 1, |i, _| x[i]);
        let reference = a.transposed().matmul(&a.matmul(&xm));
        for i in 0..4 {
            prop_assert!((y[i] - reference[(i, 0)]).abs() < 1e-7);
        }
    }

    /// Correlation entries always lie in [-1, 1] and the matrix is
    /// symmetric with unit diagonal.
    #[test]
    fn correlation_is_well_formed(data in matrix_strategy(24, 5)) {
        let corr = kernel_correlation(&data);
        for i in 0..5 {
            prop_assert!((corr[(i, i)] - 1.0).abs() < 1e-9);
            for j in 0..5 {
                prop_assert!((corr[(i, j)] - corr[(j, i)]).abs() < 1e-9);
                prop_assert!(corr[(i, j)].abs() <= 1.0 + 1e-6, "corr {}", corr[(i, j)]);
            }
        }
    }

    /// Jacobi conserves a constant field and never amplifies the range
    /// of the interior (it is an averaging operator).
    #[test]
    fn jacobi_is_a_contraction(mut a in matrix_strategy(8, 8), steps in 1usize..4) {
        let mut b = a.clone();
        let max0 = a.as_slice().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min0 = a.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
        kernel_jacobi_2d(&mut a, &mut b, steps);
        for v in a.as_slice() {
            prop_assert!(*v <= max0 + 1e-9 && *v >= min0 - 1e-9);
        }
    }

    /// Seidel likewise never escapes the initial value range.
    #[test]
    fn seidel_stays_in_range(mut a in matrix_strategy(7, 7), steps in 1usize..4) {
        let max0 = a.as_slice().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min0 = a.as_slice().iter().copied().fold(f64::INFINITY, f64::min);
        kernel_seidel_2d(&mut a, steps);
        for v in a.as_slice() {
            prop_assert!(*v <= max0 + 1e-9 && *v >= min0 - 1e-9);
        }
    }

    /// mvt is additive in the y vectors: running with y then z equals
    /// running once with (y + z).
    #[test]
    fn mvt_is_additive(
        a in matrix_strategy(5, 5),
        y1 in vector_strategy(5),
        y2 in vector_strategy(5),
    ) {
        let zeros = vec![0.0; 5];
        let mut x_split = vec![0.0; 5];
        let mut unused = vec![0.0; 5];
        kernel_mvt(&a, &mut x_split, &mut unused, &y1, &zeros);
        kernel_mvt(&a, &mut x_split, &mut unused, &y2, &zeros);
        let combined: Vec<f64> = y1.iter().zip(&y2).map(|(p, q)| p + q).collect();
        let mut x_once = vec![0.0; 5];
        let mut unused2 = vec![0.0; 5];
        kernel_mvt(&a, &mut x_once, &mut unused2, &combined, &zeros);
        for i in 0..5 {
            prop_assert!((x_split[i] - x_once[i]).abs() < 1e-7);
        }
    }

    /// syrk output is always symmetric and positive semi-definite on the
    /// diagonal when beta=0 and alpha>0 (Gram matrix property).
    #[test]
    fn syrk_gram_properties(a in matrix_strategy(5, 3), alpha in 0.1f64..3.0) {
        let mut c = Matrix::zeros(5, 5);
        kernel_syrk(alpha, 0.0, &a, &mut c);
        for i in 0..5 {
            prop_assert!(c[(i, i)] >= -1e-9, "diagonal {}", c[(i, i)]);
            for j in 0..5 {
                prop_assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-9);
            }
        }
    }

    /// syr2k with B = A equals 2*alpha*A*Aᵀ + beta*C (reduces to syrk).
    #[test]
    fn syr2k_reduces_to_syrk(a in matrix_strategy(4, 3), alpha in 0.1f64..2.0) {
        let mut c1 = Matrix::zeros(4, 4);
        kernel_syr2k(alpha, 0.0, &a, &a, &mut c1);
        let mut c2 = Matrix::zeros(4, 4);
        kernel_syrk(2.0 * alpha, 0.0, &a, &mut c2);
        prop_assert!(c1.max_abs_diff(&c2) < 1e-7);
    }

    /// Nussinov's optimum never exceeds half the interval length (each
    /// pairing consumes two bases).
    #[test]
    fn nussinov_pairings_are_bounded(seq in prop::collection::vec(0u8..4, 4..24)) {
        let table = kernel_nussinov(&seq);
        let n = seq.len();
        let best = table[(0, n - 1)];
        prop_assert!(best <= (n / 2) as f64);
        prop_assert!(best >= 0.0);
    }

    /// doitgen preserves slab shape and equals per-slice matmul.
    #[test]
    fn doitgen_is_per_slice_matmul(slab in matrix_strategy(3, 4), c4 in matrix_strategy(4, 4)) {
        let mut a = vec![slab.clone()];
        kernel_doitgen(&mut a, &c4);
        let reference = slab.matmul(&c4);
        prop_assert!(a[0].max_abs_diff(&reference) < 1e-8);
    }

    /// gemver with zero rank-1 updates leaves A unchanged.
    #[test]
    fn gemver_zero_updates_preserve_a(a in matrix_strategy(4, 4)) {
        let zeros = vec![0.0; 4];
        let out = kernel_gemver(1.0, 1.0, &a, &zeros, &zeros, &zeros, &zeros, &zeros, &zeros);
        prop_assert!(out.a_hat.max_abs_diff(&a) < 1e-12);
    }
}
