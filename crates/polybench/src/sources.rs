//! Mini-C sources of the 12 benchmarks.
//!
//! These are the *original* (pre-weaving) applications: pure functional
//! code in the Polybench style — includes, dimension `#define`s, global
//! arrays, an init function, the kernel, a print function and `main`.
//! The SOCRATES toolchain parses these with `minic`, extracts Milepost
//! features, and weaves in multiversioning + mARGOt glue.

use crate::apps::{App, Dataset};

/// Returns the complete C source of `app` at dataset size `ds`.
///
/// The text is guaranteed to parse with [`minic::parse`] (covered by
/// tests) and contains exactly one kernel function named
/// [`App::kernel_name`].
pub fn source(app: App, ds: Dataset) -> String {
    let mut out = String::new();
    out.push_str("#include <stdio.h>\n");
    if needs_math(app) {
        out.push_str("#include <math.h>\n");
    }
    for (name, value) in app.dims(ds) {
        out.push_str(&format!("#define {name} {value}\n"));
    }
    out.push_str(body(app));
    out
}

fn needs_math(app: App) -> bool {
    matches!(app, App::Correlation)
}

fn body(app: App) -> &'static str {
    match app {
        App::TwoMm => TWO_MM,
        App::ThreeMm => THREE_MM,
        App::Atax => ATAX,
        App::Correlation => CORRELATION,
        App::Doitgen => DOITGEN,
        App::Gemver => GEMVER,
        App::Jacobi2d => JACOBI_2D,
        App::Mvt => MVT,
        App::Nussinov => NUSSINOV,
        App::Seidel2d => SEIDEL_2D,
        App::Syr2k => SYR2K,
        App::Syrk => SYRK,
    }
}

const TWO_MM: &str = r#"
static double tmp[NI][NJ];
static double A[NI][NK];
static double B[NK][NJ];
static double C[NJ][NL];
static double D[NI][NL];

void init_array() {
    for (int i = 0; i < NI; i++)
        for (int j = 0; j < NK; j++)
            A[i][j] = (double) ((i * j + 1) % NI) / NI;
    for (int i = 0; i < NK; i++)
        for (int j = 0; j < NJ; j++)
            B[i][j] = (double) (i * (j + 1) % NJ) / NJ;
    for (int i = 0; i < NJ; i++)
        for (int j = 0; j < NL; j++)
            C[i][j] = (double) ((i * (j + 3) + 1) % NL) / NL;
    for (int i = 0; i < NI; i++)
        for (int j = 0; j < NL; j++)
            D[i][j] = (double) (i * (j + 2) % NK) / NK;
}

void kernel_2mm(double alpha, double beta) {
    for (int i = 0; i < NI; i++) {
        for (int j = 0; j < NJ; j++) {
            tmp[i][j] = 0.0;
            for (int k = 0; k < NK; k++) {
                tmp[i][j] += alpha * A[i][k] * B[k][j];
            }
        }
    }
    for (int i = 0; i < NI; i++) {
        for (int j = 0; j < NL; j++) {
            D[i][j] *= beta;
            for (int k = 0; k < NJ; k++) {
                D[i][j] += tmp[i][k] * C[k][j];
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < NI; i++)
        for (int j = 0; j < NL; j++)
            fprintf(stderr, "%0.2lf ", D[i][j]);
}

int main(int argc, char **argv) {
    double alpha = 1.5;
    double beta = 1.2;
    init_array();
    kernel_2mm(alpha, beta);
    if (argc > 42) print_array();
    return 0;
}
"#;

const THREE_MM: &str = r#"
static double A[NI][NK];
static double B[NK][NJ];
static double C[NJ][NM];
static double D[NM][NL];
static double E[NI][NJ];
static double F[NJ][NL];
static double G[NI][NL];

void init_array() {
    for (int i = 0; i < NI; i++)
        for (int j = 0; j < NK; j++)
            A[i][j] = (double) ((i * j + 1) % NI) / (5 * NI);
    for (int i = 0; i < NK; i++)
        for (int j = 0; j < NJ; j++)
            B[i][j] = (double) ((i * (j + 1) + 2) % NJ) / (5 * NJ);
    for (int i = 0; i < NJ; i++)
        for (int j = 0; j < NM; j++)
            C[i][j] = (double) (i * (j + 3) % NL) / (5 * NL);
    for (int i = 0; i < NM; i++)
        for (int j = 0; j < NL; j++)
            D[i][j] = (double) ((i * (j + 2) + 2) % NK) / (5 * NK);
}

void kernel_3mm() {
    for (int i = 0; i < NI; i++) {
        for (int j = 0; j < NJ; j++) {
            E[i][j] = 0.0;
            for (int k = 0; k < NK; k++) {
                E[i][j] += A[i][k] * B[k][j];
            }
        }
    }
    for (int i = 0; i < NJ; i++) {
        for (int j = 0; j < NL; j++) {
            F[i][j] = 0.0;
            for (int k = 0; k < NM; k++) {
                F[i][j] += C[i][k] * D[k][j];
            }
        }
    }
    for (int i = 0; i < NI; i++) {
        for (int j = 0; j < NL; j++) {
            G[i][j] = 0.0;
            for (int k = 0; k < NJ; k++) {
                G[i][j] += E[i][k] * F[k][j];
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < NI; i++)
        for (int j = 0; j < NL; j++)
            fprintf(stderr, "%0.2lf ", G[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_3mm();
    if (argc > 42) print_array();
    return 0;
}
"#;

const ATAX: &str = r#"
static double A[M][N];
static double x[N];
static double y[N];
static double tmp[M];

void init_array() {
    for (int i = 0; i < N; i++)
        x[i] = 1.0 + ((double) i / N);
    for (int i = 0; i < M; i++)
        for (int j = 0; j < N; j++)
            A[i][j] = (double) ((i + j) % N) / (5 * M);
}

void kernel_atax() {
    for (int i = 0; i < N; i++) {
        y[i] = 0.0;
    }
    for (int i = 0; i < M; i++) {
        tmp[i] = 0.0;
        for (int j = 0; j < N; j++) {
            tmp[i] = tmp[i] + A[i][j] * x[j];
        }
        for (int j = 0; j < N; j++) {
            y[j] = y[j] + A[i][j] * tmp[i];
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        fprintf(stderr, "%0.2lf ", y[i]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_atax();
    if (argc > 42) print_array();
    return 0;
}
"#;

const CORRELATION: &str = r#"
static double data[N][M];
static double corr[M][M];
static double mean[M];
static double stddev[M];

void init_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < M; j++)
            data[i][j] = (double) (i * j) / M + i;
}

void kernel_correlation(double float_n, double eps) {
    for (int j = 0; j < M; j++) {
        mean[j] = 0.0;
        for (int i = 0; i < N; i++) {
            mean[j] += data[i][j];
        }
        mean[j] /= float_n;
    }
    for (int j = 0; j < M; j++) {
        stddev[j] = 0.0;
        for (int i = 0; i < N; i++) {
            stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
        }
        stddev[j] /= float_n;
        stddev[j] = sqrt(stddev[j]);
        if (stddev[j] <= eps) {
            stddev[j] = 1.0;
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < M; j++) {
            data[i][j] -= mean[j];
            data[i][j] /= sqrt(float_n) * stddev[j];
        }
    }
    for (int i = 0; i < M - 1; i++) {
        corr[i][i] = 1.0;
        for (int j = i + 1; j < M; j++) {
            corr[i][j] = 0.0;
            for (int k = 0; k < N; k++) {
                corr[i][j] += data[k][i] * data[k][j];
            }
            corr[j][i] = corr[i][j];
        }
    }
    corr[M - 1][M - 1] = 1.0;
}

void print_array() {
    for (int i = 0; i < M; i++)
        for (int j = 0; j < M; j++)
            fprintf(stderr, "%0.2lf ", corr[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_correlation((double) N, 0.1);
    if (argc > 42) print_array();
    return 0;
}
"#;

const DOITGEN: &str = r#"
static double A[NR][NQ][NP];
static double C4[NP][NP];
static double sum[NP];

void init_array() {
    for (int i = 0; i < NR; i++)
        for (int j = 0; j < NQ; j++)
            for (int k = 0; k < NP; k++)
                A[i][j][k] = (double) ((i * j + k) % NP) / NP;
    for (int i = 0; i < NP; i++)
        for (int j = 0; j < NP; j++)
            C4[i][j] = (double) (i * j % NP) / NP;
}

void kernel_doitgen() {
    for (int r = 0; r < NR; r++) {
        for (int q = 0; q < NQ; q++) {
            for (int p = 0; p < NP; p++) {
                sum[p] = 0.0;
                for (int s = 0; s < NP; s++) {
                    sum[p] += A[r][q][s] * C4[s][p];
                }
            }
            for (int p = 0; p < NP; p++) {
                A[r][q][p] = sum[p];
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < NR; i++)
        for (int j = 0; j < NQ; j++)
            for (int k = 0; k < NP; k++)
                fprintf(stderr, "%0.2lf ", A[i][j][k]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_doitgen();
    if (argc > 42) print_array();
    return 0;
}
"#;

const GEMVER: &str = r#"
static double A[N][N];
static double u1[N];
static double v1[N];
static double u2[N];
static double v2[N];
static double w[N];
static double x[N];
static double y[N];
static double z[N];

void init_array() {
    for (int i = 0; i < N; i++) {
        u1[i] = i;
        u2[i] = ((i + 1) / N) / 2.0;
        v1[i] = ((i + 1) / N) / 4.0;
        v2[i] = ((i + 1) / N) / 6.0;
        y[i] = ((i + 1) / N) / 8.0;
        z[i] = ((i + 1) / N) / 9.0;
        x[i] = 0.0;
        w[i] = 0.0;
        for (int j = 0; j < N; j++)
            A[i][j] = (double) (i * j % N) / N;
    }
}

void kernel_gemver(double alpha, double beta) {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            x[i] = x[i] + beta * A[j][i] * y[j];
        }
    }
    for (int i = 0; i < N; i++) {
        x[i] = x[i] + z[i];
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            w[i] = w[i] + alpha * A[i][j] * x[j];
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        fprintf(stderr, "%0.2lf ", w[i]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_gemver(1.5, 1.2);
    if (argc > 42) print_array();
    return 0;
}
"#;

const JACOBI_2D: &str = r#"
static double A[N][N];
static double B[N][N];

void init_array() {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            A[i][j] = ((double) i * (j + 2) + 2) / N;
            B[i][j] = ((double) i * (j + 3) + 3) / N;
        }
    }
}

void kernel_jacobi_2d(int tsteps) {
    for (int t = 0; t < tsteps; t++) {
        for (int i = 1; i < N - 1; i++) {
            for (int j = 1; j < N - 1; j++) {
                B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j] + A[1 + i][j] + A[i - 1][j]);
            }
        }
        for (int i = 1; i < N - 1; i++) {
            for (int j = 1; j < N - 1; j++) {
                A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j] + B[1 + i][j] + B[i - 1][j]);
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            fprintf(stderr, "%0.2lf ", A[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_jacobi_2d(TSTEPS);
    if (argc > 42) print_array();
    return 0;
}
"#;

const MVT: &str = r#"
static double A[N][N];
static double x1[N];
static double x2[N];
static double y_1[N];
static double y_2[N];

void init_array() {
    for (int i = 0; i < N; i++) {
        x1[i] = (double) (i % N) / N;
        x2[i] = (double) ((i + 1) % N) / N;
        y_1[i] = (double) ((i + 3) % N) / N;
        y_2[i] = (double) ((i + 4) % N) / N;
        for (int j = 0; j < N; j++)
            A[i][j] = (double) (i * j % N) / N;
    }
}

void kernel_mvt() {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            x1[i] = x1[i] + A[i][j] * y_1[j];
        }
    }
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < N; j++) {
            x2[i] = x2[i] + A[j][i] * y_2[j];
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        fprintf(stderr, "%0.2lf %0.2lf ", x1[i], x2[i]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_mvt();
    if (argc > 42) print_array();
    return 0;
}
"#;

const NUSSINOV: &str = r#"
static int seq[N];
static int table[N][N];

void init_array() {
    for (int i = 0; i < N; i++)
        seq[i] = (i + 1) % 4;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            table[i][j] = 0;
}

void kernel_nussinov() {
    for (int i = N - 1; i >= 0; i--) {
        for (int j = i + 1; j < N; j++) {
            if (j - 1 >= 0) {
                if (table[i][j] < table[i][j - 1]) {
                    table[i][j] = table[i][j - 1];
                }
            }
            if (i + 1 < N) {
                if (table[i][j] < table[i + 1][j]) {
                    table[i][j] = table[i + 1][j];
                }
            }
            if (j - 1 >= 0 && i + 1 < N) {
                if (i < j - 1) {
                    int match = 0;
                    if (seq[i] + seq[j] == 3) {
                        match = 1;
                    }
                    if (table[i][j] < table[i + 1][j - 1] + match) {
                        table[i][j] = table[i + 1][j - 1] + match;
                    }
                } else {
                    if (table[i][j] < table[i + 1][j - 1]) {
                        table[i][j] = table[i + 1][j - 1];
                    }
                }
            }
            for (int k = i + 1; k < j; k++) {
                if (table[i][j] < table[i][k] + table[k + 1][j]) {
                    table[i][j] = table[i][k] + table[k + 1][j];
                }
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        for (int j = i; j < N; j++)
            fprintf(stderr, "%d ", table[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_nussinov();
    if (argc > 42) print_array();
    return 0;
}
"#;

const SEIDEL_2D: &str = r#"
static double A[N][N];

void init_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            A[i][j] = ((double) i * (j + 2) + 2) / N;
}

void kernel_seidel_2d(int tsteps) {
    for (int t = 0; t <= tsteps - 1; t++) {
        for (int i = 1; i <= N - 2; i++) {
            for (int j = 1; j <= N - 2; j++) {
                A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1] + A[i][j - 1] + A[i][j] + A[i][j + 1] + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1]) / 9.0;
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            fprintf(stderr, "%0.2lf ", A[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_seidel_2d(TSTEPS);
    if (argc > 42) print_array();
    return 0;
}
"#;

const SYR2K: &str = r#"
static double A[N][M];
static double B[N][M];
static double C[N][N];

void init_array() {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j < M; j++) {
            A[i][j] = (double) ((i * j + 1) % N) / N;
            B[i][j] = (double) ((i * j + 2) % M) / M;
        }
    }
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            C[i][j] = (double) ((i * j + 3) % N) / M;
}

void kernel_syr2k(double alpha, double beta) {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j <= i; j++) {
            C[i][j] *= beta;
        }
        for (int k = 0; k < M; k++) {
            for (int j = 0; j <= i; j++) {
                C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            fprintf(stderr, "%0.2lf ", C[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_syr2k(1.5, 1.2);
    if (argc > 42) print_array();
    return 0;
}
"#;

const SYRK: &str = r#"
static double A[N][M];
static double C[N][N];

void init_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < M; j++)
            A[i][j] = (double) ((i * j + 1) % N) / N;
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            C[i][j] = (double) ((i * j + 2) % M) / M;
}

void kernel_syrk(double alpha, double beta) {
    for (int i = 0; i < N; i++) {
        for (int j = 0; j <= i; j++) {
            C[i][j] *= beta;
        }
        for (int k = 0; k < M; k++) {
            for (int j = 0; j <= i; j++) {
                C[i][j] += alpha * A[i][k] * A[j][k];
            }
        }
    }
}

void print_array() {
    for (int i = 0; i < N; i++)
        for (int j = 0; j < N; j++)
            fprintf(stderr, "%0.2lf ", C[i][j]);
}

int main(int argc, char **argv) {
    init_array();
    kernel_syrk(1.5, 1.2);
    if (argc > 42) print_array();
    return 0;
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{App, Dataset};

    #[test]
    fn all_sources_parse_with_minic() {
        for app in App::ALL {
            let src = source(app, Dataset::Large);
            let tu =
                minic::parse(&src).unwrap_or_else(|e| panic!("{}: parse failed: {e}", app.name()));
            assert!(
                tu.function(&app.kernel_name()).is_some(),
                "{}: kernel `{}` missing",
                app.name(),
                app.kernel_name()
            );
            assert!(
                tu.function("main").is_some(),
                "{}: main missing",
                app.name()
            );
            assert!(
                tu.function("init_array").is_some(),
                "{}: init_array missing",
                app.name()
            );
        }
    }

    #[test]
    fn all_sources_roundtrip_through_printer() {
        for app in App::ALL {
            let src = source(app, Dataset::Large);
            let tu = minic::parse(&src).unwrap();
            let printed = minic::print(&tu);
            let tu2 = minic::parse(&printed)
                .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", app.name()));
            assert_eq!(tu, tu2, "{}", app.name());
        }
    }

    #[test]
    fn dims_appear_as_defines() {
        for app in App::ALL {
            let src = source(app, Dataset::Large);
            for (name, value) in app.dims(Dataset::Large) {
                assert!(
                    src.contains(&format!("#define {name} {value}")),
                    "{}: missing #define {name}",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn original_sources_have_no_pragmas() {
        // Pragmas are the weaver's job; originals are pure functional code.
        for app in App::ALL {
            let src = source(app, Dataset::Large);
            assert!(!src.contains("#pragma"), "{}", app.name());
        }
    }

    #[test]
    fn original_loc_is_paper_scale() {
        // Paper Table I: O-LOC ranges from 47 (seidel-2d) to 145
        // (jacobi-2d), average 92. Our originals must be the same order.
        let mut locs = Vec::new();
        for app in App::ALL {
            let tu = minic::parse(&source(app, Dataset::Large)).unwrap();
            let loc = minic::logical_loc(&tu);
            assert!((20..220).contains(&loc), "{}: O-LOC {loc}", app.name());
            locs.push(loc);
        }
        // Logical LOC is denser than the paper's physical count (a loop
        // header + body on three physical lines is 2 logical lines), so
        // our average sits below the paper's 92 but in the same order.
        let avg = locs.iter().sum::<usize>() / locs.len();
        assert!((30..140).contains(&avg), "average O-LOC {avg}");
    }

    #[test]
    fn kernel_loop_structure_varies_across_apps() {
        // Table I's per-app differences come from kernel structure.
        use minic::visit::{walk_stmt, walk_tu, Visitor};
        struct Loops(usize);
        impl Visitor for Loops {
            fn visit_stmt(&mut self, s: &minic::Stmt) {
                if matches!(s, minic::Stmt::For { .. }) {
                    self.0 += 1;
                }
                walk_stmt(self, s);
            }
        }
        let mut counts = std::collections::HashSet::new();
        for app in App::ALL {
            let tu = minic::parse(&source(app, Dataset::Large)).unwrap();
            let mut v = Loops(0);
            walk_tu(&mut v, &tu);
            counts.insert(v.0);
        }
        assert!(counts.len() >= 4, "loop-count diversity: {counts:?}");
    }
}
