//! Executable Rust ports of the 12 Polybench/C kernels used in the paper.
//!
//! Semantics follow Polybench 4.2. These ports provide the *functional*
//! behaviour (`o = f(i)` in the paper's terminology); the extra-functional
//! behaviour (time/power) of the same kernels on the paper's platform is
//! modelled by [`platform_sim`].

use crate::matrix::Matrix;

/// 2mm: `D = alpha*A*B*C + beta*D` via an explicit temporary
/// (`tmp = alpha*A*B`, then `D = tmp*C + beta*D`).
pub fn kernel_2mm(
    alpha: f64,
    beta: f64,
    a: &Matrix,
    b: &Matrix,
    c: &Matrix,
    d: &mut Matrix,
) -> Matrix {
    let ni = a.rows();
    let nj = b.cols();
    let nk = a.cols();
    let nl = c.cols();
    assert_eq!(b.rows(), nk, "A.cols must equal B.rows");
    assert_eq!(c.rows(), nj, "B.cols must equal C.rows");
    assert_eq!((d.rows(), d.cols()), (ni, nl), "D shape mismatch");
    let mut tmp = Matrix::zeros(ni, nj);
    for i in 0..ni {
        for j in 0..nj {
            let mut acc = 0.0;
            for k in 0..nk {
                acc += alpha * a[(i, k)] * b[(k, j)];
            }
            tmp[(i, j)] = acc;
        }
    }
    for i in 0..ni {
        for j in 0..nl {
            let mut acc = d[(i, j)] * beta;
            for k in 0..nj {
                acc += tmp[(i, k)] * c[(k, j)];
            }
            d[(i, j)] = acc;
        }
    }
    tmp
}

/// 3mm: `G = (A*B) * (C*D)`.
pub fn kernel_3mm(a: &Matrix, b: &Matrix, c: &Matrix, d: &Matrix) -> Matrix {
    let e = a.matmul(b);
    let f = c.matmul(d);
    e.matmul(&f)
}

/// atax: `y = Aᵀ (A x)`.
pub fn kernel_atax(a: &Matrix, x: &[f64]) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(x.len(), n, "x length mismatch");
    let mut y = vec![0.0; n];
    for i in 0..m {
        let mut tmp = 0.0;
        for j in 0..n {
            tmp += a[(i, j)] * x[j];
        }
        for j in 0..n {
            y[j] += a[(i, j)] * tmp;
        }
    }
    y
}

/// correlation: the `m × m` correlation matrix of `data` (`n` observations
/// of `m` variables), with the Polybench epsilon guard on zero stddev.
pub fn kernel_correlation(data: &Matrix) -> Matrix {
    let n = data.rows();
    let m = data.cols();
    assert!(n > 1, "need at least two observations");
    let float_n = n as f64;
    let eps = 0.1;
    let mut mean = vec![0.0; m];
    for j in 0..m {
        for i in 0..n {
            mean[j] += data[(i, j)];
        }
        mean[j] /= float_n;
    }
    let mut stddev = vec![0.0; m];
    for j in 0..m {
        for i in 0..n {
            let dv = data[(i, j)] - mean[j];
            stddev[j] += dv * dv;
        }
        stddev[j] = (stddev[j] / float_n).sqrt();
        // Polybench: near-zero stddev implies correlation 0 handled via 1.0.
        if stddev[j] <= eps {
            stddev[j] = 1.0;
        }
    }
    let mut normalized = Matrix::zeros(n, m);
    for i in 0..n {
        for j in 0..m {
            normalized[(i, j)] = (data[(i, j)] - mean[j]) / (float_n.sqrt() * stddev[j]);
        }
    }
    let mut corr = Matrix::zeros(m, m);
    for i in 0..m {
        corr[(i, i)] = 1.0;
        for j in (i + 1)..m {
            let mut acc = 0.0;
            for k in 0..n {
                acc += normalized[(k, i)] * normalized[(k, j)];
            }
            corr[(i, j)] = acc;
            corr[(j, i)] = acc;
        }
    }
    corr
}

/// doitgen: multi-resolution analysis kernel,
/// `A[r][q][p] = Σ_s A[r][q][s] * C4[s][p]` for every `(r, q)` slice.
pub fn kernel_doitgen(a: &mut [Matrix], c4: &Matrix) {
    let np = c4.rows();
    assert_eq!(c4.cols(), np, "C4 must be square");
    for slab in a.iter_mut() {
        // Each slab is an nq × np matrix; rows are updated independently.
        let nq = slab.rows();
        assert_eq!(slab.cols(), np, "slab width must match C4");
        for q in 0..nq {
            let mut sum = vec![0.0; np];
            for (p, s) in sum.iter_mut().enumerate() {
                for k in 0..np {
                    *s += slab[(q, k)] * c4[(k, p)];
                }
            }
            for (p, s) in sum.into_iter().enumerate() {
                slab[(q, p)] = s;
            }
        }
    }
}

/// gemver outputs: updated `A`, and vectors `x` and `w`.
#[derive(Debug, Clone, PartialEq)]
pub struct GemverOutput {
    /// `A + u1 v1ᵀ + u2 v2ᵀ`.
    pub a_hat: Matrix,
    /// `beta * Âᵀ y + z`.
    pub x: Vec<f64>,
    /// `alpha * Â x`.
    pub w: Vec<f64>,
}

/// gemver: vector multiplication and matrix addition
/// (BLAS-like composite of rank-1 updates and two mat-vec products).
#[allow(clippy::too_many_arguments)]
pub fn kernel_gemver(
    alpha: f64,
    beta: f64,
    a: &Matrix,
    u1: &[f64],
    v1: &[f64],
    u2: &[f64],
    v2: &[f64],
    y: &[f64],
    z: &[f64],
) -> GemverOutput {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    for (name, v) in [
        ("u1", u1),
        ("v1", v1),
        ("u2", u2),
        ("v2", v2),
        ("y", y),
        ("z", z),
    ] {
        assert_eq!(v.len(), n, "{name} length mismatch");
    }
    let mut a_hat = a.clone();
    for i in 0..n {
        for j in 0..n {
            a_hat[(i, j)] += u1[i] * v1[j] + u2[i] * v2[j];
        }
    }
    let mut x = z.to_vec();
    for i in 0..n {
        for j in 0..n {
            x[i] += beta * a_hat[(j, i)] * y[j];
        }
    }
    let mut w = vec![0.0; n];
    for i in 0..n {
        for j in 0..n {
            w[i] += alpha * a_hat[(i, j)] * x[j];
        }
    }
    GemverOutput { a_hat, x, w }
}

/// jacobi-2d: `tsteps` alternating 5-point stencil sweeps over two grids.
pub fn kernel_jacobi_2d(a: &mut Matrix, b: &mut Matrix, tsteps: usize) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    assert_eq!((b.rows(), b.cols()), (n, n), "B shape mismatch");
    for _ in 0..tsteps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                b[(i, j)] = 0.2
                    * (a[(i, j)] + a[(i, j - 1)] + a[(i, j + 1)] + a[(i + 1, j)] + a[(i - 1, j)]);
            }
        }
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                a[(i, j)] = 0.2
                    * (b[(i, j)] + b[(i, j - 1)] + b[(i, j + 1)] + b[(i + 1, j)] + b[(i - 1, j)]);
            }
        }
    }
}

/// mvt: `x1 += A y1; x2 += Aᵀ y2`.
pub fn kernel_mvt(a: &Matrix, x1: &mut [f64], x2: &mut [f64], y1: &[f64], y2: &[f64]) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    assert!(
        [x1.len(), x2.len(), y1.len(), y2.len()]
            .iter()
            .all(|&l| l == n),
        "vector length mismatch"
    );
    for i in 0..n {
        for j in 0..n {
            x1[i] += a[(i, j)] * y1[j];
        }
    }
    for i in 0..n {
        for j in 0..n {
            x2[i] += a[(j, i)] * y2[j];
        }
    }
}

/// nussinov: RNA secondary-structure dynamic program. `seq` holds bases
/// 0..=3; returns the DP table whose `[0][n-1]` entry is the maximum number
/// of complementary pairings.
pub fn kernel_nussinov(seq: &[u8]) -> Matrix {
    let n = seq.len();
    assert!(n >= 2, "sequence too short");
    let matches = |a: u8, b: u8| u64::from(a + b == 3);
    let mut table = Matrix::zeros(n, n);
    for i in (0..n).rev() {
        for j in (i + 1)..n {
            let mut best = table[(i, j - 1)];
            if i + 1 < n {
                best = best.max(table[(i + 1, j)]);
                if i < j - 1 {
                    best = best.max(table[(i + 1, j - 1)] + matches(seq[i], seq[j]) as f64);
                } else {
                    best = best.max(table[(i + 1, j - 1)]);
                }
            }
            for k in (i + 1)..j {
                best = best.max(table[(i, k)] + table[(k + 1, j)]);
            }
            table[(i, j)] = best;
        }
    }
    table
}

/// seidel-2d: `tsteps` in-place 9-point Gauss-Seidel sweeps.
pub fn kernel_seidel_2d(a: &mut Matrix, tsteps: usize) {
    let n = a.rows();
    assert_eq!(a.cols(), n, "A must be square");
    for _ in 0..tsteps {
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                a[(i, j)] = (a[(i - 1, j - 1)]
                    + a[(i - 1, j)]
                    + a[(i - 1, j + 1)]
                    + a[(i, j - 1)]
                    + a[(i, j)]
                    + a[(i, j + 1)]
                    + a[(i + 1, j - 1)]
                    + a[(i + 1, j)]
                    + a[(i + 1, j + 1)])
                    / 9.0;
            }
        }
    }
}

/// syr2k: symmetric rank-2k update,
/// `C = alpha*A*Bᵀ + alpha*B*Aᵀ + beta*C` (lower triangle, mirrored).
pub fn kernel_syr2k(alpha: f64, beta: f64, a: &Matrix, b: &Matrix, c: &mut Matrix) {
    let n = a.rows();
    let m = a.cols();
    assert_eq!((b.rows(), b.cols()), (n, m), "B shape mismatch");
    assert_eq!((c.rows(), c.cols()), (n, n), "C shape mismatch");
    for i in 0..n {
        for j in 0..=i {
            c[(i, j)] *= beta;
        }
        for k in 0..m {
            for j in 0..=i {
                c[(i, j)] += a[(j, k)] * alpha * b[(i, k)] + b[(j, k)] * alpha * a[(i, k)];
            }
        }
    }
    // Mirror the lower triangle so callers can treat C as symmetric.
    for i in 0..n {
        for j in (i + 1)..n {
            c[(i, j)] = c[(j, i)];
        }
    }
}

/// syrk: symmetric rank-k update, `C = alpha*A*Aᵀ + beta*C`.
pub fn kernel_syrk(alpha: f64, beta: f64, a: &Matrix, c: &mut Matrix) {
    let n = a.rows();
    let m = a.cols();
    assert_eq!((c.rows(), c.cols()), (n, n), "C shape mismatch");
    for i in 0..n {
        for j in 0..=i {
            c[(i, j)] *= beta;
        }
        for k in 0..m {
            for j in 0..=i {
                c[(i, j)] += alpha * a[(i, k)] * a[(j, k)];
            }
        }
    }
    for i in 0..n {
        for j in (i + 1)..n {
            c[(i, j)] = c[(j, i)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_matrix(rows: usize, cols: usize, scale: f64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            ((i * cols + j) as f64 % 7.0 + 1.0) * scale
        })
    }

    #[test]
    fn k2mm_matches_reference_composition() {
        let a = seq_matrix(4, 3, 1.0);
        let b = seq_matrix(3, 5, 0.5);
        let c = seq_matrix(5, 2, 2.0);
        let d0 = seq_matrix(4, 2, 1.5);
        let (alpha, beta) = (1.5, 1.2);
        let mut d = d0.clone();
        kernel_2mm(alpha, beta, &a, &b, &c, &mut d);
        // Reference: D = alpha*(A*B)*C + beta*D0 via Matrix::matmul.
        let abc = a.matmul(&b).matmul(&c);
        let expected = Matrix::from_fn(4, 2, |i, j| alpha * abc[(i, j)] + beta * d0[(i, j)]);
        assert!(d.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn k2mm_zero_alpha_scales_d_only() {
        let a = seq_matrix(3, 3, 1.0);
        let b = seq_matrix(3, 3, 1.0);
        let c = seq_matrix(3, 3, 1.0);
        let d0 = seq_matrix(3, 3, 1.0);
        let mut d = d0.clone();
        kernel_2mm(0.0, 2.0, &a, &b, &c, &mut d);
        let expected = Matrix::from_fn(3, 3, |i, j| 2.0 * d0[(i, j)]);
        assert!(d.max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn k3mm_associativity_reference() {
        let a = seq_matrix(3, 4, 1.0);
        let b = seq_matrix(4, 2, 0.7);
        let c = seq_matrix(2, 5, 1.3);
        let d = seq_matrix(5, 3, 0.9);
        let g = kernel_3mm(&a, &b, &c, &d);
        let reference = a.matmul(&b).matmul(&c.matmul(&d));
        assert!(g.max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn atax_matches_explicit_transpose() {
        let a = seq_matrix(4, 3, 1.0);
        let x = vec![1.0, -2.0, 0.5];
        let y = kernel_atax(&a, &x);
        // Reference via matrices: y = Aᵀ(Ax).
        let xa = Matrix::from_fn(3, 1, |i, _| x[i]);
        let reference = a.transposed().matmul(&a.matmul(&xa));
        for i in 0..3 {
            assert!((y[i] - reference[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn atax_zero_input_gives_zero() {
        let a = seq_matrix(5, 4, 1.0);
        let y = kernel_atax(&a, &[0.0; 4]);
        assert!(y.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn correlation_diag_is_one_and_symmetric() {
        let data = Matrix::from_fn(30, 5, |i, j| ((i * 13 + j * 7) % 17) as f64 * 0.3);
        let corr = kernel_correlation(&data);
        for i in 0..5 {
            assert!((corr[(i, i)] - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!((corr[(i, j)] - corr[(j, i)]).abs() < 1e-12);
                assert!(corr[(i, j)].abs() < 1.0 + 1e-9, "corr out of range");
            }
        }
    }

    #[test]
    fn correlation_detects_perfect_linear_dependence() {
        // Column 1 = 2 * column 0 + 3  =>  correlation 1.
        let data = Matrix::from_fn(20, 2, |i, j| {
            let x = (i as f64) * 0.5 + ((i * i) % 5) as f64;
            if j == 0 {
                x
            } else {
                2.0 * x + 3.0
            }
        });
        let corr = kernel_correlation(&data);
        assert!((corr[(0, 1)] - 1.0).abs() < 1e-9, "got {}", corr[(0, 1)]);
    }

    #[test]
    fn doitgen_each_slice_is_a_matmul() {
        let c4 = seq_matrix(4, 4, 0.25);
        let slab0 = seq_matrix(3, 4, 1.0);
        let mut a = vec![slab0.clone()];
        kernel_doitgen(&mut a, &c4);
        let reference = slab0.matmul(&c4);
        assert!(a[0].max_abs_diff(&reference) < 1e-9);
    }

    #[test]
    fn gemver_reference_composition() {
        let n = 5;
        let a = seq_matrix(n, n, 0.5);
        let u1: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let v1: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 * 0.2).collect();
        let u2: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let v2: Vec<f64> = (0..n).map(|i| 0.3 * i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
        let z: Vec<f64> = (0..n).map(|i| -0.5 * i as f64).collect();
        let (alpha, beta) = (1.1, 0.9);
        let out = kernel_gemver(alpha, beta, &a, &u1, &v1, &u2, &v2, &y, &z);
        // Reference via matrices.
        let mut a_hat = a.clone();
        for i in 0..n {
            for j in 0..n {
                a_hat[(i, j)] += u1[i] * v1[j] + u2[i] * v2[j];
            }
        }
        assert!(out.a_hat.max_abs_diff(&a_hat) < 1e-12);
        for i in 0..n {
            let mut xi = z[i];
            for j in 0..n {
                xi += beta * a_hat[(j, i)] * y[j];
            }
            assert!((out.x[i] - xi).abs() < 1e-9);
        }
        for i in 0..n {
            let mut wi = 0.0;
            for j in 0..n {
                wi += alpha * a_hat[(i, j)] * out.x[j];
            }
            assert!((out.w[i] - wi).abs() < 1e-9);
        }
    }

    #[test]
    fn jacobi_preserves_constant_field() {
        let n = 8;
        let mut a = Matrix::from_fn(n, n, |_, _| 3.0);
        let mut b = a.clone();
        kernel_jacobi_2d(&mut a, &mut b, 3);
        // 0.2 * (5 * 3.0) = 3.0: constant interior stays constant.
        for i in 1..n - 1 {
            for j in 1..n - 1 {
                assert!((a[(i, j)] - 3.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn jacobi_smooths_a_spike() {
        let n = 9;
        let mut a = Matrix::zeros(n, n);
        a[(4, 4)] = 100.0;
        let mut b = Matrix::zeros(n, n);
        let before = a[(4, 4)];
        kernel_jacobi_2d(&mut a, &mut b, 2);
        assert!(a[(4, 4)] < before, "spike must decay");
        assert!(a[(3, 4)] > 0.0, "mass must diffuse to neighbours");
    }

    #[test]
    fn mvt_matches_reference() {
        let n = 6;
        let a = seq_matrix(n, n, 1.0);
        let y1: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let y2: Vec<f64> = (0..n).map(|i| 1.0 - i as f64 * 0.1).collect();
        let mut x1 = vec![1.0; n];
        let mut x2 = vec![2.0; n];
        kernel_mvt(&a, &mut x1, &mut x2, &y1, &y2);
        for i in 0..n {
            let mut e1 = 1.0;
            let mut e2 = 2.0;
            for j in 0..n {
                e1 += a[(i, j)] * y1[j];
                e2 += a[(j, i)] * y2[j];
            }
            assert!((x1[i] - e1).abs() < 1e-9);
            assert!((x2[i] - e2).abs() < 1e-9);
        }
    }

    #[test]
    fn nussinov_pairs_simple_hairpin() {
        // Bases: 0=A,1=C,2=G,3=U; A-U (0+3) and C-G (1+2) pair, but
        // *adjacent* bases cannot pair (Polybench's i < j-1 rule).
        // ACGU: outer A-U pairs; the inner C-G pair is blocked by
        // adjacency => 1 pairing.
        let table = kernel_nussinov(&[0, 1, 2, 3]);
        assert_eq!(table[(0, 3)], 1.0);
        // AACGUU: outer A-U plus the nested ACGU hairpin => 2 pairings.
        let table = kernel_nussinov(&[0, 0, 1, 2, 3, 3]);
        assert_eq!(table[(0, 5)], 2.0);
    }

    #[test]
    fn nussinov_no_complementary_pairs() {
        let table = kernel_nussinov(&[0, 0, 0, 0]); // all A: nothing pairs
        assert_eq!(table[(0, 3)], 0.0);
    }

    #[test]
    fn nussinov_table_is_monotone_in_interval() {
        let seq: Vec<u8> = (0..12).map(|i| (i * 5 % 4) as u8).collect();
        let t = kernel_nussinov(&seq);
        for i in 0..seq.len() {
            for j in (i + 1)..seq.len() - 1 {
                assert!(
                    t[(i, j + 1)] >= t[(i, j)],
                    "wider interval can't lose pairs"
                );
            }
        }
    }

    #[test]
    fn seidel_preserves_constant_field() {
        let n = 7;
        let mut a = Matrix::from_fn(n, n, |_, _| 5.0);
        kernel_seidel_2d(&mut a, 4);
        for i in 0..n {
            for j in 0..n {
                assert!((a[(i, j)] - 5.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn seidel_contracts_towards_boundary_values() {
        let n = 8;
        let mut a = Matrix::zeros(n, n);
        a[(3, 3)] = 64.0;
        let spike = a[(3, 3)];
        kernel_seidel_2d(&mut a, 5);
        assert!(a[(3, 3)] < spike);
        // With zero boundary, interior decays towards zero.
        assert!(a[(3, 3)] >= 0.0);
    }

    #[test]
    fn syrk_matches_matmul_reference() {
        let a = seq_matrix(4, 3, 1.0);
        let c0 = seq_matrix(4, 4, 0.5);
        // Make C0 symmetric so the kernel's triangle-mirroring matches the
        // full reference computation.
        let c0 = Matrix::from_fn(4, 4, |i, j| c0[(i, j)] + c0[(j, i)]);
        let mut c = c0.clone();
        let (alpha, beta) = (2.0, 0.5);
        kernel_syrk(alpha, beta, &a, &mut c);
        let aat = a.matmul(&a.transposed());
        let expected = Matrix::from_fn(4, 4, |i, j| alpha * aat[(i, j)] + beta * c0[(i, j)]);
        assert!(c.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn syr2k_matches_matmul_reference() {
        let a = seq_matrix(4, 3, 1.0);
        let b = seq_matrix(4, 3, 0.7);
        let c0 = seq_matrix(4, 4, 0.3);
        let c0 = Matrix::from_fn(4, 4, |i, j| c0[(i, j)] + c0[(j, i)]);
        let mut c = c0.clone();
        let (alpha, beta) = (1.5, 0.8);
        kernel_syr2k(alpha, beta, &a, &b, &mut c);
        let abt = a.matmul(&b.transposed());
        let bat = b.matmul(&a.transposed());
        let expected = Matrix::from_fn(4, 4, |i, j| {
            alpha * abt[(i, j)] + alpha * bat[(i, j)] + beta * c0[(i, j)]
        });
        assert!(c.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn syrk_output_is_symmetric() {
        let a = seq_matrix(5, 4, 1.1);
        let mut c = Matrix::zeros(5, 5);
        kernel_syrk(1.0, 0.0, &a, &mut c);
        assert!(c.max_abs_diff(&c.transposed()) < 1e-12);
    }

    #[test]
    fn syr2k_output_is_symmetric() {
        let a = seq_matrix(5, 4, 1.1);
        let b = seq_matrix(5, 4, 0.4);
        let mut c = Matrix::zeros(5, 5);
        kernel_syr2k(1.0, 0.0, &a, &b, &mut c);
        assert!(c.max_abs_diff(&c.transposed()) < 1e-12);
    }
}
