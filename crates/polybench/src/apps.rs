//! The 12 Polybench/C applications of the paper's experimental campaign:
//! registry, dataset dimensions and analytic workload profiles.

use platform_sim::WorkloadProfile;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the 12 benchmark applications (paper Table I order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum App {
    /// 2mm — two matrix multiplications.
    TwoMm,
    /// 3mm — three matrix multiplications.
    ThreeMm,
    /// atax — matrix-transpose-vector product.
    Atax,
    /// correlation — correlation matrix computation.
    Correlation,
    /// doitgen — multi-resolution analysis kernel.
    Doitgen,
    /// gemver — vector multiplication and matrix addition.
    Gemver,
    /// jacobi-2d — 2-D Jacobi stencil.
    Jacobi2d,
    /// mvt — matrix-vector product and transpose.
    Mvt,
    /// nussinov — RNA folding dynamic program.
    Nussinov,
    /// seidel-2d — 2-D Gauss-Seidel stencil.
    Seidel2d,
    /// syr2k — symmetric rank-2k update.
    Syr2k,
    /// syrk — symmetric rank-k update.
    Syrk,
}

/// One actual argument of a kernel invocation (see [`App::kernel_args`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum KernelArg {
    /// An integer argument (e.g. the stencils' `tsteps`).
    Int(i64),
    /// A floating-point argument (e.g. `alpha`/`beta`).
    Double(f64),
}

/// Dataset size class (Polybench convention).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Dataset {
    /// Quick functional checks.
    Mini,
    /// Unit-test scale.
    Small,
    /// DSE-profiling scale.
    Medium,
    /// Paper-scale (default for experiments).
    Large,
}

impl Dataset {
    /// Divider applied to the LARGE dimensions.
    fn divider(self) -> usize {
        match self {
            Dataset::Mini => 16,
            Dataset::Small => 8,
            Dataset::Medium => 2,
            Dataset::Large => 1,
        }
    }
}

impl App {
    /// All 12 applications in paper (Table I) order.
    pub const ALL: [App; 12] = [
        App::TwoMm,
        App::ThreeMm,
        App::Atax,
        App::Correlation,
        App::Doitgen,
        App::Gemver,
        App::Jacobi2d,
        App::Mvt,
        App::Nussinov,
        App::Seidel2d,
        App::Syr2k,
        App::Syrk,
    ];

    /// The benchmark's Polybench name (e.g. `"2mm"`).
    pub fn name(self) -> &'static str {
        match self {
            App::TwoMm => "2mm",
            App::ThreeMm => "3mm",
            App::Atax => "atax",
            App::Correlation => "correlation",
            App::Doitgen => "doitgen",
            App::Gemver => "gemver",
            App::Jacobi2d => "jacobi-2d",
            App::Mvt => "mvt",
            App::Nussinov => "nussinov",
            App::Seidel2d => "seidel-2d",
            App::Syr2k => "syr2k",
            App::Syrk => "syrk",
        }
    }

    /// The C kernel function name inside the benchmark source.
    pub fn kernel_name(self) -> String {
        format!("kernel_{}", self.name().replace('-', "_"))
    }

    /// Named dimension constants (`#define`s of the C source) for a
    /// dataset class.
    pub fn dims(self, ds: Dataset) -> Vec<(&'static str, usize)> {
        let d = ds.divider();
        let s = |v: usize| (v / d).max(4);
        match self {
            App::TwoMm => vec![
                ("NI", s(800)),
                ("NJ", s(900)),
                ("NK", s(1100)),
                ("NL", s(1200)),
            ],
            App::ThreeMm => vec![
                ("NI", s(800)),
                ("NJ", s(900)),
                ("NK", s(1000)),
                ("NL", s(1100)),
                ("NM", s(1200)),
            ],
            App::Atax => vec![("M", s(1800)), ("N", s(2200))],
            App::Correlation => vec![("M", s(1200)), ("N", s(1400))],
            App::Doitgen => vec![("NR", s(150)), ("NQ", s(140)), ("NP", s(160))],
            App::Gemver => vec![("N", s(4000))],
            App::Jacobi2d => vec![("TSTEPS", s(500)), ("N", s(1300))],
            App::Mvt => vec![("N", s(4000))],
            App::Nussinov => vec![("N", s(2500))],
            App::Seidel2d => vec![("TSTEPS", s(500)), ("N", s(2000))],
            App::Syr2k => vec![("N", s(1200)), ("M", s(1000))],
            App::Syrk => vec![("N", s(1200)), ("M", s(1000))],
        }
    }

    /// Looks up one dimension by name.
    ///
    /// # Panics
    ///
    /// Panics if the app has no dimension of that name.
    pub fn dim(self, ds: Dataset, name: &str) -> usize {
        self.dims(ds)
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("{} has no dimension `{name}`", self.name()))
            .1
    }

    /// Total floating-point operations of one kernel invocation.
    pub fn flops(self, ds: Dataset) -> f64 {
        let g = |n: &str| self.dim(ds, n) as f64;
        match self {
            App::TwoMm => 2.0 * g("NI") * g("NJ") * g("NK") + 2.0 * g("NI") * g("NL") * g("NJ"),
            App::ThreeMm => {
                2.0 * (g("NI") * g("NJ") * g("NK")
                    + g("NJ") * g("NL") * g("NM")
                    + g("NI") * g("NL") * g("NJ"))
            }
            App::Atax => 4.0 * g("M") * g("N"),
            App::Correlation => g("M") * g("M") * g("N") + 6.0 * g("M") * g("N"),
            App::Doitgen => 2.0 * g("NR") * g("NQ") * g("NP") * g("NP"),
            App::Gemver => 10.0 * g("N") * g("N"),
            App::Jacobi2d => 10.0 * g("TSTEPS") * g("N") * g("N"),
            App::Mvt => 4.0 * g("N") * g("N"),
            App::Nussinov => g("N") * g("N") * g("N") / 3.0,
            App::Seidel2d => 10.0 * g("TSTEPS") * g("N") * g("N"),
            App::Syr2k => 2.0 * g("N") * g("N") * g("M") + g("N") * g("N"),
            App::Syrk => g("N") * g("N") * g("M") + g("N") * g("N"),
        }
    }

    /// The actual arguments each benchmark's `main` passes to its kernel,
    /// mirroring the C sources verbatim (`kernel_2mm(1.5, 1.2)`,
    /// `kernel_correlation((double) N, 0.1)`, ...). `dims` must be the
    /// *resolved* dimension bindings the kernel will execute under, so
    /// value-dependent arguments (correlation's `float_n`, the stencils'
    /// `tsteps`) stay self-consistent with the functional array extents.
    pub fn kernel_args(self, dims: &[(&str, usize)]) -> Vec<KernelArg> {
        let d = |name: &str| {
            dims.iter()
                .find(|(n, _)| *n == name)
                .unwrap_or_else(|| panic!("{} has no dimension `{name}`", self.name()))
                .1
        };
        match self {
            App::TwoMm | App::Gemver | App::Syr2k | App::Syrk => {
                vec![KernelArg::Double(1.5), KernelArg::Double(1.2)]
            }
            App::Correlation => vec![KernelArg::Double(d("N") as f64), KernelArg::Double(0.1)],
            App::Jacobi2d | App::Seidel2d => {
                vec![KernelArg::Int(d("TSTEPS") as i64)]
            }
            App::ThreeMm | App::Atax | App::Doitgen | App::Mvt | App::Nussinov => Vec::new(),
        }
    }

    /// Resident array bytes (`double` = 8 B; nussinov uses an int table).
    pub fn working_set_bytes(self, ds: Dataset) -> f64 {
        let g = |n: &str| self.dim(ds, n) as f64;
        8.0 * match self {
            App::TwoMm => {
                g("NI") * g("NK")
                    + g("NK") * g("NJ")
                    + g("NJ") * g("NL")
                    + g("NI") * g("NJ")
                    + g("NI") * g("NL")
            }
            App::ThreeMm => {
                g("NI") * g("NK")
                    + g("NK") * g("NJ")
                    + g("NJ") * g("NM")
                    + g("NM") * g("NL")
                    + g("NI") * g("NJ")
                    + g("NJ") * g("NL")
                    + g("NI") * g("NL")
            }
            App::Atax => g("M") * g("N") + 3.0 * g("N"),
            App::Correlation => g("N") * g("M") + g("M") * g("M") + 2.0 * g("M"),
            App::Doitgen => g("NR") * g("NQ") * g("NP") + g("NP") * g("NP") + g("NP"),
            App::Gemver => g("N") * g("N") + 8.0 * g("N"),
            App::Jacobi2d => 2.0 * g("N") * g("N"),
            App::Mvt => g("N") * g("N") + 4.0 * g("N"),
            App::Nussinov => g("N") * g("N") / 2.0 + g("N"),
            App::Seidel2d => g("N") * g("N"),
            App::Syr2k => 2.0 * g("N") * g("M") + g("N") * g("N"),
            App::Syrk => g("N") * g("M") + g("N") * g("N"),
        }
    }

    /// Structural traits that drive the platform's flag/timing response.
    fn traits(self) -> AppTraits {
        match self {
            App::TwoMm | App::ThreeMm => AppTraits {
                ai: 4.5,
                parallel_fraction: 0.995,
                locality: 0.80,
                branch_density: 0.02,
                fp_intensity: 0.95,
                call_density: 0.0,
                loop_nest_depth: 1.0,
                stencil: false,
                contention: 0.01,
            },
            App::Atax => AppTraits {
                ai: 0.25,
                parallel_fraction: 0.98,
                locality: 0.45,
                branch_density: 0.03,
                fp_intensity: 0.90,
                call_density: 0.0,
                loop_nest_depth: 0.67,
                stencil: false,
                contention: 0.03,
            },
            App::Correlation => AppTraits {
                ai: 1.8,
                parallel_fraction: 0.985,
                locality: 0.60,
                branch_density: 0.12,
                fp_intensity: 0.85,
                call_density: 0.05,
                loop_nest_depth: 0.85,
                stencil: false,
                contention: 0.03,
            },
            App::Doitgen => AppTraits {
                ai: 2.5,
                parallel_fraction: 0.99,
                locality: 0.70,
                branch_density: 0.02,
                fp_intensity: 0.92,
                call_density: 0.0,
                loop_nest_depth: 1.0,
                stencil: false,
                contention: 0.02,
            },
            App::Gemver => AppTraits {
                ai: 0.30,
                parallel_fraction: 0.985,
                locality: 0.40,
                branch_density: 0.02,
                fp_intensity: 0.90,
                call_density: 0.0,
                loop_nest_depth: 0.67,
                stencil: false,
                contention: 0.03,
            },
            App::Jacobi2d => AppTraits {
                ai: 0.45,
                parallel_fraction: 0.995,
                locality: 0.55,
                branch_density: 0.03,
                fp_intensity: 0.90,
                call_density: 0.0,
                loop_nest_depth: 0.80,
                stencil: true,
                contention: 0.04,
            },
            App::Mvt => AppTraits {
                ai: 0.25,
                parallel_fraction: 0.985,
                locality: 0.45,
                branch_density: 0.02,
                fp_intensity: 0.90,
                call_density: 0.0,
                loop_nest_depth: 0.67,
                stencil: false,
                contention: 0.02,
            },
            App::Nussinov => AppTraits {
                ai: 1.2,
                parallel_fraction: 0.90,
                locality: 0.65,
                branch_density: 0.50,
                fp_intensity: 0.20,
                call_density: 0.0,
                loop_nest_depth: 0.90,
                stencil: false,
                contention: 0.15,
            },
            App::Seidel2d => AppTraits {
                ai: 0.50,
                parallel_fraction: 0.80,
                locality: 0.60,
                branch_density: 0.03,
                fp_intensity: 0.90,
                call_density: 0.0,
                loop_nest_depth: 0.80,
                stencil: true,
                contention: 0.35,
            },
            App::Syr2k => AppTraits {
                ai: 3.5,
                parallel_fraction: 0.995,
                locality: 0.75,
                branch_density: 0.04,
                fp_intensity: 0.95,
                call_density: 0.0,
                loop_nest_depth: 1.0,
                stencil: false,
                contention: 0.01,
            },
            App::Syrk => AppTraits {
                ai: 3.0,
                parallel_fraction: 0.995,
                locality: 0.75,
                branch_density: 0.04,
                fp_intensity: 0.95,
                call_density: 0.0,
                loop_nest_depth: 1.0,
                stencil: false,
                contention: 0.01,
            },
        }
    }

    /// The analytic workload profile consumed by `platform_sim::Machine`.
    pub fn profile(self, ds: Dataset) -> WorkloadProfile {
        let t = self.traits();
        let flops = self.flops(ds);
        WorkloadProfile::builder(self.name())
            .flops(flops)
            .bytes(flops / t.ai)
            .parallel_fraction(t.parallel_fraction)
            .locality(t.locality)
            .branch_density(t.branch_density)
            .fp_intensity(t.fp_intensity)
            .call_density(t.call_density)
            .loop_nest_depth(t.loop_nest_depth)
            .stencil(t.stencil)
            .working_set_bytes(self.working_set_bytes(ds))
            .contention(t.contention)
            .build()
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for App {
    type Err = UnknownAppError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        App::ALL
            .into_iter()
            .find(|a| a.name() == s)
            .ok_or_else(|| UnknownAppError(s.to_string()))
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAppError(pub String);

impl fmt::Display for UnknownAppError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown polybench app `{}`", self.0)
    }
}

impl std::error::Error for UnknownAppError {}

#[derive(Debug, Clone, Copy)]
struct AppTraits {
    ai: f64,
    parallel_fraction: f64,
    locality: f64,
    branch_density: f64,
    fp_intensity: f64,
    call_density: f64,
    loop_nest_depth: f64,
    stencil: bool,
    contention: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_apps_with_unique_names() {
        assert_eq!(App::ALL.len(), 12);
        let names: std::collections::HashSet<_> = App::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn names_roundtrip_through_fromstr() {
        for a in App::ALL {
            assert_eq!(a.name().parse::<App>().unwrap(), a);
        }
        assert!("gemm".parse::<App>().is_err());
    }

    #[test]
    fn kernel_names_are_c_identifiers() {
        for a in App::ALL {
            let k = a.kernel_name();
            assert!(k.starts_with("kernel_"));
            assert!(k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
        }
    }

    #[test]
    fn all_profiles_are_valid() {
        for a in App::ALL {
            for ds in [
                Dataset::Mini,
                Dataset::Small,
                Dataset::Medium,
                Dataset::Large,
            ] {
                let p = a.profile(ds);
                assert!(p.validate().is_empty(), "{a} {ds:?}: {:?}", p.validate());
            }
        }
    }

    #[test]
    fn large_flops_are_paper_scale() {
        // Seconds-scale serial runtimes at ~1.5 GFLOP/s; atax/gemver/mvt
        // are the small O(n^2) apps.
        for a in App::ALL {
            let f = a.flops(Dataset::Large);
            assert!(f > 1e7, "{a}: {f}");
            assert!(f < 5e10, "{a}: {f}");
        }
        assert!(App::TwoMm.flops(Dataset::Large) > 1e9);
        assert!(App::Mvt.flops(Dataset::Large) < 1e8);
    }

    #[test]
    fn datasets_scale_monotonically() {
        for a in App::ALL {
            let mut last = 0.0;
            for ds in [
                Dataset::Mini,
                Dataset::Small,
                Dataset::Medium,
                Dataset::Large,
            ] {
                let f = a.flops(ds);
                assert!(f > last, "{a} {ds:?}");
                last = f;
            }
        }
    }

    #[test]
    fn memory_bound_and_compute_bound_apps_coexist() {
        // The Fig. 3 diversity requires both classes. The simulated
        // machine's balance point is ~0.5 flops/byte (1.3 GF/s core vs.
        // ~a third of 28 GB/s single-thread bandwidth, rising with cores).
        let balance = 0.5;
        let memory_bound: Vec<_> = App::ALL
            .iter()
            .filter(|a| a.profile(Dataset::Large).is_memory_bound(balance))
            .collect();
        assert!(memory_bound.len() >= 4, "{memory_bound:?}");
        assert!(memory_bound.len() <= 8, "{memory_bound:?}");
    }

    #[test]
    fn dim_lookup_panics_on_typo() {
        let r = std::panic::catch_unwind(|| App::TwoMm.dim(Dataset::Large, "NX"));
        assert!(r.is_err());
    }

    #[test]
    fn working_sets_fit_in_memory() {
        for a in App::ALL {
            let ws = a.working_set_bytes(Dataset::Large);
            assert!(ws < 128e9, "{a} exceeds the testbed's 128 GB");
            assert!(ws > 1e4, "{a} suspiciously small working set");
        }
    }
}
