//! # polybench — the paper's benchmark suite
//!
//! The SOCRATES experimental campaign uses 12 applications from
//! Polybench/C. This crate provides, for each of them:
//!
//! - an executable Rust port of the kernel ([`kernels`]) with the
//!   Polybench 4.2 semantics, validated by tests against matrix-algebra
//!   references and invariants;
//! - the original C source ([`source`]) in the `minic` dialect, which the
//!   SOCRATES toolchain parses, characterises (Milepost) and weaves
//!   (LARA Multiversioning + Autotuner);
//! - an analytic [`WorkloadProfile`](platform_sim::WorkloadProfile)
//!   ([`App::profile`]) that drives the simulated platform's timing/power
//!   response.
//!
//! ## Example
//!
//! ```
//! use polybench::{App, Dataset};
//!
//! let app = App::TwoMm;
//! let src = polybench::source(app, Dataset::Large);
//! let tu = minic::parse(&src).unwrap();
//! assert!(tu.function("kernel_2mm").is_some());
//!
//! let profile = app.profile(Dataset::Large);
//! assert!(profile.flops > 1e9);
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod kernels;
pub mod matrix;
pub mod sources;

pub use apps::{App, Dataset, KernelArg, UnknownAppError};
pub use matrix::Matrix;
pub use sources::source;
