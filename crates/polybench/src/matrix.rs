//! A minimal dense-matrix type used by the executable kernel ports.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of the backing storage (row-major).
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Maximum absolute element-wise difference to another matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:>9.3} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m[(1, 2)], 0.0);
        m[(1, 2)] = 7.5;
        assert_eq!(m[(1, 2)], 7.5);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64); // [[0,1],[2,3],[4,5]]
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 10.0);
        assert_eq!(c[(0, 1)], 13.0);
        assert_eq!(c[(1, 0)], 28.0);
        assert_eq!(c[(1, 1)], 40.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_fn(3, 3, |i, j| ((i + 1) * (j + 2)) as f64);
        let id = Matrix::from_fn(3, 3, |i, j| if i == j { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
        assert_eq!(id.matmul(&a), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(2, 4, |i, j| (i * 7 + j * 3) as f64);
        assert_eq!(a.transposed().transposed(), a);
    }

    #[test]
    fn transpose_reverses_matmul() {
        let a = Matrix::from_fn(2, 3, |i, j| (i + j) as f64 + 1.0);
        let b = Matrix::from_fn(3, 2, |i, j| (i * 2 + j) as f64 + 0.5);
        let left = a.matmul(&b).transposed();
        let right = b.transposed().matmul(&a.transposed());
        assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 3);
    }

    #[test]
    fn display_is_nonempty() {
        let m = Matrix::zeros(1, 1);
        assert!(!format!("{m}").is_empty());
    }
}
