//! Edge-case battery for the mini-C front-end: constructs at the border
//! of the dialect, and inputs that must fail with clean errors (never
//! panics).

use minic::{logical_loc, parse, parse_expr, print};

#[test]
fn deeply_nested_expressions_parse() {
    // 64 levels of parentheses: recursion depth sanity.
    let mut src = String::from("x");
    for _ in 0..64 {
        src = format!("({src} + 1)");
    }
    let e = parse_expr(&src).unwrap();
    let printed = minic::print_expr(&e);
    assert_eq!(parse_expr(&printed).unwrap(), e);
}

#[test]
fn deeply_nested_blocks_parse() {
    let mut body = String::from("int x = 0;");
    for _ in 0..40 {
        body = format!("{{ {body} }}");
    }
    let src = format!("void f() {{ {body} }}");
    let tu = parse(&src).unwrap();
    assert_eq!(logical_loc(&tu), 2); // signature + decl; braces are free
}

#[test]
fn dangling_else_attaches_to_nearest_if() {
    let tu = parse("void f(int a, int b) { if (a) if (b) a = 1; else a = 2; }").unwrap();
    let f = tu.function("f").unwrap();
    match &f.body.as_ref().unwrap().stmts[0] {
        minic::Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            // Outer if has no else; inner if carries it.
            assert!(else_branch.is_none(), "dangling else bound to outer if");
            match &then_branch.stmts[0] {
                minic::Stmt::If { else_branch, .. } => assert!(else_branch.is_some()),
                other => panic!("expected inner if, got {other:?}"),
            }
        }
        other => panic!("expected if, got {other:?}"),
    }
}

#[test]
fn operator_precedence_torture() {
    let cases = [
        ("a + b * c - d / e % f", "a + b * c - d / e % f"),
        ("a << b + c", "a << b + c"),       // + binds tighter than <<
        ("a < b == c", "a < b == c"),       // < binds tighter than ==
        ("a & b | c ^ d", "a & b | c ^ d"), // & > ^ > |
        ("a || b && c", "a || b && c"),     // && > ||
        ("-a[1]", "-a[1]"),                 // index > unary
        ("(a = b) + 1", "(a = b) + 1"),     // assignment needs parens
    ];
    for (src, expected) in cases {
        let e = parse_expr(src).unwrap();
        assert_eq!(minic::print_expr(&e), expected, "source `{src}`");
    }
}

#[test]
fn malformed_inputs_error_cleanly() {
    let cases = [
        "void f( {",                  // bad parameter list
        "void f() { return",          // missing semicolon/brace
        "int 5x;",                    // identifier starting with digit
        "void f() { if () {} }",      // empty condition
        "void f() { for (;;;;) {} }", // too many for clauses
        "double d = ;",               // missing initializer
        "void f() { x = ((1 + 2); }", // unbalanced parens
        "int a[] = {1,2};",           // dimensionless array (unsupported)
        "struct S { int x; };",       // structs out of dialect
        "void f() { a b; }",          // two identifiers
    ];
    for src in cases {
        let result = parse(src);
        assert!(result.is_err(), "`{src}` should not parse");
        let msg = result.unwrap_err().to_string();
        assert!(msg.contains("parse error"), "unhelpful message: {msg}");
    }
}

#[test]
fn comments_everywhere() {
    let src = "/* head */ void /* mid */ f(int a /* param */) {\n\
               // line comment\n\
               a = a + 1; /* tail */\n\
               } // trailer";
    let tu = parse(src).unwrap();
    assert!(tu.function("f").is_some());
}

#[test]
fn pragma_between_statements_survives_roundtrip() {
    let src = "void f(int n) {\n\
               n++;\n\
               #pragma omp parallel for schedule(dynamic, 8) num_threads(4)\n\
               for (int i = 0; i < n; i++) { }\n\
               n--;\n\
               }";
    let tu = parse(src).unwrap();
    let printed = print(&tu);
    assert!(printed.contains("schedule(dynamic, 8)"));
    assert_eq!(parse(&printed).unwrap(), tu);
}

#[test]
fn large_generated_program_roundtrips() {
    // 200 functions, each with a loop: stress the printer/parser pair.
    let mut src = String::new();
    for i in 0..200 {
        src.push_str(&format!(
            "double fn_{i}(double x) {{\n\
             for (int i = 0; i < {i} + 1; i++) {{ x = x * 1.5 + {i}.0; }}\n\
             return x;\n\
             }}\n"
        ));
    }
    let tu = parse(&src).unwrap();
    assert_eq!(tu.functions().count(), 200);
    let printed = print(&tu);
    assert_eq!(parse(&printed).unwrap(), tu);
    // Per function: signature + for + loop-body assignment + return.
    assert_eq!(logical_loc(&tu), 200 * 4);
}

#[test]
fn unicode_in_strings_is_preserved() {
    let src = r#"void f() { printf("温度 → %d°C\n", 42); }"#;
    let tu = parse(src).unwrap();
    let printed = print(&tu);
    assert!(printed.contains("温度"));
    assert_eq!(parse(&printed).unwrap(), tu);
}

#[test]
fn empty_translation_unit_is_valid() {
    let tu = parse("").unwrap();
    assert!(tu.items.is_empty());
    assert_eq!(logical_loc(&tu), 0);
    assert_eq!(print(&tu), "");
}

#[test]
fn whitespace_only_and_comment_only_inputs() {
    assert!(parse("   \n\t  ").unwrap().items.is_empty());
    assert!(parse("/* nothing */").unwrap().items.is_empty());
    assert!(parse("// nothing\n").unwrap().items.is_empty());
}

#[test]
fn max_int_literal_parses() {
    let e = parse_expr("9223372036854775807").unwrap();
    assert_eq!(e, minic::Expr::IntLit(i64::MAX));
    // Overflow is a clean error.
    assert!(parse_expr("9223372036854775808").is_err());
}

#[test]
fn float_edge_forms() {
    for (src, val) in [("1e0", 1.0), (".25", 0.25), ("2.", 2.0), ("1E+2", 100.0)] {
        match parse_expr(src).unwrap() {
            minic::Expr::FloatLit(v) => assert!((v - val).abs() < 1e-12, "{src}"),
            other => panic!("{src} parsed as {other:?}"),
        }
    }
}
