//! Property-based round-trip tests: for generated ASTs,
//! `parse(print(ast)) == ast`, and printing is a fixed point.

use minic::ast::*;
use minic::{parse, parse_expr, print, print_expr};
use proptest::prelude::*;

/// Generates valid identifiers that avoid keywords and type names.
fn ident_strategy() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "alpha", "beta", "acc", "tmp", "val", "i0", "j0", "k0", "n", "m", "x", "y", "z", "sum",
        "idx", "aa", "bb", "cc",
    ])
    .prop_map(str::to_string)
}

fn leaf_expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..10_000).prop_map(Expr::IntLit),
        (0u32..100_000u32).prop_map(|v| Expr::FloatLit(f64::from(v) / 128.0 + 0.5)),
        ident_strategy().prop_map(Expr::Ident),
    ]
}

fn binop_strategy() -> impl Strategy<Value = BinaryOp> {
    prop::sample::select(vec![
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Rem,
        BinaryOp::Lt,
        BinaryOp::Le,
        BinaryOp::Gt,
        BinaryOp::Ge,
        BinaryOp::Eq,
        BinaryOp::Ne,
        BinaryOp::LogAnd,
        BinaryOp::LogOr,
        BinaryOp::BitAnd,
        BinaryOp::BitOr,
        BinaryOp::BitXor,
        BinaryOp::Shl,
        BinaryOp::Shr,
    ])
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    leaf_expr().prop_recursive(4, 48, 4, |inner| {
        prop_oneof![
            (binop_strategy(), inner.clone(), inner.clone()).prop_map(|(op, lhs, rhs)| {
                Expr::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                }
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| Expr::Ternary {
                cond: Box::new(c),
                then_expr: Box::new(t),
                else_expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(e),
            }),
            (ident_strategy(), inner.clone()).prop_map(|(b, i)| Expr::index(Expr::Ident(b), i)),
            (ident_strategy(), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(callee, args)| Expr::call(callee, args)),
            (ident_strategy(), inner).prop_map(|(n, r)| Expr::assign(Expr::Ident(n), r)),
        ]
    })
}

fn stmt_strategy() -> impl Strategy<Value = Stmt> {
    let simple = prop_oneof![
        expr_strategy().prop_map(Stmt::Expr),
        expr_strategy().prop_map(|e| Stmt::Return(Some(e))),
        (ident_strategy(), expr_strategy()).prop_map(|(n, e)| {
            Stmt::Decl(vec![Decl::new(Type::Int, n).with_init(Init::Expr(e))])
        }),
    ];
    simple.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (
                expr_strategy(),
                prop::collection::vec(inner.clone(), 1..3),
                prop::option::of(prop::collection::vec(inner.clone(), 1..2)),
            )
                .prop_map(|(cond, t, e)| Stmt::If {
                    cond,
                    then_branch: Block::new(t),
                    else_branch: e.map(Block::new),
                }),
            (
                ident_strategy(),
                expr_strategy(),
                prop::collection::vec(inner.clone(), 1..3),
            )
                .prop_map(|(v, bound, body)| Stmt::For {
                    init: Some(ForInit::Decl(vec![
                        Decl::new(Type::Int, v.clone()).with_init(Init::Expr(Expr::int(0)))
                    ])),
                    cond: Some(Expr::binary(BinaryOp::Lt, Expr::Ident(v.clone()), bound)),
                    step: Some(Expr::Postfix {
                        op: PostfixOp::Inc,
                        expr: Box::new(Expr::Ident(v)),
                    }),
                    body: Block::new(body),
                }),
            (expr_strategy(), prop::collection::vec(inner, 1..3)).prop_map(|(cond, body)| {
                Stmt::While {
                    cond,
                    body: Block::new(body),
                }
            }),
        ]
    })
}

fn function_strategy() -> impl Strategy<Value = Function> {
    (
        prop::collection::vec(stmt_strategy(), 0..6),
        prop::collection::vec(ident_strategy(), 0..3),
    )
        .prop_map(|(stmts, params)| {
            let mut seen = std::collections::HashSet::new();
            let params: Vec<Param> = params
                .into_iter()
                .filter(|p| seen.insert(p.clone()))
                .map(|p| Param::new(Type::Int, p))
                .collect();
            Function {
                ret: Type::Void,
                name: "generated_fn".into(),
                params,
                body: Some(Block::new(stmts)),
                is_static: false,
                pragmas: Vec::new(),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn expr_print_parse_roundtrip(e in expr_strategy()) {
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted: {printed}"));
        prop_assert_eq!(&e, &reparsed, "printed: {}", printed);
    }

    #[test]
    fn expr_printing_is_fixed_point(e in expr_strategy()) {
        let once = print_expr(&e);
        let twice = print_expr(&parse_expr(&once).unwrap());
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn function_print_parse_roundtrip(f in function_strategy()) {
        let mut tu = TranslationUnit::new();
        tu.items.push(Item::Function(f));
        let printed = print(&tu);
        let reparsed = parse(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}\nprinted:\n{printed}"));
        prop_assert_eq!(&tu, &reparsed, "printed:\n{}", printed);
    }

    #[test]
    fn logical_loc_stable_under_reprint(f in function_strategy()) {
        let mut tu = TranslationUnit::new();
        tu.items.push(Item::Function(f));
        let printed = print(&tu);
        let reparsed = parse(&printed).unwrap();
        prop_assert_eq!(minic::logical_loc(&tu), minic::logical_loc(&reparsed));
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(s in "\\PC{0,60}") {
        // Errors are fine; panics are not.
        let _ = parse(&s);
    }
}
