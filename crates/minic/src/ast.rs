//! Abstract syntax tree for the mini-C dialect.
//!
//! The dialect covers the subset of C used by the Polybench/C kernels plus
//! the pragmas the SOCRATES weaver inserts (`#pragma GCC optimize`, OpenMP
//! `parallel for` pragmas). Structs, unions and the full preprocessor are
//! intentionally out of scope.

use crate::pragma::Pragma;
use serde::{Deserialize, Serialize};

/// A whole source file: an ordered list of top-level items.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TranslationUnit {
    /// Top-level items in source order.
    pub items: Vec<Item>,
}

impl TranslationUnit {
    /// Creates an empty translation unit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the function definition named `name`, if present.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.items.iter().find_map(|it| match it {
            Item::Function(f) if f.name == name && f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Returns a mutable reference to the function definition named `name`.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.items.iter_mut().find_map(|it| match it {
            Item::Function(f) if f.name == name && f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Iterates over all function definitions (items with a body).
    pub fn functions(&self) -> impl Iterator<Item = &Function> {
        self.items.iter().filter_map(|it| match it {
            Item::Function(f) if f.body.is_some() => Some(f),
            _ => None,
        })
    }

    /// Returns the index of the first item that is a function definition,
    /// or `items.len()` if there is none. Useful for inserting globals
    /// ahead of all code.
    pub fn first_function_index(&self) -> usize {
        self.items
            .iter()
            .position(|it| matches!(it, Item::Function(f) if f.body.is_some()))
            .unwrap_or(self.items.len())
    }
}

/// A top-level item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Item {
    /// `#include <...>` or `#include "..."` — payload is the text after
    /// `#include`.
    Include(String),
    /// `#define ...` — payload is the text after `#define`.
    Define(String),
    /// A file-scope pragma.
    Pragma(Pragma),
    /// A global variable declaration statement (may declare several names).
    Global(Vec<Decl>),
    /// A function definition or prototype (prototype when `body` is `None`).
    Function(Function),
}

/// A function definition or prototype.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Return type.
    pub ret: Type,
    /// Function name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Body; `None` for a prototype.
    pub body: Option<Block>,
    /// `static` storage class.
    pub is_static: bool,
    /// Pragmas attached immediately before the definition
    /// (e.g. `#pragma GCC optimize(...)`).
    pub pragmas: Vec<Pragma>,
}

impl Function {
    /// Creates a function definition with an empty body.
    pub fn new(ret: Type, name: impl Into<String>, params: Vec<Param>) -> Self {
        Function {
            ret,
            name: name.into(),
            params,
            body: Some(Block::default()),
            is_static: false,
            pragmas: Vec::new(),
        }
    }
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter type (arrays keep their dimensions).
    pub ty: Type,
    /// Parameter name.
    pub name: String,
}

impl Param {
    /// Creates a parameter.
    pub fn new(ty: Type, name: impl Into<String>) -> Self {
        Param {
            ty,
            name: name.into(),
        }
    }
}

/// A mini-C type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Type {
    /// `void`
    Void,
    /// `char`
    Char,
    /// `int`
    Int,
    /// `unsigned int`
    UInt,
    /// `long`
    Long,
    /// `float`
    Float,
    /// `double`
    Double,
    /// Pointer to a type.
    Ptr(Box<Type>),
    /// Array with one expression per dimension, e.g. `double A[N][M]`.
    Array(Box<Type>, Vec<Expr>),
    /// A named (typedef'd or macro) type such as `DATA_TYPE`.
    Named(String),
}

impl Type {
    /// Convenience constructor for a pointer to `self`.
    pub fn ptr(self) -> Type {
        Type::Ptr(Box::new(self))
    }

    /// Convenience constructor for an array of `self` with the given dims.
    pub fn array(self, dims: Vec<Expr>) -> Type {
        Type::Array(Box::new(self), dims)
    }

    /// Returns `true` for `float`/`double` (and arrays/pointers of them).
    pub fn is_floating(&self) -> bool {
        match self {
            Type::Float | Type::Double => true,
            Type::Ptr(t) | Type::Array(t, _) => t.is_floating(),
            _ => false,
        }
    }
}

/// One declarator inside a declaration statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Decl {
    /// Declared type (base type combined with array dims / pointers).
    pub ty: Type,
    /// Declared name.
    pub name: String,
    /// Optional initializer.
    pub init: Option<Init>,
    /// `static` storage class.
    pub is_static: bool,
    /// `const` qualifier.
    pub is_const: bool,
}

impl Decl {
    /// Creates a plain declaration without initializer or qualifiers.
    pub fn new(ty: Type, name: impl Into<String>) -> Self {
        Decl {
            ty,
            name: name.into(),
            init: None,
            is_static: false,
            is_const: false,
        }
    }

    /// Builder-style: sets the initializer.
    pub fn with_init(mut self, init: Init) -> Self {
        self.init = Some(init);
        self
    }

    /// Builder-style: marks the declaration `static`.
    pub fn with_static(mut self) -> Self {
        self.is_static = true;
        self
    }
}

/// An initializer: a single expression or a brace-enclosed list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Init {
    /// `= expr`
    Expr(Expr),
    /// `= { ... }`
    List(Vec<Init>),
}

/// A brace-enclosed statement block.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Creates a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Self {
        Block { stmts }
    }
}

impl FromIterator<Stmt> for Block {
    fn from_iter<T: IntoIterator<Item = Stmt>>(iter: T) -> Self {
        Block {
            stmts: iter.into_iter().collect(),
        }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// A declaration statement (`int i, j = 0;`).
    Decl(Vec<Decl>),
    /// An expression statement.
    Expr(Expr),
    /// `if (cond) { .. } else { .. }` — branches are always blocks.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_branch: Block,
        /// Optional else branch.
        else_branch: Option<Block>,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do { .. } while (cond);`
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) { .. }`
    For {
        /// Optional init clause.
        init: Option<ForInit>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `return expr;` / `return;`
    Return(Option<Expr>),
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// A pragma in statement position (attaches to the following loop).
    Pragma(Pragma),
    /// A nested block.
    Block(Block),
    /// An empty statement (`;`).
    Empty,
}

/// The init clause of a `for` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ForInit {
    /// `for (int i = 0; ...)`
    Decl(Vec<Decl>),
    /// `for (i = 0; ...)`
    Expr(Expr),
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal (value-normalised; hex input prints as decimal).
    IntLit(i64),
    /// Floating literal.
    FloatLit(f64),
    /// String literal (escapes kept verbatim).
    StrLit(String),
    /// Character literal (escapes kept verbatim).
    CharLit(String),
    /// Identifier reference.
    Ident(String),
    /// Prefix unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Postfix `++`/`--`.
    Postfix {
        /// Operator.
        op: PostfixOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Assignment (simple or compound).
    Assign {
        /// Operator.
        op: AssignOp,
        /// Target lvalue.
        lhs: Box<Expr>,
        /// Assigned value.
        rhs: Box<Expr>,
    },
    /// `cond ? a : b`
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value if true.
        then_expr: Box<Expr>,
        /// Value if false.
        else_expr: Box<Expr>,
    },
    /// Call of a named function.
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<Expr>,
    },
    /// Array subscript `base[index]`.
    Index {
        /// Subscripted expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
    },
    /// C cast `(type) expr`.
    Cast {
        /// Target type.
        ty: Type,
        /// Casted expression.
        expr: Box<Expr>,
    },
    /// Comma expression `a, b`.
    Comma(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Identifier expression helper.
    pub fn ident(name: impl Into<String>) -> Expr {
        Expr::Ident(name.into())
    }

    /// Integer literal helper.
    pub fn int(v: i64) -> Expr {
        Expr::IntLit(v)
    }

    /// Call expression helper.
    pub fn call(callee: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call {
            callee: callee.into(),
            args,
        }
    }

    /// Binary expression helper.
    pub fn binary(op: BinaryOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Simple assignment helper (`lhs = rhs`).
    pub fn assign(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Assign {
            op: AssignOp::Assign,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// Index expression helper (`base[index]`).
    pub fn index(base: Expr, index: Expr) -> Expr {
        Expr::Index {
            base: Box::new(base),
            index: Box::new(index),
        }
    }

    /// Attempts to evaluate this expression as a compile-time integer
    /// constant, resolving names through `lookup` (used for `#define`d
    /// dimension constants).
    pub fn eval_int(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<i64> {
        match self {
            Expr::IntLit(v) => Some(*v),
            Expr::Ident(n) => lookup(n),
            Expr::Unary {
                op: UnaryOp::Neg,
                expr,
            } => expr.eval_int(lookup).map(|v| -v),
            Expr::Binary { op, lhs, rhs } => {
                let a = lhs.eval_int(lookup)?;
                let b = rhs.eval_int(lookup)?;
                match op {
                    BinaryOp::Add => Some(a + b),
                    BinaryOp::Sub => Some(a - b),
                    BinaryOp::Mul => Some(a * b),
                    BinaryOp::Div => (b != 0).then(|| a / b),
                    BinaryOp::Rem => (b != 0).then(|| a % b),
                    _ => None,
                }
            }
            Expr::Cast { expr, .. } => expr.eval_int(lookup),
            _ => None,
        }
    }
}

/// Prefix unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-x`
    Neg,
    /// `!x`
    Not,
    /// `~x`
    BitNot,
    /// `*x`
    Deref,
    /// `&x`
    AddrOf,
    /// `++x`
    PreInc,
    /// `--x`
    PreDec,
}

impl UnaryOp {
    /// The C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UnaryOp::Neg => "-",
            UnaryOp::Not => "!",
            UnaryOp::BitNot => "~",
            UnaryOp::Deref => "*",
            UnaryOp::AddrOf => "&",
            UnaryOp::PreInc => "++",
            UnaryOp::PreDec => "--",
        }
    }
}

/// Postfix operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PostfixOp {
    /// `x++`
    Inc,
    /// `x--`
    Dec,
}

impl PostfixOp {
    /// The C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            PostfixOp::Inc => "++",
            PostfixOp::Dec => "--",
        }
    }
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `||`
    LogOr,
    /// `&&`
    LogAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
}

impl BinaryOp {
    /// The C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinaryOp::LogOr => "||",
            BinaryOp::LogAnd => "&&",
            BinaryOp::BitOr => "|",
            BinaryOp::BitXor => "^",
            BinaryOp::BitAnd => "&",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Gt => ">",
            BinaryOp::Le => "<=",
            BinaryOp::Ge => ">=",
            BinaryOp::Shl => "<<",
            BinaryOp::Shr => ">>",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Rem => "%",
        }
    }

    /// Precedence level; larger binds tighter. Matches the C grammar.
    pub fn precedence(self) -> u8 {
        match self {
            BinaryOp::LogOr => 1,
            BinaryOp::LogAnd => 2,
            BinaryOp::BitOr => 3,
            BinaryOp::BitXor => 4,
            BinaryOp::BitAnd => 5,
            BinaryOp::Eq | BinaryOp::Ne => 6,
            BinaryOp::Lt | BinaryOp::Gt | BinaryOp::Le | BinaryOp::Ge => 7,
            BinaryOp::Shl | BinaryOp::Shr => 8,
            BinaryOp::Add | BinaryOp::Sub => 9,
            BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => 10,
        }
    }
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
    /// `/=`
    Div,
    /// `%=`
    Rem,
    /// `&=`
    And,
    /// `|=`
    Or,
    /// `^=`
    Xor,
    /// `<<=`
    Shl,
    /// `>>=`
    Shr,
}

impl AssignOp {
    /// The C spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::Add => "+=",
            AssignOp::Sub => "-=",
            AssignOp::Mul => "*=",
            AssignOp::Div => "/=",
            AssignOp::Rem => "%=",
            AssignOp::And => "&=",
            AssignOp::Or => "|=",
            AssignOp::Xor => "^=",
            AssignOp::Shl => "<<=",
            AssignOp::Shr => ">>=",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_int_arithmetic() {
        // (2 + 3) * 4
        let e = Expr::binary(
            BinaryOp::Mul,
            Expr::binary(BinaryOp::Add, Expr::int(2), Expr::int(3)),
            Expr::int(4),
        );
        assert_eq!(e.eval_int(&|_| None), Some(20));
    }

    #[test]
    fn eval_int_resolves_names() {
        let e = Expr::binary(BinaryOp::Div, Expr::ident("N"), Expr::int(2));
        let lookup = |n: &str| (n == "N").then_some(800);
        assert_eq!(e.eval_int(&lookup), Some(400));
        assert_eq!(e.eval_int(&|_| None), None);
    }

    #[test]
    fn eval_int_division_by_zero_is_none() {
        let e = Expr::binary(BinaryOp::Div, Expr::int(1), Expr::int(0));
        assert_eq!(e.eval_int(&|_| None), None);
    }

    #[test]
    fn function_lookup_by_name() {
        let mut tu = TranslationUnit::new();
        tu.items
            .push(Item::Function(Function::new(Type::Void, "kernel", vec![])));
        assert!(tu.function("kernel").is_some());
        assert!(tu.function("missing").is_none());
    }

    #[test]
    fn prototypes_are_not_definitions() {
        let mut tu = TranslationUnit::new();
        let mut f = Function::new(Type::Void, "proto", vec![]);
        f.body = None;
        tu.items.push(Item::Function(f));
        assert!(tu.function("proto").is_none());
        assert_eq!(tu.functions().count(), 0);
    }

    #[test]
    fn precedence_orders_match_c() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Shl.precedence());
        assert!(BinaryOp::Lt.precedence() > BinaryOp::Eq.precedence());
        assert!(BinaryOp::LogAnd.precedence() > BinaryOp::LogOr.precedence());
    }

    #[test]
    fn type_helpers_compose() {
        let t = Type::Double.array(vec![Expr::int(8)]);
        assert!(t.is_floating());
        assert!(Type::Int.ptr() == Type::Ptr(Box::new(Type::Int)));
        assert!(!Type::Int.is_floating());
    }

    #[test]
    fn first_function_index_skips_headers() {
        let mut tu = TranslationUnit::new();
        tu.items.push(Item::Include("<stdio.h>".into()));
        tu.items.push(Item::Define("N 10".into()));
        tu.items
            .push(Item::Function(Function::new(Type::Int, "main", vec![])));
        assert_eq!(tu.first_function_index(), 2);
    }
}
