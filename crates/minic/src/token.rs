//! Token definitions for the mini-C lexer.

use crate::error::Pos;
use std::fmt;

/// A lexical token together with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token payload.
    pub kind: TokenKind,
    /// Position of the first character of the token.
    pub pos: Pos,
}

/// The different kinds of tokens recognised by the mini-C lexer.
///
/// Preprocessor lines (`#include`, `#define`, `#pragma`) are lexed as single
/// tokens carrying their full text, because the weaver manipulates them as
/// units and never needs to look inside with full C preprocessor semantics.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword candidate, e.g. `kernel_2mm`.
    Ident(String),
    /// An integer literal, stored verbatim (e.g. `42`, `0x10`).
    IntLit(String),
    /// A floating-point literal, stored verbatim (e.g. `1.5e-3`, `2.0f`).
    FloatLit(String),
    /// A string literal including its quotes' content (without quotes).
    StrLit(String),
    /// A character literal content (without quotes).
    CharLit(String),
    /// A full `#include ...` line (text after `#include`).
    Include(String),
    /// A full `#define ...` line (text after `#define`).
    Define(String),
    /// A full `#pragma ...` line (text after `#pragma`).
    Pragma(String),
    /// A punctuation or operator token, e.g. `+=`, `(`, `&&`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::IntLit(s) => write!(f, "integer `{s}`"),
            TokenKind::FloatLit(s) => write!(f, "float `{s}`"),
            TokenKind::StrLit(s) => write!(f, "string \"{s}\""),
            TokenKind::CharLit(s) => write!(f, "char '{s}'"),
            TokenKind::Include(s) => write!(f, "#include {s}"),
            TokenKind::Define(s) => write!(f, "#define {s}"),
            TokenKind::Pragma(s) => write!(f, "#pragma {s}"),
            TokenKind::Punct(s) => write!(f, "`{s}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

impl TokenKind {
    /// Returns `true` if this token is the given punctuation string.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(self, TokenKind::Punct(s) if *s == p)
    }

    /// Returns `true` if this token is the given identifier/keyword.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self, TokenKind::Ident(s) if s == name)
    }
}

/// All multi- and single-character punctuation, longest first so the lexer
/// can match greedily.
pub(crate) const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=",
    "-=", "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "[", "]", "{", "}", ";", ",", ".", "+",
    "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "?", ":",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puncts_are_longest_first_per_prefix() {
        // For any two puncts where one is a prefix of the other, the longer
        // one must come first so greedy matching is correct.
        for (i, a) in PUNCTS.iter().enumerate() {
            for b in &PUNCTS[..i] {
                if a.starts_with(b) {
                    panic!("`{b}` appears before its extension `{a}`");
                }
            }
        }
    }

    #[test]
    fn is_punct_matches_exactly() {
        let t = TokenKind::Punct("+=");
        assert!(t.is_punct("+="));
        assert!(!t.is_punct("+"));
    }

    #[test]
    fn is_ident_matches_name() {
        let t = TokenKind::Ident("for".into());
        assert!(t.is_ident("for"));
        assert!(!t.is_ident("fort"));
    }

    #[test]
    fn display_forms_are_informative() {
        assert_eq!(TokenKind::Punct(";").to_string(), "`;`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
        assert_eq!(
            TokenKind::Pragma("omp parallel".into()).to_string(),
            "#pragma omp parallel"
        );
    }
}
