//! Error types for the mini-C front-end.

use std::error::Error;
use std::fmt;

/// A position in the source text, 1-based line and column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl Pos {
    /// Creates a position from a 1-based line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Pos { line, col }
    }
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error produced while lexing mini-C source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Where the offending character was found.
    pub pos: Pos,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl Error for LexError {}

/// Error produced while parsing mini-C tokens into an AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Where the parser gave up.
    pub pos: Pos,
    /// Human-readable description of the problem.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `pos` with the given message.
    pub fn new(pos: Pos, message: impl Into<String>) -> Self {
        ParseError {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            pos: e.pos,
            message: e.message,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pos_display() {
        assert_eq!(Pos::new(3, 14).to_string(), "3:14");
    }

    #[test]
    fn parse_error_display_mentions_position() {
        let e = ParseError::new(Pos::new(2, 7), "unexpected token");
        assert_eq!(e.to_string(), "parse error at 2:7: unexpected token");
    }

    #[test]
    fn lex_error_converts_to_parse_error() {
        let le = LexError {
            pos: Pos::new(1, 1),
            message: "bad char".into(),
        };
        let pe: ParseError = le.into();
        assert_eq!(pe.pos, Pos::new(1, 1));
        assert_eq!(pe.message, "bad char");
    }

    #[test]
    fn pos_ordering_is_line_major() {
        assert!(Pos::new(1, 9) < Pos::new(2, 1));
        assert!(Pos::new(2, 1) < Pos::new(2, 2));
    }
}
