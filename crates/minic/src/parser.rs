//! Recursive-descent parser for the mini-C dialect.
//!
//! The grammar covers everything the Polybench kernels and the SOCRATES
//! weaver need: globals, function definitions/prototypes, the usual C
//! statements, full expression precedence, array types with constant
//! dimension expressions, and pragmas in both file and statement scope.
//!
//! Known, deliberate limitations (documented in the crate root): no structs
//! or unions, no typedef declarations (known type names can be injected via
//! [`Parser::add_type_name`]), array dimensions must be explicit.

use crate::ast::*;
use crate::error::{ParseError, Pos};
use crate::lexer::lex;
use crate::pragma::Pragma;
use crate::token::{Token, TokenKind};
use std::collections::HashSet;

/// Parses a complete mini-C source file.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let tu = minic::parse("int main() { return 0; }").unwrap();
/// assert!(tu.function("main").is_some());
/// ```
pub fn parse(src: &str) -> Result<TranslationUnit, ParseError> {
    Parser::new(src)?.translation_unit()
}

/// Parses a single expression (useful in tests and tools).
///
/// # Errors
///
/// Returns a [`ParseError`] if `src` is not a valid expression.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = Parser::new(src)?;
    let e = p.expr_comma()?;
    p.expect_eof()?;
    Ok(e)
}

/// The parser state. Use [`parse`] unless you need to inject type names.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    i: usize,
    type_names: HashSet<String>,
}

const BASE_TYPES: &[&str] = &["void", "char", "int", "unsigned", "long", "float", "double"];

impl Parser {
    /// Creates a parser over `src`.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if lexing fails.
    pub fn new(src: &str) -> Result<Self, ParseError> {
        Ok(Parser {
            tokens: lex(src)?,
            i: 0,
            type_names: HashSet::new(),
        })
    }

    /// Registers an additional type name (as a typedef would).
    pub fn add_type_name(&mut self, name: impl Into<String>) {
        self.type_names.insert(name.into());
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.i].kind
    }

    fn peek_at(&self, off: usize) -> &TokenKind {
        let j = (self.i + off).min(self.tokens.len() - 1);
        &self.tokens[j].kind
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> TokenKind {
        let k = self.tokens[self.i].kind.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        k
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.peek().is_punct(p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_ident(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(self.err(format!("expected end of input, found {}", self.peek())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(self.pos(), message)
    }

    /// Is the current token the start of a type?
    fn at_type(&self) -> bool {
        self.at_type_at(0)
    }

    fn at_type_at(&self, off: usize) -> bool {
        match self.peek_at(off) {
            TokenKind::Ident(s) => {
                BASE_TYPES.contains(&s.as_str())
                    || s == "static"
                    || s == "const"
                    || self.type_names.contains(s)
            }
            _ => false,
        }
    }

    /// Parses a whole translation unit.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] on the first syntax error.
    pub fn translation_unit(&mut self) -> Result<TranslationUnit, ParseError> {
        let mut tu = TranslationUnit::new();
        let mut pending_pragmas: Vec<Pragma> = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::Eof => break,
                TokenKind::Include(s) => {
                    self.flush_pragmas(&mut tu, &mut pending_pragmas);
                    self.bump();
                    tu.items.push(Item::Include(s));
                }
                TokenKind::Define(s) => {
                    self.flush_pragmas(&mut tu, &mut pending_pragmas);
                    self.bump();
                    tu.items.push(Item::Define(s));
                }
                TokenKind::Pragma(s) => {
                    self.bump();
                    pending_pragmas.push(Pragma::parse(&s));
                }
                _ => {
                    let item = self.item()?;
                    match item {
                        Item::Function(mut f) => {
                            f.pragmas = std::mem::take(&mut pending_pragmas);
                            tu.items.push(Item::Function(f));
                        }
                        other => {
                            self.flush_pragmas(&mut tu, &mut pending_pragmas);
                            tu.items.push(other);
                        }
                    }
                }
            }
        }
        self.flush_pragmas(&mut tu, &mut pending_pragmas);
        Ok(tu)
    }

    fn flush_pragmas(&self, tu: &mut TranslationUnit, pending: &mut Vec<Pragma>) {
        for p in pending.drain(..) {
            tu.items.push(Item::Pragma(p));
        }
    }

    /// Parses a function or global declaration.
    fn item(&mut self) -> Result<Item, ParseError> {
        let is_static = self.eat_kw("static");
        let is_const = self.eat_kw("const");
        let base = self.base_type()?;
        // Look ahead: pointer stars then a name.
        let save = self.i;
        let (ty_first, name_first) = self.declarator(base.clone())?;
        if self.peek().is_punct("(") {
            // Function definition or prototype.
            let mut f = Function {
                ret: ty_first,
                name: name_first,
                params: self.param_list()?,
                body: None,
                is_static,
                pragmas: Vec::new(),
            };
            if self.eat_punct(";") {
                return Ok(Item::Function(f));
            }
            f.body = Some(self.block()?);
            return Ok(Item::Function(f));
        }
        // Global declaration: rewind and reparse as declarator list.
        self.i = save;
        let decls = self.decl_list(base, is_static, is_const)?;
        self.expect_punct(";")?;
        Ok(Item::Global(decls))
    }

    /// Parses the base type (no declarator parts).
    fn base_type(&mut self) -> Result<Type, ParseError> {
        let name = self.expect_ident()?;
        let ty = match name.as_str() {
            "void" => Type::Void,
            "char" => Type::Char,
            "int" => Type::Int,
            "float" => Type::Float,
            "double" => Type::Double,
            "long" => {
                // Accept `long`, `long int`, `long long [int]` (all map to Long).
                self.eat_kw("long");
                self.eat_kw("int");
                Type::Long
            }
            "unsigned" => {
                // `unsigned`, `unsigned int`, `unsigned long [int]`.
                self.eat_kw("long");
                self.eat_kw("int");
                Type::UInt
            }
            other if self.type_names.contains(other) => Type::Named(other.to_string()),
            other => {
                return Err(self.err(format!("expected type, found identifier `{other}`")));
            }
        };
        Ok(ty)
    }

    /// Parses `('*')* name ('[' expr ']')*`, combining with the base type.
    fn declarator(&mut self, base: Type) -> Result<(Type, String), ParseError> {
        let mut ty = base;
        while self.eat_punct("*") {
            ty = ty.ptr();
        }
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            let dim = self.expr_assign()?;
            self.expect_punct("]")?;
            dims.push(dim);
        }
        if !dims.is_empty() {
            ty = ty.array(dims);
        }
        Ok((ty, name))
    }

    fn decl_list(
        &mut self,
        base: Type,
        is_static: bool,
        is_const: bool,
    ) -> Result<Vec<Decl>, ParseError> {
        let mut decls = Vec::new();
        loop {
            let (ty, name) = self.declarator(base.clone())?;
            let init = if self.eat_punct("=") {
                Some(self.initializer()?)
            } else {
                None
            };
            decls.push(Decl {
                ty,
                name,
                init,
                is_static,
                is_const,
            });
            if !self.eat_punct(",") {
                break;
            }
        }
        Ok(decls)
    }

    fn initializer(&mut self) -> Result<Init, ParseError> {
        if self.eat_punct("{") {
            let mut items = Vec::new();
            if !self.peek().is_punct("}") {
                loop {
                    items.push(self.initializer()?);
                    if !self.eat_punct(",") {
                        break;
                    }
                    // Allow trailing comma.
                    if self.peek().is_punct("}") {
                        break;
                    }
                }
            }
            self.expect_punct("}")?;
            Ok(Init::List(items))
        } else {
            Ok(Init::Expr(self.expr_assign()?))
        }
    }

    fn param_list(&mut self) -> Result<Vec<Param>, ParseError> {
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if self.eat_punct(")") {
            return Ok(params);
        }
        // `(void)` means "no parameters".
        if self.peek().is_ident("void") && self.peek_at(1).is_punct(")") {
            self.bump();
            self.bump();
            return Ok(params);
        }
        loop {
            self.eat_kw("const");
            let base = self.base_type()?;
            self.eat_kw("restrict");
            let (ty, name) = self.declarator(base)?;
            params.push(Param::new(ty, name));
            if !self.eat_punct(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(params)
    }

    /// Parses a brace-enclosed block.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseError`] if the block is malformed.
    pub fn block(&mut self) -> Result<Block, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.peek().is_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        Ok(Block::new(stmts))
    }

    /// Parses a single statement; non-block bodies of `if`/`for`/`while`
    /// are normalised into single-statement blocks.
    pub fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if let TokenKind::Pragma(s) = self.peek().clone() {
            self.bump();
            return Ok(Stmt::Pragma(Pragma::parse(&s)));
        }
        if self.peek().is_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_punct(";") {
            return Ok(Stmt::Empty);
        }
        if self.peek().is_ident("if") {
            return self.if_stmt();
        }
        if self.peek().is_ident("while") {
            self.bump();
            self.expect_punct("(")?;
            let cond = self.expr_comma()?;
            self.expect_punct(")")?;
            let body = self.stmt_as_block()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.peek().is_ident("do") {
            self.bump();
            let body = self.stmt_as_block()?;
            if !self.eat_kw("while") {
                return Err(self.err("expected `while` after do-body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr_comma()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.peek().is_ident("for") {
            return self.for_stmt();
        }
        if self.peek().is_ident("return") {
            self.bump();
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr_comma()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }
        if self.peek().is_ident("break") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Break);
        }
        if self.peek().is_ident("continue") {
            self.bump();
            self.expect_punct(";")?;
            return Ok(Stmt::Continue);
        }
        if self.at_type() {
            let is_static = self.eat_kw("static");
            let is_const = self.eat_kw("const");
            let base = self.base_type()?;
            let decls = self.decl_list(base, is_static, is_const)?;
            self.expect_punct(";")?;
            return Ok(Stmt::Decl(decls));
        }
        let e = self.expr_comma()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    fn stmt_as_block(&mut self) -> Result<Block, ParseError> {
        if self.peek().is_punct("{") {
            self.block()
        } else {
            Ok(Block::new(vec![self.stmt()?]))
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // `if`
        self.expect_punct("(")?;
        let cond = self.expr_comma()?;
        self.expect_punct(")")?;
        let then_branch = self.stmt_as_block()?;
        let else_branch = if self.eat_kw("else") {
            if self.peek().is_ident("if") {
                // else-if chain: wrap the nested if in a block.
                Some(Block::new(vec![self.if_stmt()?]))
            } else {
                Some(self.stmt_as_block()?)
            }
        } else {
            None
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.bump(); // `for`
        self.expect_punct("(")?;
        let init = if self.eat_punct(";") {
            None
        } else if self.at_type() {
            let is_static = self.eat_kw("static");
            let is_const = self.eat_kw("const");
            let base = self.base_type()?;
            let decls = self.decl_list(base, is_static, is_const)?;
            self.expect_punct(";")?;
            Some(ForInit::Decl(decls))
        } else {
            let e = self.expr_comma()?;
            self.expect_punct(";")?;
            Some(ForInit::Expr(e))
        };
        let cond = if self.peek().is_punct(";") {
            None
        } else {
            Some(self.expr_comma()?)
        };
        self.expect_punct(";")?;
        let step = if self.peek().is_punct(")") {
            None
        } else {
            Some(self.expr_comma()?)
        };
        self.expect_punct(")")?;
        let body = self.stmt_as_block()?;
        Ok(Stmt::For {
            init,
            cond,
            step,
            body,
        })
    }

    // ----- expressions ------------------------------------------------

    /// Comma expression (lowest precedence).
    fn expr_comma(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_assign()?;
        while self.eat_punct(",") {
            let rhs = self.expr_assign()?;
            e = Expr::Comma(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    /// Assignment expression (right-associative).
    fn expr_assign(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.expr_ternary()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => Some(AssignOp::Assign),
            TokenKind::Punct("+=") => Some(AssignOp::Add),
            TokenKind::Punct("-=") => Some(AssignOp::Sub),
            TokenKind::Punct("*=") => Some(AssignOp::Mul),
            TokenKind::Punct("/=") => Some(AssignOp::Div),
            TokenKind::Punct("%=") => Some(AssignOp::Rem),
            TokenKind::Punct("&=") => Some(AssignOp::And),
            TokenKind::Punct("|=") => Some(AssignOp::Or),
            TokenKind::Punct("^=") => Some(AssignOp::Xor),
            TokenKind::Punct("<<=") => Some(AssignOp::Shl),
            TokenKind::Punct(">>=") => Some(AssignOp::Shr),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let rhs = self.expr_assign()?;
            Ok(Expr::Assign {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            })
        } else {
            Ok(lhs)
        }
    }

    fn expr_ternary(&mut self) -> Result<Expr, ParseError> {
        let cond = self.expr_binary(0)?;
        if self.eat_punct("?") {
            let then_expr = self.expr_comma()?;
            self.expect_punct(":")?;
            let else_expr = self.expr_assign()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_expr: Box::new(then_expr),
                else_expr: Box::new(else_expr),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_op(&self) -> Option<BinaryOp> {
        Some(match self.peek() {
            TokenKind::Punct("||") => BinaryOp::LogOr,
            TokenKind::Punct("&&") => BinaryOp::LogAnd,
            TokenKind::Punct("|") => BinaryOp::BitOr,
            TokenKind::Punct("^") => BinaryOp::BitXor,
            TokenKind::Punct("&") => BinaryOp::BitAnd,
            TokenKind::Punct("==") => BinaryOp::Eq,
            TokenKind::Punct("!=") => BinaryOp::Ne,
            TokenKind::Punct("<") => BinaryOp::Lt,
            TokenKind::Punct(">") => BinaryOp::Gt,
            TokenKind::Punct("<=") => BinaryOp::Le,
            TokenKind::Punct(">=") => BinaryOp::Ge,
            TokenKind::Punct("<<") => BinaryOp::Shl,
            TokenKind::Punct(">>") => BinaryOp::Shr,
            TokenKind::Punct("+") => BinaryOp::Add,
            TokenKind::Punct("-") => BinaryOp::Sub,
            TokenKind::Punct("*") => BinaryOp::Mul,
            TokenKind::Punct("/") => BinaryOp::Div,
            TokenKind::Punct("%") => BinaryOp::Rem,
            _ => return None,
        })
    }

    /// Precedence climbing.
    fn expr_binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        let mut lhs = self.expr_unary()?;
        while let Some(op) = self.binary_op() {
            let prec = op.precedence();
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.expr_binary(prec + 1)?;
            lhs = Expr::binary(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn expr_unary(&mut self) -> Result<Expr, ParseError> {
        let op = match self.peek() {
            TokenKind::Punct("-") => Some(UnaryOp::Neg),
            TokenKind::Punct("!") => Some(UnaryOp::Not),
            TokenKind::Punct("~") => Some(UnaryOp::BitNot),
            TokenKind::Punct("*") => Some(UnaryOp::Deref),
            TokenKind::Punct("&") => Some(UnaryOp::AddrOf),
            TokenKind::Punct("++") => Some(UnaryOp::PreInc),
            TokenKind::Punct("--") => Some(UnaryOp::PreDec),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let expr = self.expr_unary()?;
            return Ok(Expr::Unary {
                op,
                expr: Box::new(expr),
            });
        }
        // Cast: `(` type `)` unary — only when the parenthesised token is a
        // type name.
        if self.peek().is_punct("(") && self.at_type_at(1) {
            self.bump(); // (
            self.eat_kw("const");
            let base = self.base_type()?;
            let mut ty = base;
            while self.eat_punct("*") {
                ty = ty.ptr();
            }
            self.expect_punct(")")?;
            let expr = self.expr_unary()?;
            return Ok(Expr::Cast {
                ty,
                expr: Box::new(expr),
            });
        }
        self.expr_postfix()
    }

    fn expr_postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.expr_primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr_comma()?;
                self.expect_punct("]")?;
                e = Expr::index(e, idx);
            } else if self.peek().is_punct("++") {
                self.bump();
                e = Expr::Postfix {
                    op: PostfixOp::Inc,
                    expr: Box::new(e),
                };
            } else if self.peek().is_punct("--") {
                self.bump();
                e = Expr::Postfix {
                    op: PostfixOp::Dec,
                    expr: Box::new(e),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn expr_primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            TokenKind::IntLit(s) => {
                self.bump();
                let cleaned: String = s.trim_end_matches(['u', 'U', 'l', 'L']).to_string();
                let v = if let Some(hex) = cleaned
                    .strip_prefix("0x")
                    .or_else(|| cleaned.strip_prefix("0X"))
                {
                    i64::from_str_radix(hex, 16)
                } else {
                    cleaned.parse()
                };
                match v {
                    Ok(v) => Ok(Expr::IntLit(v)),
                    Err(_) => Err(self.err(format!("invalid integer literal `{s}`"))),
                }
            }
            TokenKind::FloatLit(s) => {
                self.bump();
                let cleaned = s.trim_end_matches(['f', 'F', 'l', 'L']);
                match cleaned.parse::<f64>() {
                    Ok(v) => Ok(Expr::FloatLit(v)),
                    Err(_) => Err(self.err(format!("invalid float literal `{s}`"))),
                }
            }
            TokenKind::StrLit(s) => {
                self.bump();
                Ok(Expr::StrLit(s))
            }
            TokenKind::CharLit(s) => {
                self.bump();
                Ok(Expr::CharLit(s))
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.peek().is_punct("(") {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.peek().is_punct(")") {
                        loop {
                            args.push(self.expr_assign()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::Call { callee: name, args })
                } else {
                    Ok(Expr::Ident(name))
                }
            }
            TokenKind::Punct("(") => {
                self.bump();
                let e = self.expr_comma()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap()
    }

    #[test]
    fn parses_precedence_correctly() {
        // a + b * c  ==>  a + (b * c)
        let e = expr("a + b * c");
        match e {
            Expr::Binary {
                op: BinaryOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(
                    *rhs,
                    Expr::Binary {
                        op: BinaryOp::Mul,
                        ..
                    }
                ));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn left_associativity_of_sub() {
        // a - b - c  ==>  (a - b) - c
        let e = expr("a - b - c");
        match e {
            Expr::Binary {
                op: BinaryOp::Sub,
                lhs,
                ..
            } => {
                assert!(matches!(
                    *lhs,
                    Expr::Binary {
                        op: BinaryOp::Sub,
                        ..
                    }
                ));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn assignment_is_right_associative() {
        let e = expr("a = b = 1");
        match e {
            Expr::Assign { rhs, .. } => assert!(matches!(*rhs, Expr::Assign { .. })),
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_array_indexing_chain() {
        let e = expr("A[i][j]");
        assert!(matches!(e, Expr::Index { .. }));
    }

    #[test]
    fn parses_call_with_args() {
        let e = expr("f(1, x + 2)");
        match e {
            Expr::Call { callee, args } => {
                assert_eq!(callee, "f");
                assert_eq!(args.len(), 2);
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn parses_ternary() {
        let e = expr("a > b ? a : b");
        assert!(matches!(e, Expr::Ternary { .. }));
    }

    #[test]
    fn parses_global_and_function() {
        let tu = parse(
            "static double A[10][20];\n\
             int add(int a, int b) { return a + b; }",
        )
        .unwrap();
        assert_eq!(tu.items.len(), 2);
        assert!(matches!(&tu.items[0], Item::Global(d) if d[0].is_static));
        assert!(tu.function("add").is_some());
    }

    #[test]
    fn parses_prototype() {
        let tu = parse("void kernel(int n);").unwrap();
        match &tu.items[0] {
            Item::Function(f) => assert!(f.body.is_none()),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_for_loop_with_decl_init() {
        let tu = parse("void f() { for (int i = 0; i < 10; i++) { } }").unwrap();
        let f = tu.function("f").unwrap();
        let body = f.body.as_ref().unwrap();
        assert!(matches!(
            body.stmts[0],
            Stmt::For {
                init: Some(ForInit::Decl(_)),
                ..
            }
        ));
    }

    #[test]
    fn normalises_single_statement_bodies_to_blocks() {
        let tu = parse("void f(int n) { if (n) n = 0; else n = 1; }").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                assert_eq!(then_branch.stmts.len(), 1);
                assert_eq!(else_branch.as_ref().unwrap().stmts.len(), 1);
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn else_if_chains_nest() {
        let tu = parse("void f(int n) { if (n == 1) n = 0; else if (n == 2) n = 1; }").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::If { else_branch, .. } => {
                let eb = else_branch.as_ref().unwrap();
                assert!(matches!(eb.stmts[0], Stmt::If { .. }));
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn attaches_preceding_pragmas_to_function() {
        let tu = parse(
            "#pragma GCC optimize(\"O2\")\n\
             void k() { }",
        )
        .unwrap();
        let f = tu.function("k").unwrap();
        assert_eq!(f.pragmas.len(), 1);
        assert!(f.pragmas[0].as_gcc_optimize().is_some());
    }

    #[test]
    fn statement_pragma_inside_body() {
        let tu = parse(
            "void k(int n) {\n\
             #pragma omp parallel for num_threads(4)\n\
             for (int i = 0; i < n; i++) { }\n\
             }",
        )
        .unwrap();
        let f = tu.function("k").unwrap();
        let body = f.body.as_ref().unwrap();
        assert!(matches!(body.stmts[0], Stmt::Pragma(_)));
        assert!(matches!(body.stmts[1], Stmt::For { .. }));
    }

    #[test]
    fn parses_param_arrays_and_pointers() {
        let tu = parse("void k(double A[10][20], char **argv, int n) { }").unwrap();
        let f = tu.function("k").unwrap();
        assert!(matches!(f.params[0].ty, Type::Array(_, ref d) if d.len() == 2));
        assert_eq!(f.params[1].ty, Type::Char.ptr().ptr());
        assert_eq!(f.params[2].ty, Type::Int);
    }

    #[test]
    fn parses_cast_expression() {
        let e = expr("(double) x / (double) y");
        assert!(matches!(
            e,
            Expr::Binary {
                op: BinaryOp::Div,
                ..
            }
        ));
    }

    #[test]
    fn parses_initializer_list() {
        let tu = parse("int a[3] = {1, 2, 3};").unwrap();
        match &tu.items[0] {
            Item::Global(d) => {
                assert!(matches!(d[0].init, Some(Init::List(ref v)) if v.len() == 3))
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn parses_multi_declarator_statement() {
        let tu = parse("void f() { int i, j = 2, k; }").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.len(), 3);
                assert!(d[1].init.is_some());
            }
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn parses_do_while_and_break_continue() {
        let tu = parse("void f(int n) { do { if (n) break; continue; } while (n > 0); }").unwrap();
        let f = tu.function("f").unwrap();
        assert!(matches!(
            f.body.as_ref().unwrap().stmts[0],
            Stmt::DoWhile { .. }
        ));
    }

    #[test]
    fn error_mentions_position() {
        let err = parse("void f( { }").unwrap_err();
        assert!(err.pos.line >= 1);
        assert!(!err.message.is_empty());
    }

    #[test]
    fn unsigned_long_collapses() {
        let tu = parse("unsigned long x; long int y;").unwrap();
        assert_eq!(tu.items.len(), 2);
    }

    #[test]
    fn void_param_list_is_empty() {
        let tu = parse("int main(void) { return 0; }").unwrap();
        assert!(tu.function("main").unwrap().params.is_empty());
    }

    #[test]
    fn comma_expression_in_for_step() {
        let tu = parse("void f() { for (int i = 0, j = 9; i < j; i++, j--) { } }").unwrap();
        let f = tu.function("f").unwrap();
        match &f.body.as_ref().unwrap().stmts[0] {
            Stmt::For { step, .. } => assert!(matches!(step, Some(Expr::Comma(_, _)))),
            other => panic!("unexpected stmt {other:?}"),
        }
    }

    #[test]
    fn named_types_require_registration() {
        assert!(parse("DATA_TYPE x;").is_err());
        let mut p = Parser::new("DATA_TYPE x;").unwrap();
        p.add_type_name("DATA_TYPE");
        let tu = p.translation_unit().unwrap();
        assert!(
            matches!(&tu.items[0], Item::Global(d) if d[0].ty == Type::Named("DATA_TYPE".into()))
        );
    }
}
