//! Deterministic random mini-C program generator for differential
//! engine testing.
//!
//! [`generate`] maps a seed to a small, always-terminating kernel
//! program in the executable dialect both SOCRATES execution engines
//! support: global arrays with literal dimensions, an `init_array`
//! filler, and a `kernel` entry built from bounded loop nests, branches,
//! compound assignments, casts, `sqrt`, ternaries and short-circuit
//! logic. Every array subscript is constructed in-bounds by design
//! (loop variables run exactly over the array extents), every loop has a
//! structurally decreasing bound, and division only ever uses non-zero
//! literal divisors — so any generated program must run to completion,
//! and an engine disagreement is a real semantics bug, never a flaky
//! input.
//!
//! Generated programs may reference named specialization parameters
//! (listed in [`GeneratedProgram::params`]) in value positions and in an
//! optional `num_threads` pragma; the caller binds them to arbitrary
//! integers, which is how the proptest suite exercises arbitrary pragma
//! configurations.
//!
//! [`generate_adversarial`] keeps the same skeleton but deliberately
//! injects the trap fault classes (out-of-bounds accesses, reads of
//! uninitialized cells, zero divisors) — fuel for the differential
//! static-analyzer / checked-VM soundness suite.

/// A generated program plus the contract the caller must satisfy.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The program text (parseable with [`crate::parse`]).
    pub source: String,
    /// Names of specialization parameters the program references; each
    /// must be bound to an integer in the execution configuration.
    pub params: Vec<String>,
    /// The entry function name (always parameterless).
    pub entry: String,
    /// Fault classes armed by [`generate_adversarial`] (always empty
    /// for [`generate`], whose programs are fault-free by design).
    pub faults: Vec<ArmedFault>,
}

/// The run-time fault classes the checked VM traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// An array subscript exceeding the declared extent.
    OutOfBounds,
    /// A read of a never-initialized array cell.
    UninitRead,
    /// A division or remainder by zero.
    DivByZero,
}

/// One fault armed in an adversarial program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArmedFault {
    /// Which checked-VM trap class the fault belongs to.
    pub class: FaultClass,
    /// `true` when the faulting statement is unconditionally reached
    /// (the program *must* trap in checked mode); `false` when it is
    /// gated on a specialization parameter, so the caller's binding
    /// decides.
    pub definite: bool,
}

/// SplitMix64 — a tiny, high-quality, dependency-free PRNG.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// True with probability `pct`/100.
    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

struct Gen {
    rng: Rng,
    /// The single literal array extent shared by every axis.
    d: u64,
    params: Vec<String>,
    /// Loop variables currently in scope (all iterate `0..d`).
    ivs: Vec<String>,
}

impl Gen {
    /// A parameter name, registering it on first use.
    fn param(&mut self) -> String {
        if self.params.is_empty() || (self.params.len() < 3 && self.rng.chance(40)) {
            let name = format!("P{}", self.params.len());
            self.params.push(name.clone());
            name
        } else {
            self.params[self.rng.below(self.params.len() as u64) as usize].clone()
        }
    }

    /// An always-in-bounds index expression over a loop variable.
    fn index(&mut self) -> String {
        let iv = self.ivs[self.rng.below(self.ivs.len() as u64) as usize].clone();
        match self.rng.below(4) {
            0 | 1 => iv,
            2 => format!("{} - 1 - {iv}", self.d),
            _ => format!("({iv} + {}) % {}", 1 + self.rng.below(self.d), self.d),
        }
    }

    /// An integer-valued expression (loop vars, params, literals,
    /// wrapping arithmetic, int array reads).
    fn int_expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.chance(35) {
            return match self.rng.below(4) {
                0 => format!("{}", self.rng.below(9)),
                1 => self.ivs[self.rng.below(self.ivs.len() as u64) as usize].clone(),
                2 => self.param(),
                _ => format!("t[{}]", self.index()),
            };
        }
        let a = self.int_expr(depth - 1);
        let b = self.int_expr(depth - 1);
        match self.rng.below(7) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / {})", 2 + self.rng.below(4)),
            4 => format!("({a} % {})", 3 + self.rng.below(5)),
            5 => format!("({a} << {})", self.rng.below(3)),
            _ => format!("({} ? {a} : {b})", self.cond(depth - 1)),
        }
    }

    /// A float-valued expression (element reads, promotions, sqrt,
    /// ternaries over mixed types).
    fn float_expr(&mut self, depth: u32) -> String {
        if depth == 0 || self.rng.chance(30) {
            return match self.rng.below(4) {
                0 => format!("{}.{}", self.rng.below(4), 25 * (1 + self.rng.below(3))),
                1 => format!("A[{}][{}]", self.index(), self.index()),
                2 => format!("v[{}]", self.index()),
                _ => format!("({} * 0.5)", self.int_expr(depth.saturating_sub(1))),
            };
        }
        let a = self.float_expr(depth - 1);
        let b = self.float_expr(depth - 1);
        match self.rng.below(7) {
            0 => format!("({a} + {b})"),
            1 => format!("({a} - {b})"),
            2 => format!("({a} * {b})"),
            3 => format!("({a} / 2.0)"),
            4 => format!("sqrt(({a} * {a}) + 1.0)"),
            5 => format!("({} ? {a} : {b})", self.cond(depth - 1)),
            _ => format!("(double)({})", self.int_expr(depth - 1)),
        }
    }

    /// A branch condition, including short-circuit combinations.
    fn cond(&mut self, depth: u32) -> String {
        let simple = match self.rng.below(4) {
            0 => {
                let iv = self.ivs[self.rng.below(self.ivs.len() as u64) as usize].clone();
                format!("({iv} % 2 == 0)")
            }
            1 => format!("(A[{}][{}] > 1.5)", self.index(), self.index()),
            2 => format!("({} > 2)", self.param()),
            _ => {
                let a = self.int_expr(1);
                format!("({a} < {})", 1 + self.rng.below(8))
            }
        };
        if depth > 0 && self.rng.chance(30) {
            let other = self.cond(0);
            if self.rng.chance(50) {
                format!("({simple} && {other})")
            } else {
                format!("({simple} || {other})")
            }
        } else {
            simple
        }
    }

    /// One statement writing into the global state.
    fn store_stmt(&mut self, indent: &str) -> String {
        match self.rng.below(6) {
            0 => format!(
                "{indent}A[{}][{}] = {};\n",
                self.index(),
                self.index(),
                self.float_expr(2)
            ),
            1 => {
                let op = ["+=", "-=", "*="][self.rng.below(3) as usize];
                format!(
                    "{indent}A[{}][{}] {op} {};\n",
                    self.index(),
                    self.index(),
                    self.float_expr(1)
                )
            }
            2 => format!("{indent}v[{}] = {};\n", self.index(), self.float_expr(2)),
            3 => format!("{indent}t[{}] = {};\n", self.index(), self.int_expr(2)),
            4 => {
                let op = ["+=", "^=", "&="][self.rng.below(3) as usize];
                format!("{indent}t[{}] {op} {};\n", self.index(), self.int_expr(1))
            }
            _ => format!("{indent}acc = acc + {};\n", self.float_expr(2)),
        }
    }

    /// A statement, possibly a conditional around stores.
    fn stmt(&mut self, indent: &str) -> String {
        if self.rng.chance(30) {
            let cond = self.cond(1);
            let mut s = format!("{indent}if ({cond}) {{\n");
            s.push_str(&self.store_stmt(&format!("{indent}  ")));
            s.push_str(&format!("{indent}}}"));
            if self.rng.chance(50) {
                s.push_str(" else {\n");
                s.push_str(&self.store_stmt(&format!("{indent}  ")));
                s.push_str(&format!("{indent}}}\n"));
            } else {
                s.push('\n');
            }
            s
        } else {
            self.store_stmt(indent)
        }
    }

    /// A 1- or 2-deep loop nest over the shared extent, optionally
    /// carrying a `num_threads` pragma bound to a parameter.
    fn loop_nest(&mut self, id: usize) -> String {
        let mut s = String::new();
        if self.rng.chance(30) {
            let p = self.param();
            s.push_str(&format!("#pragma omp parallel for num_threads({p})\n"));
        }
        let iv0 = format!("i{id}a");
        let d = self.d;
        s.push_str(&format!("  for (int {iv0} = 0; {iv0} < {d}; {iv0}++) {{\n"));
        self.ivs.push(iv0);
        if self.rng.chance(60) {
            let iv1 = format!("i{id}b");
            let header = if self.rng.chance(70) {
                format!("    for (int {iv1} = 0; {iv1} < {d}; {iv1}++) {{\n")
            } else {
                format!("    for (int {iv1} = {d} - 1; {iv1} >= 0; {iv1}--) {{\n")
            };
            s.push_str(&header);
            self.ivs.push(iv1);
            for _ in 0..=self.rng.below(2) {
                s.push_str(&self.stmt("      "));
            }
            self.ivs.pop();
            s.push_str("    }\n");
        } else {
            for _ in 0..=self.rng.below(2) {
                s.push_str(&self.stmt("    "));
            }
        }
        self.ivs.pop();
        s.push_str("  }\n");
        s
    }

    /// A while/do-while loop with a structurally decreasing counter.
    fn counter_loop(&mut self, id: usize) -> String {
        let k = format!("k{id}");
        let d = self.d;
        let mut s = String::new();
        self.ivs.push(k.clone());
        if self.rng.chance(50) {
            s.push_str(&format!("  int {k} = {d} - 1;\n"));
            s.push_str(&format!("  while ({k} > 0) {{\n"));
            s.push_str(&self.stmt("    "));
            s.push_str(&format!("    {k}--;\n  }}\n"));
        } else {
            s.push_str(&format!("  int {k} = 0;\n"));
            s.push_str("  do {\n");
            s.push_str(&self.stmt("    "));
            s.push_str(&format!("    {k}++;\n  }} while ({k} < {d});\n"));
        }
        self.ivs.pop();
        s
    }
}

/// Generates a deterministic random program from `seed`. Equal seeds
/// produce byte-identical sources.
pub fn generate(seed: u64) -> GeneratedProgram {
    let mut g = Gen {
        rng: Rng(seed),
        d: 0,
        params: Vec::new(),
        ivs: Vec::new(),
    };
    g.d = 3 + g.rng.below(5); // extents 3..=7
    let d = g.d;

    let mut src = String::new();
    src.push_str(&format!(
        "double A[{d}][{d}];\ndouble v[{d}];\nlong t[{d}];\ndouble acc;\n\n"
    ));
    src.push_str(&format!(
        "void init_array() {{\n  for (int i = 0; i < {d}; i++) {{\n    \
         v[i] = i * 0.75 + 1.0;\n    t[i] = (i * 5) % 9;\n    \
         for (int j = 0; j < {d}; j++)\n      \
         A[i][j] = ((i * 7 + j * 3) % 11) * 0.25 + 0.5;\n  }}\n}}\n\n"
    ));

    src.push_str("void kernel() {\n");
    let nests = 1 + g.rng.below(3);
    for id in 0..nests {
        src.push_str(&g.loop_nest(id as usize));
    }
    if g.rng.chance(40) {
        src.push_str(&g.counter_loop(99));
    }
    src.push_str(&format!("  acc += A[0][0] + v[{d} - 1];\n}}\n"));

    GeneratedProgram {
        source: src,
        params: g.params,
        entry: "kernel".to_string(),
        faults: Vec::new(),
    }
}

/// Generates a deterministic *adversarial* program from `seed`: the
/// same always-terminating skeleton as [`generate`], but seasoned with
/// the three fault classes the checked VM traps — out-of-bounds index
/// arithmetic, reads of never-initialized array cells, and zero
/// divisors. Each class is injected independently with moderate
/// probability (so a fraction of seeds stays clean), and within a class
/// the fault is either *definite* (always reached) or *conditional* on
/// a specialization parameter the caller binds — which is what makes
/// the differential analyzer/checked-VM suite non-vacuous in both
/// directions: programs that must trap, programs that must not, and
/// programs whose fate the parameter binding decides.
///
/// Termination is never compromised: faults are extra statements (and
/// an init gap), all loop bounds stay structurally decreasing.
pub fn generate_adversarial(seed: u64) -> GeneratedProgram {
    let mut g = Gen {
        rng: Rng(seed ^ 0xADD_12E55),
        d: 0,
        params: Vec::new(),
        ivs: Vec::new(),
    };
    g.d = 3 + g.rng.below(5); // extents 3..=7
    let d = g.d;

    let inject_uninit = g.rng.chance(45);
    let inject_oob = g.rng.chance(45);
    let inject_div = g.rng.chance(45);
    let mut faults = Vec::new();
    if inject_uninit {
        faults.push(ArmedFault {
            class: FaultClass::UninitRead,
            definite: true,
        });
    }

    let mut src = String::new();
    src.push_str(&format!(
        "double A[{d}][{d}];\ndouble v[{d}];\nlong t[{d}];\ndouble u[{d}];\nlong z;\ndouble acc;\n\n"
    ));
    // The init gap: skip the first or last cell of `u` when the uninit
    // fault is armed, fill it completely otherwise.
    let (u_from, u_to, gap_cell) = if inject_uninit {
        if g.rng.chance(50) {
            (1, d, 0)
        } else {
            (0, d - 1, d - 1)
        }
    } else {
        (0, d, 0)
    };
    src.push_str(&format!(
        "void init_array() {{\n  z = 0;\n  for (int i = 0; i < {d}; i++) {{\n    \
         v[i] = i * 0.75 + 1.0;\n    t[i] = (i * 5) % 9 + 1;\n    \
         for (int j = 0; j < {d}; j++)\n      \
         A[i][j] = ((i * 7 + j * 3) % 11) * 0.25 + 0.5;\n  }}\n  \
         for (int i = {u_from}; i < {u_to}; i++) {{\n    u[i] = i * 0.5;\n  }}\n}}\n\n"
    ));

    src.push_str("void kernel() {\n");
    let nests = 1 + g.rng.below(2);
    for id in 0..nests {
        src.push_str(&g.loop_nest(id as usize));
    }
    if inject_oob {
        let variant = g.rng.below(3);
        match variant {
            // Definite direct overshoot.
            0 => src.push_str(&format!("  t[{}] = 7;\n", d + g.rng.below(3))),
            // Loop whose last iteration walks off the end.
            1 => src.push_str(&format!(
                "  for (int fi = 0; fi < {d}; fi++) {{\n    acc = acc + v[fi + 1];\n  }}\n"
            )),
            // Conditional on a caller-bound parameter.
            _ => {
                let p = g.param();
                src.push_str(&format!(
                    "  if ({p} > 5) {{\n    acc = acc + A[{d}][0];\n  }}\n"
                ));
            }
        }
        faults.push(ArmedFault {
            class: FaultClass::OutOfBounds,
            definite: variant < 2,
        });
    }
    if inject_div {
        let variant = g.rng.below(3);
        match variant {
            // Definite: `z` is zeroed by init_array.
            0 => src.push_str("  t[0] = (t[0] + 3) / z;\n"),
            // Definite, through the remainder operator.
            1 => src.push_str("  t[1] = 9 % (z * 2);\n"),
            // Conditional on a caller-bound parameter.
            _ => {
                let p = g.param();
                src.push_str(&format!("  if ({p} < 0) {{\n    t[0] = 5 / z;\n  }}\n"));
            }
        }
        faults.push(ArmedFault {
            class: FaultClass::DivByZero,
            definite: variant < 2,
        });
    }
    // The `u` read: the gap cell when the uninit fault is armed (a
    // checked-mode-only trap — the unchecked VM reads a zero), a
    // well-initialized cell otherwise.
    src.push_str(&format!("  acc += u[{gap_cell}];\n"));
    src.push_str(&format!("  acc += A[0][0] + v[{d} - 1];\n}}\n"));

    GeneratedProgram {
        source: src,
        params: g.params,
        entry: "kernel".to_string(),
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_parse() {
        for seed in 0..64 {
            let p = generate(seed);
            crate::parse(&p.source)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{}", p.source));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42);
        let b = generate(42);
        assert_eq!(a.source, b.source);
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn seeds_vary_the_program() {
        assert_ne!(generate(1).source, generate(2).source);
    }

    #[test]
    fn adversarial_programs_parse() {
        for seed in 0..64 {
            let p = generate_adversarial(seed);
            crate::parse(&p.source)
                .unwrap_or_else(|e| panic!("seed {seed}: parse failed: {e}\n{}", p.source));
        }
    }

    #[test]
    fn adversarial_generation_is_deterministic_and_distinct() {
        let a = generate_adversarial(42);
        let b = generate_adversarial(42);
        assert_eq!(a.source, b.source);
        assert_eq!(a.params, b.params);
        assert_ne!(a.source, generate(42).source);
    }

    #[test]
    fn adversarial_seeds_cover_every_fault_class_and_clean_programs() {
        let programs: Vec<GeneratedProgram> = (0..64).map(generate_adversarial).collect();
        for class in [
            FaultClass::OutOfBounds,
            FaultClass::UninitRead,
            FaultClass::DivByZero,
        ] {
            for definite in [true, false] {
                // Uninit reads are always definite by construction.
                if class == FaultClass::UninitRead && !definite {
                    continue;
                }
                assert!(
                    programs.iter().any(|p| p
                        .faults
                        .iter()
                        .any(|f| f.class == class && f.definite == definite)),
                    "no seed in 0..64 arms {class:?} (definite = {definite})"
                );
            }
        }
        let clean = programs.iter().filter(|p| p.faults.is_empty()).count();
        let definite = programs
            .iter()
            .filter(|p| p.faults.iter().any(|f| f.definite))
            .count();
        assert!(clean >= 4, "expected some clean programs, got {clean}");
        assert!(
            definite >= 24,
            "expected many definitely-trapping programs, got {definite}"
        );
    }
}
