//! Logical lines-of-code metrics, as used by the paper's Table I.
//!
//! The paper reports "logical lines of code" for the original and weaved
//! benchmarks. We count one logical line per: top-level directive
//! (`#include`, `#define`, pragma), global declaration statement, function
//! signature, and per statement inside bodies (loop/if headers count one,
//! braces count zero) — a conventional logical-LOC definition that is
//! stable under reformatting.

use crate::ast::*;
use crate::pragma::Pragma;
use crate::visit::{walk_stmt, walk_tu, Visitor};

/// Counts the logical lines of code of a translation unit.
///
/// # Examples
///
/// ```
/// let tu = minic::parse("int main() { int x = 0; return x; }").unwrap();
/// assert_eq!(minic::logical_loc(&tu), 3); // signature + decl + return
/// ```
pub fn logical_loc(tu: &TranslationUnit) -> usize {
    let mut c = LocCounter::default();
    walk_tu(&mut c, tu);
    c.count
}

/// Counts the logical lines of code of a single function definition
/// (signature + body statements + attached pragmas).
pub fn function_loc(f: &Function) -> usize {
    let mut c = LocCounter::default();
    c.visit_function(f);
    c.count
}

/// The 1-based *logical line* at which `name`'s definition starts: one
/// plus the logical LOC of everything declared before it. The parser
/// does not preserve physical positions, so this is the stable,
/// reformat-insensitive location analyzers attach to diagnostics.
pub fn function_logical_line(tu: &TranslationUnit, name: &str) -> Option<usize> {
    let mut acc = 0usize;
    for item in &tu.items {
        if let Item::Function(f) = item {
            if f.name == name && f.body.is_some() {
                return Some(acc + 1);
            }
        }
        let mut c = LocCounter::default();
        c.visit_item(item);
        acc += c.count;
    }
    None
}

#[derive(Default)]
struct LocCounter {
    count: usize,
}

impl Visitor for LocCounter {
    fn visit_item(&mut self, item: &Item) {
        match item {
            Item::Include(_) | Item::Define(_) => self.count += 1,
            Item::Pragma(_) => self.count += 1,
            Item::Global(_) => self.count += 1,
            Item::Function(f) => self.visit_function(f),
        }
    }

    fn visit_function(&mut self, f: &Function) {
        self.count += 1; // signature
        self.count += f.pragmas.len();
        if let Some(body) = &f.body {
            for s in &body.stmts {
                self.visit_stmt(s);
            }
        }
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        match s {
            // Braces/nested blocks are free; everything else costs a line.
            Stmt::Block(_) => {}
            Stmt::Empty => {}
            _ => self.count += 1,
        }
        // Recurse into compound statements but not into expressions:
        // a statement is one logical line no matter how big its expression.
        match s {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for st in &then_branch.stmts {
                    self.visit_stmt(st);
                }
                if let Some(eb) = else_branch {
                    for st in &eb.stmts {
                        self.visit_stmt(st);
                    }
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                for st in &body.stmts {
                    self.visit_stmt(st);
                }
            }
            Stmt::Block(b) => {
                for st in &b.stmts {
                    self.visit_stmt(st);
                }
            }
            _ => {
                // Leaf statements: nothing further. Deliberately do NOT call
                // walk_stmt, which would descend into expressions.
                let _ = walk_stmt::<Self>;
            }
        }
    }

    fn visit_pragma(&mut self, _p: &Pragma) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn counts_directives_and_globals() {
        let tu = parse(
            "#include <stdio.h>\n\
             #define N 10\n\
             static int a[10];\n",
        )
        .unwrap();
        assert_eq!(logical_loc(&tu), 3);
    }

    #[test]
    fn loop_header_counts_once() {
        let tu = parse("void f(int n) { for (int i = 0; i < n; i++) { n += i; } }").unwrap();
        // signature + for + body stmt
        assert_eq!(logical_loc(&tu), 3);
    }

    #[test]
    fn nested_blocks_are_free() {
        let tu = parse("void f() { { { int x = 0; } } }").unwrap();
        assert_eq!(logical_loc(&tu), 2); // signature + decl
    }

    #[test]
    fn pragmas_count_as_lines() {
        let tu = parse(
            "#pragma GCC optimize(\"O2\")\n\
             void k(int n) {\n\
             #pragma omp parallel for\n\
             for (int i = 0; i < n; i++) { }\n\
             }",
        )
        .unwrap();
        // GCC pragma + signature + omp pragma + for
        assert_eq!(logical_loc(&tu), 4);
    }

    #[test]
    fn multi_declarator_counts_one_line() {
        let tu = parse("void f() { int i, j, k; }").unwrap();
        assert_eq!(logical_loc(&tu), 2);
    }

    #[test]
    fn big_expression_is_still_one_line() {
        let tu = parse("void f(int a) { a = a * a + a * a - a / (a + 1) * f(a); }").unwrap();
        assert_eq!(logical_loc(&tu), 2);
    }

    #[test]
    fn function_loc_matches_manual_count() {
        let tu = parse(
            "void g() { }\n\
             void f(int n) {\n\
               int acc = 0;\n\
               if (n > 0) { acc += n; } else { acc -= n; }\n\
               return;\n\
             }",
        )
        .unwrap();
        let f = tu.function("f").unwrap();
        // signature + decl + if + then-stmt + else-stmt + return
        assert_eq!(function_loc(f), 6);
        assert_eq!(logical_loc(&tu), 6 + 1);
    }

    #[test]
    fn loc_is_stable_under_reprinting() {
        let src = "void f(int n) { for (int i = 0; i < n; i++) if (i % 2) n--; }";
        let tu = parse(src).unwrap();
        let printed = crate::printer::print(&tu);
        let tu2 = parse(&printed).unwrap();
        assert_eq!(logical_loc(&tu), logical_loc(&tu2));
    }
}
