//! AST visitors.
//!
//! [`Visitor`] walks an AST immutably (used by Milepost feature extraction
//! and the LARA attribute queries); [`map_exprs_in_stmt`] rewrites it mutably (used by
//! weaving actions such as call replacement).

use crate::ast::*;
use crate::pragma::Pragma;

/// Immutable AST visitor with default deep-walk behaviour.
///
/// Override the hooks you care about; call the `walk_*` free functions to
/// recurse into children (the default implementations do this already).
pub trait Visitor {
    /// Visits a top-level item.
    fn visit_item(&mut self, item: &Item) {
        walk_item(self, item);
    }
    /// Visits a function definition or prototype.
    fn visit_function(&mut self, f: &Function) {
        walk_function(self, f);
    }
    /// Visits a statement.
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Visits an expression.
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    /// Visits a declaration.
    fn visit_decl(&mut self, d: &Decl) {
        walk_decl(self, d);
    }
    /// Visits a pragma.
    fn visit_pragma(&mut self, _p: &Pragma) {}
}

/// Walks a whole translation unit.
pub fn walk_tu<V: Visitor + ?Sized>(v: &mut V, tu: &TranslationUnit) {
    for item in &tu.items {
        v.visit_item(item);
    }
}

/// Default traversal of an item.
pub fn walk_item<V: Visitor + ?Sized>(v: &mut V, item: &Item) {
    match item {
        Item::Function(f) => v.visit_function(f),
        Item::Global(decls) => {
            for d in decls {
                v.visit_decl(d);
            }
        }
        Item::Pragma(p) => v.visit_pragma(p),
        Item::Include(_) | Item::Define(_) => {}
    }
}

/// Default traversal of a function.
pub fn walk_function<V: Visitor + ?Sized>(v: &mut V, f: &Function) {
    for p in &f.pragmas {
        v.visit_pragma(p);
    }
    if let Some(body) = &f.body {
        for s in &body.stmts {
            v.visit_stmt(s);
        }
    }
}

/// Default traversal of a statement.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match s {
        Stmt::Decl(decls) => {
            for d in decls {
                v.visit_decl(d);
            }
        }
        Stmt::Expr(e) => v.visit_expr(e),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr(cond);
            for s in &then_branch.stmts {
                v.visit_stmt(s);
            }
            if let Some(eb) = else_branch {
                for s in &eb.stmts {
                    v.visit_stmt(s);
                }
            }
        }
        Stmt::While { cond, body } => {
            v.visit_expr(cond);
            for s in &body.stmts {
                v.visit_stmt(s);
            }
        }
        Stmt::DoWhile { body, cond } => {
            for s in &body.stmts {
                v.visit_stmt(s);
            }
            v.visit_expr(cond);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            match init {
                Some(ForInit::Decl(decls)) => {
                    for d in decls {
                        v.visit_decl(d);
                    }
                }
                Some(ForInit::Expr(e)) => v.visit_expr(e),
                None => {}
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_expr(st);
            }
            for s in &body.stmts {
                v.visit_stmt(s);
            }
        }
        Stmt::Return(Some(e)) => v.visit_expr(e),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Empty => {}
        Stmt::Pragma(p) => v.visit_pragma(p),
        Stmt::Block(b) => {
            for s in &b.stmts {
                v.visit_stmt(s);
            }
        }
    }
}

/// Default traversal of a declaration (visits initializer expressions).
pub fn walk_decl<V: Visitor + ?Sized>(v: &mut V, d: &Decl) {
    if let Type::Array(_, dims) = &d.ty {
        for e in dims {
            v.visit_expr(e);
        }
    }
    if let Some(init) = &d.init {
        walk_init(v, init);
    }
}

fn walk_init<V: Visitor + ?Sized>(v: &mut V, init: &Init) {
    match init {
        Init::Expr(e) => v.visit_expr(e),
        Init::List(items) => {
            for i in items {
                walk_init(v, i);
            }
        }
    }
}

/// Default traversal of an expression.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match e {
        Expr::IntLit(_)
        | Expr::FloatLit(_)
        | Expr::StrLit(_)
        | Expr::CharLit(_)
        | Expr::Ident(_) => {}
        Expr::Unary { expr, .. } | Expr::Postfix { expr, .. } | Expr::Cast { expr, .. } => {
            v.visit_expr(expr)
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            v.visit_expr(cond);
            v.visit_expr(then_expr);
            v.visit_expr(else_expr);
        }
        Expr::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        Expr::Index { base, index } => {
            v.visit_expr(base);
            v.visit_expr(index);
        }
        Expr::Comma(a, b) => {
            v.visit_expr(a);
            v.visit_expr(b);
        }
    }
}

/// Mutable expression transformer: rewrites every expression bottom-up.
///
/// `f` receives each expression after its children were already rewritten
/// and may replace it by returning `Some(new_expr)`.
pub fn map_exprs_in_stmt(s: &mut Stmt, f: &mut dyn FnMut(&Expr) -> Option<Expr>) {
    match s {
        Stmt::Decl(decls) => {
            for d in decls {
                if let Some(init) = &mut d.init {
                    map_exprs_in_init(init, f);
                }
            }
        }
        Stmt::Expr(e) => map_expr(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            map_expr(cond, f);
            for s in &mut then_branch.stmts {
                map_exprs_in_stmt(s, f);
            }
            if let Some(eb) = else_branch {
                for s in &mut eb.stmts {
                    map_exprs_in_stmt(s, f);
                }
            }
        }
        Stmt::While { cond, body } => {
            map_expr(cond, f);
            for s in &mut body.stmts {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::DoWhile { body, cond } => {
            for s in &mut body.stmts {
                map_exprs_in_stmt(s, f);
            }
            map_expr(cond, f);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            match init {
                Some(ForInit::Decl(decls)) => {
                    for d in decls.iter_mut() {
                        if let Some(i) = &mut d.init {
                            map_exprs_in_init(i, f);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => map_expr(e, f),
                None => {}
            }
            if let Some(c) = cond {
                map_expr(c, f);
            }
            if let Some(st) = step {
                map_expr(st, f);
            }
            for s in &mut body.stmts {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::Return(Some(e)) => map_expr(e, f),
        Stmt::Block(b) => {
            for s in &mut b.stmts {
                map_exprs_in_stmt(s, f);
            }
        }
        Stmt::Return(None) | Stmt::Break | Stmt::Continue | Stmt::Pragma(_) | Stmt::Empty => {}
    }
}

fn map_exprs_in_init(init: &mut Init, f: &mut dyn FnMut(&Expr) -> Option<Expr>) {
    match init {
        Init::Expr(e) => map_expr(e, f),
        Init::List(items) => {
            for i in items {
                map_exprs_in_init(i, f);
            }
        }
    }
}

/// Rewrites `e` bottom-up with `f`.
pub fn map_expr(e: &mut Expr, f: &mut dyn FnMut(&Expr) -> Option<Expr>) {
    match e {
        Expr::IntLit(_)
        | Expr::FloatLit(_)
        | Expr::StrLit(_)
        | Expr::CharLit(_)
        | Expr::Ident(_) => {}
        Expr::Unary { expr, .. } | Expr::Postfix { expr, .. } | Expr::Cast { expr, .. } => {
            map_expr(expr, f)
        }
        Expr::Binary { lhs, rhs, .. } | Expr::Assign { lhs, rhs, .. } => {
            map_expr(lhs, f);
            map_expr(rhs, f);
        }
        Expr::Ternary {
            cond,
            then_expr,
            else_expr,
        } => {
            map_expr(cond, f);
            map_expr(then_expr, f);
            map_expr(else_expr, f);
        }
        Expr::Call { args, .. } => {
            for a in args {
                map_expr(a, f);
            }
        }
        Expr::Index { base, index } => {
            map_expr(base, f);
            map_expr(index, f);
        }
        Expr::Comma(a, b) => {
            map_expr(a, f);
            map_expr(b, f);
        }
    }
    if let Some(new) = f(e) {
        *e = new;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[derive(Default)]
    struct Counter {
        calls: usize,
        loops: usize,
        idents: usize,
    }

    impl Visitor for Counter {
        fn visit_stmt(&mut self, s: &Stmt) {
            if matches!(
                s,
                Stmt::For { .. } | Stmt::While { .. } | Stmt::DoWhile { .. }
            ) {
                self.loops += 1;
            }
            walk_stmt(self, s);
        }
        fn visit_expr(&mut self, e: &Expr) {
            match e {
                Expr::Call { .. } => self.calls += 1,
                Expr::Ident(_) => self.idents += 1,
                _ => {}
            }
            walk_expr(self, e);
        }
    }

    #[test]
    fn visitor_counts_nested_constructs() {
        let tu = parse(
            "void f(int n) {\n\
               for (int i = 0; i < n; i++) {\n\
                 while (n > 0) { g(n); n--; }\n\
               }\n\
             }",
        )
        .unwrap();
        let mut c = Counter::default();
        walk_tu(&mut c, &tu);
        assert_eq!(c.loops, 2);
        assert_eq!(c.calls, 1);
        // idents: i, n (for cond), i (step), n (while cond), n (arg), n (dec)
        assert_eq!(c.idents, 6);
    }

    #[test]
    fn map_expr_replaces_calls() {
        let mut tu = parse("void f() { g(1); int x = g(2) + 3; }").unwrap();
        let f = tu.function_mut("f").unwrap();
        let mut replaced = 0;
        for s in &mut f.body.as_mut().unwrap().stmts {
            map_exprs_in_stmt(s, &mut |e| match e {
                Expr::Call { callee, args } if callee == "g" => {
                    replaced += 1;
                    Some(Expr::call("g_wrapper", args.clone()))
                }
                _ => None,
            });
        }
        assert_eq!(replaced, 2);
        let printed = crate::printer::print(&tu);
        assert!(printed.contains("g_wrapper(1)"));
        assert!(printed.contains("g_wrapper(2) + 3"));
        assert!(!printed.contains(" g("));
    }

    #[test]
    fn map_expr_is_bottom_up() {
        // Nested call: inner rewritten before outer sees it.
        let mut e = crate::parser::parse_expr("f(f(x))").unwrap();
        let mut seen = Vec::new();
        map_expr(&mut e, &mut |ex| {
            if let Expr::Call { callee, .. } = ex {
                seen.push(callee.clone());
            }
            None
        });
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn visitor_reaches_array_dims_and_inits() {
        let tu = parse("static int a[3] = {1, 2, 3};").unwrap();
        struct IntCount(usize);
        impl Visitor for IntCount {
            fn visit_expr(&mut self, e: &Expr) {
                if matches!(e, Expr::IntLit(_)) {
                    self.0 += 1;
                }
                walk_expr(self, e);
            }
        }
        let mut c = IntCount(0);
        walk_tu(&mut c, &tu);
        assert_eq!(c.0, 4); // dim 3 + three initializers
    }
}
