//! Hand-written lexer for the mini-C dialect.
//!
//! The lexer turns source text into a vector of [`Token`]s. Preprocessor
//! directives are recognised at line granularity; line continuations with a
//! trailing backslash are honoured inside them.

use crate::error::{LexError, Pos};
use crate::token::{Token, TokenKind, PUNCTS};

/// Tokenizes `src`, returning the token stream terminated by [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated string/char literals, stray
/// characters, or malformed preprocessor directives.
///
/// # Examples
///
/// ```
/// let tokens = minic::lex("int x = 1;").unwrap();
/// assert_eq!(tokens.len(), 6); // int, x, =, 1, ;, EOF
/// ```
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos::new(self.line, self.col)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn error(&self, message: impl Into<String>) -> LexError {
        LexError {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LexError> {
        loop {
            self.skip_ws_and_comments()?;
            let pos = self.pos();
            let Some(c) = self.peek() else {
                self.tokens.push(Token {
                    kind: TokenKind::Eof,
                    pos,
                });
                return Ok(self.tokens);
            };
            let kind = match c {
                b'#' => self.lex_directive()?,
                b'"' => self.lex_string()?,
                b'\'' => self.lex_char()?,
                b'0'..=b'9' => self.lex_number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.lex_ident(),
                b'.' if self.peek2().is_some_and(|d| d.is_ascii_digit()) => self.lex_number(),
                _ => self.lex_punct()?,
            };
            self.tokens.push(Token { kind, pos });
        }
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if (c as char).is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => return Err(self.error("unterminated block comment")),
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    /// Lexes a `#include`/`#define`/`#pragma` line; the rest of the line
    /// (with `\`-continuations joined) becomes the token payload.
    fn lex_directive(&mut self) -> Result<TokenKind, LexError> {
        self.bump(); // '#'

        // Allow whitespace between '#' and the directive name.
        while self.peek() == Some(b' ') || self.peek() == Some(b'\t') {
            self.bump();
        }
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == b'_')
        {
            self.bump();
        }
        let name = &self.src[start..self.i];
        let rest = self.take_directive_body()?;
        match name {
            "include" => Ok(TokenKind::Include(rest)),
            "define" => Ok(TokenKind::Define(rest)),
            "pragma" => Ok(TokenKind::Pragma(rest)),
            other => Err(self.error(format!("unsupported preprocessor directive `#{other}`"))),
        }
    }

    fn take_directive_body(&mut self) -> Result<String, LexError> {
        let mut body = String::new();
        loop {
            match self.peek() {
                None | Some(b'\n') => break,
                Some(b'\\') if self.peek2() == Some(b'\n') => {
                    // Line continuation: join with a single space.
                    self.bump();
                    self.bump();
                    body.push(' ');
                }
                Some(c) => {
                    body.push(c as char);
                    self.bump();
                }
            }
        }
        Ok(body.trim().to_string())
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        self.lex_quoted(b'"', "string literal")
            .map(TokenKind::StrLit)
    }

    fn lex_char(&mut self) -> Result<TokenKind, LexError> {
        self.lex_quoted(b'\'', "char literal")
            .map(TokenKind::CharLit)
    }

    /// Lexes a quoted literal, accumulating raw bytes so multi-byte UTF-8
    /// content survives intact (quotes and backslashes are ASCII, so the
    /// byte runs between them are valid UTF-8 slices of the source).
    fn lex_quoted(&mut self, quote: u8, what: &str) -> Result<String, LexError> {
        self.bump(); // opening quote
        let mut bytes = Vec::new();
        loop {
            match self.bump() {
                None => return Err(self.error(format!("unterminated {what}"))),
                Some(c) if c == quote => {
                    return Ok(String::from_utf8(bytes).expect("UTF-8 sub-slices of UTF-8 source"))
                }
                Some(b'\\') => {
                    let Some(e) = self.bump() else {
                        return Err(self.error(format!("unterminated escape in {what}")));
                    };
                    bytes.push(b'\\');
                    bytes.push(e);
                    // If the escaped character is multi-byte (unusual but
                    // legal to write), keep its continuation bytes.
                    while self.peek().is_some_and(|c| c & 0b1100_0000 == 0b1000_0000) {
                        bytes.push(self.bump().expect("peeked"));
                    }
                }
                Some(c) => bytes.push(c),
            }
        }
    }

    fn lex_number(&mut self) -> TokenKind {
        let start = self.i;
        let mut is_float = false;
        // Hex literals never contain '.', exponents etc. in our dialect.
        if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            while self.peek().is_some_and(|c| c.is_ascii_hexdigit()) {
                self.bump();
            }
        } else {
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.bump();
            }
            if self.peek() == Some(b'.') {
                is_float = true;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
            }
            if matches!(self.peek(), Some(b'e') | Some(b'E')) {
                let save = (self.i, self.line, self.col);
                is_float = true;
                self.bump();
                if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                    self.bump();
                }
                if !self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    // Not an exponent after all (e.g. identifier suffix).
                    (self.i, self.line, self.col) = save;
                    is_float = self.src[start..self.i].contains('.');
                } else {
                    while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.bump();
                    }
                }
            }
        }
        // Suffixes: f, F, l, L, u, U (at most two, e.g. `1.0f`, `10UL`).
        let mut suffix = 0;
        while suffix < 2
            && self
                .peek()
                .is_some_and(|c| matches!(c, b'f' | b'F' | b'l' | b'L' | b'u' | b'U'))
        {
            if matches!(self.peek(), Some(b'f') | Some(b'F')) {
                is_float = true;
            }
            self.bump();
            suffix += 1;
        }
        let text = self.src[start..self.i].to_string();
        if is_float {
            TokenKind::FloatLit(text)
        } else {
            TokenKind::IntLit(text)
        }
    }

    fn lex_ident(&mut self) -> TokenKind {
        let start = self.i;
        while self
            .peek()
            .is_some_and(|c| c == b'_' || c.is_ascii_alphanumeric())
        {
            self.bump();
        }
        TokenKind::Ident(self.src[start..self.i].to_string())
    }

    fn lex_punct(&mut self) -> Result<TokenKind, LexError> {
        let rest = &self.src[self.i..];
        for p in PUNCTS {
            if rest.starts_with(p) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Ok(TokenKind::Punct(p));
            }
        }
        Err(self.error(format!(
            "unexpected character `{}`",
            rest.chars().next().unwrap_or('?')
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_declaration() {
        let k = kinds("int x = 42;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::IntLit("42".into()),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_float_forms() {
        for f in ["1.5", "1.", ".5", "1e3", "1.5e-3", "2.0f", "1E+9"] {
            let k = kinds(f);
            assert!(
                matches!(k[0], TokenKind::FloatLit(_)),
                "{f} lexed as {:?}",
                k[0]
            );
        }
    }

    #[test]
    fn lexes_hex_and_suffixed_ints() {
        assert!(matches!(kinds("0x1F")[0], TokenKind::IntLit(ref s) if s == "0x1F"));
        assert!(matches!(kinds("10UL")[0], TokenKind::IntLit(ref s) if s == "10UL"));
    }

    #[test]
    fn skips_line_and_block_comments() {
        let k = kinds("a // comment\n/* multi\nline */ b");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_pragma_line() {
        let k = kinds("#pragma omp parallel for num_threads(4)\nint x;");
        assert_eq!(
            k[0],
            TokenKind::Pragma("omp parallel for num_threads(4)".into())
        );
    }

    #[test]
    fn pragma_with_continuation_joins_lines() {
        let k = kinds("#pragma omp parallel \\\n  for\nx");
        assert_eq!(k[0], TokenKind::Pragma("omp parallel    for".into()));
        assert_eq!(k[1], TokenKind::Ident("x".into()));
    }

    #[test]
    fn lexes_include_and_define() {
        let k = kinds("#include <stdio.h>\n#define N 100\n");
        assert_eq!(k[0], TokenKind::Include("<stdio.h>".into()));
        assert_eq!(k[1], TokenKind::Define("N 100".into()));
    }

    #[test]
    fn greedy_operator_matching() {
        let k = kinds("a <<= b >> c <= d");
        assert!(k.contains(&TokenKind::Punct("<<=")));
        assert!(k.contains(&TokenKind::Punct(">>")));
        assert!(k.contains(&TokenKind::Punct("<=")));
    }

    #[test]
    fn string_with_escapes() {
        let k = kinds(r#"printf("a\n%d", x);"#);
        assert!(matches!(k[2], TokenKind::StrLit(ref s) if s == "a\\n%d"));
    }

    #[test]
    fn char_literal() {
        let k = kinds("'x'");
        assert_eq!(k[0], TokenKind::CharLit("x".into()));
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("/* abc").is_err());
    }

    #[test]
    fn stray_character_is_error() {
        assert!(lex("int @x;").is_err());
    }

    #[test]
    fn positions_track_lines() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos::new(1, 1));
        assert_eq!(toks[1].pos, Pos::new(2, 3));
    }

    #[test]
    fn exponent_backtracking_on_false_exponent() {
        // `1e` followed by non-digit must not swallow the identifier.
        let k = kinds("1ex");
        assert!(matches!(k[0], TokenKind::IntLit(ref s) if s == "1"));
        assert!(matches!(k[1], TokenKind::Ident(ref s) if s == "ex"));
    }
}
