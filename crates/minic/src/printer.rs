//! Pretty-printer: turns ASTs back into compilable C text.
//!
//! Printing is canonical: all control-flow bodies are braced, one statement
//! per line, four-space indentation. `parse(print(ast)) == ast` holds for
//! every AST the parser can produce (see the round-trip property tests).

use crate::ast::*;
use crate::pragma::Pragma;
use std::fmt::Write as _;

/// Prints a full translation unit as C source text.
///
/// # Examples
///
/// ```
/// let tu = minic::parse("int main(){return 0;}").unwrap();
/// let printed = minic::print(&tu);
/// assert!(printed.contains("int main()"));
/// ```
pub fn print(tu: &TranslationUnit) -> String {
    let mut p = Printer::new();
    p.tu(tu);
    p.out
}

/// Prints a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut p = Printer::new();
    p.expr(e, 0);
    p.out
}

/// Prints a single statement (at indent level zero).
pub fn print_stmt(s: &Stmt) -> String {
    let mut p = Printer::new();
    p.stmt(s);
    p.out
}

struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn new() -> Self {
        Printer {
            out: String::new(),
            indent: 0,
        }
    }

    fn line(&mut self, text: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(text);
        self.out.push('\n');
    }

    fn tu(&mut self, tu: &TranslationUnit) {
        for (i, item) in tu.items.iter().enumerate() {
            if i > 0 && matches!(item, Item::Function(f) if f.body.is_some()) {
                self.out.push('\n');
            }
            self.item(item);
        }
    }

    fn item(&mut self, item: &Item) {
        match item {
            Item::Include(s) => self.line(&format!("#include {s}")),
            Item::Define(s) => self.line(&format!("#define {s}")),
            Item::Pragma(p) => self.pragma(p),
            Item::Global(decls) => {
                let text = self.decls_text(decls);
                self.line(&format!("{text};"));
            }
            Item::Function(f) => self.function(f),
        }
    }

    fn pragma(&mut self, p: &Pragma) {
        self.line(&p.to_string());
    }

    fn function(&mut self, f: &Function) {
        for p in &f.pragmas {
            self.pragma(p);
        }
        let mut sig = String::new();
        if f.is_static {
            sig.push_str("static ");
        }
        let _ = write!(sig, "{} {}(", self.type_prefix(&f.ret), f.name);
        for (i, param) in f.params.iter().enumerate() {
            if i > 0 {
                sig.push_str(", ");
            }
            sig.push_str(&self.declarator_text(&param.ty, &param.name));
        }
        sig.push(')');
        match &f.body {
            None => self.line(&format!("{sig};")),
            Some(body) => {
                self.line(&format!("{sig} {{"));
                self.indent += 1;
                for s in &body.stmts {
                    self.stmt(s);
                }
                self.indent -= 1;
                self.line("}");
            }
        }
    }

    /// The base-type spelling (before any declarator decorations).
    fn type_prefix(&self, ty: &Type) -> String {
        match ty {
            Type::Void => "void".into(),
            Type::Char => "char".into(),
            Type::Int => "int".into(),
            Type::UInt => "unsigned int".into(),
            Type::Long => "long".into(),
            Type::Float => "float".into(),
            Type::Double => "double".into(),
            Type::Named(n) => n.clone(),
            Type::Ptr(inner) => format!("{}*", self.type_prefix(inner)),
            Type::Array(inner, _) => self.type_prefix(inner),
        }
    }

    /// Renders `ty name` with C declarator syntax (array dims after name).
    fn declarator_text(&self, ty: &Type, name: &str) -> String {
        match ty {
            Type::Array(inner, dims) => {
                let mut s = format!("{} {name}", self.type_prefix(inner));
                for d in dims {
                    let mut p = Printer::new();
                    p.expr(d, 0);
                    let _ = write!(s, "[{}]", p.out);
                }
                s
            }
            other => format!("{} {name}", self.type_prefix(other)),
        }
    }

    fn decls_text(&mut self, decls: &[Decl]) -> String {
        // A declaration statement shares storage class and base type; the
        // parser guarantees all declarators in one statement agree on them.
        let mut s = String::new();
        if let Some(first) = decls.first() {
            if first.is_static {
                s.push_str("static ");
            }
            if first.is_const {
                s.push_str("const ");
            }
        }
        for (i, d) in decls.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
                // Subsequent declarators repeat only the declarator part.
                s.push_str(&self.declarator_suffix(&d.ty, &d.name));
            } else {
                s.push_str(&self.declarator_text(&d.ty, &d.name));
            }
            if let Some(init) = &d.init {
                s.push_str(" = ");
                s.push_str(&self.init_text(init));
            }
        }
        s
    }

    /// Declarator without the base type (for 2nd+ names in a decl list).
    fn declarator_suffix(&self, ty: &Type, name: &str) -> String {
        match ty {
            Type::Array(_, dims) => {
                let mut s = name.to_string();
                for d in dims {
                    let mut p = Printer::new();
                    p.expr(d, 0);
                    let _ = write!(s, "[{}]", p.out);
                }
                s
            }
            Type::Ptr(_) => format!("*{name}"),
            _ => name.to_string(),
        }
    }

    fn init_text(&mut self, init: &Init) -> String {
        match init {
            Init::Expr(e) => {
                let mut p = Printer::new();
                p.expr(e, 1); // assignment level: no top-level comma
                p.out
            }
            Init::List(items) => {
                let inner: Vec<String> = items.iter().map(|i| self.init_text(i)).collect();
                format!("{{{}}}", inner.join(", "))
            }
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl(decls) => {
                let text = self.decls_text(decls);
                self.line(&format!("{text};"));
            }
            Stmt::Expr(e) => {
                let mut p = Printer::new();
                p.expr(e, 0);
                let text = p.out;
                self.line(&format!("{text};"));
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let mut p = Printer::new();
                p.expr(cond, 0);
                self.line(&format!("if ({}) {{", p.out));
                self.block_body(then_branch);
                match else_branch {
                    None => self.line("}"),
                    Some(eb) => {
                        self.line("} else {");
                        self.block_body(eb);
                        self.line("}");
                    }
                }
            }
            Stmt::While { cond, body } => {
                let mut p = Printer::new();
                p.expr(cond, 0);
                self.line(&format!("while ({}) {{", p.out));
                self.block_body(body);
                self.line("}");
            }
            Stmt::DoWhile { body, cond } => {
                self.line("do {");
                self.block_body(body);
                let mut p = Printer::new();
                p.expr(cond, 0);
                self.line(&format!("}} while ({});", p.out));
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let init_text = match init {
                    None => String::new(),
                    Some(ForInit::Decl(d)) => self.decls_text(d),
                    Some(ForInit::Expr(e)) => {
                        let mut p = Printer::new();
                        p.expr(e, 0);
                        p.out
                    }
                };
                let cond_text = cond
                    .as_ref()
                    .map(|e| {
                        let mut p = Printer::new();
                        p.expr(e, 0);
                        p.out
                    })
                    .unwrap_or_default();
                let step_text = step
                    .as_ref()
                    .map(|e| {
                        let mut p = Printer::new();
                        p.expr(e, 0);
                        p.out
                    })
                    .unwrap_or_default();
                self.line(&format!("for ({init_text}; {cond_text}; {step_text}) {{"));
                self.block_body(body);
                self.line("}");
            }
            Stmt::Return(None) => self.line("return;"),
            Stmt::Return(Some(e)) => {
                let mut p = Printer::new();
                p.expr(e, 0);
                let text = p.out;
                self.line(&format!("return {text};"));
            }
            Stmt::Break => self.line("break;"),
            Stmt::Continue => self.line("continue;"),
            Stmt::Pragma(p) => self.pragma(p),
            Stmt::Block(b) => {
                self.line("{");
                self.block_body(b);
                self.line("}");
            }
            Stmt::Empty => self.line(";"),
        }
    }

    fn block_body(&mut self, b: &Block) {
        self.indent += 1;
        for s in &b.stmts {
            self.stmt(s);
        }
        self.indent -= 1;
    }

    /// Prints an expression. `min_prec` mirrors the parser's precedence so
    /// parentheses are inserted exactly where re-parsing needs them:
    /// 0 = comma allowed, 1 = assignment level, 2 = ternary, then binary
    /// precedences shifted by `BIN_BASE`.
    fn expr(&mut self, e: &Expr, min_prec: u8) {
        const COMMA: u8 = 0;
        const ASSIGN: u8 = 1;
        const TERNARY: u8 = 2;
        const BIN_BASE: u8 = 2; // binary precedence p maps to BIN_BASE + p
        const UNARY: u8 = BIN_BASE + 11;

        match e {
            Expr::IntLit(v) => {
                if *v < 0 {
                    // Negative literals print parenthesised so unary-minus
                    // reparses unambiguously in contexts like `x-(-1)`.
                    let _ = write!(self.out, "(-{})", v.unsigned_abs());
                } else {
                    let _ = write!(self.out, "{v}");
                }
            }
            Expr::FloatLit(v) => {
                let _ = write!(self.out, "{v:?}");
            }
            Expr::StrLit(s) => {
                let _ = write!(self.out, "\"{s}\"");
            }
            Expr::CharLit(s) => {
                let _ = write!(self.out, "'{s}'");
            }
            Expr::Ident(n) => self.out.push_str(n),
            Expr::Unary { op, expr } => {
                self.paren_if(min_prec > UNARY, |p| {
                    p.out.push_str(op.as_str());
                    // A space avoids `- -x` gluing into `--x`.
                    if matches!(op, UnaryOp::Neg | UnaryOp::AddrOf)
                        && matches!(
                            **expr,
                            Expr::Unary {
                                op: UnaryOp::Neg | UnaryOp::PreDec,
                                ..
                            }
                        )
                    {
                        p.out.push(' ');
                    }
                    p.expr(expr, UNARY);
                });
            }
            Expr::Postfix { op, expr } => {
                self.expr(expr, UNARY + 1);
                self.out.push_str(op.as_str());
            }
            Expr::Binary { op, lhs, rhs } => {
                let prec = BIN_BASE + op.precedence();
                self.paren_if(min_prec > prec, |p| {
                    p.expr(lhs, prec);
                    let _ = write!(p.out, " {} ", op.as_str());
                    p.expr(rhs, prec + 1);
                });
            }
            Expr::Assign { op, lhs, rhs } => {
                self.paren_if(min_prec > ASSIGN, |p| {
                    p.expr(lhs, TERNARY + 1);
                    let _ = write!(p.out, " {} ", op.as_str());
                    p.expr(rhs, ASSIGN);
                });
            }
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                self.paren_if(min_prec > TERNARY, |p| {
                    p.expr(cond, TERNARY + 1);
                    p.out.push_str(" ? ");
                    p.expr(then_expr, COMMA);
                    p.out.push_str(" : ");
                    p.expr(else_expr, ASSIGN);
                });
            }
            Expr::Call { callee, args } => {
                let _ = write!(self.out, "{callee}(");
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        self.out.push_str(", ");
                    }
                    self.expr(a, ASSIGN);
                }
                self.out.push(')');
            }
            Expr::Index { base, index } => {
                self.expr(base, UNARY + 1);
                self.out.push('[');
                self.expr(index, COMMA);
                self.out.push(']');
            }
            Expr::Cast { ty, expr } => {
                self.paren_if(min_prec > UNARY, |p| {
                    let _ = write!(p.out, "({}) ", p.type_prefix(ty));
                    p.expr(expr, UNARY);
                });
            }
            Expr::Comma(a, b) => {
                self.paren_if(min_prec > COMMA, |p| {
                    p.expr(a, ASSIGN);
                    p.out.push_str(", ");
                    p.expr(b, ASSIGN);
                });
            }
        }
    }

    fn paren_if(&mut self, needed: bool, f: impl FnOnce(&mut Self)) {
        if needed {
            self.out.push('(');
        }
        f(self);
        if needed {
            self.out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse, parse_expr};

    fn roundtrip(src: &str) {
        let tu = parse(src).unwrap_or_else(|e| panic!("parse failed for `{src}`: {e}"));
        let printed = print(&tu);
        let tu2 =
            parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\nprinted:\n{printed}"));
        assert_eq!(tu, tu2, "round-trip mismatch; printed:\n{printed}");
    }

    fn roundtrip_expr(src: &str) {
        let e = parse_expr(src).unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse failed: {err}; printed `{printed}`"));
        assert_eq!(e, e2, "expr round-trip mismatch; printed `{printed}`");
    }

    #[test]
    fn roundtrips_simple_program() {
        roundtrip(
            "#include <stdio.h>\n\
             #define N 100\n\
             static double A[100][100];\n\
             void kernel(int n) {\n\
               for (int i = 0; i < n; i++) {\n\
                 A[i][i] = 2.0 * A[i][i] + 1.5;\n\
               }\n\
             }\n\
             int main() { kernel(100); return 0; }",
        );
    }

    #[test]
    fn roundtrips_pragmas() {
        roundtrip(
            "#pragma GCC optimize(\"O2\",\"no-inline-functions\")\n\
             void k(int n) {\n\
             #pragma omp parallel for num_threads(8) proc_bind(spread)\n\
             for (int i = 0; i < n; i++) { }\n\
             }",
        );
    }

    #[test]
    fn precedence_preserved_in_printing() {
        roundtrip_expr("(a + b) * c");
        roundtrip_expr("a + b * c");
        roundtrip_expr("a - (b - c)");
        roundtrip_expr("-(a + b)");
        roundtrip_expr("a = b = c + 1");
        roundtrip_expr("a ? b : c ? d : e");
        roundtrip_expr("(a ? b : c) ? d : e");
        roundtrip_expr("a && b || c && d");
        roundtrip_expr("(a | b) & c");
        roundtrip_expr("x << 2 >> 1");
        roundtrip_expr("A[i][j] * B[j][k]");
        roundtrip_expr("f(a, b + 1, g(c))");
        roundtrip_expr("(double) n / m");
        roundtrip_expr("*p + p[1]");
        roundtrip_expr("- -x");
        roundtrip_expr("i++ + ++j");
    }

    #[test]
    fn paren_semantics_differ_from_flat() {
        // `(a + b) * c` and `a + b * c` must print differently.
        let e1 = parse_expr("(a + b) * c").unwrap();
        let e2 = parse_expr("a + b * c").unwrap();
        assert_ne!(print_expr(&e1), print_expr(&e2));
        assert_eq!(print_expr(&e1), "(a + b) * c");
        assert_eq!(print_expr(&e2), "a + b * c");
    }

    #[test]
    fn negative_int_literal_prints_parenthesised() {
        let e = Expr::binary(crate::ast::BinaryOp::Sub, Expr::ident("x"), Expr::int(-1));
        assert_eq!(print_expr(&e), "x - (-1)");
        // Reparses as unary-neg, semantically identical, and stays stable.
        let reparsed = parse_expr("x - (-1)").unwrap();
        assert_eq!(print_expr(&reparsed), "x - -1");
        let again = parse_expr("x - -1").unwrap();
        assert_eq!(reparsed, again);
    }

    #[test]
    fn float_literals_keep_value() {
        let e = parse_expr("1.5e-3").unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn multi_declarator_prints_once() {
        let tu = parse("void f() { int i = 0, j = 1; }").unwrap();
        let printed = print(&tu);
        assert!(printed.contains("int i = 0, j = 1;"), "{printed}");
        roundtrip("void f() { int i = 0, j = 1; }");
    }

    #[test]
    fn pointer_second_declarator_keeps_star() {
        roundtrip("void f() { double *p, *q; }");
    }

    #[test]
    fn do_while_and_nested_blocks() {
        roundtrip("void f(int n) { do { { n--; } } while (n > 0); }");
    }

    #[test]
    fn empty_for_clauses() {
        roundtrip("void f() { for (;;) { break; } }");
    }

    #[test]
    fn prototype_prints_with_semicolon() {
        let tu = parse("void k(int n);").unwrap();
        assert!(print(&tu).contains("void k(int n);"));
    }

    #[test]
    fn initializer_lists_roundtrip() {
        roundtrip("int a[2][2] = {{1, 2}, {3, 4}};");
    }

    #[test]
    fn string_and_char_literals_roundtrip() {
        roundtrip(r#"void f() { printf("x=%d\n", 'a'); }"#);
    }

    #[test]
    fn comma_exprs_roundtrip() {
        roundtrip("void f() { for (int i = 0, j = 9; i < j; i++, j--) { } }");
    }

    #[test]
    fn casts_roundtrip() {
        roundtrip("void f(int n) { double x = (double) n; int *p = (int*) 0; x = x; p = p; }");
    }
}
