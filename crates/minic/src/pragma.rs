//! Structured pragma representation.
//!
//! SOCRATES manipulates two pragma families: `#pragma GCC optimize("...")`
//! inserted by the Multiversioning strategy, and OpenMP pragmas
//! (`#pragma omp parallel for num_threads(NT) proc_bind(close)`) that
//! configure kernel parallelisation. Everything else is kept verbatim.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed pragma.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pragma {
    /// Structured payload.
    pub kind: PragmaKind,
}

/// The pragma families understood by the weaver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PragmaKind {
    /// `#pragma omp <directive> <clauses...>`
    Omp(OmpPragma),
    /// `#pragma GCC optimize("flag", "flag", ...)`
    GccOptimize(Vec<String>),
    /// `#pragma scop` (Polybench region-of-interest marker).
    Scop,
    /// `#pragma endscop`
    EndScop,
    /// Any other pragma, kept verbatim.
    Other(String),
}

/// An OpenMP pragma: directive plus clause list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OmpPragma {
    /// Directive, e.g. `parallel for` or `for`.
    pub directive: String,
    /// Clauses in source order.
    pub clauses: Vec<OmpClause>,
}

/// An OpenMP clause.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OmpClause {
    /// `num_threads(expr-text)` — kept as text so it can reference runtime
    /// variables inserted by the weaver.
    NumThreads(String),
    /// `proc_bind(close|spread|master)`
    ProcBind(String),
    /// `schedule(static)`, `schedule(dynamic, 4)` …
    Schedule(String),
    /// `private(a, b)`
    Private(Vec<String>),
    /// `firstprivate(a, b)`
    FirstPrivate(Vec<String>),
    /// `shared(a, b)`
    Shared(Vec<String>),
    /// `reduction(+: acc)`
    Reduction(String, Vec<String>),
    /// `collapse(n)`
    Collapse(i64),
    /// Unrecognised clause, kept verbatim.
    Other(String),
}

impl Pragma {
    /// Parses the text that followed `#pragma`.
    ///
    /// Never fails: unrecognised pragmas become [`PragmaKind::Other`].
    ///
    /// # Examples
    ///
    /// ```
    /// use minic::pragma::{Pragma, PragmaKind};
    /// let p = Pragma::parse("GCC optimize(\"O2\",\"no-inline-functions\")");
    /// assert!(matches!(p.kind, PragmaKind::GccOptimize(ref v) if v.len() == 2));
    /// ```
    pub fn parse(text: &str) -> Pragma {
        let text = text.trim();
        let kind = if let Some(rest) = text.strip_prefix("omp") {
            PragmaKind::Omp(OmpPragma::parse(rest.trim()))
        } else if let Some(rest) = text.strip_prefix("GCC optimize") {
            PragmaKind::GccOptimize(parse_string_list(rest))
        } else if text == "scop" {
            PragmaKind::Scop
        } else if text == "endscop" {
            PragmaKind::EndScop
        } else {
            PragmaKind::Other(text.to_string())
        };
        Pragma { kind }
    }

    /// Creates an OpenMP pragma.
    pub fn omp(directive: impl Into<String>, clauses: Vec<OmpClause>) -> Pragma {
        Pragma {
            kind: PragmaKind::Omp(OmpPragma {
                directive: directive.into(),
                clauses,
            }),
        }
    }

    /// Creates a `#pragma GCC optimize(...)` pragma from flag names
    /// (without the leading dashes, e.g. `"O2"`, `"no-inline-functions"`).
    pub fn gcc_optimize(flags: impl IntoIterator<Item = impl Into<String>>) -> Pragma {
        Pragma {
            kind: PragmaKind::GccOptimize(flags.into_iter().map(Into::into).collect()),
        }
    }

    /// Returns the OpenMP payload, if this is an OpenMP pragma.
    pub fn as_omp(&self) -> Option<&OmpPragma> {
        match &self.kind {
            PragmaKind::Omp(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the GCC optimize flag list, if applicable.
    pub fn as_gcc_optimize(&self) -> Option<&[String]> {
        match &self.kind {
            PragmaKind::GccOptimize(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Pragma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#pragma ")?;
        match &self.kind {
            PragmaKind::Omp(o) => write!(f, "omp {o}"),
            PragmaKind::GccOptimize(flags) => {
                write!(f, "GCC optimize(")?;
                for (i, fl) in flags.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{fl}\"")?;
                }
                write!(f, ")")
            }
            PragmaKind::Scop => write!(f, "scop"),
            PragmaKind::EndScop => write!(f, "endscop"),
            PragmaKind::Other(t) => write!(f, "{t}"),
        }
    }
}

impl OmpPragma {
    /// Parses the text after `omp`.
    pub fn parse(text: &str) -> OmpPragma {
        // The directive is the longest prefix of known directive words.
        let mut directive_words = Vec::new();
        let mut rest = text.trim();
        loop {
            let word_end = rest
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .unwrap_or(rest.len());
            let word = &rest[..word_end];
            if word.is_empty() || !is_directive_word(word, directive_words.len()) {
                break;
            }
            directive_words.push(word.to_string());
            rest = rest[word_end..].trim_start();
        }
        let mut clauses = Vec::new();
        while !rest.is_empty() {
            let (clause, next) = take_clause(rest);
            clauses.push(parse_clause(&clause));
            rest = next.trim_start();
        }
        OmpPragma {
            directive: directive_words.join(" "),
            clauses,
        }
    }

    /// Returns the `num_threads` clause payload, if present.
    pub fn num_threads(&self) -> Option<&str> {
        self.clauses.iter().find_map(|c| match c {
            OmpClause::NumThreads(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Returns the `proc_bind` clause payload, if present.
    pub fn proc_bind(&self) -> Option<&str> {
        self.clauses.iter().find_map(|c| match c {
            OmpClause::ProcBind(s) => Some(s.as_str()),
            _ => None,
        })
    }

    /// Replaces or inserts a clause, keyed by clause kind.
    pub fn set_clause(&mut self, clause: OmpClause) {
        let disc = std::mem::discriminant(&clause);
        if let Some(slot) = self
            .clauses
            .iter_mut()
            .find(|c| std::mem::discriminant(*c) == disc)
        {
            *slot = clause;
        } else {
            self.clauses.push(clause);
        }
    }
}

impl fmt::Display for OmpPragma {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.directive)?;
        for c in &self.clauses {
            write!(f, " {c}")?;
        }
        Ok(())
    }
}

impl fmt::Display for OmpClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OmpClause::NumThreads(e) => write!(f, "num_threads({e})"),
            OmpClause::ProcBind(p) => write!(f, "proc_bind({p})"),
            OmpClause::Schedule(s) => write!(f, "schedule({s})"),
            OmpClause::Private(v) => write!(f, "private({})", v.join(", ")),
            OmpClause::FirstPrivate(v) => write!(f, "firstprivate({})", v.join(", ")),
            OmpClause::Shared(v) => write!(f, "shared({})", v.join(", ")),
            OmpClause::Reduction(op, v) => write!(f, "reduction({op}: {})", v.join(", ")),
            OmpClause::Collapse(n) => write!(f, "collapse({n})"),
            OmpClause::Other(t) => write!(f, "{t}"),
        }
    }
}

fn is_directive_word(word: &str, index: usize) -> bool {
    const FIRST: &[&str] = &[
        "parallel", "for", "sections", "section", "single", "task", "barrier", "critical",
        "atomic", "master", "simd", "target", "teams",
    ];
    const LATER: &[&str] = &["for", "simd", "parallel"];
    if index == 0 {
        FIRST.contains(&word)
    } else {
        LATER.contains(&word)
    }
}

/// Splits off one clause (`name` or `name( balanced )`) from the front.
fn take_clause(text: &str) -> (String, &str) {
    let mut depth = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            c if c.is_whitespace() && depth == 0 => {
                return (text[..i].to_string(), &text[i..]);
            }
            _ => {}
        }
    }
    (text.to_string(), "")
}

fn parse_clause(clause: &str) -> OmpClause {
    let (name, arg) = match clause.find('(') {
        Some(i) => {
            let name = clause[..i].trim();
            let arg = clause[i + 1..].trim_end_matches(')').trim();
            (name, Some(arg))
        }
        None => (clause.trim(), None),
    };
    match (name, arg) {
        ("num_threads", Some(a)) => OmpClause::NumThreads(a.to_string()),
        ("proc_bind", Some(a)) => OmpClause::ProcBind(a.to_string()),
        ("schedule", Some(a)) => OmpClause::Schedule(a.to_string()),
        ("private", Some(a)) => OmpClause::Private(split_names(a)),
        ("firstprivate", Some(a)) => OmpClause::FirstPrivate(split_names(a)),
        ("shared", Some(a)) => OmpClause::Shared(split_names(a)),
        ("collapse", Some(a)) => a
            .parse()
            .map(OmpClause::Collapse)
            .unwrap_or_else(|_| OmpClause::Other(clause.to_string())),
        ("reduction", Some(a)) => match a.split_once(':') {
            Some((op, vars)) => OmpClause::Reduction(op.trim().to_string(), split_names(vars)),
            None => OmpClause::Other(clause.to_string()),
        },
        _ => OmpClause::Other(clause.to_string()),
    }
}

fn split_names(s: &str) -> Vec<String> {
    s.split(',')
        .map(|n| n.trim().to_string())
        .filter(|n| !n.is_empty())
        .collect()
}

fn parse_string_list(s: &str) -> Vec<String> {
    // Expects `("a", "b", ...)`; tolerant of spacing.
    s.trim()
        .trim_start_matches('(')
        .trim_end_matches(')')
        .split(',')
        .map(|part| part.trim().trim_matches('"').to_string())
        .filter(|part| !part.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_omp_parallel_for_with_clauses() {
        let p = Pragma::parse("omp parallel for num_threads(NT) proc_bind(close)");
        let o = p.as_omp().unwrap();
        assert_eq!(o.directive, "parallel for");
        assert_eq!(o.num_threads(), Some("NT"));
        assert_eq!(o.proc_bind(), Some("close"));
    }

    #[test]
    fn parses_gcc_optimize_flags() {
        let p = Pragma::parse(r#"GCC optimize("O2","no-inline-functions")"#);
        assert_eq!(
            p.as_gcc_optimize().unwrap(),
            &["O2".to_string(), "no-inline-functions".to_string()][..]
        );
    }

    #[test]
    fn parses_scop_markers() {
        assert_eq!(Pragma::parse("scop").kind, PragmaKind::Scop);
        assert_eq!(Pragma::parse("endscop").kind, PragmaKind::EndScop);
    }

    #[test]
    fn unknown_pragma_roundtrips_verbatim() {
        let p = Pragma::parse("once");
        assert_eq!(p.to_string(), "#pragma once");
    }

    #[test]
    fn display_roundtrip_reparses_equal() {
        let cases = [
            "omp parallel for num_threads(8) proc_bind(spread) schedule(static)",
            "omp for reduction(+: sum) private(i, j)",
            "omp parallel for collapse(2)",
            r#"GCC optimize("O3","unroll-all-loops")"#,
            "scop",
        ];
        for c in cases {
            let p = Pragma::parse(c);
            let printed = p.to_string();
            let reparsed = Pragma::parse(printed.strip_prefix("#pragma ").unwrap());
            assert_eq!(p, reparsed, "case `{c}` printed as `{printed}`");
        }
    }

    #[test]
    fn set_clause_replaces_same_kind() {
        let p = Pragma::parse("omp parallel for num_threads(4)");
        let mut o = p.as_omp().unwrap().clone();
        o.set_clause(OmpClause::NumThreads("NT".into()));
        assert_eq!(o.num_threads(), Some("NT"));
        assert_eq!(o.clauses.len(), 1);
        o.set_clause(OmpClause::ProcBind("close".into()));
        assert_eq!(o.clauses.len(), 2);
    }

    #[test]
    fn reduction_clause_parses_operator_and_vars() {
        let p = Pragma::parse("omp for reduction(max: a, b)");
        let o = p.as_omp().unwrap();
        assert_eq!(
            o.clauses[0],
            OmpClause::Reduction("max".into(), vec!["a".into(), "b".into()])
        );
    }

    #[test]
    fn directive_words_stop_at_clauses() {
        // `for` is both a directive word and could look like a clause; the
        // clause `num_threads` must not be eaten by the directive.
        let p = Pragma::parse("omp parallel num_threads(2)");
        let o = p.as_omp().unwrap();
        assert_eq!(o.directive, "parallel");
        assert_eq!(o.clauses.len(), 1);
    }
}
