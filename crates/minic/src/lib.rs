//! # minic — a mini-C front-end for source-to-source weaving
//!
//! This crate is the substrate under the SOCRATES reproduction's LARA/MANET
//! weaver (`lara` crate) and Milepost feature extractor (`milepost` crate):
//! a lexer, recursive-descent parser, typed AST, visitors and a
//! pretty-printer for the subset of C that the Polybench/C kernels use,
//! plus first-class support for the pragmas SOCRATES manipulates
//! (`#pragma GCC optimize`, OpenMP `parallel for` with
//! `num_threads`/`proc_bind` clauses).
//!
//! The printer is canonical and round-trip safe: for every AST the parser
//! produces, `parse(print(ast)) == ast`.
//!
//! ## Example
//!
//! ```
//! use minic::{parse, print, logical_loc};
//!
//! let tu = parse(
//!     "void kernel(int n, double A[100]) {
//!          for (int i = 0; i < n; i++) { A[i] = 2.0 * A[i]; }
//!      }",
//! ).unwrap();
//! assert_eq!(tu.functions().count(), 1);
//! assert_eq!(logical_loc(&tu), 3);
//! let c_text = print(&tu);
//! assert!(c_text.contains("kernel"));
//! ```
//!
//! ## Dialect limitations (by design)
//!
//! - no `struct`/`union`/`enum`, no `typedef` declarations (inject known
//!   type names through [`parser::Parser::add_type_name`]),
//! - preprocessor lines are opaque single items,
//! - array dimensions must be explicit expressions,
//! - calls are to named functions only (no function pointers).

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod genprog;
mod lexer;
pub mod loc;
pub mod parser;
pub mod pragma;
pub mod printer;
pub mod token;
pub mod visit;

pub use ast::{
    AssignOp, BinaryOp, Block, Decl, Expr, ForInit, Function, Init, Item, Param, PostfixOp, Stmt,
    TranslationUnit, Type, UnaryOp,
};
pub use error::{LexError, ParseError, Pos};
pub use lexer::lex;
pub use loc::{function_loc, function_logical_line, logical_loc};
pub use parser::{parse, parse_expr, Parser};
pub use pragma::{OmpClause, OmpPragma, Pragma, PragmaKind};
pub use printer::{print, print_expr, print_stmt};
