//! # lara — aspect-oriented weaving for SOCRATES
//!
//! Rust reimplementation of the LARA strategies + MANET source-to-source
//! weaving used by SOCRATES (DATE 2018) to turn a plain C application
//! into a tunable, mARGOt-enhanced one **without any manual change to the
//! application code**.
//!
//! Two strategies, exactly as in the paper:
//!
//! - [`multiversioning`]: clone the kernel per static configuration
//!   (`#pragma GCC optimize` × `proc_bind`), parallelise the clones'
//!   loops with `num_threads(<runtime var>)`, generate the dispatch
//!   wrapper and redirect all call sites to it (Fig. 2b);
//! - [`autotuner`]: insert the mARGOt header/init and surround the
//!   wrapped kernel call with `margot_update` / `margot_start_monitor` /
//!   `margot_stop_monitor` / `margot_log` (Fig. 2c).
//!
//! The [`Weaver`] tracks every attribute checked and action performed,
//! producing the paper's Table I metrics ([`WeavingMetrics`]).
//!
//! ## Example
//!
//! ```
//! use lara::{autotuner, multiversioning, StaticVersion, Weaver};
//!
//! let tu = minic::parse(
//!     "void kernel_k(int n) { for (int i = 0; i < n; i++) { n--; } }
//!      int main() { kernel_k(10); return 0; }",
//! ).unwrap();
//! let mut weaver = Weaver::new(tu);
//! let mv = multiversioning(
//!     &mut weaver,
//!     "kernel_k",
//!     &[StaticVersion::new(["O2"], "close"), StaticVersion::new(["O3"], "spread")],
//! ).unwrap();
//! autotuner(&mut weaver, &mv, "main").unwrap();
//! let (weaved, metrics) = weaver.finish();
//! assert!(metrics.weaved_loc > metrics.original_loc);
//! assert!(minic::parse(&minic::print(&weaved)).is_ok());
//! ```

#![warn(missing_docs)]

mod autotuner;
mod metrics;
mod multiversioning;
mod weaver;

pub use autotuner::{autotuner, Autotuned};
pub use metrics::{WeavingMetrics, STRATEGY_LOC};
pub use multiversioning::{
    multiversioning, Multiversioned, StaticVersion, THREADS_VAR, VERSION_VAR,
};
pub use weaver::{WeaveError, Weaver};
