//! Weaving metrics — the quantities reported in the paper's Table I.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical lines of code of the complete LARA strategy (the aspect
/// files). The paper reports 265 for its LARA implementation; our
/// strategies are written as Rust weaving programs whose declarative
/// operation count is smaller. The value is only used as the Bloat
/// denominator: `Bloat = D-LOC / STRATEGY_LOC`.
pub const STRATEGY_LOC: usize = 72;

/// Metrics collected while applying the LARA strategies to one
/// application (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct WeavingMetrics {
    /// Attributes checked about the source code (function signature
    /// information, loop and pragma information, call sites…).
    pub attributes: usize,
    /// Actions performed on the code (insertions, cloning, pragma
    /// insertion, call replacement…).
    pub actions: usize,
    /// Logical LOC of the original benchmark.
    pub original_loc: usize,
    /// Logical LOC of the weaved benchmark.
    pub weaved_loc: usize,
}

impl WeavingMetrics {
    /// D-LOC: lines added by weaving.
    pub fn delta_loc(&self) -> usize {
        self.weaved_loc.saturating_sub(self.original_loc)
    }

    /// The Bloat metric: weaved lines per line of aspect code.
    pub fn bloat(&self) -> f64 {
        self.delta_loc() as f64 / STRATEGY_LOC as f64
    }

    /// Merges the metrics of two strategies applied in sequence.
    /// `other` must have been measured starting from this result
    /// (`other.original_loc == self.weaved_loc`).
    ///
    /// # Panics
    ///
    /// Panics when the two measurements are not contiguous.
    pub fn then(&self, other: &WeavingMetrics) -> WeavingMetrics {
        assert_eq!(
            self.weaved_loc, other.original_loc,
            "metrics are not contiguous"
        );
        WeavingMetrics {
            attributes: self.attributes + other.attributes,
            actions: self.actions + other.actions,
            original_loc: self.original_loc,
            weaved_loc: other.weaved_loc,
        }
    }
}

impl fmt::Display for WeavingMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Att={} Act={} O-LOC={} W-LOC={} D-LOC={} Bloat={:.2}",
            self.attributes,
            self.actions,
            self.original_loc,
            self.weaved_loc,
            self.delta_loc(),
            self.bloat()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_bloat() {
        let m = WeavingMetrics {
            attributes: 100,
            actions: 50,
            original_loc: 80,
            weaved_loc: 80 + STRATEGY_LOC * 3,
        };
        assert_eq!(m.delta_loc(), STRATEGY_LOC * 3);
        assert!((m.bloat() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn delta_saturates() {
        let m = WeavingMetrics {
            original_loc: 100,
            weaved_loc: 90,
            ..Default::default()
        };
        assert_eq!(m.delta_loc(), 0);
    }

    #[test]
    fn then_accumulates_contiguous_measurements() {
        let a = WeavingMetrics {
            attributes: 10,
            actions: 5,
            original_loc: 50,
            weaved_loc: 200,
        };
        let b = WeavingMetrics {
            attributes: 7,
            actions: 3,
            original_loc: 200,
            weaved_loc: 230,
        };
        let c = a.then(&b);
        assert_eq!(c.attributes, 17);
        assert_eq!(c.actions, 8);
        assert_eq!(c.original_loc, 50);
        assert_eq!(c.weaved_loc, 230);
        assert_eq!(c.delta_loc(), 180);
    }

    #[test]
    #[should_panic(expected = "not contiguous")]
    fn then_rejects_gaps() {
        let a = WeavingMetrics {
            weaved_loc: 200,
            ..Default::default()
        };
        let b = WeavingMetrics {
            original_loc: 150,
            ..Default::default()
        };
        let _ = a.then(&b);
    }

    #[test]
    fn display_matches_table_one_columns() {
        let m = WeavingMetrics {
            attributes: 698,
            actions: 378,
            original_loc: 136,
            weaved_loc: 2068,
        };
        let s = m.to_string();
        assert!(s.contains("Att=698"));
        assert!(s.contains("D-LOC=1932"));
    }
}
