//! The `Autotuner` LARA strategy (paper Section II, Fig. 2c).
//!
//! Integrates mARGOt into the multiversioned application: inserts the
//! header and `margot_init()` call, and surrounds every wrapper call with
//! the mARGOt API — `margot_update(&version, &num_threads)` before,
//! `margot_start_monitor()` / `margot_stop_monitor()` around, and
//! `margot_log()` after the region of interest.

use crate::multiversioning::Multiversioned;
use crate::weaver::{WeaveError, Weaver};
use minic::ast::*;
use serde::{Deserialize, Serialize};

/// Outcome of the Autotuner strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Autotuned {
    /// Number of kernel-wrapper call sites instrumented.
    pub instrumented_sites: usize,
}

/// Applies the Autotuner strategy, wiring the wrapper produced by
/// [`multiversioning`](crate::multiversioning::multiversioning) to the
/// mARGOt API inside `main_fn` (usually `"main"`).
///
/// # Errors
///
/// Returns [`WeaveError`] if `main_fn` does not exist or no wrapper call
/// site is found in it.
pub fn autotuner(
    weaver: &mut Weaver,
    mv: &Multiversioned,
    main_fn: &str,
) -> Result<Autotuned, WeaveError> {
    // Header + initialization at the top of main.
    weaver.insert_include("\"margot.h\"");
    weaver.select_function(main_fn)?;
    weaver.insert_stmts_at_start(main_fn, vec![Stmt::Expr(Expr::call("margot_init", vec![]))])?;

    // Check the wrapper is actually called from the application.
    let sites_found = weaver.select_calls_to(&mv.wrapper);
    if sites_found == 0 {
        return Err(WeaveError(format!(
            "no call to wrapper `{}` found",
            mv.wrapper
        )));
    }

    let addr_of = |name: &str| Expr::Unary {
        op: UnaryOp::AddrOf,
        expr: Box::new(Expr::ident(name)),
    };
    let before = vec![
        Stmt::Expr(Expr::call(
            "margot_update",
            vec![addr_of(&mv.version_var), addr_of(&mv.threads_var)],
        )),
        Stmt::Expr(Expr::call("margot_start_monitor", vec![])),
    ];
    let after = vec![
        Stmt::Expr(Expr::call("margot_stop_monitor", vec![])),
        Stmt::Expr(Expr::call("margot_log", vec![])),
    ];
    let instrumented_sites =
        weaver.surround_call_statements(main_fn, &mv.wrapper, before, after)?;
    Ok(Autotuned { instrumented_sites })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multiversioning::{multiversioning, StaticVersion};
    use minic::parse;

    const SRC: &str = "\
void kernel_demo(double alpha, int n) {
    for (int i = 0; i < n; i++) { alpha += 1.0; }
}
int main() {
    kernel_demo(1.5, 100);
    return 0;
}
";

    fn weave_all() -> (minic::TranslationUnit, Autotuned) {
        let mut w = Weaver::new(parse(SRC).unwrap());
        let mv = multiversioning(
            &mut w,
            "kernel_demo",
            &[
                StaticVersion::new(["O2"], "close"),
                StaticVersion::new(["O3"], "spread"),
            ],
        )
        .unwrap();
        let at = autotuner(&mut w, &mv, "main").unwrap();
        let (tu, _) = w.finish();
        (tu, at)
    }

    #[test]
    fn inserts_header_and_init() {
        let (tu, _) = weave_all();
        let printed = minic::print(&tu);
        assert!(printed.contains("#include \"margot.h\""));
        let main = tu.function("main").unwrap();
        assert!(matches!(
            &main.body.as_ref().unwrap().stmts[0],
            Stmt::Expr(Expr::Call { callee, .. }) if callee == "margot_init"
        ));
    }

    #[test]
    fn wraps_call_site_with_margot_api_in_order() {
        let (tu, at) = weave_all();
        assert_eq!(at.instrumented_sites, 1);
        let printed = minic::print(&tu);
        let idx = |needle: &str| {
            printed
                .find(needle)
                .unwrap_or_else(|| panic!("{needle} missing\n{printed}"))
        };
        let update = idx("margot_update(&__socrates_version, &__socrates_num_threads)");
        let start = idx("margot_start_monitor()");
        let call = idx("kernel_demo_wrapper(1.5, 100)");
        let stop = idx("margot_stop_monitor()");
        let log = idx("margot_log()");
        assert!(update < start && start < call && call < stop && stop < log);
    }

    #[test]
    fn weaved_output_reparses_identically() {
        let (tu, _) = weave_all();
        let printed = minic::print(&tu);
        assert_eq!(minic::parse(&printed).unwrap(), tu);
    }

    #[test]
    fn missing_wrapper_call_is_an_error() {
        // A main that never calls the kernel: autotuner must refuse.
        let src = "\
void kernel_demo(int n) { for (int i = 0; i < n; i++) { n--; } }
int main() { return 0; }
";
        let mut w = Weaver::new(parse(src).unwrap());
        let mv = multiversioning(
            &mut w,
            "kernel_demo",
            &[StaticVersion::new(["O2"], "close")],
        )
        .unwrap();
        assert!(autotuner(&mut w, &mv, "main").is_err());
    }

    #[test]
    fn missing_main_is_an_error() {
        let mut w = Weaver::new(parse(SRC).unwrap());
        let mv = multiversioning(
            &mut w,
            "kernel_demo",
            &[StaticVersion::new(["O2"], "close")],
        )
        .unwrap();
        assert!(autotuner(&mut w, &mv, "nonexistent_main").is_err());
    }
}
