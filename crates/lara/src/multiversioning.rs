//! The `Multiversioning` LARA strategy (paper Section II, Fig. 2b).
//!
//! Clones the target kernel once per *static* configuration (compiler
//! options × binding policy), attaches `#pragma GCC optimize(...)` to
//! each clone, parallelises the clone's outermost loops with an OpenMP
//! pragma whose thread count reads a runtime-controlled variable, emits a
//! dispatch wrapper switching on a version variable, and redirects all
//! kernel call sites to the wrapper.

use crate::weaver::{WeaveError, Weaver};
use minic::ast::*;
use minic::pragma::{OmpClause, Pragma};
use serde::{Deserialize, Serialize};

/// Default name of the runtime version-selection global.
pub const VERSION_VAR: &str = "__socrates_version";
/// Default name of the runtime thread-count global.
pub const THREADS_VAR: &str = "__socrates_num_threads";

/// One static configuration of the autotuning space: the knobs that must
/// be fixed at compile time (CO via `#pragma GCC optimize`, BP via
/// `proc_bind`); the thread count stays dynamic.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StaticVersion {
    /// `#pragma GCC optimize` flag strings, base level first
    /// (e.g. `["O2", "no-inline-functions"]`).
    pub flags: Vec<String>,
    /// `proc_bind` clause value (`"close"` or `"spread"`).
    pub proc_bind: String,
}

impl StaticVersion {
    /// Creates a static version.
    pub fn new(
        flags: impl IntoIterator<Item = impl Into<String>>,
        proc_bind: impl Into<String>,
    ) -> Self {
        StaticVersion {
            flags: flags.into_iter().map(Into::into).collect(),
            proc_bind: proc_bind.into(),
        }
    }
}

/// Outcome of the Multiversioning strategy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Multiversioned {
    /// Per-version clone function names, index = version id.
    pub version_functions: Vec<String>,
    /// The dispatch wrapper's name.
    pub wrapper: String,
    /// The version-selection global variable name.
    pub version_var: String,
    /// The thread-count global variable name.
    pub threads_var: String,
    /// Number of kernel call sites redirected to the wrapper.
    pub redirected_calls: usize,
}

/// Applies the Multiversioning strategy to `kernel` for the given static
/// versions.
///
/// # Errors
///
/// Returns [`WeaveError`] if the kernel does not exist or has no body.
pub fn multiversioning(
    weaver: &mut Weaver,
    kernel: &str,
    versions: &[StaticVersion],
) -> Result<Multiversioned, WeaveError> {
    if versions.is_empty() {
        return Err(WeaveError("no static versions requested".into()));
    }
    let (ret, params) = weaver.query_signature(kernel)?;

    // Clone per static configuration, then parallelise each clone.
    let mut version_functions = Vec::with_capacity(versions.len());
    for (i, version) in versions.iter().enumerate() {
        let clone_name = format!("{kernel}_v{i}");
        weaver.clone_function(
            kernel,
            &clone_name,
            vec![Pragma::gcc_optimize(version.flags.clone())],
        )?;
        // Re-inspect the clone's loops (per-clone attribute checks, as
        // the aspect engine does when matching the loop pointcut in each
        // cloned body).
        let loops = weaver.select_outer_loops(&clone_name)?;
        for &loop_index in loops.iter().rev() {
            let omp = Pragma::omp(
                "parallel for",
                vec![
                    OmpClause::NumThreads(THREADS_VAR.to_string()),
                    OmpClause::ProcBind(version.proc_bind.clone()),
                ],
            );
            weaver.insert_pragma_before_stmt(&clone_name, loop_index, omp)?;
        }
        version_functions.push(clone_name);
    }

    // Control variables read by the wrapper and the OpenMP clauses.
    weaver.insert_global(Decl::new(Type::Int, VERSION_VAR).with_init(Init::Expr(Expr::int(0))));
    weaver.insert_global(Decl::new(Type::Int, THREADS_VAR).with_init(Init::Expr(Expr::int(1))));

    // The dispatch wrapper, inserted right after the last clone so it is
    // defined before any caller (C forward-declaration rules).
    let wrapper = format!("{kernel}_wrapper");
    let last_clone = version_functions.last().expect("at least one version");
    weaver.insert_function_after(
        last_clone,
        build_wrapper(&wrapper, &ret, &params, &version_functions),
    )?;

    // Redirect every call site (the wrapper itself calls the clones).
    let excluded: Vec<String> = version_functions
        .iter()
        .cloned()
        .chain([wrapper.clone(), kernel.to_string()])
        .collect();
    let redirected_calls = weaver.replace_calls(kernel, &wrapper, &excluded);

    Ok(Multiversioned {
        version_functions,
        wrapper,
        version_var: VERSION_VAR.to_string(),
        threads_var: THREADS_VAR.to_string(),
        redirected_calls,
    })
}

fn build_wrapper(
    name: &str,
    ret: &Type,
    params: &[Param],
    version_functions: &[String],
) -> Function {
    let args: Vec<Expr> = params.iter().map(|p| Expr::ident(&p.name)).collect();
    let is_void = *ret == Type::Void;
    let mut stmts = Vec::new();
    for (i, vf) in version_functions.iter().enumerate() {
        let call = Expr::call(vf.clone(), args.clone());
        let body = if is_void {
            vec![Stmt::Expr(call), Stmt::Return(None)]
        } else {
            vec![Stmt::Return(Some(call))]
        };
        stmts.push(Stmt::If {
            cond: Expr::binary(BinaryOp::Eq, Expr::ident(VERSION_VAR), Expr::int(i as i64)),
            then_branch: Block::new(body),
            else_branch: None,
        });
    }
    // Fallback: version 0.
    let fallback = Expr::call(version_functions[0].clone(), args);
    if is_void {
        stmts.push(Stmt::Expr(fallback));
    } else {
        stmts.push(Stmt::Return(Some(fallback)));
    }
    Function {
        ret: ret.clone(),
        name: name.to_string(),
        params: params.to_vec(),
        body: Some(Block::new(stmts)),
        is_static: false,
        pragmas: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    const SRC: &str = "\
void kernel_demo(double alpha, int n) {
    for (int i = 0; i < n; i++) { alpha += 1.0; }
    for (int j = 0; j < n; j++) { alpha -= 1.0; }
}
int main() {
    kernel_demo(1.5, 100);
    return 0;
}
";

    fn versions(n: usize) -> Vec<StaticVersion> {
        (0..n)
            .map(|i| {
                StaticVersion::new(
                    [format!("O{}", (i % 3) + 1)],
                    if i % 2 == 0 { "close" } else { "spread" },
                )
            })
            .collect()
    }

    fn run(
        n: usize,
    ) -> (
        minic::TranslationUnit,
        Multiversioned,
        crate::WeavingMetrics,
    ) {
        let mut w = Weaver::new(parse(SRC).unwrap());
        let mv = multiversioning(&mut w, "kernel_demo", &versions(n)).unwrap();
        let (tu, m) = w.finish();
        (tu, mv, m)
    }

    #[test]
    fn creates_one_clone_per_version() {
        let (tu, mv, _) = run(4);
        assert_eq!(mv.version_functions.len(), 4);
        for vf in &mv.version_functions {
            let f = tu.function(vf).expect("clone exists");
            assert_eq!(f.pragmas.len(), 1, "GCC optimize pragma attached");
            assert!(f.pragmas[0].as_gcc_optimize().is_some());
        }
    }

    #[test]
    fn clones_get_omp_pragmas_on_outer_loops() {
        let (tu, mv, _) = run(2);
        let f = tu.function(&mv.version_functions[1]).unwrap();
        let body = f.body.as_ref().unwrap();
        // pragma, for, pragma, for
        let pragmas: Vec<_> = body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::Pragma(p) => p.as_omp(),
                _ => None,
            })
            .collect();
        assert_eq!(pragmas.len(), 2);
        for p in pragmas {
            assert_eq!(p.num_threads(), Some(THREADS_VAR));
            assert_eq!(p.proc_bind(), Some("spread"));
        }
    }

    #[test]
    fn wrapper_dispatches_on_version_variable() {
        let (tu, mv, _) = run(3);
        let w = tu.function(&mv.wrapper).expect("wrapper exists");
        let printed = minic::print(&tu);
        assert!(printed.contains(&format!("if ({} == 0)", VERSION_VAR)));
        assert!(printed.contains(&format!("if ({} == 2)", VERSION_VAR)));
        // Wrapper keeps the kernel signature.
        assert_eq!(w.params.len(), 2);
        assert_eq!(w.ret, Type::Void);
    }

    #[test]
    fn call_sites_redirected_to_wrapper() {
        let (tu, mv, _) = run(2);
        assert_eq!(mv.redirected_calls, 1);
        let printed = minic::print(&tu);
        assert!(printed.contains("kernel_demo_wrapper(1.5, 100)"));
    }

    #[test]
    fn control_globals_inserted_before_functions() {
        let (tu, _, _) = run(2);
        let printed = minic::print(&tu);
        let version_pos = printed.find(VERSION_VAR).unwrap();
        let kernel_pos = printed.find("void kernel_demo").unwrap();
        assert!(version_pos < kernel_pos);
        assert!(printed.contains(&format!("int {THREADS_VAR} = 1;")));
    }

    #[test]
    fn weaved_output_is_valid_c() {
        let (tu, _, _) = run(16);
        let printed = minic::print(&tu);
        let reparsed = minic::parse(&printed).expect("valid C");
        assert_eq!(tu, reparsed);
    }

    #[test]
    fn loc_grows_roughly_linearly_with_versions() {
        let (_, _, m4) = run(4);
        let (_, _, m16) = run(16);
        assert!(m16.weaved_loc > m4.weaved_loc * 2);
        assert!(m16.actions > m4.actions * 2);
        assert!(m16.attributes > m4.attributes * 2);
    }

    #[test]
    fn empty_version_list_is_an_error() {
        let mut w = Weaver::new(parse(SRC).unwrap());
        assert!(multiversioning(&mut w, "kernel_demo", &[]).is_err());
    }

    #[test]
    fn missing_kernel_is_an_error() {
        let mut w = Weaver::new(parse(SRC).unwrap());
        assert!(multiversioning(&mut w, "nope", &versions(2)).is_err());
    }
}
