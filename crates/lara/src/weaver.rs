//! The weaving engine: join-point queries and code actions over a
//! `minic` AST, with attribute/action accounting (the MANET role).
//!
//! Every `select_*`/`query_*` method *checks attributes* of the program
//! (and bumps the `attributes` counter per inspected property, as the
//! paper's Att column counts); every `insert_*`/`clone_*`/`replace_*`
//! method *performs actions* (the Act column).

use crate::metrics::WeavingMetrics;
use minic::ast::*;
use minic::pragma::Pragma;
use minic::visit::map_exprs_in_stmt;
use minic::TranslationUnit;
use std::fmt;

/// Error produced by weaving operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WeaveError(pub String);

impl fmt::Display for WeaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "weave error: {}", self.0)
    }
}

impl std::error::Error for WeaveError {}

/// The weaver: owns the program being transformed plus the metric
/// counters.
#[derive(Debug, Clone)]
pub struct Weaver {
    tu: TranslationUnit,
    attributes: usize,
    actions: usize,
    original_loc: usize,
}

impl Weaver {
    /// Starts weaving over a parsed program.
    pub fn new(tu: TranslationUnit) -> Self {
        let original_loc = minic::logical_loc(&tu);
        Weaver {
            tu,
            attributes: 0,
            actions: 0,
            original_loc,
        }
    }

    /// The current program.
    pub fn program(&self) -> &TranslationUnit {
        &self.tu
    }

    /// Finishes weaving: returns the transformed program and the metrics.
    pub fn finish(self) -> (TranslationUnit, WeavingMetrics) {
        let weaved_loc = minic::logical_loc(&self.tu);
        (
            self.tu,
            WeavingMetrics {
                attributes: self.attributes,
                actions: self.actions,
                original_loc: self.original_loc,
                weaved_loc,
            },
        )
    }

    /// Metrics so far (without consuming the weaver).
    pub fn metrics(&self) -> WeavingMetrics {
        WeavingMetrics {
            attributes: self.attributes,
            actions: self.actions,
            original_loc: self.original_loc,
            weaved_loc: minic::logical_loc(&self.tu),
        }
    }

    fn att(&mut self, n: usize) {
        self.attributes += n;
    }

    fn act(&mut self, n: usize) {
        self.actions += n;
    }

    // ----- queries (attribute checks) ---------------------------------

    /// Finds a function definition by name. Checks the `name` attribute
    /// of every function until the match (as an aspect engine matching a
    /// pointcut would).
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the function does not exist.
    pub fn select_function(&mut self, name: &str) -> Result<Function, WeaveError> {
        let mut checked = 0;
        let mut found = None;
        for item in &self.tu.items {
            if let Item::Function(f) = item {
                checked += 1;
                if f.name == name && f.body.is_some() {
                    found = Some(f.clone());
                    break;
                }
            }
        }
        self.att(checked);
        found.ok_or_else(|| WeaveError(format!("function `{name}` not found")))
    }

    /// Reads a function's signature attributes (name, return type, every
    /// parameter's name and type).
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the function does not exist.
    pub fn query_signature(&mut self, name: &str) -> Result<(Type, Vec<Param>), WeaveError> {
        let f = self.select_function(name)?;
        // name + return type + (type, name) per parameter
        self.att(2 + 2 * f.params.len());
        Ok((f.ret.clone(), f.params.clone()))
    }

    /// Collects the indices (paths) of the outermost `for` loops of a
    /// function body. Inspects every top-level statement's kind plus,
    /// for pragmas, their payload (the "OpenMP pragma information" the
    /// paper's Att column mentions).
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the function does not exist.
    pub fn select_outer_loops(&mut self, name: &str) -> Result<Vec<usize>, WeaveError> {
        let f = self.select_function(name)?;
        let body = f.body.as_ref().expect("definition");
        let mut out = Vec::new();
        let mut checked = 0;
        for (i, s) in body.stmts.iter().enumerate() {
            checked += 1;
            match s {
                Stmt::For { .. } => {
                    // Before parallelising, the strategy inspects the loop
                    // header: init clause, bound and step (three further
                    // attribute checks per candidate loop).
                    checked += 3;
                    out.push(i);
                }
                Stmt::Pragma(_) => checked += 1,
                _ => {}
            }
        }
        self.att(checked);
        Ok(out)
    }

    /// Counts call expressions to `callee` in the whole program,
    /// inspecting every call site.
    pub fn select_calls_to(&mut self, callee: &str) -> usize {
        let mut total_calls = 0usize;
        let mut matching = 0usize;
        for item in &mut self.tu.items {
            if let Item::Function(f) = item {
                if let Some(body) = &mut f.body {
                    for s in &mut body.stmts {
                        map_exprs_in_stmt(s, &mut |e| {
                            if let Expr::Call { callee: c, .. } = e {
                                total_calls += 1;
                                if c == callee {
                                    matching += 1;
                                }
                            }
                            None
                        });
                    }
                }
            }
        }
        self.att(total_calls);
        matching
    }

    // ----- actions -----------------------------------------------------

    /// Clones a function under a new name, attaching the given pragmas
    /// to the clone, and appends it after the original.
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the source function does not exist.
    pub fn clone_function(
        &mut self,
        src: &str,
        new_name: &str,
        pragmas: Vec<Pragma>,
    ) -> Result<(), WeaveError> {
        let mut f = self.select_function(src)?;
        let pragma_count = pragmas.len();
        f.name = new_name.to_string();
        f.pragmas = pragmas;
        let pos = self
            .tu
            .items
            .iter()
            .position(|it| matches!(it, Item::Function(g) if g.name == src))
            .expect("function located by select_function");
        self.tu.items.insert(pos + 1, Item::Function(f));
        // clone + rename + each pragma attachment
        self.act(2 + pragma_count);
        Ok(())
    }

    /// Inserts an OpenMP pragma before the `stmt_index`-th statement of
    /// `function`'s body.
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] on a missing function or out-of-range index.
    pub fn insert_pragma_before_stmt(
        &mut self,
        function: &str,
        stmt_index: usize,
        pragma: Pragma,
    ) -> Result<(), WeaveError> {
        let f = self
            .tu
            .function_mut(function)
            .ok_or_else(|| WeaveError(format!("function `{function}` not found")))?;
        let body = f.body.as_mut().expect("definition");
        if stmt_index > body.stmts.len() {
            return Err(WeaveError(format!(
                "statement index {stmt_index} out of range in `{function}`"
            )));
        }
        body.stmts.insert(stmt_index, Stmt::Pragma(pragma));
        self.act(1);
        Ok(())
    }

    /// Inserts a global declaration ahead of the first function.
    pub fn insert_global(&mut self, decl: Decl) {
        let pos = self.tu.first_function_index();
        self.tu.items.insert(pos, Item::Global(vec![decl]));
        self.act(1);
    }

    /// Inserts an `#include` at the top of the file (after existing
    /// includes), unless it is already present.
    pub fn insert_include(&mut self, include: &str) {
        let exists = self
            .tu
            .items
            .iter()
            .any(|it| matches!(it, Item::Include(s) if s == include));
        self.att(1); // checked the "already included" attribute
        if exists {
            return;
        }
        let pos = self
            .tu
            .items
            .iter()
            .rposition(|it| matches!(it, Item::Include(_)))
            .map(|p| p + 1)
            .unwrap_or(0);
        self.tu
            .items
            .insert(pos, Item::Include(include.to_string()));
        self.act(1);
    }

    /// Appends a brand-new function definition at the end of the file.
    pub fn add_function(&mut self, f: Function) {
        let loc = minic::function_loc(&f);
        self.tu.items.push(Item::Function(f));
        // One action per generated logical line (the wrapper is emitted
        // line by line, as the LARA strategy does with code insertions).
        self.act(loc);
    }

    /// Inserts a brand-new function definition right after the function
    /// named `after` — so generated code is declared before its callers,
    /// as C requires.
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] if `after` does not exist.
    pub fn insert_function_after(&mut self, after: &str, f: Function) -> Result<(), WeaveError> {
        let pos = self
            .tu
            .items
            .iter()
            .rposition(|it| matches!(it, Item::Function(g) if g.name == after))
            .ok_or_else(|| WeaveError(format!("function `{after}` not found")))?;
        let loc = minic::function_loc(&f);
        self.tu.items.insert(pos + 1, Item::Function(f));
        self.act(loc);
        Ok(())
    }

    /// Inserts statements at the front of a function body.
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the function does not exist.
    pub fn insert_stmts_at_start(
        &mut self,
        function: &str,
        stmts: Vec<Stmt>,
    ) -> Result<(), WeaveError> {
        let n = stmts.len();
        let f = self
            .tu
            .function_mut(function)
            .ok_or_else(|| WeaveError(format!("function `{function}` not found")))?;
        let body = f.body.as_mut().expect("definition");
        for (i, s) in stmts.into_iter().enumerate() {
            body.stmts.insert(i, s);
        }
        self.act(n);
        Ok(())
    }

    /// Replaces every call to `from` with a call to `to` (same
    /// arguments) everywhere except inside `excluded` functions.
    /// Returns the number of replaced call sites.
    pub fn replace_calls(&mut self, from: &str, to: &str, excluded: &[String]) -> usize {
        let mut replaced = 0usize;
        for item in &mut self.tu.items {
            if let Item::Function(f) = item {
                if excluded.iter().any(|e| e == &f.name) {
                    continue;
                }
                if let Some(body) = &mut f.body {
                    for s in &mut body.stmts {
                        map_exprs_in_stmt(s, &mut |e| match e {
                            Expr::Call { callee, args } if callee == from => {
                                replaced += 1;
                                Some(Expr::call(to, args.clone()))
                            }
                            _ => None,
                        });
                    }
                }
            }
        }
        self.act(replaced);
        replaced
    }

    /// Surrounds every top-level-or-nested statement that is exactly a
    /// call to `callee` (inside `function`) with `before` and `after`
    /// statements, preserving the call. Returns the number of sites.
    ///
    /// # Errors
    ///
    /// Returns [`WeaveError`] when the function does not exist.
    pub fn surround_call_statements(
        &mut self,
        function: &str,
        callee: &str,
        before: Vec<Stmt>,
        after: Vec<Stmt>,
    ) -> Result<usize, WeaveError> {
        let f = self
            .tu
            .function_mut(function)
            .ok_or_else(|| WeaveError(format!("function `{function}` not found")))?;
        let body = f.body.as_mut().expect("definition");
        let mut sites = 0usize;
        surround_in_block(body, callee, &before, &after, &mut sites);
        self.act(sites * (before.len() + after.len()));
        Ok(sites)
    }
}

fn is_call_to(s: &Stmt, callee: &str) -> bool {
    matches!(s, Stmt::Expr(Expr::Call { callee: c, .. }) if c == callee)
}

fn surround_in_block(
    block: &mut Block,
    callee: &str,
    before: &[Stmt],
    after: &[Stmt],
    sites: &mut usize,
) {
    let mut i = 0;
    while i < block.stmts.len() {
        if is_call_to(&block.stmts[i], callee) {
            let call = block.stmts.remove(i);
            let mut wrapped = Vec::with_capacity(before.len() + 1 + after.len());
            wrapped.extend(before.iter().cloned());
            wrapped.push(call);
            wrapped.extend(after.iter().cloned());
            block.stmts.insert(i, Stmt::Block(Block::new(wrapped)));
            *sites += 1;
            i += 1;
            continue;
        }
        match &mut block.stmts[i] {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                surround_in_block(then_branch, callee, before, after, sites);
                if let Some(eb) = else_branch {
                    surround_in_block(eb, callee, before, after, sites);
                }
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
                surround_in_block(body, callee, before, after, sites);
            }
            Stmt::Block(b) => surround_in_block(b, callee, before, after, sites),
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    const SRC: &str = "\
#include <stdio.h>
void kernel(int n) {
    for (int i = 0; i < n; i++) { n--; }
    for (int j = 0; j < n; j++) { n--; }
}
int main() {
    kernel(10);
    kernel(20);
    return 0;
}
";

    fn weaver() -> Weaver {
        Weaver::new(parse(SRC).unwrap())
    }

    #[test]
    fn select_function_counts_attributes() {
        let mut w = weaver();
        let f = w.select_function("main").unwrap();
        assert_eq!(f.name, "main");
        // kernel checked first, then main.
        assert_eq!(w.metrics().attributes, 2);
        assert!(w.select_function("nope").is_err());
    }

    #[test]
    fn query_signature_counts_param_attributes() {
        let mut w = weaver();
        let (ret, params) = w.query_signature("kernel").unwrap();
        assert_eq!(ret, Type::Void);
        assert_eq!(params.len(), 1);
        // select (1) + name/ret (2) + 2 per param (2)
        assert_eq!(w.metrics().attributes, 5);
    }

    #[test]
    fn select_outer_loops_finds_top_level_fors() {
        let mut w = weaver();
        let loops = w.select_outer_loops("kernel").unwrap();
        assert_eq!(loops, vec![0, 1]);
    }

    #[test]
    fn clone_function_attaches_pragmas() {
        let mut w = weaver();
        w.clone_function("kernel", "kernel_v0", vec![Pragma::gcc_optimize(["O2"])])
            .unwrap();
        let clone = w.program().function("kernel_v0").unwrap();
        assert_eq!(clone.pragmas.len(), 1);
        assert!(w.program().function("kernel").is_some(), "original kept");
        assert!(w.metrics().actions >= 3);
    }

    #[test]
    fn insert_pragma_lands_before_loop() {
        let mut w = weaver();
        w.insert_pragma_before_stmt(
            "kernel",
            0,
            Pragma::parse("omp parallel for num_threads(NT)"),
        )
        .unwrap();
        let f = w.program().function("kernel").unwrap();
        assert!(matches!(f.body.as_ref().unwrap().stmts[0], Stmt::Pragma(_)));
        assert!(matches!(
            f.body.as_ref().unwrap().stmts[1],
            Stmt::For { .. }
        ));
    }

    #[test]
    fn insert_pragma_out_of_range_errors() {
        let mut w = weaver();
        let p = Pragma::parse("omp parallel for");
        assert!(w.insert_pragma_before_stmt("kernel", 99, p).is_err());
    }

    #[test]
    fn replace_calls_rewrites_call_sites() {
        let mut w = weaver();
        let n = w.replace_calls("kernel", "kernel_wrapper", &[]);
        assert_eq!(n, 2);
        let printed = minic::print(w.program());
        assert!(printed.contains("kernel_wrapper(10)"));
        assert!(!printed.contains(" kernel(10)"));
    }

    #[test]
    fn replace_calls_respects_exclusions() {
        let mut w = weaver();
        let n = w.replace_calls("kernel", "kernel_wrapper", &["main".to_string()]);
        assert_eq!(n, 0);
    }

    #[test]
    fn surround_call_statements_wraps_sites() {
        let mut w = weaver();
        let before = vec![Stmt::Expr(Expr::call("margot_update", vec![]))];
        let after = vec![Stmt::Expr(Expr::call("margot_log", vec![]))];
        let sites = w
            .surround_call_statements("main", "kernel", before, after)
            .unwrap();
        assert_eq!(sites, 2);
        let printed = minic::print(w.program());
        let update_pos = printed.find("margot_update()").unwrap();
        let call_pos = printed.find("kernel(10)").unwrap();
        let log_pos = printed.find("margot_log()").unwrap();
        assert!(update_pos < call_pos && call_pos < log_pos, "{printed}");
    }

    #[test]
    fn insert_include_is_idempotent() {
        let mut w = weaver();
        w.insert_include("\"margot.h\"");
        w.insert_include("\"margot.h\"");
        let count = w
            .program()
            .items
            .iter()
            .filter(|it| matches!(it, Item::Include(s) if s == "\"margot.h\""))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn weaved_program_reparses() {
        let mut w = weaver();
        w.clone_function("kernel", "kernel_v0", vec![Pragma::gcc_optimize(["O3"])])
            .unwrap();
        w.insert_pragma_before_stmt(
            "kernel_v0",
            0,
            Pragma::parse("omp parallel for num_threads(__nt) proc_bind(close)"),
        )
        .unwrap();
        w.insert_global(Decl::new(Type::Int, "__nt"));
        w.replace_calls("kernel", "kernel_v0", &[]);
        let (tu, metrics) = w.finish();
        let printed = minic::print(&tu);
        let reparsed = minic::parse(&printed).expect("weaved program is valid C");
        assert_eq!(tu, reparsed);
        assert!(metrics.weaved_loc > metrics.original_loc);
        assert!(metrics.actions > 0 && metrics.attributes > 0);
    }

    #[test]
    fn metrics_loc_tracks_growth() {
        let mut w = weaver();
        let before = w.metrics().weaved_loc;
        w.insert_global(Decl::new(Type::Int, "__v"));
        assert_eq!(w.metrics().weaved_loc, before + 1);
    }
}
