//! Named optimisation states — mARGOt's mechanism for switching whole
//! requirement sets (rank + constraints) at runtime.
//!
//! The paper's Fig. 5 alternates between an *energy* state (maximize
//! Thr/W²) and a *performance* state (maximize Throughput). Instead of
//! mutating rank/constraints piecemeal, an application can register each
//! requirement set once and switch atomically by name.

use crate::metric::Metric;
use crate::requirements::{Constraint, Rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One named requirement set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizationState {
    /// The rank to optimise while in this state.
    pub rank: Rank,
    /// The constraints carving this state's feasible region.
    pub constraints: Vec<Constraint>,
}

impl OptimizationState {
    /// Creates a state with no constraints.
    pub fn new(rank: Rank) -> Self {
        OptimizationState {
            rank,
            constraints: Vec::new(),
        }
    }

    /// Builder-style: adds a constraint.
    pub fn with_constraint(mut self, c: Constraint) -> Self {
        self.constraints.push(c);
        self
    }
}

/// Error switching to an unknown state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownStateError(pub String);

impl fmt::Display for UnknownStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown optimization state `{}`", self.0)
    }
}

impl std::error::Error for UnknownStateError {}

/// A registry of named optimisation states with one active at a time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateRegistry {
    states: BTreeMap<String, OptimizationState>,
    active: String,
}

impl StateRegistry {
    /// Creates a registry with an initial (active) state.
    pub fn new(name: impl Into<String>, state: OptimizationState) -> Self {
        let name = name.into();
        let mut states = BTreeMap::new();
        states.insert(name.clone(), state);
        StateRegistry {
            states,
            active: name,
        }
    }

    /// Registers (or replaces) a state.
    pub fn register(&mut self, name: impl Into<String>, state: OptimizationState) {
        self.states.insert(name.into(), state);
    }

    /// The active state's name.
    pub fn active_name(&self) -> &str {
        &self.active
    }

    /// The active state.
    pub fn active(&self) -> &OptimizationState {
        self.states.get(&self.active).expect("active state exists")
    }

    /// Switches the active state by name.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownStateError`] if no state with that name exists;
    /// the previously active state stays in force.
    pub fn switch_to(&mut self, name: &str) -> Result<&OptimizationState, UnknownStateError> {
        if !self.states.contains_key(name) {
            return Err(UnknownStateError(name.to_string()));
        }
        self.active = name.to_string();
        Ok(self.active())
    }

    /// Iterates over `(name, state)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OptimizationState)> {
        self.states.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always at least one state (the constructor requires it).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The paper's Fig. 5 pair: an `energy` state (maximize Thr/W²) and
    /// a `performance` state (maximize Throughput), `energy` active.
    pub fn figure5() -> StateRegistry {
        let mut reg = StateRegistry::new(
            "energy",
            OptimizationState::new(Rank::throughput_per_watt2()),
        );
        reg.register(
            "performance",
            OptimizationState::new(Rank::maximize(Metric::throughput())),
        );
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Cmp;

    #[test]
    fn registry_starts_with_active_state() {
        let reg = StateRegistry::new(
            "base",
            OptimizationState::new(Rank::minimize(Metric::exec_time())),
        );
        assert_eq!(reg.active_name(), "base");
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn switch_to_known_state_changes_active() {
        let mut reg = StateRegistry::figure5();
        assert_eq!(reg.active_name(), "energy");
        let s = reg.switch_to("performance").unwrap();
        assert_eq!(s.rank, Rank::maximize(Metric::throughput()));
        assert_eq!(reg.active_name(), "performance");
    }

    #[test]
    fn switch_to_unknown_state_is_an_error_and_keeps_active() {
        let mut reg = StateRegistry::figure5();
        let err = reg.switch_to("turbo").unwrap_err();
        assert_eq!(err.0, "turbo");
        assert_eq!(reg.active_name(), "energy");
    }

    #[test]
    fn register_replaces_existing() {
        let mut reg = StateRegistry::figure5();
        reg.register(
            "energy",
            OptimizationState::new(Rank::minimize(Metric::energy()))
                .with_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 90.0, 5)),
        );
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.active().constraints.len(), 1);
    }

    #[test]
    fn iteration_is_name_ordered() {
        let reg = StateRegistry::figure5();
        let names: Vec<&str> = reg.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["energy", "performance"]);
    }

    #[test]
    fn states_serialize_roundtrip() {
        let reg = StateRegistry::figure5();
        let json = serde_json::to_string(&reg).unwrap();
        let back: StateRegistry = serde_json::from_str(&json).unwrap();
        assert_eq!(reg, back);
    }
}
