//! Application requirements: constraints and the rank function.
//!
//! mARGOt expresses requirements as a constrained multi-objective
//! optimisation problem: an ordered list of [`Constraint`]s (with
//! priorities) carves the feasible region; the [`Rank`] picks the best
//! point inside it.

use crate::metric::{Metric, MetricValues};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Cmp {
    /// Metric must be `< value`.
    LessThan,
    /// Metric must be `<= value`.
    LessOrEqual,
    /// Metric must be `> value`.
    GreaterThan,
    /// Metric must be `>= value`.
    GreaterOrEqual,
}

impl Cmp {
    /// Evaluates `observed cmp bound`.
    pub fn holds(self, observed: f64, bound: f64) -> bool {
        match self {
            Cmp::LessThan => observed < bound,
            Cmp::LessOrEqual => observed <= bound,
            Cmp::GreaterThan => observed > bound,
            Cmp::GreaterOrEqual => observed >= bound,
        }
    }
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cmp::LessThan => "<",
            Cmp::LessOrEqual => "<=",
            Cmp::GreaterThan => ">",
            Cmp::GreaterOrEqual => ">=",
        };
        f.write_str(s)
    }
}

/// A runtime-adjustable constraint on one metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Constraint {
    /// Constrained metric.
    pub metric: Metric,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Bound value (can be changed at runtime, e.g. a new power budget).
    pub value: f64,
    /// Priority: higher wins when the feasible region is empty.
    pub priority: u32,
}

impl Constraint {
    /// Creates a constraint.
    pub fn new(metric: Metric, cmp: Cmp, value: f64, priority: u32) -> Self {
        Constraint {
            metric,
            cmp,
            value,
            priority,
        }
    }

    /// Whether the metric bundle satisfies the constraint. Missing
    /// metrics count as violations (the AS-RTM cannot vouch for them).
    pub fn satisfied_by(&self, values: &MetricValues) -> bool {
        self.satisfied_with(|m| values.get(m))
    }

    /// [`satisfied_by`](Self::satisfied_by) over a metric lookup
    /// function instead of a materialised bundle — the AS-RTM's
    /// allocation-free hot path.
    pub fn satisfied_with(&self, get: impl Fn(&Metric) -> Option<f64>) -> bool {
        get(&self.metric).is_some_and(|v| self.cmp.holds(v, self.value))
    }

    /// Violation magnitude, normalised by the bound: 0 when satisfied.
    pub fn violation(&self, values: &MetricValues) -> f64 {
        self.violation_with(|m| values.get(m))
    }

    /// [`violation`](Self::violation) over a metric lookup function.
    pub fn violation_with(&self, get: impl Fn(&Metric) -> Option<f64>) -> f64 {
        let Some(v) = get(&self.metric) else {
            return f64::INFINITY;
        };
        if self.cmp.holds(v, self.value) {
            return 0.0;
        }
        let scale = self.value.abs().max(1e-12);
        (v - self.value).abs() / scale
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} (prio {})",
            self.metric, self.cmp, self.value, self.priority
        )
    }
}

/// Optimisation direction of the rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankDirection {
    /// Larger rank value wins.
    Maximize,
    /// Smaller rank value wins.
    Minimize,
}

/// The rank: a scalarisation of one or more metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rank {
    /// Direction.
    pub direction: RankDirection,
    /// Composition of metric fields.
    pub kind: RankKind,
}

/// How metric fields combine into the rank value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RankKind {
    /// `Σ coef · metric`
    Linear(Vec<(Metric, f64)>),
    /// `Π metric ^ exponent` — used for the paper's Thr/W² objective
    /// (`throughput^1 · power^-2`).
    Geometric(Vec<(Metric, f64)>),
}

impl Rank {
    /// Maximize a single metric.
    pub fn maximize(metric: Metric) -> Rank {
        Rank {
            direction: RankDirection::Maximize,
            kind: RankKind::Linear(vec![(metric, 1.0)]),
        }
    }

    /// Minimize a single metric.
    pub fn minimize(metric: Metric) -> Rank {
        Rank {
            direction: RankDirection::Minimize,
            kind: RankKind::Linear(vec![(metric, 1.0)]),
        }
    }

    /// The paper's energy-efficiency objective: maximize Thr/W².
    pub fn throughput_per_watt2() -> Rank {
        Rank {
            direction: RankDirection::Maximize,
            kind: RankKind::Geometric(vec![(Metric::throughput(), 1.0), (Metric::power(), -2.0)]),
        }
    }

    /// Evaluates the rank on a metric bundle; `None` if a field is
    /// missing or the result is not finite.
    pub fn value(&self, values: &MetricValues) -> Option<f64> {
        self.value_with(|m| values.get(m))
    }

    /// [`value`](Self::value) over a metric lookup function instead of
    /// a materialised bundle — the AS-RTM's allocation-free hot path.
    pub fn value_with(&self, get: impl Fn(&Metric) -> Option<f64>) -> Option<f64> {
        let v = match &self.kind {
            RankKind::Linear(terms) => {
                let mut acc = 0.0;
                for (m, coef) in terms {
                    acc += coef * get(m)?;
                }
                acc
            }
            RankKind::Geometric(terms) => {
                let mut acc = 1.0;
                for (m, exp) in terms {
                    let base = get(m)?;
                    if base <= 0.0 {
                        return None;
                    }
                    acc *= base.powf(*exp);
                }
                acc
            }
        };
        v.is_finite().then_some(v)
    }

    /// Whether rank value `a` beats `b` under this rank's direction.
    pub fn better(&self, a: f64, b: f64) -> bool {
        match self.direction {
            RankDirection::Maximize => a > b,
            RankDirection::Minimize => a < b,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(time: f64, power: f64) -> MetricValues {
        MetricValues::new()
            .with(Metric::exec_time(), time)
            .with(Metric::power(), power)
            .with(Metric::throughput(), 1.0 / time)
    }

    #[test]
    fn cmp_semantics() {
        assert!(Cmp::LessThan.holds(1.0, 2.0));
        assert!(!Cmp::LessThan.holds(2.0, 2.0));
        assert!(Cmp::LessOrEqual.holds(2.0, 2.0));
        assert!(Cmp::GreaterThan.holds(3.0, 2.0));
        assert!(Cmp::GreaterOrEqual.holds(2.0, 2.0));
    }

    #[test]
    fn constraint_satisfaction_and_violation() {
        let c = Constraint::new(Metric::power(), Cmp::LessOrEqual, 100.0, 10);
        assert!(c.satisfied_by(&values(1.0, 90.0)));
        assert!(!c.satisfied_by(&values(1.0, 130.0)));
        assert_eq!(c.violation(&values(1.0, 90.0)), 0.0);
        assert!((c.violation(&values(1.0, 130.0)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn missing_metric_is_a_violation() {
        let c = Constraint::new(Metric::energy(), Cmp::LessThan, 5.0, 1);
        assert!(!c.satisfied_by(&values(1.0, 90.0)));
        assert!(c.violation(&values(1.0, 90.0)).is_infinite());
    }

    #[test]
    fn linear_rank_minimize_time() {
        let r = Rank::minimize(Metric::exec_time());
        let fast = r.value(&values(0.5, 120.0)).unwrap();
        let slow = r.value(&values(1.5, 60.0)).unwrap();
        assert!(r.better(fast, slow));
    }

    #[test]
    fn thr_per_watt2_prefers_efficient_point() {
        let r = Rank::throughput_per_watt2();
        // Config A: thr 10, power 100 -> 10/10000 = 1e-3
        // Config B: thr 5, power 60  -> 5/3600  = 1.39e-3 (wins)
        let a = r.value(&values(0.1, 100.0)).unwrap();
        let b = r.value(&values(0.2, 60.0)).unwrap();
        assert!(r.better(b, a), "a={a} b={b}");
    }

    #[test]
    fn geometric_rank_rejects_nonpositive_bases() {
        let r = Rank::throughput_per_watt2();
        let mut v = values(1.0, 100.0);
        v.insert(Metric::power(), 0.0);
        assert_eq!(r.value(&v), None);
    }

    #[test]
    fn rank_missing_field_is_none() {
        let r = Rank::maximize(Metric::energy());
        assert_eq!(r.value(&values(1.0, 50.0)), None);
    }

    #[test]
    fn display_forms() {
        let c = Constraint::new(Metric::power(), Cmp::LessOrEqual, 100.0, 20);
        assert_eq!(c.to_string(), "power_w <= 100 (prio 20)");
    }
}
