//! The shared online knowledge base: the crowdsourcing layer of the
//! paper's *online* autotuning loop.
//!
//! A [`SharedKnowledge`] starts from design-time knowledge and keeps a
//! sliding observation window per `(operating point, metric)`, with the
//! same drop-and-count policy for non-finite samples as [`Monitor`](crate::Monitor).
//! Deployed instances *publish* their runtime observations into it;
//! once a point has gathered enough observations, its expected EFP
//! values are the window means instead of the design-time predictions —
//! so the whole fleet converges onto what the deployment platform
//! actually does, even under drift (a machine running hotter or slower
//! than profiled).
//!
//! # Columnar arena
//!
//! Points are stored in a dense **columnar arena** rather than a map of
//! monitors per point: configs are interned to `(shard, slot)` indices
//! at construction, and each shard keeps one structure-of-arrays column
//! per metric — a flat `slots × window` ring-buffer block plus parallel
//! `start`/`len`/`total` vectors. A publish is an O(1) index lookup
//! followed by a ring write; no per-observation allocation, no tree
//! rebalancing, and window means stream over contiguous memory. The
//! immutable layout (design points, config index, slot→position map) is
//! shared behind an `Arc`, so [`fork`](SharedKnowledge::fork)ing the
//! base for checkpointing copies only the mutable column state.
//!
//! # Sharding
//!
//! The points are split into `S` **lock shards** (deterministic
//! config-hash → shard), so concurrent publishes to different operating
//! points contend only when they land in the same shard — the layer
//! scales with the fleet instead of serialising every instance on one
//! global mutex. Batch publishes ([`publish_batch`]) group a whole
//! round of observations by shard and merge each group under a single
//! lock acquisition.
//!
//! # Versioning
//!
//! A global **epoch counter** plus one epoch per shard let readers
//! detect refreshed knowledge with one atomic load. Epochs advance
//! **iff an effective value actually changed**: a publish that leaves
//! every window mean where it was (an empty observation, or a value
//! equal to the current mean) does not invalidate anybody's snapshot.
//! Changed points are tracked as a per-shard *dirty set*; a coordinator
//! drains them straight out of the arena — patching its cached
//! [`Knowledge`] in place with [`drain_changes_into`], or materialising
//! a [`KnowledgeDelta`] for the wire with [`drain_changes`] — instead
//! of rebuilding the whole effective knowledge.
//!
//! [`publish_batch`]: SharedKnowledge::publish_batch
//! [`drain_changes`]: SharedKnowledge::drain_changes
//! [`drain_changes_into`]: SharedKnowledge::drain_changes_into

use crate::knowledge::{Knowledge, OperatingPoint};
use crate::metric::{Metric, MetricValues};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Default number of lock shards ([`SharedKnowledge::with_shards`]).
pub const DEFAULT_SHARDS: usize = 16;

/// The immutable half of the arena, shared (`Arc`) between the base and
/// its [`fork`](SharedKnowledge::fork)s: design points, the config →
/// `(shard, slot)` index, and the slot → knowledge-position map.
#[derive(Debug)]
struct Layout<K> {
    design: Knowledge<K>,
    /// Config → shard/slot, fixed at construction, so a publish is an
    /// O(1) lookup that touches only its own shard's lock.
    index: HashMap<K, PointRef>,
    /// `positions[shard][slot]` = position of that slot's point in the
    /// effective [`Knowledge`] (the design knowledge's insertion
    /// order), so sharding never reorders the published view.
    positions: Vec<Vec<usize>>,
    window: usize,
}

/// One metric's structure-of-arrays column within a shard: a flat
/// `slots × window` block of ring buffers plus parallel ring
/// bookkeeping, mirroring [`Monitor`](crate::Monitor)'s sliding-window semantics
/// bit-for-bit (same push order, same oldest→newest summation).
#[derive(Debug, Clone)]
struct MetricCol {
    /// Ring storage; slot `s` owns `buf[s*window .. (s+1)*window]`.
    buf: Vec<f64>,
    /// Ring start (index of the oldest sample) per slot.
    start: Vec<u32>,
    /// Samples currently in the ring per slot.
    len: Vec<u32>,
    /// Total accepted observations ever per slot (ages past the
    /// window), gating `min_observations` exactly like
    /// [`Monitor::total_observations`](crate::Monitor::total_observations).
    total: Vec<u64>,
}

impl MetricCol {
    fn new(slots: usize, window: usize) -> Self {
        MetricCol {
            buf: vec![0.0; slots * window],
            start: vec![0; slots],
            len: vec![0; slots],
            total: vec![0; slots],
        }
    }

    /// Pushes one (finite) sample into `slot`'s ring, evicting the
    /// oldest at capacity — the [`Monitor::push`](crate::Monitor::push) accept path.
    fn push(&mut self, slot: usize, window: usize, value: f64) {
        let base = slot * window;
        let start = self.start[slot] as usize;
        let len = self.len[slot] as usize;
        if len == window {
            self.buf[base + start] = value;
            self.start[slot] = ((start + 1) % window) as u32;
        } else {
            self.buf[base + (start + len) % window] = value;
            self.len[slot] = (len + 1) as u32;
        }
        self.total[slot] += 1;
    }

    /// Window mean of `slot`, summing oldest→newest from 0.0 — the
    /// exact float-order of [`Monitor::mean`](crate::Monitor::mean), so the arena is
    /// bit-identical to the monitor-per-point representation.
    fn mean(&self, slot: usize, window: usize) -> Option<f64> {
        let len = self.len[slot] as usize;
        if len == 0 {
            return None;
        }
        let base = slot * window;
        let start = self.start[slot] as usize;
        let mut sum = 0.0;
        for i in 0..len {
            sum += self.buf[base + (start + i) % window];
        }
        Some(sum / len as f64)
    }

    /// The ring contents of `slot`, oldest→newest.
    fn ordered(&self, slot: usize, window: usize) -> Vec<f64> {
        let len = self.len[slot] as usize;
        let base = slot * window;
        let start = self.start[slot] as usize;
        (0..len)
            .map(|i| self.buf[base + (start + i) % window])
            .collect()
    }
}

/// One lock shard: the mutable columnar state for its slots plus the
/// dirty slots whose effective values changed since the last drain.
#[derive(Debug)]
struct Shard {
    state: Mutex<ShardState>,
    /// This shard's epoch: advanced once per publish that changed an
    /// effective value of one of its points. Lock-free to read.
    epoch: AtomicU64,
}

#[derive(Debug, Clone)]
struct ShardState {
    /// Number of slots (points) in this shard.
    slots: usize,
    /// Metric universe of this shard in first-published order;
    /// parallel to `cols`.
    metrics: Vec<Metric>,
    cols: Vec<MetricCol>,
    /// Slots whose effective point changed since the last drain,
    /// ordered so drains are deterministic.
    dirty: BTreeSet<usize>,
}

impl ShardState {
    fn col_index(&self, metric: &Metric) -> Option<usize> {
        self.metrics.iter().position(|m| m == metric)
    }

    fn ensure_col(&mut self, metric: &Metric, window: usize) -> usize {
        match self.col_index(metric) {
            Some(i) => i,
            None => {
                self.metrics.push(metric.clone());
                self.cols.push(MetricCol::new(self.slots, window));
                self.cols.len() - 1
            }
        }
    }

    /// The effective value of one metric of `slot`: the window mean
    /// once it is sufficiently observed (and finite), the design-time
    /// expectation otherwise.
    fn effective_value(
        &self,
        slot: usize,
        metric: &Metric,
        design: &MetricValues,
        window: usize,
        min_observations: u64,
    ) -> Option<f64> {
        if let Some(c) = self.col_index(metric) {
            let col = &self.cols[c];
            if col.total[slot] >= min_observations {
                if let Some(mean) = col.mean(slot, window) {
                    if mean.is_finite() {
                        return Some(mean);
                    }
                }
            }
        }
        design.get(metric)
    }
}

/// Where a config lives: `(shard, slot within the shard)`.
#[derive(Debug, Clone, Copy)]
struct PointRef {
    shard: usize,
    slot: usize,
}

/// A batch of refreshed operating points between two epochs: what a
/// coordinator hands its instances instead of a full [`Knowledge`]
/// clone. Each entry is `(position in the knowledge, new effective
/// point)`.
///
/// Produced from [`SharedKnowledge::drain_changes`]; applied with
/// [`KnowledgeDelta::apply_to`]. An instance whose knowledge is at
/// `from_epoch` lands exactly on the `to_epoch` knowledge — bit-
/// identical to adopting a full snapshot.
///
/// Deltas serialise (serde, plus the binary wire codec in the
/// `socrates` crate), so a coordinator can ship them over a wire
/// instead of a shared address space — the distributed runtime's
/// knowledge-exchange payload (`socrates::transport`). The JSON schema
/// is pinned by a golden file in the `socrates` crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeDelta<K> {
    /// The epoch the receiver must be at for the patch to be exact.
    pub from_epoch: u64,
    /// The epoch the receiver is at after applying the patch.
    pub to_epoch: u64,
    /// `(position, refreshed point)` pairs, ascending by position.
    pub changed: Vec<(usize, OperatingPoint<K>)>,
}

impl<K: Clone + PartialEq> KnowledgeDelta<K> {
    /// Patches the changed points into `knowledge`. Returns `false`
    /// (and changes nothing) if any position is out of range or names a
    /// different configuration — the receiver's knowledge does not
    /// descend from the same design knowledge, and it must fall back to
    /// a full snapshot.
    ///
    /// **The caller is responsible for the epoch precondition**: a
    /// [`Knowledge`] carries no version, so this method cannot detect a
    /// receiver that is *behind* `from_epoch` (the configs still line
    /// up position by position). Applying a delta to knowledge older
    /// than `from_epoch` yields a mixed state that silently misses the
    /// points changed in between — check your tracked epoch against
    /// [`from_epoch`](Self::from_epoch) first and take a full
    /// [`SharedKnowledge::snapshot`] on mismatch, as the fleet's
    /// adoption path does.
    #[must_use]
    pub fn apply_to(&self, knowledge: &mut Knowledge<K>) -> bool {
        let compatible = self.changed.iter().all(|(pos, point)| {
            knowledge
                .points()
                .get(*pos)
                .is_some_and(|cur| cur.config == point.config)
        });
        if !compatible {
            return false;
        }
        for (pos, point) in &self.changed {
            knowledge.patch_point(*pos, point.clone());
        }
        true
    }

    /// Whether the delta patches nothing (the epochs may still differ
    /// for deltas constructed by external coordinators).
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }

    /// Number of patched points.
    pub fn len(&self) -> usize {
        self.changed.len()
    }
}

/// FNV-1a over the config's `Hash` impl: a *deterministic* hasher
/// (`RandomState` is seeded per process, which would make shard
/// assignment — and thus per-shard epochs — unreproducible between
/// runs).
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// The deterministic shard `config` maps to under `shards` lock shards:
/// FNV-1a over the config's `Hash` impl — exactly the assignment
/// [`SharedKnowledge`] uses internally, exposed so detached artifacts
/// (serialised snapshots, wire-side replicas) can group points by shard
/// without a live knowledge base in hand.
pub fn shard_index<K: Hash>(config: &K, shards: usize) -> usize {
    let mut hasher = Fnv1a(0xcbf2_9ce4_8422_2325);
    config.hash(&mut hasher);
    (hasher.finish() % shards as u64) as usize
}

/// FNV-1a content digest over `(position, operating point)` pairs:
/// folds each position, the config (via its `Hash` impl) and every
/// `(metric name, f64 bit pattern)` pair in metric order. Feed it one
/// shard's points in ascending position order and it reproduces
/// [`SharedKnowledge::shard_hash`] for that shard — the bit-identity
/// check between a live knowledge base and an external reconstruction
/// (e.g. a decoded snapshot fast-forwarded through its delta chain).
pub fn shard_content_hash<'a, K, I>(points: I) -> u64
where
    K: Hash + 'a,
    I: IntoIterator<Item = (usize, &'a OperatingPoint<K>)>,
{
    let mut hasher = Fnv1a(0xcbf2_9ce4_8422_2325);
    for (pos, point) in points {
        hasher.write_u64(pos as u64);
        point.config.hash(&mut hasher);
        hasher.write_u64(point.metrics.len() as u64);
        for (metric, value) in point.metrics.iter() {
            hasher.write(metric.as_str().as_bytes());
            hasher.write_u64(value.to_bits());
        }
    }
    hasher.finish()
}

/// A thread-safe, versioned knowledge base shared by a fleet of
/// adaptive-application instances.
///
/// # Examples
///
/// ```
/// use margot::{Knowledge, Metric, MetricValues, OperatingPoint, SharedKnowledge};
///
/// let mut design = Knowledge::new();
/// design.add(OperatingPoint::new(
///     1u32,
///     MetricValues::new().with(Metric::power(), 80.0),
/// ));
/// let shared = SharedKnowledge::new(design, 4);
/// let before = shared.epoch();
/// // The deployed machine runs hotter than the design-time profile.
/// shared.publish(&1, &MetricValues::new().with(Metric::power(), 96.0));
/// assert!(shared.epoch() > before);
/// let learned = shared.knowledge();
/// assert_eq!(learned.points()[0].metric(&Metric::power()), Some(96.0));
/// ```
#[derive(Debug)]
pub struct SharedKnowledge<K> {
    layout: Arc<Layout<K>>,
    shards: Vec<Shard>,
    /// Global epoch: total number of effective-knowledge changes.
    epoch: AtomicU64,
    min_observations: u64,
    /// Non-finite observed values dropped at publish (the
    /// [`Monitor::push`](crate::Monitor::push) policy, counted at the shared-knowledge
    /// level).
    dropped: AtomicU64,
}

impl<K: Clone + Eq + Hash> SharedKnowledge<K> {
    /// Wraps a design-time knowledge base; every published observation
    /// is merged through a sliding window of `window` samples per
    /// `(point, metric)`. Points are spread over [`DEFAULT_SHARDS`]
    /// lock shards ([`with_shards`](Self::with_shards) to tune).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (same contract as [`Monitor::new`](crate::Monitor::new)).
    pub fn new(design: Knowledge<K>, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let (layout, shards) = Self::build(design, window, DEFAULT_SHARDS);
        SharedKnowledge {
            layout: Arc::new(layout),
            shards,
            epoch: AtomicU64::new(0),
            min_observations: 1,
            dropped: AtomicU64::new(0),
        }
    }

    /// Builder-style: observations needed before a window mean overrides
    /// the design-time value of a metric (default 1).
    #[must_use]
    pub fn with_min_observations(mut self, min_observations: u64) -> Self {
        self.min_observations = min_observations.max(1);
        self
    }

    /// Builder-style: redistributes the points over `shards` lock
    /// shards. One shard reproduces the unsharded reference behaviour
    /// (every publish serialises on a single lock); the output is
    /// bit-identical at any shard count.
    ///
    /// Must be called **before the first publish**: resharding resets
    /// the per-shard epochs and dirty sets, which cannot be re-
    /// attributed once observations have merged.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, or if anything was already
    /// published (the epoch has moved).
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        assert_eq!(
            self.epoch(),
            0,
            "with_shards must be called before the first publish: resharding would \
             discard the per-shard epochs and dirty sets"
        );
        if shards == self.shards.len() {
            return self; // already laid out like this (e.g. the default)
        }
        // Window contents can exist at epoch 0 (published values that
        // exactly reproduce the design expectations change nothing);
        // carry them over to the new layout, keyed by position.
        let window = self.layout.window;
        let mut carried: Vec<Vec<(Metric, Vec<f64>, u64)>> =
            vec![Vec::new(); self.layout.design.len()];
        for (shard, s) in self.shards.iter_mut().enumerate() {
            let state = s.state.get_mut().unwrap_or_else(PoisonError::into_inner);
            for (c, metric) in state.metrics.iter().enumerate() {
                let col = &state.cols[c];
                for (slot, &pos) in self.layout.positions[shard].iter().enumerate() {
                    if col.total[slot] > 0 {
                        carried[pos].push((
                            metric.clone(),
                            col.ordered(slot, window),
                            col.total[slot],
                        ));
                    }
                }
            }
        }
        let (layout, new_shards) = Self::build(self.layout.design.clone(), window, shards);
        self.layout = Arc::new(layout);
        self.shards = new_shards;
        for (pos, metrics) in carried.into_iter().enumerate() {
            if metrics.is_empty() {
                continue;
            }
            let config = &self.layout.design.points()[pos].config;
            let at = *self.layout.index.get(config).expect("point is indexed");
            let state = self.shards[at.shard]
                .state
                .get_mut()
                .unwrap_or_else(PoisonError::into_inner);
            for (metric, values, total) in metrics {
                let c = state.ensure_col(&metric, window);
                for value in values {
                    state.cols[c].push(at.slot, window, value);
                }
                // Restore the all-time count (values aged out of the
                // ring are gone, but their count still gates
                // `min_observations`).
                state.cols[c].total[at.slot] = total;
            }
        }
        self
    }

    /// Builds the immutable layout plus empty per-shard column state.
    fn build(design: Knowledge<K>, window: usize, shards: usize) -> (Layout<K>, Vec<Shard>) {
        let mut positions: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut index = HashMap::with_capacity(design.len());
        for (pos, point) in design.points().iter().enumerate() {
            let shard = shard_index(&point.config, shards);
            index.insert(
                point.config.clone(),
                PointRef {
                    shard,
                    slot: positions[shard].len(),
                },
            );
            positions[shard].push(pos);
        }
        let shard_vec = positions
            .iter()
            .map(|group| Shard {
                state: Mutex::new(ShardState {
                    slots: group.len(),
                    metrics: Vec::new(),
                    cols: Vec::new(),
                    dirty: BTreeSet::new(),
                }),
                epoch: AtomicU64::new(0),
            })
            .collect();
        (
            Layout {
                design,
                index,
                positions,
                window,
            },
            shard_vec,
        )
    }

    fn lock_shard(&self, shard: usize) -> MutexGuard<'_, ShardState> {
        self.shards[shard]
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// An independent deep copy of the mutable state (columns, dirty
    /// sets, epochs) sharing the immutable layout — the checkpointing
    /// primitive behind incremental replica refolds. Intended for
    /// quiescent bases (shards are locked one at a time, so a fork
    /// taken while other threads publish may straddle a batch).
    pub fn fork(&self) -> SharedKnowledge<K> {
        let shards = self
            .shards
            .iter()
            .map(|s| Shard {
                state: Mutex::new(
                    s.state
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .clone(),
                ),
                epoch: AtomicU64::new(s.epoch.load(Ordering::Acquire)),
            })
            .collect();
        SharedKnowledge {
            layout: Arc::clone(&self.layout),
            shards,
            epoch: AtomicU64::new(self.epoch.load(Ordering::Acquire)),
            min_observations: self.min_observations,
            dropped: AtomicU64::new(self.dropped.load(Ordering::Relaxed)),
        }
    }

    /// The current knowledge version: the number of publishes that
    /// changed an effective value. Readers compare it against their
    /// last synced epoch to detect refreshed knowledge without cloning.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of lock shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The epoch of shard `shard`: how many publishes changed an
    /// effective value of one of its points.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_epoch(&self, shard: usize) -> u64 {
        self.shards[shard].epoch.load(Ordering::Acquire)
    }

    /// The shard `config` lives in, or `None` for unknown configs.
    pub fn shard_of(&self, config: &K) -> Option<usize> {
        self.layout.index.get(config).map(|r| r.shard)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.layout.design.len()
    }

    /// Whether the shared knowledge has no points.
    pub fn is_empty(&self) -> bool {
        self.layout.design.is_empty()
    }

    /// Non-finite observed values dropped (and counted) by
    /// [`publish`](Self::publish)/[`publish_batch`](Self::publish_batch)
    /// instead of being folded into a window — the shared-knowledge
    /// mirror of [`Monitor::push`](crate::Monitor::push)'s policy. Values can reach this path
    /// from the wire, whose decoders deliberately perform no finiteness
    /// validation ([`MetricValues::from_unvalidated`]).
    pub fn dropped_observations(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Merges `observed` into `slot`'s columns; returns whether the
    /// point's effective values changed. Only the observed metrics are
    /// compared — untouched columns cannot change — so the hot publish
    /// path stays O(|observed|) with no point clones. Caller holds the
    /// shard lock.
    fn merge_into(
        &self,
        state: &mut ShardState,
        slot: usize,
        design: &MetricValues,
        observed: &MetricValues,
    ) -> bool {
        let window = self.layout.window;
        let mut changed = false;
        for (metric, value) in observed.iter() {
            if !value.is_finite() {
                // The Monitor::push policy at the shared level: drop
                // and count, never poison a window mean.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let before = state.effective_value(slot, metric, design, window, self.min_observations);
            let c = state.ensure_col(metric, window);
            state.cols[c].push(slot, window, value);
            // Effective values are finite by construction (non-finite
            // means fall back to the finite design value), so `!=` on
            // the options is an exact change test.
            changed |= before
                != state.effective_value(slot, metric, design, window, self.min_observations);
        }
        changed
    }

    /// The effective operating point of `(shard, slot)`: window means
    /// override the design values for every metric with at least
    /// `min_observations`. Caller holds the shard lock.
    fn effective_point(&self, state: &ShardState, shard: usize, slot: usize) -> OperatingPoint<K> {
        let pos = self.layout.positions[shard][slot];
        let design = &self.layout.design.points()[pos];
        let mut metrics = design.metrics.clone();
        for (c, metric) in state.metrics.iter().enumerate() {
            let col = &state.cols[c];
            if col.total[slot] >= self.min_observations {
                if let Some(mean) = col.mean(slot, self.layout.window) {
                    if mean.is_finite() {
                        metrics.insert(metric.clone(), mean);
                    }
                }
            }
        }
        OperatingPoint::new(design.config.clone(), metrics)
    }

    /// Merges one runtime observation of `config` into the shared
    /// windows. Returns `false` (and changes nothing) when `config` is
    /// not a known operating point.
    ///
    /// The global and per-shard epochs advance **iff** the publish
    /// changed an effective value — an empty [`MetricValues`], or an
    /// observation that leaves every window mean unchanged, merges
    /// without invalidating anybody's snapshot.
    ///
    /// Non-finite values (possible on the wire-ingress path, which does
    /// not validate) are dropped and counted
    /// ([`dropped_observations`](Self::dropped_observations)) instead
    /// of poisoning a window mean.
    pub fn publish(&self, config: &K, observed: &MetricValues) -> bool {
        let Some(&at) = self.layout.index.get(config) else {
            return false;
        };
        let pos = self.layout.positions[at.shard][at.slot];
        let design = &self.layout.design.points()[pos].metrics;
        let mut state = self.lock_shard(at.shard);
        if self.merge_into(&mut state, at.slot, design, observed) {
            state.dirty.insert(at.slot);
            self.shards[at.shard].epoch.fetch_add(1, Ordering::AcqRel);
            self.epoch.fetch_add(1, Ordering::AcqRel);
        }
        true
    }

    /// Merges one observation and — when it changed an effective value
    /// — patches the updated point **straight into** `cache` under the
    /// same shard lock: the merge-on-publish path of an event-driven
    /// runtime, where knowledge folds in per publish event instead of
    /// at a round barrier. Windows, dirty sets and epochs advance
    /// exactly as [`publish`](Self::publish) (the slot stays dirty so
    /// *other* caches still see the change on their next drain), so a
    /// sequence of `publish_into` calls is bit-identical to the same
    /// sequence of `publish` + [`drain_changes_into`](Self::drain_changes_into)
    /// — without the all-shards drain sweep per event.
    ///
    /// Returns `None` when `config` is not a known operating point,
    /// otherwise `Some((position, changed))`. `cache` must descend from
    /// the same design knowledge (same length and point order).
    ///
    /// # Panics
    ///
    /// Panics if `cache` is shorter than the design knowledge.
    pub fn publish_into(
        &self,
        config: &K,
        observed: &MetricValues,
        cache: &mut Knowledge<K>,
    ) -> Option<(usize, bool)> {
        let &at = self.layout.index.get(config)?;
        let pos = self.layout.positions[at.shard][at.slot];
        let design = &self.layout.design.points()[pos].metrics;
        let mut state = self.lock_shard(at.shard);
        let changed = self.merge_into(&mut state, at.slot, design, observed);
        if changed {
            state.dirty.insert(at.slot);
            self.shards[at.shard].epoch.fetch_add(1, Ordering::AcqRel);
            self.epoch.fetch_add(1, Ordering::AcqRel);
            cache.patch_point(pos, self.effective_point(&state, at.shard, at.slot));
        }
        Some((pos, changed))
    }

    /// Merges a whole batch of observations — e.g. one fleet round —
    /// grouping them by shard and taking each shard's lock **once** for
    /// its whole group. Within a shard, observations merge in the order
    /// given, so a deterministic input order (instance order at a round
    /// barrier) yields bit-identical windows and epochs to publishing
    /// one by one. Unknown configs are skipped; returns the number of
    /// accepted observations.
    pub fn publish_batch<'a, I>(&self, observations: I) -> usize
    where
        K: 'a,
        I: IntoIterator<Item = (&'a K, &'a MetricValues)>,
    {
        let mut by_shard: Vec<Vec<(usize, &MetricValues)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut accepted = 0;
        for (config, observed) in observations {
            if let Some(&at) = self.layout.index.get(config) {
                by_shard[at.shard].push((at.slot, observed));
                accepted += 1;
            }
        }
        for (shard, group) in by_shard.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut state = self.lock_shard(shard);
            let mut changed = 0u64;
            for (slot, observed) in group {
                let pos = self.layout.positions[shard][slot];
                let design = &self.layout.design.points()[pos].metrics;
                if self.merge_into(&mut state, slot, design, observed) {
                    state.dirty.insert(slot);
                    changed += 1;
                }
            }
            if changed > 0 {
                self.shards[shard]
                    .epoch
                    .fetch_add(changed, Ordering::AcqRel);
                self.epoch.fetch_add(changed, Ordering::AcqRel);
            }
        }
        accepted
    }

    /// Marks every point of `seed` that this knowledge base knows as
    /// *fully observed* at its shipped metric values: each metric's
    /// ring is filled with `copies` identical samples, so the
    /// `min_observations` gate opens immediately and one fresh (noisy)
    /// observation shifts the window mean by only `1/window` of its
    /// deviation — the statistical state of a converged deployment,
    /// reconstructed from its snapshot. Without this, a warm boot
    /// that merely rewrites the design values relives the whole
    /// noise-damping transient: the first few online samples displace
    /// the seed the moment the gate opens.
    ///
    /// Configs unknown to this layout are skipped and non-finite
    /// metric values dropped (the [`publish`](Self::publish) policy).
    /// Seeding is deterministic — the same `(design, seed, copies)`
    /// always produces bit-identical windows and epochs — but the
    /// window mean of `n` identical samples can differ from the
    /// shipped value in the last ulp (float summation rounds), so
    /// seeding may advance epochs. Returns the number of seeded
    /// points.
    pub fn seed_observations(&self, seed: &Knowledge<K>, copies: usize) -> usize {
        let mut seeded = 0;
        for p in seed.points() {
            if !self.layout.index.contains_key(&p.config) {
                continue;
            }
            for _ in 0..copies {
                self.publish(&p.config, &p.metrics);
            }
            seeded += 1;
        }
        seeded
    }

    /// Drains every shard's dirty set: the effective points that
    /// changed since the last drain, as `(position, point)` pairs in
    /// ascending position order, paired with the epoch the drain is
    /// consistent with. A coordinator patches the points into its
    /// cached [`Knowledge`] (one [`Knowledge::patch_point`] per changed
    /// point) and records the returned epoch, instead of rebuilding the
    /// effective knowledge from scratch — the incremental-refresh half
    /// of the scaling story.
    ///
    /// All shard locks are held for the drain (like
    /// [`snapshot`](Self::snapshot)), so the `(epoch, changes)` pair is
    /// consistent even while other threads publish: a cache patched
    /// with the changes *is* the `epoch` knowledge, and a later
    /// `epoch() == recorded` comparison can safely skip re-draining.
    pub fn drain_changes(&self) -> (u64, Vec<(usize, OperatingPoint<K>)>) {
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut out = Vec::new();
        for (shard, state) in guards.iter_mut().enumerate() {
            let dirty = std::mem::take(&mut state.dirty);
            for slot in dirty {
                let pos = self.layout.positions[shard][slot];
                out.push((pos, self.effective_point(state, shard, slot)));
            }
        }
        out.sort_by_key(|(pos, _)| *pos);
        (epoch, out)
    }

    /// Drains the dirty slots **straight into** `cache`, patching the
    /// changed positions in place — the arena-view counterpart of
    /// [`drain_changes`](Self::drain_changes) that skips the
    /// intermediate point list entirely (the coordinator's hot refresh
    /// path). Returns the epoch the patched cache is consistent with
    /// and the number of points patched. `cache` must descend from the
    /// same design knowledge (same length and point order).
    ///
    /// # Panics
    ///
    /// Panics if `cache` is shorter than the design knowledge.
    pub fn drain_changes_into(&self, cache: &mut Knowledge<K>) -> (u64, usize) {
        let mut guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        let epoch = self.epoch.load(Ordering::Acquire);
        let mut patched = 0;
        for (shard, state) in guards.iter_mut().enumerate() {
            let dirty = std::mem::take(&mut state.dirty);
            for slot in dirty {
                let pos = self.layout.positions[shard][slot];
                cache.patch_point(pos, self.effective_point(state, shard, slot));
                patched += 1;
            }
        }
        (epoch, patched)
    }

    /// The effective knowledge: design-time points with every
    /// sufficiently-observed metric replaced by its window mean.
    pub fn knowledge(&self) -> Knowledge<K> {
        self.snapshot().1
    }

    /// Epoch and effective knowledge read with all shard locks held, so
    /// the pair is consistent even while other threads publish.
    pub fn snapshot(&self) -> (u64, Knowledge<K>) {
        let guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        let epoch = self.epoch.load(Ordering::Acquire);
        let total = self.layout.design.len();
        let mut points: Vec<Option<OperatingPoint<K>>> = vec![None; total];
        for (shard, state) in guards.iter().enumerate() {
            for slot in 0..self.layout.positions[shard].len() {
                let pos = self.layout.positions[shard][slot];
                points[pos] = Some(self.effective_point(state, shard, slot));
            }
        }
        let knowledge = points
            .into_iter()
            .map(|p| p.expect("every position is covered by exactly one shard"))
            .collect();
        (epoch, knowledge)
    }

    /// Content hash of shard `shard`'s effective points:
    /// [`shard_content_hash`] over its `(position, point)` pairs in
    /// ascending position order. Two knowledge bases (or a knowledge
    /// base and a decoded snapshot) with equal hashes for every shard
    /// hold bit-identical effective knowledge.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shard_count()`.
    pub fn shard_hash(&self, shard: usize) -> u64 {
        let state = self.lock_shard(shard);
        self.shard_hash_locked(&state, shard)
    }

    /// All per-shard content hashes, read with every shard lock held
    /// (like [`snapshot`](Self::snapshot)) so the vector is consistent
    /// even while other threads publish.
    pub fn shard_hashes(&self) -> Vec<u64> {
        let guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        guards
            .iter()
            .enumerate()
            .map(|(shard, state)| self.shard_hash_locked(state, shard))
            .collect()
    }

    fn shard_hash_locked(&self, state: &ShardState, shard: usize) -> u64 {
        // positions[shard] ascends by construction (design order), so
        // slot order is ascending position order.
        let points: Vec<(usize, OperatingPoint<K>)> = (0..self.layout.positions[shard].len())
            .map(|slot| {
                (
                    self.layout.positions[shard][slot],
                    self.effective_point(state, shard, slot),
                )
            })
            .collect();
        shard_content_hash(points.iter().map(|(pos, point)| (*pos, point)))
    }

    /// Epoch, per-shard epoch vector and effective knowledge read with
    /// all shard locks held — the consistent triple a full-state
    /// snapshot is cut from. Shard epochs only advance under their
    /// shard's state lock, so the vector cannot move mid-read.
    pub fn versioned_snapshot(&self) -> (u64, Vec<u64>, Knowledge<K>) {
        let guards: Vec<MutexGuard<'_, ShardState>> =
            (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        let epoch = self.epoch.load(Ordering::Acquire);
        let shard_epochs: Vec<u64> = self
            .shards
            .iter()
            .map(|s| s.epoch.load(Ordering::Acquire))
            .collect();
        let total = self.layout.design.len();
        let mut points: Vec<Option<OperatingPoint<K>>> = vec![None; total];
        for (shard, state) in guards.iter().enumerate() {
            for slot in 0..self.layout.positions[shard].len() {
                let pos = self.layout.positions[shard][slot];
                points[pos] = Some(self.effective_point(state, shard, slot));
            }
        }
        let knowledge = points
            .into_iter()
            .map(|p| p.expect("every position is covered by exactly one shard"))
            .collect();
        (epoch, shard_epochs, knowledge)
    }

    /// Number of operating points whose runtime observations have
    /// crossed the `min_observations` threshold (i.e. whose effective
    /// metrics are online values rather than design-time predictions)
    /// — the fleet's online coverage of the design space.
    pub fn observed_points(&self) -> usize {
        (0..self.shards.len())
            .map(|shard| {
                let state = self.lock_shard(shard);
                (0..self.layout.positions[shard].len())
                    .filter(|&slot| {
                        state
                            .cols
                            .iter()
                            .any(|c| c.total[slot] >= self.min_observations)
                    })
                    .count()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Knowledge<u32> {
        let mk = |cfg, t: f64, p: f64| {
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), t)
                    .with(Metric::power(), p),
            )
        };
        [mk(1, 1.0, 50.0), mk(2, 0.4, 80.0)].into_iter().collect()
    }

    #[test]
    fn starts_as_the_design_knowledge_at_epoch_zero() {
        let shared = SharedKnowledge::new(design(), 4);
        assert_eq!(shared.epoch(), 0);
        assert_eq!(shared.knowledge(), design());
        assert_eq!(shared.observed_points(), 0);
        assert_eq!(shared.len(), 2);
        assert_eq!(shared.shard_count(), DEFAULT_SHARDS);
        for s in 0..shared.shard_count() {
            assert_eq!(shared.shard_epoch(s), 0);
        }
    }

    #[test]
    fn publish_overrides_design_values_with_window_means() {
        let shared = SharedKnowledge::new(design(), 4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 70.0));
        let k = shared.knowledge();
        let p1 = &k.points()[0];
        assert_eq!(p1.metric(&Metric::power()), Some(65.0));
        // Unobserved metrics keep their design-time expectations.
        assert_eq!(p1.metric(&Metric::exec_time()), Some(1.0));
        // Untouched points are unchanged.
        assert_eq!(k.points()[1], design().points()[1]);
        assert_eq!(shared.observed_points(), 1);
    }

    #[test]
    fn epoch_advances_only_on_accepted_publishes() {
        let shared = SharedKnowledge::new(design(), 4);
        assert!(!shared.publish(&99, &MetricValues::new().with(Metric::power(), 1.0)));
        assert_eq!(shared.epoch(), 0);
        assert!(shared.publish(&2, &MetricValues::new().with(Metric::power(), 85.0)));
        assert_eq!(shared.epoch(), 1);
    }

    #[test]
    fn empty_or_no_change_publishes_do_not_bump_the_epoch() {
        let shared = SharedKnowledge::new(design(), 4);
        // Empty observation: accepted (the config is known) but nothing
        // can change, so nobody's snapshot is invalidated.
        assert!(shared.publish(&1, &MetricValues::new()));
        assert_eq!(shared.epoch(), 0);
        // First real observation changes the effective power.
        assert!(shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0)));
        assert_eq!(shared.epoch(), 1);
        let shard = shared.shard_of(&1).unwrap();
        assert_eq!(shared.shard_epoch(shard), 1);
        // Re-observing the exact window mean leaves the effective value
        // where it was: no bump, globally or in the shard.
        assert!(shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0)));
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.shard_epoch(shard), 1);
        assert_eq!(
            shared.knowledge().points()[0].metric(&Metric::power()),
            Some(60.0)
        );
    }

    #[test]
    fn non_finite_observations_are_dropped_and_counted() {
        let shared = SharedKnowledge::new(design(), 4);
        // The wire decoders perform no finiteness validation, so NaNs
        // can legitimately reach publish; they must never fold into a
        // window.
        let poisoned = MetricValues::from_unvalidated([
            (Metric::power(), f64::NAN),
            (Metric::exec_time(), 0.5),
        ]);
        assert!(shared.publish(&1, &poisoned), "the config is known");
        assert_eq!(shared.dropped_observations(), 1);
        let k = shared.knowledge();
        let p1 = &k.points()[0];
        assert_eq!(p1.metric(&Metric::power()), Some(50.0), "design value kept");
        assert_eq!(
            p1.metric(&Metric::exec_time()),
            Some(0.5),
            "finite value merged"
        );
        // A fully non-finite publish changes nothing: no epoch bump.
        let epoch = shared.epoch();
        let all_nan = MetricValues::from_unvalidated([(Metric::power(), f64::INFINITY)]);
        assert!(shared.publish(&1, &all_nan));
        assert_eq!(shared.epoch(), epoch);
        assert_eq!(shared.dropped_observations(), 2);
    }

    #[test]
    fn shard_epochs_split_the_global_epoch() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        shared.publish(&2, &MetricValues::new().with(Metric::power(), 85.0));
        assert_eq!(shared.epoch(), 2);
        let s1 = shared.shard_of(&1).unwrap();
        let s2 = shared.shard_of(&2).unwrap();
        let total: u64 = (0..shared.shard_count())
            .map(|s| shared.shard_epoch(s))
            .sum();
        assert_eq!(total, 2);
        assert!(shared.shard_epoch(s1) >= 1);
        assert!(shared.shard_epoch(s2) >= 1);
    }

    #[test]
    fn windows_slide_so_old_observations_age_out() {
        let shared = SharedKnowledge::new(design(), 2);
        for p in [10.0, 20.0, 30.0] {
            shared.publish(&1, &MetricValues::new().with(Metric::power(), p));
        }
        let k = shared.knowledge();
        assert_eq!(k.points()[0].metric(&Metric::power()), Some(25.0));
    }

    #[test]
    fn min_observations_gates_the_override() {
        let shared = SharedKnowledge::new(design(), 4).with_min_observations(3);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        assert_eq!(
            shared.knowledge().points()[0].metric(&Metric::power()),
            Some(50.0),
            "two observations must not override yet"
        );
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        assert_eq!(
            shared.knowledge().points()[0].metric(&Metric::power()),
            Some(90.0)
        );
    }

    #[test]
    fn snapshot_pairs_epoch_and_knowledge() {
        let shared = SharedKnowledge::new(design(), 4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        let (epoch, k) = shared.snapshot();
        assert_eq!(epoch, 1);
        assert_eq!(k.points()[0].metric(&Metric::power()), Some(60.0));
    }

    #[test]
    fn publish_batch_matches_one_by_one_publishes() {
        let batch = SharedKnowledge::new(design(), 4).with_shards(3);
        let single = SharedKnowledge::new(design(), 4).with_shards(3);
        let observations: Vec<(u32, MetricValues)> = vec![
            (1, MetricValues::new().with(Metric::power(), 60.0)),
            (2, MetricValues::new().with(Metric::power(), 85.0)),
            (1, MetricValues::new().with(Metric::power(), 70.0)),
            (99, MetricValues::new().with(Metric::power(), 1.0)),
        ];
        let accepted = batch.publish_batch(observations.iter().map(|(c, m)| (c, m)));
        assert_eq!(accepted, 3, "the unknown config is skipped");
        for (config, observed) in &observations {
            single.publish(config, observed);
        }
        assert_eq!(batch.knowledge(), single.knowledge());
        assert_eq!(batch.epoch(), single.epoch());
        for s in 0..batch.shard_count() {
            assert_eq!(batch.shard_epoch(s), single.shard_epoch(s));
        }
    }

    #[test]
    fn drain_changes_patches_a_cache_to_the_snapshot() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(2);
        let mut cache = shared.knowledge();
        let mut cache_epoch = shared.epoch();
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        shared.publish(&2, &MetricValues::new().with(Metric::exec_time(), 0.5));
        let (to_epoch, changed) = shared.drain_changes();
        assert_eq!(changed.len(), 2);
        assert_eq!(changed[0].0, 0, "ascending position order");
        assert_eq!(changed[1].0, 1);
        let delta = KnowledgeDelta {
            from_epoch: cache_epoch,
            to_epoch,
            changed,
        };
        assert!(delta.apply_to(&mut cache));
        cache_epoch = delta.to_epoch;
        assert_eq!(cache, shared.knowledge());
        assert_eq!(cache_epoch, shared.epoch());
        // A second drain with no publishes in between is empty.
        assert!(shared.drain_changes().1.is_empty());
    }

    #[test]
    fn drain_changes_into_patches_in_place() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(2);
        let twin = SharedKnowledge::new(design(), 4).with_shards(2);
        let mut cache = shared.knowledge();
        for (config, power) in [(1u32, 60.0), (2, 85.0), (1, 70.0)] {
            let observed = MetricValues::new().with(Metric::power(), power);
            shared.publish(&config, &observed);
            twin.publish(&config, &observed);
        }
        let (epoch, patched) = shared.drain_changes_into(&mut cache);
        assert_eq!(patched, 2);
        assert_eq!(epoch, shared.epoch());
        assert_eq!(cache, twin.knowledge(), "in-place drain == snapshot");
        // Nothing left to drain.
        assert_eq!(shared.drain_changes_into(&mut cache).1, 0);
    }

    #[test]
    fn publish_into_matches_publish_plus_drain() {
        // The merge-on-publish path must be bit-identical — cache,
        // epochs, shard epochs, dirty bookkeeping — to the barrier
        // path: publish one-by-one, then drain into the cache.
        let streamed = SharedKnowledge::new(design(), 4).with_shards(2);
        let barriered = SharedKnowledge::new(design(), 4).with_shards(2);
        let mut stream_cache = streamed.knowledge();
        let mut barrier_cache = barriered.knowledge();
        let sequence = [(1u32, 60.0), (2, 85.0), (1, 70.0), (2, 95.0), (1, 64.0)];
        for (config, power) in sequence {
            let observed = MetricValues::new().with(Metric::power(), power);
            let (pos, _) = streamed
                .publish_into(&config, &observed, &mut stream_cache)
                .expect("known config");
            assert_eq!(pos, config as usize - 1);
            barriered.publish(&config, &observed);
        }
        barriered.drain_changes_into(&mut barrier_cache);
        assert_eq!(stream_cache, barrier_cache);
        assert_eq!(streamed.epoch(), barriered.epoch());
        assert_eq!(streamed.shard_hashes(), barriered.shard_hashes());
        for s in 0..streamed.shard_count() {
            assert_eq!(streamed.shard_epoch(s), barriered.shard_epoch(s));
        }
        // The slot stays dirty for *other* caches: a fresh drain sees
        // every change the streamed cache already has.
        let mut late = streamed.layout.design.clone();
        let (_, patched) = streamed.drain_changes_into(&mut late);
        assert_eq!(patched, 2);
        assert_eq!(late, stream_cache);
    }

    #[test]
    fn publish_into_rejects_unknown_configs_and_skips_no_ops() {
        let shared = SharedKnowledge::new(design(), 4);
        let mut cache = shared.knowledge();
        assert_eq!(
            shared.publish_into(
                &99,
                &MetricValues::new().with(Metric::power(), 1.0),
                &mut cache
            ),
            None
        );
        // Empty observation: accepted, position reported, nothing changed.
        assert_eq!(
            shared.publish_into(&1, &MetricValues::new(), &mut cache),
            Some((0, false))
        );
        assert_eq!(shared.epoch(), 0);
        assert_eq!(cache, shared.knowledge());
    }

    #[test]
    fn delta_refuses_mismatched_knowledge() {
        let shared = SharedKnowledge::new(design(), 4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        let (to_epoch, changed) = shared.drain_changes();
        let delta = KnowledgeDelta {
            from_epoch: 0,
            to_epoch,
            changed,
        };
        let mut reversed: Knowledge<u32> = design().points().iter().rev().cloned().collect();
        let before = reversed.clone();
        assert!(!delta.apply_to(&mut reversed), "configs do not line up");
        assert_eq!(reversed, before, "a refused delta changes nothing");
    }

    #[test]
    fn one_shard_is_the_unsharded_reference() {
        let sharded = SharedKnowledge::new(design(), 4).with_shards(5);
        let reference = SharedKnowledge::new(design(), 4).with_shards(1);
        for (config, power) in [(1u32, 60.0), (2, 85.0), (1, 70.0), (2, 95.0)] {
            sharded.publish(&config, &MetricValues::new().with(Metric::power(), power));
            reference.publish(&config, &MetricValues::new().with(Metric::power(), power));
        }
        assert_eq!(sharded.knowledge(), reference.knowledge());
        assert_eq!(sharded.epoch(), reference.epoch());
        assert_eq!(reference.shard_count(), 1);
        assert_eq!(reference.shard_epoch(0), reference.epoch());
    }

    #[test]
    fn fork_is_an_independent_deep_copy() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        let fork = shared.fork();
        assert_eq!(fork.epoch(), shared.epoch());
        assert_eq!(fork.knowledge(), shared.knowledge());
        for s in 0..shared.shard_count() {
            assert_eq!(fork.shard_epoch(s), shared.shard_epoch(s));
        }
        // Diverge the fork: the original must not see it, and vice
        // versa.
        fork.publish(&2, &MetricValues::new().with(Metric::power(), 99.0));
        assert_eq!(shared.epoch(), 1);
        assert_eq!(fork.epoch(), 2);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 70.0));
        assert_ne!(fork.knowledge(), shared.knowledge());
        // The fork continues bit-identically to a twin fed the same
        // stream from scratch.
        let twin = SharedKnowledge::new(design(), 4).with_shards(3);
        twin.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        twin.publish(&2, &MetricValues::new().with(Metric::power(), 99.0));
        assert_eq!(fork.knowledge(), twin.knowledge());
        assert_eq!(fork.epoch(), twin.epoch());
    }

    #[test]
    fn resharding_carries_pre_epoch_windows() {
        // A published value equal to the design expectation changes no
        // effective value (epoch stays 0) but still seeds the window;
        // with_shards must carry that data to the new layout.
        let shared = SharedKnowledge::new(design(), 4).with_min_observations(2);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 50.0));
        assert_eq!(shared.epoch(), 0, "design-equal publish changes nothing");
        let resharded = shared.with_shards(2);
        resharded.publish(&1, &MetricValues::new().with(Metric::power(), 70.0));
        assert_eq!(
            resharded.knowledge().points()[0].metric(&Metric::power()),
            Some(60.0),
            "the carried observation still counts toward the window mean"
        );
    }

    #[test]
    fn shard_hashes_match_an_external_reconstruction() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        shared.publish(&2, &MetricValues::new().with(Metric::exec_time(), 0.5));
        // Rebuild the per-shard point groups from the effective
        // knowledge alone, exactly as a decoded snapshot would.
        let (_, k) = shared.snapshot();
        let shards = shared.shard_count();
        let mut groups: Vec<Vec<(usize, OperatingPoint<u32>)>> = vec![Vec::new(); shards];
        for (pos, point) in k.points().iter().enumerate() {
            groups[shard_index(&point.config, shards)].push((pos, point.clone()));
        }
        for (s, group) in groups.iter().enumerate() {
            assert_eq!(
                shared.shard_hash(s),
                shard_content_hash(group.iter().map(|(pos, p)| (*pos, p))),
                "shard {s}"
            );
        }
        assert_eq!(
            shared.shard_hashes(),
            (0..shards)
                .map(|s| shared.shard_hash(s))
                .collect::<Vec<_>>()
        );
        // Hashes are content hashes: diverging one point changes
        // exactly that point's shard.
        let before = shared.shard_hashes();
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        let after = shared.shard_hashes();
        let s1 = shared.shard_of(&1).unwrap();
        for s in 0..shards {
            if s == s1 {
                assert_ne!(before[s], after[s]);
            } else {
                assert_eq!(before[s], after[s]);
            }
        }
    }

    #[test]
    fn versioned_snapshot_is_consistent() {
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        let (epoch, shard_epochs, k) = shared.versioned_snapshot();
        assert_eq!(epoch, shared.epoch());
        assert_eq!(k, shared.knowledge());
        assert_eq!(shard_epochs.len(), shared.shard_count());
        for (s, e) in shard_epochs.iter().enumerate() {
            assert_eq!(*e, shared.shard_epoch(s));
        }
    }

    #[test]
    fn fork_preserves_the_dropped_observation_count() {
        // Regression: a fork (the replica checkpoint primitive) must
        // carry the drop counter — checkpoint rollback would otherwise
        // silently reset it.
        let shared = SharedKnowledge::new(design(), 4).with_shards(3);
        let nan = MetricValues::from_unvalidated([(Metric::power(), f64::NAN)]);
        shared.publish(&1, &nan);
        shared.publish(&2, &nan);
        assert_eq!(shared.dropped_observations(), 2);
        let fork = shared.fork();
        assert_eq!(fork.dropped_observations(), 2, "fork keeps the count");
        fork.publish(&1, &nan);
        assert_eq!(fork.dropped_observations(), 3);
        assert_eq!(shared.dropped_observations(), 2, "forks are independent");
        // Resharding (epoch still 0: NaN publishes never bump it) must
        // also carry the counter through the rebuild.
        let resharded = shared.with_shards(2);
        assert_eq!(resharded.dropped_observations(), 2);
    }

    #[test]
    fn concurrent_publishes_are_all_merged() {
        let shared = std::sync::Arc::new(SharedKnowledge::new(design(), 1024));
        let threads = 8u32;
        let per_thread = 50u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let v = f64::from(t * per_thread + i);
                        shared.publish(&1, &MetricValues::new().with(Metric::power(), v));
                    }
                });
            }
        });
        // Every publish that changed the running mean bumped the epoch;
        // interleavings where a pushed value equals the current mean do
        // not, so the epoch is at most one per publish but at least one
        // (the first observation always changes the effective value).
        let epoch = shared.epoch();
        assert!(
            epoch >= 1 && epoch <= u64::from(threads * per_thread),
            "{epoch}"
        );
        // All 400 observations landed in the (large) window: the mean is
        // the mean of 0..400 regardless of interleaving.
        let mean = shared.knowledge().points()[0]
            .metric(&Metric::power())
            .unwrap();
        let expect = f64::from(threads * per_thread - 1) / 2.0;
        assert!((mean - expect).abs() < 1e-9, "{mean} vs {expect}");
    }
}
