//! The shared online knowledge base: the crowdsourcing layer of the
//! paper's *online* autotuning loop.
//!
//! A [`SharedKnowledge`] starts from design-time knowledge and keeps a
//! sliding [`Monitor`] window per `(operating point, metric)`. Deployed
//! instances *publish* their runtime observations into it; once a point
//! has gathered enough observations, its expected EFP values are the
//! window means instead of the design-time predictions — so the whole
//! fleet converges onto what the deployment platform actually does,
//! even under drift (a machine running hotter or slower than profiled).
//!
//! A versioned **epoch counter** lets every AS-RTM detect refreshed
//! knowledge with one atomic load ([`SharedKnowledge::epoch`]) and only
//! pay for a snapshot clone when something actually changed.

use crate::knowledge::{Knowledge, OperatingPoint};
use crate::metric::{Metric, MetricValues};
use crate::monitor::Monitor;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One shared operating point: design-time expectations plus the merged
/// runtime observation windows.
#[derive(Debug, Clone)]
struct SharedPoint<K> {
    design: OperatingPoint<K>,
    windows: BTreeMap<Metric, Monitor>,
}

impl<K: Clone> SharedPoint<K> {
    /// The effective operating point: window means override the design
    /// values for every metric with at least `min_observations`.
    fn effective(&self, min_observations: u64) -> OperatingPoint<K> {
        let mut metrics = self.design.metrics.clone();
        for (metric, window) in &self.windows {
            if window.total_observations() >= min_observations {
                if let Some(mean) = window.mean() {
                    if mean.is_finite() {
                        metrics.insert(metric.clone(), mean);
                    }
                }
            }
        }
        OperatingPoint::new(self.design.config.clone(), metrics)
    }
}

/// A thread-safe, versioned knowledge base shared by a fleet of
/// adaptive-application instances.
///
/// # Examples
///
/// ```
/// use margot::{Knowledge, Metric, MetricValues, OperatingPoint, SharedKnowledge};
///
/// let mut design = Knowledge::new();
/// design.add(OperatingPoint::new(
///     1u32,
///     MetricValues::new().with(Metric::power(), 80.0),
/// ));
/// let shared = SharedKnowledge::new(design, 4);
/// let before = shared.epoch();
/// // The deployed machine runs hotter than the design-time profile.
/// shared.publish(&1, &MetricValues::new().with(Metric::power(), 96.0));
/// assert!(shared.epoch() > before);
/// let learned = shared.knowledge();
/// assert_eq!(learned.points()[0].metric(&Metric::power()), Some(96.0));
/// ```
#[derive(Debug)]
pub struct SharedKnowledge<K> {
    state: Mutex<Vec<SharedPoint<K>>>,
    /// Config → point position, fixed at construction, so a publish is
    /// an O(1) lookup instead of a linear scan under the lock.
    index: HashMap<K, usize>,
    /// Mirror of the epoch for lock-free change detection.
    epoch: AtomicU64,
    window: usize,
    min_observations: u64,
}

impl<K: Clone + Eq + Hash> SharedKnowledge<K> {
    /// Wraps a design-time knowledge base; every published observation
    /// is merged through a sliding window of `window` samples per
    /// `(point, metric)`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero (same contract as [`Monitor::new`]).
    pub fn new(design: Knowledge<K>, window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        let points: Vec<SharedPoint<K>> = design
            .points()
            .iter()
            .map(|p| SharedPoint {
                design: p.clone(),
                windows: BTreeMap::new(),
            })
            .collect();
        let index = points
            .iter()
            .enumerate()
            .map(|(i, p)| (p.design.config.clone(), i))
            .collect();
        SharedKnowledge {
            state: Mutex::new(points),
            index,
            epoch: AtomicU64::new(0),
            window,
            min_observations: 1,
        }
    }

    /// Builder-style: observations needed before a window mean overrides
    /// the design-time value of a metric (default 1).
    #[must_use]
    pub fn with_min_observations(mut self, min_observations: u64) -> Self {
        self.min_observations = min_observations.max(1);
        self
    }

    /// The current knowledge version. Incremented on every accepted
    /// [`publish`](Self::publish); readers compare it against their last
    /// synced epoch to detect refreshed knowledge without cloning.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.state.lock().expect("shared knowledge poisoned").len()
    }

    /// Whether the shared knowledge has no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges one runtime observation of `config` into the shared
    /// windows and bumps the epoch. Returns `false` (and changes
    /// nothing) when `config` is not a known operating point.
    ///
    /// [`MetricValues`] can only hold finite values, so every merged
    /// observation is finite by construction; the underlying
    /// [`Monitor`]s would additionally drop-and-count non-finite
    /// values if one ever reached them.
    pub fn publish(&self, config: &K, observed: &MetricValues) -> bool {
        let Some(&i) = self.index.get(config) else {
            return false;
        };
        let mut state = self.state.lock().expect("shared knowledge poisoned");
        let point = &mut state[i];
        for (metric, value) in observed.iter() {
            point
                .windows
                .entry(metric.clone())
                .or_insert_with(|| Monitor::new(self.window))
                .push(value);
        }
        self.epoch.fetch_add(1, Ordering::AcqRel);
        true
    }

    /// The effective knowledge: design-time points with every
    /// sufficiently-observed metric replaced by its window mean.
    pub fn knowledge(&self) -> Knowledge<K> {
        self.state
            .lock()
            .expect("shared knowledge poisoned")
            .iter()
            .map(|p| p.effective(self.min_observations))
            .collect()
    }

    /// Epoch and effective knowledge read under one lock, so the pair is
    /// consistent even while other threads publish.
    pub fn snapshot(&self) -> (u64, Knowledge<K>) {
        let state = self.state.lock().expect("shared knowledge poisoned");
        let epoch = self.epoch.load(Ordering::Acquire);
        let knowledge = state
            .iter()
            .map(|p| p.effective(self.min_observations))
            .collect();
        (epoch, knowledge)
    }

    /// Number of operating points whose runtime observations have
    /// crossed the `min_observations` threshold (i.e. whose effective
    /// metrics are online values rather than design-time predictions)
    /// — the fleet's online coverage of the design space.
    pub fn observed_points(&self) -> usize {
        self.state
            .lock()
            .expect("shared knowledge poisoned")
            .iter()
            .filter(|p| {
                p.windows
                    .values()
                    .any(|w| w.total_observations() >= self.min_observations)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Knowledge<u32> {
        let mk = |cfg, t: f64, p: f64| {
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), t)
                    .with(Metric::power(), p),
            )
        };
        [mk(1, 1.0, 50.0), mk(2, 0.4, 80.0)].into_iter().collect()
    }

    #[test]
    fn starts_as_the_design_knowledge_at_epoch_zero() {
        let shared = SharedKnowledge::new(design(), 4);
        assert_eq!(shared.epoch(), 0);
        assert_eq!(shared.knowledge(), design());
        assert_eq!(shared.observed_points(), 0);
    }

    #[test]
    fn publish_overrides_design_values_with_window_means() {
        let shared = SharedKnowledge::new(design(), 4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 70.0));
        let k = shared.knowledge();
        let p1 = &k.points()[0];
        assert_eq!(p1.metric(&Metric::power()), Some(65.0));
        // Unobserved metrics keep their design-time expectations.
        assert_eq!(p1.metric(&Metric::exec_time()), Some(1.0));
        // Untouched points are unchanged.
        assert_eq!(k.points()[1], design().points()[1]);
        assert_eq!(shared.observed_points(), 1);
    }

    #[test]
    fn epoch_advances_only_on_accepted_publishes() {
        let shared = SharedKnowledge::new(design(), 4);
        assert!(!shared.publish(&99, &MetricValues::new().with(Metric::power(), 1.0)));
        assert_eq!(shared.epoch(), 0);
        assert!(shared.publish(&2, &MetricValues::new().with(Metric::power(), 85.0)));
        assert_eq!(shared.epoch(), 1);
    }

    #[test]
    fn windows_slide_so_old_observations_age_out() {
        let shared = SharedKnowledge::new(design(), 2);
        for p in [10.0, 20.0, 30.0] {
            shared.publish(&1, &MetricValues::new().with(Metric::power(), p));
        }
        let k = shared.knowledge();
        assert_eq!(k.points()[0].metric(&Metric::power()), Some(25.0));
    }

    #[test]
    fn min_observations_gates_the_override() {
        let shared = SharedKnowledge::new(design(), 4).with_min_observations(3);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        assert_eq!(
            shared.knowledge().points()[0].metric(&Metric::power()),
            Some(50.0),
            "two observations must not override yet"
        );
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 90.0));
        assert_eq!(
            shared.knowledge().points()[0].metric(&Metric::power()),
            Some(90.0)
        );
    }

    #[test]
    fn snapshot_pairs_epoch_and_knowledge() {
        let shared = SharedKnowledge::new(design(), 4);
        shared.publish(&1, &MetricValues::new().with(Metric::power(), 60.0));
        let (epoch, k) = shared.snapshot();
        assert_eq!(epoch, 1);
        assert_eq!(k.points()[0].metric(&Metric::power()), Some(60.0));
    }

    #[test]
    fn concurrent_publishes_are_all_merged() {
        let shared = std::sync::Arc::new(SharedKnowledge::new(design(), 1024));
        let threads = 8u32;
        let per_thread = 50u32;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let shared = std::sync::Arc::clone(&shared);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        let v = f64::from(t * per_thread + i);
                        shared.publish(&1, &MetricValues::new().with(Metric::power(), v));
                    }
                });
            }
        });
        assert_eq!(shared.epoch(), u64::from(threads * per_thread));
        // All 400 observations landed in the (large) window: the mean is
        // the mean of 0..400 regardless of interleaving.
        let mean = shared.knowledge().points()[0]
            .metric(&Metric::power())
            .unwrap();
        let expect = f64::from(threads * per_thread - 1) / 2.0;
        assert!((mean - expect).abs() < 1e-9, "{mean} vs {expect}");
    }
}
