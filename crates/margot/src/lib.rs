//! # margot — a dynamic application autotuner
//!
//! Rust reimplementation of the mARGOt autotuning framework as used by
//! SOCRATES (DATE 2018). mARGOt enhances an application with an
//! adaptation layer that monitors its extra-functional behaviour and
//! selects, at every kernel invocation, the most suitable software-knob
//! configuration according to the *current* application requirements.
//!
//! Architecture (mirroring the paper's description):
//!
//! - **Monitoring infrastructure** — [`Monitor`]: sliding-window
//!   statistics over runtime observations;
//! - **Application knowledge** — [`Knowledge`] of [`OperatingPoint`]s
//!   from design-time profiling (DSE), generic over the knob type `K`;
//! - **AS-RTM** — [`AsRtm`]: constrained multi-objective selection
//!   (prioritised [`Constraint`]s + a [`Rank`] such as the paper's
//!   Thr/W²), with runtime feedback folded in as per-metric
//!   observed/expected ratios;
//! - **MAPE-K facade** — [`ApplicationManager`]: the `init` /
//!   `update` / `start`/`stop` API the LARA weaver injects;
//! - **Online knowledge** — [`SharedKnowledge`]: a thread-safe,
//!   epoch-versioned knowledge base that merges runtime observations
//!   from many deployed instances (windowed means per point), the
//!   paper's online crowdsourcing loop. Lock-sharded for concurrent
//!   publishes, with per-shard dirty tracking so coordinators refresh
//!   caches incrementally and ship [`KnowledgeDelta`]s instead of full
//!   clones.
//!
//! ## Example
//!
//! ```
//! use margot::{
//!     ApplicationManager, Cmp, Constraint, Knowledge, Metric, MetricValues, OperatingPoint,
//!     Rank,
//! };
//!
//! let mut kb = Knowledge::new();
//! kb.add(OperatingPoint::new(
//!     "fast",
//!     MetricValues::new()
//!         .with(Metric::exec_time(), 0.1)
//!         .with(Metric::power(), 120.0),
//! ));
//! kb.add(OperatingPoint::new(
//!     "cool",
//!     MetricValues::new()
//!         .with(Metric::exec_time(), 0.4)
//!         .with(Metric::power(), 60.0),
//! ));
//!
//! let mut manager = ApplicationManager::new(kb, Rank::minimize(Metric::exec_time()));
//! manager.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 100.0, 10));
//! assert_eq!(manager.update(), Some("cool"));
//! ```

#![warn(missing_docs)]

mod asrtm;
mod knowledge;
mod manager;
mod metric;
mod monitor;
mod requirements;
mod shared;
mod states;

pub use asrtm::AsRtm;
pub use knowledge::{Knowledge, OperatingPoint};
pub use manager::{ApplicationManager, DEFAULT_MONITOR_WINDOW};
pub use metric::{Metric, MetricValues};
pub use monitor::Monitor;
pub use requirements::{Cmp, Constraint, Rank, RankDirection, RankKind};
pub use shared::{
    shard_content_hash, shard_index, KnowledgeDelta, SharedKnowledge, DEFAULT_SHARDS,
};
pub use states::{OptimizationState, StateRegistry, UnknownStateError};
