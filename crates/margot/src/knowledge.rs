//! Operating points and the application knowledge base.
//!
//! The knowledge is built at design time by profiling the application over
//! its software-knob space (DSE); each explored configuration becomes an
//! [`OperatingPoint`] with its expected EFP values.

use crate::metric::{Metric, MetricValues};
use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;

/// One point of the application knowledge: a knob configuration plus the
/// expected values of every profiled EFP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint<K> {
    /// The software-knob configuration.
    pub config: K,
    /// Expected EFP values from design-time profiling.
    pub metrics: MetricValues,
}

impl<K> OperatingPoint<K> {
    /// Creates an operating point.
    pub fn new(config: K, metrics: MetricValues) -> Self {
        OperatingPoint { config, metrics }
    }

    /// Expected value of a metric.
    pub fn metric(&self, m: &Metric) -> Option<f64> {
        self.metrics.get(m)
    }
}

/// The application knowledge base: the list of operating points the
/// AS-RTM selects from.
///
/// The point list is copy-on-write (`Arc`-backed): cloning a knowledge
/// base — which every fleet instance does whenever it adopts the
/// pool's refreshed cache — is a reference-count bump; the point
/// vector is only deep-copied when a holder actually mutates it.
#[derive(Debug, Clone, PartialEq)]
pub struct Knowledge<K> {
    points: Arc<Vec<OperatingPoint<K>>>,
}

impl<K> Default for Knowledge<K> {
    fn default() -> Self {
        Knowledge {
            points: Arc::new(Vec::new()),
        }
    }
}

impl<K> Knowledge<K> {
    /// An empty knowledge base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an operating point.
    pub fn add(&mut self, op: OperatingPoint<K>)
    where
        K: Clone,
    {
        Arc::make_mut(&mut self.points).push(op);
    }

    /// All operating points.
    pub fn points(&self) -> &[OperatingPoint<K>] {
        &self.points
    }

    /// Replaces the point at `pos` in place — the primitive behind
    /// incremental knowledge refresh ([`crate::KnowledgeDelta`] patches
    /// only the changed points instead of rebuilding the whole base).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    pub fn patch_point(&mut self, pos: usize, point: OperatingPoint<K>)
    where
        K: Clone,
    {
        Arc::make_mut(&mut self.points)[pos] = point;
    }

    /// Number of operating points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the knowledge base is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The metrics present in *all* operating points (the usable EFPs).
    pub fn common_metrics(&self) -> Vec<Metric> {
        let Some(first) = self.points.first() else {
            return Vec::new();
        };
        first
            .metrics
            .iter()
            .map(|(m, _)| m.clone())
            .filter(|m| self.points.iter().all(|p| p.metric(m).is_some()))
            .collect()
    }

    /// Keeps only the Pareto-optimal points under the given objectives
    /// (`true` = larger is better). Points missing a metric are dropped.
    ///
    /// # Panics
    ///
    /// Panics if `objectives` is empty.
    pub fn pareto_filter(&self, objectives: &[(Metric, bool)]) -> Knowledge<K>
    where
        K: Clone,
    {
        assert!(!objectives.is_empty(), "need at least one objective");
        let usable: Vec<&OperatingPoint<K>> = self
            .points
            .iter()
            .filter(|p| objectives.iter().all(|(m, _)| p.metric(m).is_some()))
            .collect();
        let dominated = |a: &OperatingPoint<K>, b: &OperatingPoint<K>| {
            // b dominates a: >= on all objectives, > on at least one
            // (after sign-normalising so larger is better).
            let mut strictly = false;
            for (m, larger_better) in objectives {
                let (mut va, mut vb) = (
                    a.metric(m).expect("filtered"),
                    b.metric(m).expect("filtered"),
                );
                if !larger_better {
                    va = -va;
                    vb = -vb;
                }
                if vb < va {
                    return false;
                }
                if vb > va {
                    strictly = true;
                }
            }
            strictly
        };
        let mut out = Vec::new();
        for a in &usable {
            if !usable.iter().any(|b| dominated(a, b)) {
                out.push((*a).clone());
            }
        }
        Knowledge {
            points: Arc::new(out),
        }
    }
}

impl<K> FromIterator<OperatingPoint<K>> for Knowledge<K> {
    fn from_iter<T: IntoIterator<Item = OperatingPoint<K>>>(iter: T) -> Self {
        Knowledge {
            points: Arc::new(iter.into_iter().collect()),
        }
    }
}

impl<K: Clone> Extend<OperatingPoint<K>> for Knowledge<K> {
    fn extend<T: IntoIterator<Item = OperatingPoint<K>>>(&mut self, iter: T) {
        Arc::make_mut(&mut self.points).extend(iter);
    }
}

// Hand-written serde keeping the derived `{"points":[...]}` shape the
// golden files and persisted artifacts pin, while the in-memory layout
// is Arc-backed.
impl<K: Serialize> Serialize for Knowledge<K> {
    fn to_value(&self) -> Value {
        Value::Object(vec![("points".to_string(), self.points.to_value())])
    }
}

impl<K: Deserialize> Deserialize for Knowledge<K> {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        if v.as_object().is_none() {
            return Err(serde::Error::expected("knowledge object", v));
        }
        let points = v
            .get_field("points")
            .ok_or_else(|| serde::Error::custom("missing field `points`"))?;
        Ok(Knowledge {
            points: Arc::new(Vec::<OperatingPoint<K>>::from_value(points)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(cfg: u32, time: f64, power: f64) -> OperatingPoint<u32> {
        OperatingPoint::new(
            cfg,
            MetricValues::new()
                .with(Metric::exec_time(), time)
                .with(Metric::power(), power),
        )
    }

    #[test]
    fn add_and_len() {
        let mut k = Knowledge::new();
        assert!(k.is_empty());
        k.add(op(1, 1.0, 50.0));
        k.add(op(2, 0.5, 80.0));
        assert_eq!(k.len(), 2);
    }

    #[test]
    fn clones_share_until_mutated() {
        let mut k: Knowledge<u32> = [op(1, 1.0, 50.0)].into_iter().collect();
        let snapshot = k.clone();
        assert!(
            Arc::ptr_eq(&k.points, &snapshot.points),
            "clone is a ref bump"
        );
        k.patch_point(0, op(1, 0.9, 51.0));
        assert!(
            !Arc::ptr_eq(&k.points, &snapshot.points),
            "mutation copies on write"
        );
        assert_eq!(snapshot.points()[0], op(1, 1.0, 50.0), "snapshot untouched");
    }

    #[test]
    fn serde_shape_is_a_points_struct() {
        let k: Knowledge<u32> = [op(1, 1.0, 50.0)].into_iter().collect();
        let json = serde_json::to_string(&k).expect("serialises");
        assert_eq!(
            json,
            r#"{"points":[{"config":1,"metrics":{"exec_time_s":1.0,"power_w":50.0}}]}"#
        );
        let back: Knowledge<u32> = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, k);
    }

    #[test]
    fn common_metrics_intersects() {
        let mut k = Knowledge::new();
        k.add(op(1, 1.0, 50.0));
        let mut odd = op(2, 0.5, 80.0);
        odd.metrics = MetricValues::new().with(Metric::exec_time(), 0.5);
        k.add(odd);
        let common = k.common_metrics();
        assert_eq!(common, vec![Metric::exec_time()]);
    }

    #[test]
    fn pareto_keeps_the_tradeoff_frontier() {
        let mut k = Knowledge::new();
        k.add(op(1, 1.0, 50.0)); // slow, low power: frontier
        k.add(op(2, 0.5, 80.0)); // fast, high power: frontier
        k.add(op(3, 1.0, 90.0)); // dominated by both
        k.add(op(4, 0.4, 70.0)); // dominates op2
        let frontier = k.pareto_filter(&[(Metric::exec_time(), false), (Metric::power(), false)]);
        let configs: Vec<u32> = frontier.points().iter().map(|p| p.config).collect();
        assert!(configs.contains(&1));
        assert!(configs.contains(&4));
        assert!(!configs.contains(&2), "op4 dominates op2");
        assert!(!configs.contains(&3));
    }

    #[test]
    fn pareto_with_equal_points_keeps_both() {
        let mut k = Knowledge::new();
        k.add(op(1, 1.0, 50.0));
        k.add(op(2, 1.0, 50.0));
        let frontier = k.pareto_filter(&[(Metric::exec_time(), false), (Metric::power(), false)]);
        assert_eq!(frontier.len(), 2, "ties are not dominated");
    }

    #[test]
    fn pareto_single_objective_is_argmin() {
        let mut k = Knowledge::new();
        k.add(op(1, 1.0, 50.0));
        k.add(op(2, 0.5, 80.0));
        k.add(op(3, 0.7, 60.0));
        let frontier = k.pareto_filter(&[(Metric::exec_time(), false)]);
        assert_eq!(frontier.len(), 1);
        assert_eq!(frontier.points()[0].config, 2);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut k: Knowledge<u32> = [op(1, 1.0, 50.0)].into_iter().collect();
        k.extend([op(2, 0.5, 80.0)]);
        assert_eq!(k.len(), 2);
    }
}
