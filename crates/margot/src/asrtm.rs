//! The Application-Specific Run-Time Manager (AS-RTM).
//!
//! Selects the most suitable operating point given (i) the application
//! requirements (constraints + rank), (ii) the design-time knowledge and
//! (iii) runtime feedback from the monitors (as per-metric adjustment
//! ratios). When no point satisfies every constraint, constraints are
//! relaxed lowest-priority-first, mirroring mARGOt's behaviour.

use crate::knowledge::{Knowledge, OperatingPoint};
use crate::metric::{Metric, MetricValues};
use crate::requirements::{Constraint, Rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The AS-RTM: knowledge + requirements + feedback → best configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsRtm<K> {
    knowledge: Knowledge<K>,
    constraints: Vec<Constraint>,
    rank: Rank,
    adjustments: BTreeMap<Metric, f64>,
}

impl<K: Clone + PartialEq> AsRtm<K> {
    /// Creates a manager over the given knowledge with an initial rank.
    pub fn new(knowledge: Knowledge<K>, rank: Rank) -> Self {
        AsRtm {
            knowledge,
            constraints: Vec::new(),
            rank,
            adjustments: BTreeMap::new(),
        }
    }

    /// The knowledge base.
    pub fn knowledge(&self) -> &Knowledge<K> {
        &self.knowledge
    }

    /// Replaces the knowledge base — how a deployed instance adopts
    /// refreshed operating points from a shared online knowledge layer
    /// ([`crate::SharedKnowledge`]). Requirements, feedback ratios and
    /// constraints are untouched; the next [`best`](Self::best) call
    /// selects over the new points.
    pub fn set_knowledge(&mut self, knowledge: Knowledge<K>) {
        self.knowledge = knowledge;
    }

    /// Patches only the changed operating points of a
    /// [`crate::KnowledgeDelta`] into the knowledge base — equivalent
    /// to [`set_knowledge`](Self::set_knowledge) with the full target
    /// snapshot, without cloning the unchanged points. Returns `false`
    /// (and changes nothing) if the delta does not line up with this
    /// knowledge; the caller must fall back to a full snapshot. The
    /// caller must also verify the knowledge is at the delta's
    /// `from_epoch` — see [`crate::KnowledgeDelta::apply_to`].
    #[must_use]
    pub fn apply_knowledge_delta(&mut self, delta: &crate::KnowledgeDelta<K>) -> bool {
        delta.apply_to(&mut self.knowledge)
    }

    /// The active rank.
    pub fn rank(&self) -> &Rank {
        &self.rank
    }

    /// Replaces the rank (the paper's Fig. 5 requirement switch).
    pub fn set_rank(&mut self, rank: Rank) {
        self.rank = rank;
    }

    /// Adds a constraint; keeps the list sorted by priority (descending).
    pub fn add_constraint(&mut self, c: Constraint) {
        self.constraints.push(c);
        self.constraints
            .sort_by_key(|c| std::cmp::Reverse(c.priority));
    }

    /// Updates the bound of the constraint on `metric`; returns `false`
    /// if no such constraint exists.
    pub fn set_constraint_value(&mut self, metric: &Metric, value: f64) -> bool {
        let mut found = false;
        for c in &mut self.constraints {
            if &c.metric == metric {
                c.value = value;
                found = true;
            }
        }
        found
    }

    /// Removes all constraints on `metric`.
    pub fn remove_constraints_on(&mut self, metric: &Metric) {
        self.constraints.retain(|c| &c.metric != metric);
    }

    /// Removes every constraint.
    pub fn clear_constraints(&mut self) {
        self.constraints.clear();
    }

    /// Atomically applies a named optimisation state: replaces the rank
    /// and the whole constraint set (mARGOt state switching).
    pub fn apply_state(&mut self, state: &crate::states::OptimizationState) {
        self.rank = state.rank.clone();
        self.constraints = state.constraints.clone();
        self.constraints
            .sort_by_key(|c| std::cmp::Reverse(c.priority));
    }

    /// The active constraints, highest priority first.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Sets the runtime feedback ratio for a metric
    /// (`observed / expected`, clamped to `[0.25, 4.0]`).
    pub fn set_adjustment(&mut self, metric: Metric, ratio: f64) {
        let ratio = if ratio.is_finite() { ratio } else { 1.0 };
        self.adjustments.insert(metric, ratio.clamp(0.25, 4.0));
    }

    /// Clears all feedback ratios.
    pub fn clear_adjustments(&mut self) {
        self.adjustments.clear();
    }

    /// Expected metrics of `op`, scaled by the current feedback ratios.
    pub fn adjusted_metrics(&self, op: &OperatingPoint<K>) -> MetricValues {
        op.metrics
            .iter()
            .map(|(m, v)| {
                let f = self.adjustments.get(m).copied().unwrap_or(1.0);
                (m.clone(), v * f)
            })
            .collect()
    }

    /// Selects the best operating point under the current requirements.
    ///
    /// Returns `None` only when the knowledge base is empty or the rank
    /// cannot be evaluated on any point.
    ///
    /// Adjusted metric values are computed lazily per lookup (raw value
    /// × feedback ratio — the same arithmetic
    /// [`adjusted_metrics`](Self::adjusted_metrics) materialises), so
    /// the planning loop allocates nothing on the feasible path.
    pub fn best(&self) -> Option<&OperatingPoint<K>> {
        let pts = self.knowledge.points();
        if pts.is_empty() {
            return None;
        }
        // The planning loop only ever looks up the constraints' and the
        // rank's metrics; resolve their feedback ratios once instead of
        // once per point per lookup.
        let mut factors: Vec<(&Metric, f64)> = Vec::new();
        let rank_metrics = match &self.rank.kind {
            crate::requirements::RankKind::Linear(terms)
            | crate::requirements::RankKind::Geometric(terms) => terms.iter().map(|(m, _)| m),
        };
        for m in self
            .constraints
            .iter()
            .map(|c| &c.metric)
            .chain(rank_metrics)
        {
            if !factors.iter().any(|(fm, _)| fm.same(m)) {
                let f = self.adjustments.get(m).copied().unwrap_or(1.0);
                factors.push((m, f));
            }
        }
        let adjusted = |i: usize, m: &Metric| {
            let v = pts[i].metrics.get(m)?;
            let f = factors.iter().find(|(fm, _)| fm.same(m)).map_or_else(
                || self.adjustments.get(m).copied().unwrap_or(1.0),
                |(_, f)| *f,
            );
            Some(v * f)
        };
        let feasible = |i: usize| {
            self.constraints
                .iter()
                .all(|c| c.satisfied_with(|m| adjusted(i, m)))
        };

        let any_feasible = (0..pts.len()).any(feasible);
        let infeasible_candidates: Vec<usize> = if any_feasible {
            Vec::new()
        } else {
            // Infeasible requirements: rank candidates by how well they
            // satisfy constraints in priority order (violation vector
            // lexicographic minimum), then let the rank break ties.
            let vectors: Vec<Vec<f64>> = (0..pts.len())
                .map(|i| {
                    self.constraints
                        .iter()
                        .map(|c| c.violation_with(|m| adjusted(i, m)))
                        .collect()
                })
                .collect();
            let best_violation = vectors
                .iter()
                .min_by(|a, b| {
                    a.partial_cmp(b)
                        .expect("violations are finite-or-inf comparable")
                })?
                .clone();
            (0..pts.len())
                .filter(|&i| vectors[i] == best_violation)
                .collect()
        };

        let mut best: Option<(usize, f64)> = None;
        let mut consider = |i: usize| {
            if let Some(r) = self.rank.value_with(|m| adjusted(i, m)) {
                match best {
                    Some((_, br)) if !self.rank.better(r, br) => {}
                    _ => best = Some((i, r)),
                }
            }
        };
        if any_feasible {
            (0..pts.len())
                .filter(|&i| feasible(i))
                .for_each(&mut consider);
        } else {
            infeasible_candidates.into_iter().for_each(&mut consider);
        }
        best.map(|(i, _)| &pts[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Cmp;

    /// A small synthetic knowledge base:
    ///   cfg 1: slow & cool      (t=1.0,  p=50)   thr/W² = 4.0e-4
    ///   cfg 2: mid              (t=0.4,  p=80)   thr/W² = 3.9e-4
    ///   cfg 3: fast & hot       (t=0.15, p=140)  thr/W² = 3.4e-4
    fn kb() -> Knowledge<u32> {
        let mk = |cfg, t: f64, p: f64| {
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), t)
                    .with(Metric::power(), p)
                    .with(Metric::throughput(), 1.0 / t),
            )
        };
        [mk(1, 1.0, 50.0), mk(2, 0.4, 80.0), mk(3, 0.15, 140.0)]
            .into_iter()
            .collect()
    }

    #[test]
    fn unconstrained_rank_picks_global_best() {
        let rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        assert_eq!(rtm.best().unwrap().config, 3);
    }

    #[test]
    fn power_constraint_carves_feasible_region() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 90.0, 10));
        assert_eq!(rtm.best().unwrap().config, 2);
        rtm.set_constraint_value(&Metric::power(), 60.0);
        assert_eq!(rtm.best().unwrap().config, 1);
    }

    #[test]
    fn infeasible_budget_falls_back_to_closest() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 40.0, 10));
        // Nothing satisfies 40 W; cfg 1 (50 W) violates least.
        assert_eq!(rtm.best().unwrap().config, 1);
    }

    #[test]
    fn priorities_decide_between_conflicting_constraints() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        // High priority: be fast (t <= 0.2); low priority: be cool (p <= 60).
        // No point satisfies both; cfg 3 satisfies the high-priority one.
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 60.0, 1));
        rtm.add_constraint(Constraint::new(
            Metric::exec_time(),
            Cmp::LessOrEqual,
            0.2,
            100,
        ));
        assert_eq!(rtm.best().unwrap().config, 3);
    }

    #[test]
    fn rank_switch_changes_selection() {
        // The Fig. 5 scenario: Throughput rank picks the hot point,
        // Thr/W² picks the energy-efficient one, and switching back
        // recovers the performance point.
        let mut rtm = AsRtm::new(kb(), Rank::maximize(Metric::throughput()));
        assert_eq!(rtm.best().unwrap().config, 3);
        rtm.set_rank(Rank::throughput_per_watt2());
        assert_eq!(rtm.best().unwrap().config, 1);
        rtm.set_rank(Rank::maximize(Metric::throughput()));
        assert_eq!(rtm.best().unwrap().config, 3);
    }

    #[test]
    fn adjustment_shifts_constraint_feasibility() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            150.0,
            10,
        ));
        assert_eq!(rtm.best().unwrap().config, 3);
        // Observed power is 1.5x the expectation: cfg3 now reads 210 W.
        rtm.set_adjustment(Metric::power(), 1.5);
        assert_eq!(rtm.best().unwrap().config, 2);
        rtm.clear_adjustments();
        assert_eq!(rtm.best().unwrap().config, 3);
    }

    #[test]
    fn adjustments_are_clamped() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        rtm.set_adjustment(Metric::power(), 1000.0);
        let op = rtm.knowledge().points()[0].clone();
        let adj = rtm.adjusted_metrics(&op);
        assert!((adj.get(&Metric::power()).unwrap() - 50.0 * 4.0).abs() < 1e-9);
        rtm.set_adjustment(Metric::power(), f64::NAN);
        let adj = rtm.adjusted_metrics(&op);
        assert_eq!(adj.get(&Metric::power()).unwrap(), 50.0);
    }

    #[test]
    fn empty_knowledge_returns_none() {
        let rtm: AsRtm<u32> = AsRtm::new(Knowledge::new(), Rank::minimize(Metric::exec_time()));
        assert!(rtm.best().is_none());
    }

    #[test]
    fn remove_constraints_restores_unconstrained_choice() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        rtm.add_constraint(Constraint::new(Metric::power(), Cmp::LessOrEqual, 60.0, 10));
        assert_eq!(rtm.best().unwrap().config, 1);
        rtm.remove_constraints_on(&Metric::power());
        assert_eq!(rtm.best().unwrap().config, 3);
    }

    #[test]
    fn set_constraint_value_reports_missing() {
        let mut rtm = AsRtm::new(kb(), Rank::minimize(Metric::exec_time()));
        assert!(!rtm.set_constraint_value(&Metric::power(), 100.0));
    }
}
