//! Extra-functional property (EFP) metrics and per-point metric values.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The name of an extra-functional property (execution time, power, …).
///
/// Metrics are ordered and hashable so they can key maps; well-known
/// metrics are provided as constants. The name is a shared, interned
/// `Arc<str>`, so cloning a metric — which the knowledge hot path does
/// for every observation — is a reference-count bump, not a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Metric(Arc<str>);

/// Returns the shared interned name for one well-known metric.
macro_rules! interned {
    ($name:literal) => {{
        static CACHE: OnceLock<Arc<str>> = OnceLock::new();
        Metric(Arc::clone(CACHE.get_or_init(|| Arc::from($name))))
    }};
}

impl Metric {
    /// Kernel wall-clock time in seconds.
    pub fn exec_time() -> Metric {
        interned!("exec_time_s")
    }

    /// Average machine power in watts.
    pub fn power() -> Metric {
        interned!("power_w")
    }

    /// Kernel invocations per second.
    pub fn throughput() -> Metric {
        interned!("throughput")
    }

    /// Energy per invocation in joules.
    pub fn energy() -> Metric {
        interned!("energy_j")
    }

    /// A custom metric. Well-known names are interned to their shared
    /// allocation so decoded wire messages alias the same storage.
    pub fn custom(name: impl AsRef<str>) -> Metric {
        match name.as_ref() {
            "exec_time_s" => Metric::exec_time(),
            "power_w" => Metric::power(),
            "throughput" => Metric::throughput(),
            "energy_j" => Metric::energy(),
            other => Metric(Arc::from(other)),
        }
    }

    /// The metric name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Equality with an interned-pointer fast path: well-known metrics
    /// (and decoded copies of them) share one allocation, so the common
    /// case is a pointer compare instead of a string compare.
    #[inline]
    pub(crate) fn same(&self, other: &Metric) -> bool {
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Metric {
    fn from(s: &str) -> Self {
        Metric::custom(s)
    }
}

impl Serialize for Metric {
    fn to_value(&self) -> Value {
        // Same wire shape as the former transparent newtype: a plain
        // string (also usable as a map key).
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for Metric {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        // Interning happens on the way in.
        match v {
            Value::Str(s) => Ok(Metric::custom(s)),
            other => Err(serde::Error::expected("metric name string", other)),
        }
    }
}

/// A bundle of metric values, e.g. the expected EFPs of one operating
/// point or one observation of the running application.
///
/// Stored as a vector of `(metric, value)` pairs sorted by metric name
/// — dense, cache-friendly and cheap to clone, while iteration order
/// and the serialised map shape stay identical to the former
/// `BTreeMap` representation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricValues(Vec<(Metric, f64)>);

impl MetricValues {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard four-EFP observation bundle of one kernel
    /// execution: the measured time and power plus the derived
    /// throughput and energy — the single definition shared by the
    /// MAPE-K monitors and the fleet's knowledge publishes.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is not strictly positive or `power_w` is not
    /// finite.
    pub fn from_execution(time_s: f64, power_w: f64) -> MetricValues {
        assert!(time_s > 0.0, "non-positive execution time {time_s}");
        MetricValues::new()
            .with(Metric::exec_time(), time_s)
            .with(Metric::power(), power_w)
            .with(Metric::throughput(), 1.0 / time_s)
            .with(Metric::energy(), time_s * power_w)
    }

    /// Builds a bundle from possibly non-finite pairs — the wire
    /// ingress path (the serde and binary decoders), which performs
    /// **no** finiteness validation. Non-finite values are tolerated
    /// here and dropped-and-counted downstream when they reach a
    /// sliding window ([`crate::Monitor::push`] /
    /// [`crate::SharedKnowledge::publish`]), mirroring the monitor's
    /// documented policy. Duplicate metrics keep the last value.
    pub fn from_unvalidated(pairs: impl IntoIterator<Item = (Metric, f64)>) -> MetricValues {
        let mut mv = MetricValues::new();
        for (m, v) in pairs {
            mv.insert_unchecked(m, v);
        }
        mv
    }

    /// Builder-style insertion.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — metric values come from
    /// measurements or models and must be real numbers.
    pub fn with(mut self, metric: Metric, value: f64) -> Self {
        self.insert(metric, value);
        self
    }

    /// Inserts or replaces a value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn insert(&mut self, metric: Metric, value: f64) {
        assert!(
            value.is_finite(),
            "metric {metric} = {value} must be finite"
        );
        self.insert_unchecked(metric, value);
    }

    /// Sorted insert-or-replace without the finiteness guard.
    fn insert_unchecked(&mut self, metric: Metric, value: f64) {
        match self.0.binary_search_by(|(m, _)| m.cmp(&metric)) {
            Ok(i) => self.0[i].1 = value,
            Err(i) => self.0.insert(i, (metric, value)),
        }
    }

    /// Looks up a value. Bundles are small (typically four EFPs), so a
    /// linear scan through the interned-pointer equality fast path
    /// beats a binary search of string compares.
    pub fn get(&self, metric: &Metric) -> Option<f64> {
        self.0.iter().find(|(m, _)| m.same(metric)).map(|(_, v)| *v)
    }

    /// Iterates over `(metric, value)` pairs in metric order.
    pub fn iter(&self) -> impl Iterator<Item = (&Metric, f64)> {
        self.0.iter().map(|(k, v)| (k, *v))
    }

    /// Number of metrics present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(Metric, f64)> for MetricValues {
    fn from_iter<T: IntoIterator<Item = (Metric, f64)>>(iter: T) -> Self {
        let mut mv = MetricValues::new();
        for (m, v) in iter {
            mv.insert(m, v);
        }
        mv
    }
}

impl Serialize for MetricValues {
    fn to_value(&self) -> Value {
        // Same wire shape as the former BTreeMap: a map in metric
        // order (the vector is kept sorted).
        Value::Object(
            self.0
                .iter()
                .map(|(m, v)| (m.as_str().to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Deserialize for MetricValues {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        // The ingress path performs no finiteness validation (see
        // `from_unvalidated`); duplicate keys keep the last value.
        match v {
            Value::Object(entries) => {
                let mut mv = MetricValues::new();
                for (k, val) in entries {
                    mv.insert_unchecked(Metric::custom(k), f64::from_value(val)?);
                }
                Ok(mv)
            }
            other => Err(serde::Error::expected("metric value map", other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_metrics_have_stable_names() {
        assert_eq!(Metric::exec_time().as_str(), "exec_time_s");
        assert_eq!(Metric::power().as_str(), "power_w");
        assert_eq!(Metric::throughput().as_str(), "throughput");
        assert_eq!(Metric::energy().as_str(), "energy_j");
    }

    #[test]
    fn well_known_names_are_interned() {
        assert!(Arc::ptr_eq(
            &Metric::power().0,
            &Metric::custom("power_w").0
        ));
        assert_eq!(Metric::custom("cache_misses").as_str(), "cache_misses");
    }

    #[test]
    fn values_roundtrip() {
        let mv = MetricValues::new()
            .with(Metric::power(), 95.0)
            .with(Metric::exec_time(), 0.120);
        assert_eq!(mv.get(&Metric::power()), Some(95.0));
        assert_eq!(mv.get(&Metric::throughput()), None);
        assert_eq!(mv.len(), 2);
    }

    #[test]
    fn insert_replaces() {
        let mut mv = MetricValues::new();
        mv.insert(Metric::power(), 90.0);
        mv.insert(Metric::power(), 100.0);
        assert_eq!(mv.get(&Metric::power()), Some(100.0));
        assert_eq!(mv.len(), 1);
    }

    #[test]
    fn iteration_is_in_metric_order() {
        let mv = MetricValues::new()
            .with(Metric::throughput(), 8.0)
            .with(Metric::energy(), 9.5)
            .with(Metric::exec_time(), 0.125);
        let names: Vec<&str> = mv.iter().map(|(m, _)| m.as_str()).collect();
        assert_eq!(names, vec!["energy_j", "exec_time_s", "throughput"]);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_values_rejected() {
        let _ = MetricValues::new().with(Metric::power(), f64::NAN);
    }

    #[test]
    fn unvalidated_ingress_tolerates_non_finite_values() {
        let mv = MetricValues::from_unvalidated([
            (Metric::power(), f64::NAN),
            (Metric::exec_time(), 0.5),
            (Metric::exec_time(), 0.25), // duplicate: last wins
        ]);
        assert_eq!(mv.len(), 2);
        assert!(mv.get(&Metric::power()).expect("present").is_nan());
        assert_eq!(mv.get(&Metric::exec_time()), Some(0.25));
    }

    #[test]
    fn serde_shape_matches_a_plain_json_map() {
        let mv = MetricValues::new()
            .with(Metric::power(), 95.0)
            .with(Metric::exec_time(), 0.125);
        let json = serde_json::to_string(&mv).expect("serialises");
        assert_eq!(json, r#"{"exec_time_s":0.125,"power_w":95.0}"#);
        let back: MetricValues = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, mv);
    }

    #[test]
    fn from_iterator_collects() {
        let mv: MetricValues = [(Metric::power(), 80.0), (Metric::energy(), 9.5)]
            .into_iter()
            .collect();
        assert_eq!(mv.len(), 2);
    }
}
