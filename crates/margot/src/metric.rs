//! Extra-functional property (EFP) metrics and per-point metric values.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The name of an extra-functional property (execution time, power, …).
///
/// Metrics are ordered and hashable so they can key maps; well-known
/// metrics are provided as constants.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Metric(String);

impl Metric {
    /// Kernel wall-clock time in seconds.
    pub fn exec_time() -> Metric {
        Metric("exec_time_s".into())
    }

    /// Average machine power in watts.
    pub fn power() -> Metric {
        Metric("power_w".into())
    }

    /// Kernel invocations per second.
    pub fn throughput() -> Metric {
        Metric("throughput".into())
    }

    /// Energy per invocation in joules.
    pub fn energy() -> Metric {
        Metric("energy_j".into())
    }

    /// A custom metric.
    pub fn custom(name: impl Into<String>) -> Metric {
        Metric(name.into())
    }

    /// The metric name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Metric {
    fn from(s: &str) -> Self {
        Metric(s.to_string())
    }
}

/// A bundle of metric values, e.g. the expected EFPs of one operating
/// point or one observation of the running application.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricValues(BTreeMap<Metric, f64>);

impl MetricValues {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// The standard four-EFP observation bundle of one kernel
    /// execution: the measured time and power plus the derived
    /// throughput and energy — the single definition shared by the
    /// MAPE-K monitors and the fleet's knowledge publishes.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is not strictly positive or `power_w` is not
    /// finite.
    pub fn from_execution(time_s: f64, power_w: f64) -> MetricValues {
        assert!(time_s > 0.0, "non-positive execution time {time_s}");
        MetricValues::new()
            .with(Metric::exec_time(), time_s)
            .with(Metric::power(), power_w)
            .with(Metric::throughput(), 1.0 / time_s)
            .with(Metric::energy(), time_s * power_w)
    }

    /// Builder-style insertion.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite — metric values come from
    /// measurements or models and must be real numbers.
    pub fn with(mut self, metric: Metric, value: f64) -> Self {
        self.insert(metric, value);
        self
    }

    /// Inserts or replaces a value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not finite.
    pub fn insert(&mut self, metric: Metric, value: f64) {
        assert!(
            value.is_finite(),
            "metric {metric} = {value} must be finite"
        );
        self.0.insert(metric, value);
    }

    /// Looks up a value.
    pub fn get(&self, metric: &Metric) -> Option<f64> {
        self.0.get(metric).copied()
    }

    /// Iterates over `(metric, value)` pairs in metric order.
    pub fn iter(&self) -> impl Iterator<Item = (&Metric, f64)> {
        self.0.iter().map(|(k, v)| (k, *v))
    }

    /// Number of metrics present.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no metrics are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(Metric, f64)> for MetricValues {
    fn from_iter<T: IntoIterator<Item = (Metric, f64)>>(iter: T) -> Self {
        let mut mv = MetricValues::new();
        for (m, v) in iter {
            mv.insert(m, v);
        }
        mv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_metrics_have_stable_names() {
        assert_eq!(Metric::exec_time().as_str(), "exec_time_s");
        assert_eq!(Metric::power().as_str(), "power_w");
        assert_eq!(Metric::throughput().as_str(), "throughput");
        assert_eq!(Metric::energy().as_str(), "energy_j");
    }

    #[test]
    fn values_roundtrip() {
        let mv = MetricValues::new()
            .with(Metric::power(), 95.0)
            .with(Metric::exec_time(), 0.120);
        assert_eq!(mv.get(&Metric::power()), Some(95.0));
        assert_eq!(mv.get(&Metric::throughput()), None);
        assert_eq!(mv.len(), 2);
    }

    #[test]
    fn insert_replaces() {
        let mut mv = MetricValues::new();
        mv.insert(Metric::power(), 90.0);
        mv.insert(Metric::power(), 100.0);
        assert_eq!(mv.get(&Metric::power()), Some(100.0));
        assert_eq!(mv.len(), 1);
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn non_finite_values_rejected() {
        let _ = MetricValues::new().with(Metric::power(), f64::NAN);
    }

    #[test]
    fn from_iterator_collects() {
        let mv: MetricValues = [(Metric::power(), 80.0), (Metric::energy(), 9.5)]
            .into_iter()
            .collect();
        assert_eq!(mv.len(), 2);
    }
}
