//! The application-facing manager: the MAPE-K loop facade whose calls the
//! LARA `Autotuner` strategy weaves around the kernel region of interest.
//!
//! The runtime protocol mirrors the mARGOt API the paper describes
//! ("an initialization call … and start/stop/update calls around the
//! regions of interest"):
//!
//! 1. [`ApplicationManager::new`] — `margot_init()`;
//! 2. [`ApplicationManager::update`] — select the configuration for the
//!    next kernel invocation (Plan + Execute);
//! 3. [`ApplicationManager::start_region`] / [`ApplicationManager::stop_region`]
//!    — bracket the kernel and feed the monitors (Monitor + Analyse).

use crate::asrtm::AsRtm;
use crate::knowledge::{Knowledge, OperatingPoint};
use crate::metric::{Metric, MetricValues};
use crate::monitor::Monitor;
use crate::requirements::{Constraint, Rank};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default monitor window (observations) when none is specified.
pub const DEFAULT_MONITOR_WINDOW: usize = 5;

/// The per-application autotuner facade.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationManager<K> {
    asrtm: AsRtm<K>,
    monitors: BTreeMap<Metric, Monitor>,
    current: Option<OperatingPoint<K>>,
    region_open: bool,
    updates: u64,
}

impl<K: Clone + PartialEq> ApplicationManager<K> {
    /// Initialises the manager (the `margot_init()` analogue).
    pub fn new(knowledge: Knowledge<K>, rank: Rank) -> Self {
        ApplicationManager {
            asrtm: AsRtm::new(knowledge, rank),
            monitors: BTreeMap::new(),
            current: None,
            region_open: false,
            updates: 0,
        }
    }

    /// Registers a monitor for `metric` with the given window.
    pub fn add_monitor(&mut self, metric: Metric, window: usize) {
        self.monitors.insert(metric, Monitor::new(window));
    }

    /// Read access to a monitor.
    pub fn monitor(&self, metric: &Metric) -> Option<&Monitor> {
        self.monitors.get(metric)
    }

    /// The underlying AS-RTM (to add constraints or switch ranks).
    pub fn asrtm_mut(&mut self) -> &mut AsRtm<K> {
        &mut self.asrtm
    }

    /// The underlying AS-RTM, read-only.
    pub fn asrtm(&self) -> &AsRtm<K> {
        &self.asrtm
    }

    /// Adds a constraint (delegates to the AS-RTM).
    pub fn add_constraint(&mut self, c: Constraint) {
        self.asrtm.add_constraint(c);
    }

    /// Switches the rank; the next [`update`](Self::update) re-plans.
    pub fn set_rank(&mut self, rank: Rank) {
        self.asrtm.set_rank(rank);
    }

    /// Adopts a refreshed knowledge base (e.g. a
    /// [`crate::SharedKnowledge`] snapshot published by a fleet).
    ///
    /// If the currently applied configuration survives in the new
    /// knowledge, its expected metrics are refreshed in place so the
    /// *Analyse* step compares observations against the new
    /// expectations; the monitors keep their history. The next
    /// [`update`](Self::update) re-plans over the new points.
    pub fn set_knowledge(&mut self, knowledge: Knowledge<K>) {
        if let Some(cur) = &mut self.current {
            if let Some(refreshed) = knowledge.points().iter().find(|p| p.config == cur.config) {
                *cur = refreshed.clone();
            }
        }
        self.asrtm.set_knowledge(knowledge);
    }

    /// Adopts a refreshed knowledge base *incrementally*: patches only
    /// the changed points of a [`crate::KnowledgeDelta`] instead of
    /// replacing the whole base — the cheap path a fleet instance takes
    /// when it kept up with the shared knowledge epoch. Behaves exactly
    /// like [`set_knowledge`](Self::set_knowledge) with the delta's
    /// target snapshot, including refreshing the currently applied
    /// configuration's expectations in place (monitors keep their
    /// history). Returns `false` (and changes nothing) if the delta
    /// does not line up with the current knowledge; the caller must
    /// fall back to a full snapshot.
    ///
    /// The caller must verify the knowledge is at the delta's
    /// `from_epoch` first — see [`crate::KnowledgeDelta::apply_to`] for
    /// why a stale receiver cannot be detected here.
    #[must_use]
    pub fn apply_knowledge_delta(&mut self, delta: &crate::KnowledgeDelta<K>) -> bool {
        if !self.asrtm.apply_knowledge_delta(delta) {
            return false;
        }
        if let Some(cur) = &mut self.current {
            if let Some((_, refreshed)) = delta.changed.iter().find(|(_, p)| p.config == cur.config)
            {
                *cur = refreshed.clone();
            }
        }
        true
    }

    /// Atomically applies a named optimisation state (rank + constraint
    /// set); the next [`update`](Self::update) re-plans under it.
    pub fn apply_state(&mut self, state: &crate::states::OptimizationState) {
        self.asrtm.apply_state(state);
    }

    /// The MAPE-K *Plan/Execute* step: recomputes feedback from the
    /// monitors, selects the best operating point and returns its knob
    /// configuration. Returns `None` when the knowledge base is empty.
    pub fn update(&mut self) -> Option<K> {
        self.refresh_feedback();
        let best = self.asrtm.best()?;
        let changed = self
            .current
            .as_ref()
            .is_none_or(|cur| cur.config != best.config);
        let best = best.clone();
        if changed {
            // Observations from another configuration must not feed back
            // into expectations for the new one.
            for m in self.monitors.values_mut() {
                m.clear();
            }
        }
        let config = best.config.clone();
        self.current = Some(best);
        self.updates += 1;
        Some(config)
    }

    /// Marks the start of the kernel region (the `margot start_monitor`
    /// analogue).
    ///
    /// # Panics
    ///
    /// Panics if the region is already open — that is a weaving bug.
    pub fn start_region(&mut self) {
        assert!(!self.region_open, "region started twice");
        self.region_open = true;
    }

    /// Marks the end of the kernel region and records the observed EFPs.
    ///
    /// # Panics
    ///
    /// Panics if the region was never started.
    pub fn stop_region(&mut self, observed: &MetricValues) {
        assert!(self.region_open, "region stopped without start");
        self.region_open = false;
        for (metric, value) in observed.iter() {
            if let Some(mon) = self.monitors.get_mut(metric) {
                mon.push(value);
            }
        }
    }

    /// Convenience: records a time/power execution observation with the
    /// derived throughput and energy metrics.
    ///
    /// # Panics
    ///
    /// Panics if `time_s` is not strictly positive.
    pub fn observe_execution(&mut self, time_s: f64, power_w: f64) {
        let values = MetricValues::from_execution(time_s, power_w);
        self.start_region();
        self.stop_region(&values);
    }

    /// The currently applied operating point.
    pub fn current(&self) -> Option<&OperatingPoint<K>> {
        self.current.as_ref()
    }

    /// Number of `update` calls so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// One mARGOt-style log line: expected vs observed per metric.
    pub fn log(&self) -> String
    where
        K: std::fmt::Debug,
    {
        let mut s = String::new();
        match &self.current {
            None => s.push_str("margot: no configuration applied"),
            Some(op) => {
                let _ = write!(s, "margot: config={:?}", op.config);
                for (metric, expected) in op.metrics.iter() {
                    let _ = write!(s, " {metric}={expected:.4}");
                    if let Some(mon) = self.monitors.get(metric) {
                        if let Some(mean) = mon.mean() {
                            let _ = write!(s, "(obs {mean:.4})");
                        }
                    }
                }
            }
        }
        s
    }

    /// The MAPE-K *Analyse* step: per-metric observed/expected ratios.
    fn refresh_feedback(&mut self) {
        let Some(current) = &self.current else {
            return;
        };
        let ratios: Vec<(Metric, f64)> = self
            .monitors
            .iter()
            .filter_map(|(metric, mon)| {
                let mean = mon.mean()?;
                let expected = current.metric(metric)?;
                (expected.abs() > 1e-12).then(|| (metric.clone(), mean / expected))
            })
            .collect();
        for (metric, ratio) in ratios {
            self.asrtm.set_adjustment(metric, ratio);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::requirements::Cmp;

    fn kb() -> Knowledge<u32> {
        let mk = |cfg, t: f64, p: f64| {
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), t)
                    .with(Metric::power(), p)
                    .with(Metric::throughput(), 1.0 / t),
            )
        };
        [mk(1, 1.0, 50.0), mk(2, 0.4, 80.0), mk(3, 0.15, 140.0)]
            .into_iter()
            .collect()
    }

    fn manager() -> ApplicationManager<u32> {
        let mut m = ApplicationManager::new(kb(), Rank::minimize(Metric::exec_time()));
        m.add_monitor(Metric::exec_time(), 5);
        m.add_monitor(Metric::power(), 5);
        m.add_monitor(Metric::throughput(), 5);
        m
    }

    #[test]
    fn update_selects_and_applies() {
        let mut m = manager();
        assert_eq!(m.update(), Some(3));
        assert_eq!(m.current().unwrap().config, 3);
        assert_eq!(m.updates(), 1);
    }

    #[test]
    fn region_protocol_feeds_monitors() {
        let mut m = manager();
        m.update();
        m.observe_execution(0.16, 139.0);
        m.observe_execution(0.14, 141.0);
        let mon = m.monitor(&Metric::exec_time()).unwrap();
        assert_eq!(mon.len(), 2);
        assert!((mon.mean().unwrap() - 0.15).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "region started twice")]
    fn double_start_is_a_weaving_bug() {
        let mut m = manager();
        m.start_region();
        m.start_region();
    }

    #[test]
    #[should_panic(expected = "without start")]
    fn stop_without_start_is_a_weaving_bug() {
        let mut m = manager();
        m.stop_region(&MetricValues::new());
    }

    #[test]
    fn feedback_loop_adapts_selection() {
        let mut m = manager();
        m.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            150.0,
            10,
        ));
        assert_eq!(m.update(), Some(3));
        // The platform turns out hotter than profiled: cfg3 really draws
        // ~210 W. After observations, the next update must back off.
        for _ in 0..5 {
            m.observe_execution(0.15, 210.0);
        }
        assert_eq!(m.update(), Some(2));
    }

    #[test]
    fn config_change_clears_monitors() {
        let mut m = manager();
        m.add_constraint(Constraint::new(
            Metric::power(),
            Cmp::LessOrEqual,
            150.0,
            10,
        ));
        m.update();
        for _ in 0..5 {
            m.observe_execution(0.15, 210.0);
        }
        m.update(); // switches 3 -> 2, must clear windows
        assert_eq!(m.monitor(&Metric::power()).unwrap().len(), 0);
    }

    #[test]
    fn stable_selection_keeps_monitor_history() {
        let mut m = manager();
        m.update();
        m.observe_execution(0.15, 140.0);
        m.update(); // same config: window survives
        assert_eq!(m.monitor(&Metric::power()).unwrap().len(), 1);
    }

    #[test]
    fn log_mentions_config_and_metrics() {
        let mut m = manager();
        assert!(m.log().contains("no configuration"));
        m.update();
        m.observe_execution(0.15, 139.5);
        let log = m.log();
        assert!(log.contains("config=3"), "{log}");
        assert!(log.contains("power_w"), "{log}");
        assert!(log.contains("obs"), "{log}");
    }

    #[test]
    fn rank_switch_takes_effect_next_update() {
        let mut m = manager();
        assert_eq!(m.update(), Some(3));
        m.set_rank(Rank::throughput_per_watt2());
        assert_eq!(m.update(), Some(1));
    }

    #[test]
    fn empty_knowledge_update_is_none() {
        let mut m: ApplicationManager<u32> =
            ApplicationManager::new(Knowledge::new(), Rank::minimize(Metric::exec_time()));
        assert_eq!(m.update(), None);
    }
}
