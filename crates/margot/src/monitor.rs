//! The monitoring infrastructure: windowed observation buffers with
//! summary statistics, one per EFP, mirroring mARGOt's monitor module.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A sliding-window monitor over a stream of observations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Monitor {
    window: usize,
    buf: VecDeque<f64>,
    total_observations: u64,
    dropped_observations: u64,
}

impl Monitor {
    /// Creates a monitor keeping the last `window` observations.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        Monitor {
            window,
            buf: VecDeque::with_capacity(window),
            total_observations: 0,
            dropped_observations: 0,
        }
    }

    /// Records an observation and returns whether it was accepted.
    ///
    /// Real measurement chains occasionally emit NaN/±inf (a RAPL
    /// counter wrap, a zero-duration timer window); such non-finite
    /// values are **dropped and counted** instead of poisoning the
    /// window statistics — see [`Monitor::dropped_observations`].
    pub fn push(&mut self, value: f64) -> bool {
        if !value.is_finite() {
            self.dropped_observations += 1;
            return false;
        }
        if self.buf.len() == self.window {
            self.buf.pop_front();
        }
        self.buf.push_back(value);
        self.total_observations += 1;
        true
    }

    /// Window size.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total observations ever accepted (not limited to the window).
    pub fn total_observations(&self) -> u64 {
        self.total_observations
    }

    /// Number of non-finite observations dropped by
    /// [`push`](Self::push) over the monitor's lifetime.
    pub fn dropped_observations(&self) -> u64 {
        self.dropped_observations
    }

    /// Latest observation.
    pub fn last(&self) -> Option<f64> {
        self.buf.back().copied()
    }

    /// Window mean.
    pub fn mean(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }

    /// Window standard deviation (population).
    pub fn stddev(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self
            .buf
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f64>()
            / self.buf.len() as f64;
        Some(var.sqrt())
    }

    /// Window minimum.
    pub fn min(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::min)
    }

    /// Window maximum.
    pub fn max(&self) -> Option<f64> {
        self.buf.iter().copied().reduce(f64::max)
    }

    /// Clears the window (e.g. after a configuration change, so stale
    /// observations don't pollute feedback).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_monitor_has_no_stats() {
        let m = Monitor::new(4);
        assert!(m.is_empty());
        assert_eq!(m.mean(), None);
        assert_eq!(m.stddev(), None);
        assert_eq!(m.last(), None);
        assert_eq!(m.min(), None);
    }

    #[test]
    fn statistics_over_window() {
        let mut m = Monitor::new(8);
        for v in [2.0, 4.0, 6.0, 8.0] {
            m.push(v);
        }
        assert_eq!(m.mean(), Some(5.0));
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.max(), Some(8.0));
        assert_eq!(m.last(), Some(8.0));
        let sd = m.stddev().unwrap();
        assert!((sd - 5.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn window_evicts_oldest() {
        let mut m = Monitor::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            m.push(v);
        }
        assert_eq!(m.len(), 3);
        assert_eq!(m.min(), Some(2.0));
        assert_eq!(m.total_observations(), 4);
    }

    #[test]
    fn clear_resets_window_not_total() {
        let mut m = Monitor::new(3);
        m.push(1.0);
        m.push(2.0);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.total_observations(), 2);
    }

    #[test]
    fn non_finite_observations_are_dropped_and_counted() {
        let mut m = Monitor::new(2);
        assert!(m.push(1.0));
        assert!(!m.push(f64::NAN));
        assert!(!m.push(f64::INFINITY));
        assert!(!m.push(f64::NEG_INFINITY));
        assert_eq!(m.len(), 1, "dropped values must not enter the window");
        assert_eq!(m.mean(), Some(1.0));
        assert_eq!(m.total_observations(), 1);
        assert_eq!(m.dropped_observations(), 3);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = Monitor::new(0);
    }
}
