//! Property tests of the AS-RTM selection laws:
//!
//! - when the feasible region is non-empty, the selected point
//!   satisfies **all** constraints (nothing is relaxed needlessly);
//! - when it is empty, relaxation is lowest-priority-first: the
//!   selected point's violation vector (constraints in descending
//!   priority order) is lexicographically minimal, so it satisfies
//!   every constraint in the longest satisfiable priority prefix;
//! - `set_constraint_value`, `set_rank` and `set_adjustment` never
//!   panic on arbitrary finite inputs, and selection still succeeds.

use margot::{AsRtm, Cmp, Constraint, Knowledge, Metric, MetricValues, OperatingPoint, Rank};
use proptest::prelude::*;

/// Strategy: knowledge bases of 1..20 points with positive exec-time,
/// power and derived throughput metrics.
fn kb_strategy() -> impl Strategy<Value = Knowledge<u32>> {
    prop::collection::vec((1e-3f64..1e3, 1.0f64..1e3), 1..20).prop_map(|pts| {
        pts.into_iter()
            .enumerate()
            .map(|(i, (t, p))| {
                OperatingPoint::new(
                    i as u32,
                    MetricValues::new()
                        .with(Metric::exec_time(), t)
                        .with(Metric::power(), p)
                        .with(Metric::throughput(), 1.0 / t),
                )
            })
            .collect()
    })
}

/// Strategy: constraints over present metrics — and occasionally the
/// absent `energy` metric, which every point violates infinitely.
fn constraint_strategy() -> impl Strategy<Value = Constraint> {
    (
        prop::sample::select(vec![
            Metric::exec_time(),
            Metric::power(),
            Metric::throughput(),
            Metric::energy(),
        ]),
        prop::sample::select(vec![
            Cmp::LessThan,
            Cmp::LessOrEqual,
            Cmp::GreaterThan,
            Cmp::GreaterOrEqual,
        ]),
        -1e3f64..1e3,
        0u32..100,
    )
        .prop_map(|(metric, cmp, value, priority)| Constraint::new(metric, cmp, value, priority))
}

fn rank_strategy() -> impl Strategy<Value = Rank> {
    prop::sample::select(vec![
        Rank::minimize(Metric::exec_time()),
        Rank::maximize(Metric::throughput()),
        Rank::minimize(Metric::power()),
        Rank::throughput_per_watt2(),
    ])
}

/// Reference: the selected point's violation magnitudes, one entry per
/// constraint in the AS-RTM's own (descending-priority) order.
fn violations(rtm: &AsRtm<u32>, p: &OperatingPoint<u32>) -> Vec<f64> {
    let adjusted = rtm.adjusted_metrics(p);
    rtm.constraints()
        .iter()
        .map(|c| c.violation(&adjusted))
        .collect()
}

/// Reference: how many constraints the point satisfies scanning from
/// the highest priority down before the first violation.
fn leading_satisfied(rtm: &AsRtm<u32>, p: &OperatingPoint<u32>) -> usize {
    let adjusted = rtm.adjusted_metrics(p);
    rtm.constraints()
        .iter()
        .take_while(|c| c.satisfied_by(&adjusted))
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// With a non-empty feasible region, nothing is relaxed: the
    /// selected point satisfies every constraint.
    #[test]
    fn feasible_selection_satisfies_all_constraints(
        kb in kb_strategy(),
        constraints in prop::collection::vec(constraint_strategy(), 0..5),
        rank in rank_strategy(),
    ) {
        let mut rtm = AsRtm::new(kb, rank);
        for c in constraints {
            rtm.add_constraint(c);
        }
        let feasible = rtm.knowledge().points().iter().any(|p| {
            let adjusted = rtm.adjusted_metrics(p);
            rtm.constraints().iter().all(|c| c.satisfied_by(&adjusted))
        });
        let best = rtm.best().expect("non-empty kb with evaluable rank");
        if feasible {
            let adjusted = rtm.adjusted_metrics(best);
            for c in rtm.constraints() {
                prop_assert!(
                    c.satisfied_by(&adjusted),
                    "feasible points exist but selection violates {c}"
                );
            }
        }
    }

    /// Relaxation is lowest-priority-first: the selected point's
    /// violation vector is lexicographically minimal (priorities
    /// descending), hence it satisfies the longest satisfiable prefix
    /// of the priority-ordered constraint list.
    #[test]
    fn relaxation_is_lowest_priority_first(
        kb in kb_strategy(),
        constraints in prop::collection::vec(constraint_strategy(), 1..6),
        rank in rank_strategy(),
    ) {
        let mut rtm = AsRtm::new(kb, rank);
        for c in constraints {
            rtm.add_constraint(c);
        }
        let best = rtm.best().expect("non-empty kb with evaluable rank");
        let best_violations = violations(&rtm, best);
        let best_prefix = leading_satisfied(&rtm, best);
        for p in rtm.knowledge().points() {
            let v = violations(&rtm, p);
            prop_assert!(
                v.partial_cmp(&best_violations) != Some(std::cmp::Ordering::Less),
                "point {} has a lexicographically smaller violation vector: {v:?} < {best_violations:?}",
                p.config
            );
            prop_assert!(
                leading_satisfied(&rtm, p) <= best_prefix,
                "point {} satisfies a longer priority prefix than the selection",
                p.config
            );
        }
    }

    /// Runtime requirement churn never panics and never loses the
    /// ability to select: arbitrary finite constraint bounds, rank
    /// switches and feedback ratios (including zero, negative and huge
    /// values) keep `best()` returning a point.
    #[test]
    fn setters_never_panic_on_arbitrary_finite_inputs(
        kb in kb_strategy(),
        constraints in prop::collection::vec(constraint_strategy(), 0..5),
        new_bounds in prop::collection::vec(-1e300f64..1e300, 1..5),
        ratio in -1e300f64..1e300,
        first_rank in rank_strategy(),
        second_rank in rank_strategy(),
    ) {
        let mut rtm = AsRtm::new(kb, first_rank);
        for c in constraints {
            rtm.add_constraint(c);
        }
        for bound in new_bounds {
            rtm.set_constraint_value(&Metric::power(), bound);
            rtm.set_constraint_value(&Metric::exec_time(), bound);
            prop_assert!(rtm.best().is_some());
        }
        rtm.set_adjustment(Metric::power(), ratio);
        rtm.set_rank(second_rank);
        prop_assert!(rtm.best().is_some());
    }

    /// The selection is invariant under knowledge refreshes that change
    /// nothing (set_knowledge with the same points), and total under
    /// ones that do.
    #[test]
    fn set_knowledge_is_total_and_identity_preserving(
        kb in kb_strategy(),
        constraints in prop::collection::vec(constraint_strategy(), 0..4),
        rank in rank_strategy(),
        scale in 0.5f64..2.0,
    ) {
        let mut rtm = AsRtm::new(kb.clone(), rank);
        for c in constraints {
            rtm.add_constraint(c);
        }
        let before = rtm.best().expect("selectable").config;
        rtm.set_knowledge(kb.clone());
        prop_assert_eq!(rtm.best().expect("selectable").config, before);
        // A uniformly scaled refresh still selects *some* point.
        let scaled: Knowledge<u32> = kb
            .points()
            .iter()
            .map(|p| {
                OperatingPoint::new(
                    p.config,
                    p.metrics.iter().map(|(m, v)| (m.clone(), v * scale)).collect(),
                )
            })
            .collect();
        rtm.set_knowledge(scaled);
        prop_assert!(rtm.best().is_some());
    }
}
