//! Property tests of the sharded [`margot::SharedKnowledge`]:
//!
//! 1. **Epoch iff change** — the global epoch, and the epoch of the
//!    published config's shard, advance *iff* the publish changed the
//!    effective knowledge. No spurious bumps (empty or no-op
//!    observations), no missed bumps (a changed mean that nobody's
//!    snapshot would notice).
//! 2. **Sharded == unsharded reference** — for any publish sequence,
//!    any shard count yields the same effective knowledge, the same
//!    global epoch and the same snapshot as the single-shard (one
//!    global lock) reference, whether published one by one or as
//!    barrier batches.
//! 3. **Delta == snapshot** — draining the dirty points after each
//!    batch and patching them into a cached knowledge lands exactly on
//!    the full snapshot at every intermediate step.

use margot::{Knowledge, KnowledgeDelta, Metric, MetricValues, OperatingPoint, SharedKnowledge};
use proptest::prelude::*;

const POINTS: u32 = 12;

fn design() -> Knowledge<u32> {
    (0..POINTS)
        .map(|cfg| {
            OperatingPoint::new(
                cfg,
                MetricValues::new()
                    .with(Metric::exec_time(), 1.0 + f64::from(cfg))
                    .with(Metric::power(), 50.0 + f64::from(cfg)),
            )
        })
        .collect()
}

/// One published observation: a config (sometimes unknown) and a
/// possibly empty metric bundle drawn from a tiny value set, so
/// repeated values (and thus no-op publishes against a window mean)
/// actually occur.
fn observation_strategy() -> impl Strategy<Value = (u32, MetricValues)> {
    let value = || prop::sample::select(vec![40.0f64, 60.0, 60.0, 80.0]);
    (
        0..POINTS + 2, // +2: sometimes an unknown config
        prop::option::of(value()),
        prop::option::of(value()),
    )
        .prop_map(|(cfg, time, power)| {
            let mut observed = MetricValues::new();
            if let Some(t) = time {
                observed.insert(Metric::exec_time(), t);
            }
            if let Some(p) = power {
                observed.insert(Metric::power(), p);
            }
            (cfg, observed)
        })
}

proptest! {
    #[test]
    fn epoch_advances_iff_the_effective_knowledge_changed(
        observations in prop::collection::vec(observation_strategy(), 1..48),
        window in 1usize..5,
        min_observations in 1u64..4,
        shards in 1usize..6,
    ) {
        let shared = SharedKnowledge::new(design(), window)
            .with_min_observations(min_observations)
            .with_shards(shards);
        for (config, observed) in &observations {
            let before_epoch = shared.epoch();
            let before_shard_epochs: Vec<u64> =
                (0..shared.shard_count()).map(|s| shared.shard_epoch(s)).collect();
            let before = shared.knowledge();
            let accepted = shared.publish(config, observed);
            let after = shared.knowledge();
            let changed = before != after;
            prop_assert_eq!(accepted, *config < POINTS);
            prop_assert_eq!(
                shared.epoch() > before_epoch,
                changed,
                "global epoch must move iff the effective knowledge changed"
            );
            for (s, &before_shard) in before_shard_epochs.iter().enumerate() {
                let expect_bump = changed && shared.shard_of(config) == Some(s);
                prop_assert_eq!(
                    shared.shard_epoch(s) > before_shard,
                    expect_bump,
                    "shard {} epoch moved unexpectedly",
                    s
                );
            }
        }
    }

    #[test]
    fn sharded_publishes_match_the_unsharded_reference(
        observations in prop::collection::vec(observation_strategy(), 0..48),
        window in 1usize..5,
        shards in 2usize..8,
        batch_size in 1usize..7,
    ) {
        let sharded = SharedKnowledge::new(design(), window).with_shards(shards);
        let batched = SharedKnowledge::new(design(), window).with_shards(shards);
        let reference = SharedKnowledge::new(design(), window).with_shards(1);
        for (config, observed) in &observations {
            sharded.publish(config, observed);
            reference.publish(config, observed);
        }
        // The batched twin merges the same sequence as barrier-style
        // chunks: grouped by shard under one lock, in sequence order.
        for chunk in observations.chunks(batch_size) {
            batched.publish_batch(chunk.iter().map(|(c, m)| (c, m)));
        }
        let (epoch_s, k_s) = sharded.snapshot();
        let (epoch_b, k_b) = batched.snapshot();
        let (epoch_r, k_r) = reference.snapshot();
        prop_assert_eq!(&k_s, &k_r, "sharded knowledge != unsharded reference");
        prop_assert_eq!(&k_b, &k_r, "batched knowledge != unsharded reference");
        prop_assert_eq!(epoch_s, epoch_r);
        prop_assert_eq!(epoch_b, epoch_r);
        prop_assert_eq!(
            (0..sharded.shard_count()).map(|s| sharded.shard_epoch(s)).sum::<u64>(),
            epoch_r,
            "shard epochs must partition the global epoch"
        );
        prop_assert_eq!(sharded.observed_points(), reference.observed_points());
    }

    #[test]
    fn drained_deltas_track_the_snapshot_exactly(
        observations in prop::collection::vec(observation_strategy(), 0..48),
        window in 1usize..5,
        shards in 1usize..6,
        batch_size in 1usize..7,
    ) {
        let shared = SharedKnowledge::new(design(), window).with_shards(shards);
        let mut cache = shared.knowledge();
        let mut cache_epoch = shared.epoch();
        for chunk in observations.chunks(batch_size) {
            shared.publish_batch(chunk.iter().map(|(c, m)| (c, m)));
            let (to_epoch, changed) = shared.drain_changes();
            let delta = KnowledgeDelta {
                from_epoch: cache_epoch,
                to_epoch,
                changed,
            };
            prop_assert!(delta.apply_to(&mut cache));
            cache_epoch = delta.to_epoch;
            let (epoch, snapshot) = shared.snapshot();
            prop_assert_eq!(&cache, &snapshot, "patched cache diverged from the snapshot");
            prop_assert_eq!(cache_epoch, epoch);
        }
        prop_assert!(
            shared.drain_changes().1.is_empty(),
            "every dirty point was drained"
        );
    }
}
