//! Property and edge-case tests of [`margot::Monitor`]: window-1
//! behaviour, saturation, statistics against a brute-force reference on
//! arbitrary finite streams, and the drop-and-count contract for
//! non-finite observations.

use margot::Monitor;
use proptest::prelude::*;

/// Strategy: observation streams that are mostly finite but regularly
/// contain the non-finite values a real sensor chain can emit.
fn stream_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            5 => -1e6f64..1e6,
            1 => prop::sample::select(vec![
                f64::NAN,
                f64::INFINITY,
                f64::NEG_INFINITY,
                0.0,
                -0.0,
                1e-300,
                -1e-300,
            ]),
        ],
        0..64,
    )
}

/// Brute-force reference statistics over the last `window` accepted
/// values, computed with the same left-to-right arithmetic.
struct Reference {
    accepted: Vec<f64>,
    window: usize,
}

impl Reference {
    fn tail(&self) -> &[f64] {
        let start = self.accepted.len().saturating_sub(self.window);
        &self.accepted[start..]
    }

    fn mean(&self) -> Option<f64> {
        let t = self.tail();
        (!t.is_empty()).then(|| t.iter().sum::<f64>() / t.len() as f64)
    }

    fn stddev(&self) -> Option<f64> {
        let t = self.tail();
        let mean = self.mean()?;
        Some((t.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / t.len() as f64).sqrt())
    }

    fn min(&self) -> Option<f64> {
        self.tail().iter().copied().reduce(f64::min)
    }

    fn max(&self) -> Option<f64> {
        self.tail().iter().copied().reduce(f64::max)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After every push, all statistics equal the brute-force reference
    /// bit for bit (identical summation order), finite values are
    /// accepted, and non-finite values are dropped and counted.
    #[test]
    fn statistics_match_brute_force_reference(
        window in 1usize..=10,
        stream in stream_strategy(),
    ) {
        let mut monitor = Monitor::new(window);
        let mut reference = Reference { accepted: Vec::new(), window };
        let mut dropped = 0u64;
        for value in stream {
            let taken = monitor.push(value);
            if value.is_finite() {
                prop_assert!(taken);
                reference.accepted.push(value);
            } else {
                prop_assert!(!taken, "non-finite {value} must be dropped");
                dropped += 1;
            }
            prop_assert_eq!(monitor.len(), reference.tail().len());
            prop_assert_eq!(monitor.last(), reference.tail().last().copied());
            prop_assert_eq!(monitor.mean(), reference.mean());
            prop_assert_eq!(monitor.stddev(), reference.stddev());
            prop_assert_eq!(monitor.min(), reference.min());
            prop_assert_eq!(monitor.max(), reference.max());
        }
        prop_assert_eq!(monitor.total_observations(), reference.accepted.len() as u64);
        prop_assert_eq!(monitor.dropped_observations(), dropped);
    }

    /// Window 1: every statistic collapses to the latest accepted value
    /// and the spread is exactly zero.
    #[test]
    fn window_one_tracks_only_the_latest_value(values in prop::collection::vec(-1e6f64..1e6, 1..32)) {
        let mut monitor = Monitor::new(1);
        for &v in &values {
            monitor.push(v);
            prop_assert_eq!(monitor.len(), 1);
            prop_assert_eq!(monitor.last(), Some(v));
            prop_assert_eq!(monitor.mean(), Some(v));
            prop_assert_eq!(monitor.min(), Some(v));
            prop_assert_eq!(monitor.max(), Some(v));
            prop_assert_eq!(monitor.stddev(), Some(0.0));
        }
        prop_assert_eq!(monitor.total_observations(), values.len() as u64);
    }

    /// Saturation: the window length never exceeds its capacity, and
    /// once saturated it stays exactly at capacity.
    #[test]
    fn window_saturates_at_capacity(
        window in 1usize..=8,
        values in prop::collection::vec(-1e6f64..1e6, 0..48),
    ) {
        let mut monitor = Monitor::new(window);
        for (i, &v) in values.iter().enumerate() {
            monitor.push(v);
            prop_assert_eq!(monitor.len(), (i + 1).min(window));
        }
        // Clearing empties the window but keeps the lifetime counters.
        monitor.clear();
        prop_assert_eq!(monitor.len(), 0);
        prop_assert_eq!(monitor.mean(), None);
        prop_assert_eq!(monitor.total_observations(), values.len() as u64);
    }

    /// A stream of only non-finite values leaves the monitor empty with
    /// every drop accounted for.
    #[test]
    fn all_non_finite_streams_leave_monitor_empty(
        n in 1usize..16,
        window in 1usize..=4,
    ) {
        let mut monitor = Monitor::new(window);
        for i in 0..n {
            let v = match i % 3 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                _ => f64::NEG_INFINITY,
            };
            prop_assert!(!monitor.push(v));
        }
        prop_assert!(monitor.is_empty());
        prop_assert_eq!(monitor.mean(), None);
        prop_assert_eq!(monitor.dropped_observations(), n as u64);
        prop_assert_eq!(monitor.total_observations(), 0);
    }
}
