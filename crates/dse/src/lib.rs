//! # dse — design-space exploration for SOCRATES
//!
//! Builds the autotuning space (CO × TN × BP), explores it against the
//! simulated platform and produces the mARGOt application knowledge.
//! The paper uses a full-factorial analysis; the exploration driver is
//! agnostic to the enumeration strategy (full factorial or random
//! subsampling), as Section III notes.
//!
//! Profiling is embarrassingly parallel — every operating point is an
//! independent experiment — so [`profile`] fans the configurations out
//! across all host cores with `rayon`. Each configuration is measured
//! on a [`Machine::fork`] whose noise stream is derived from the
//! parent machine's seed and the configuration's index, which makes
//! the parallel sweep **bit-identical** to the sequential reference
//! implementation [`profile_serial`] for any seed, repetition count
//! and thread count.
//!
//! ## Example
//!
//! ```
//! use dse::{profile, DesignSpace};
//! use platform_sim::{Machine, Topology, WorkloadProfile};
//!
//! let space = DesignSpace::socrates(vec![], &Topology::xeon_e5_2630_v3());
//! let machine = Machine::xeon_e5_2630_v3(1);
//! let kernel = WorkloadProfile::builder("demo").flops(1e8).bytes(1e7).build();
//! let some_configs = space.random_sample(10, 7);
//! let knowledge = profile(&machine, &kernel, &some_configs, 2);
//! assert_eq!(knowledge.len(), 10);
//! ```

#![warn(missing_docs)]

use margot::{Knowledge, Metric, MetricValues, OperatingPoint};
use platform_sim::{
    BindingPolicy, CompilerOptions, KnobConfig, Machine, OptLevel, Topology, WorkloadProfile,
};
use rand::seq::SliceRandom;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The SOCRATES autotuning space: compiler options, thread counts and
/// binding policies (paper Section II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSpace {
    /// Compiler-option alternatives (standard levels + COBAYN picks).
    pub compiler_options: Vec<CompilerOptions>,
    /// Thread-count alternatives (1 ..= logical cores).
    pub thread_counts: Vec<u32>,
    /// Binding-policy alternatives.
    pub binding_policies: Vec<BindingPolicy>,
}

impl DesignSpace {
    /// The paper's space: the four GCC standard levels plus the
    /// COBAYN-predicted combinations, every thread count up to the
    /// machine's logical CPU count, and both binding policies.
    pub fn socrates(cobayn_predictions: Vec<CompilerOptions>, topo: &Topology) -> Self {
        let mut compiler_options: Vec<CompilerOptions> = OptLevel::ALL
            .into_iter()
            .map(CompilerOptions::level)
            .collect();
        for co in cobayn_predictions {
            if !compiler_options.contains(&co) {
                compiler_options.push(co);
            }
        }
        DesignSpace {
            compiler_options,
            thread_counts: (1..=topo.logical_cpus()).collect(),
            binding_policies: BindingPolicy::ALL.to_vec(),
        }
    }

    /// Number of points in the space.
    pub fn size(&self) -> usize {
        self.compiler_options.len() * self.thread_counts.len() * self.binding_policies.len()
    }

    /// Enumerates every configuration (the paper's full-factorial DSE).
    pub fn full_factorial(&self) -> Vec<KnobConfig> {
        let mut out = Vec::with_capacity(self.size());
        for co in &self.compiler_options {
            for &tn in &self.thread_counts {
                for &bp in &self.binding_policies {
                    out.push(KnobConfig::new(co.clone(), tn, bp));
                }
            }
        }
        out
    }

    /// The full-factorial enumeration with analysis-driven pruning
    /// applied: the design space consults the safety oracle and the
    /// static cost expectation *before* any profile run is paid for.
    /// Shorthand for [`prune_space`] over
    /// [`full_factorial`](Self::full_factorial).
    pub fn pruned_factorial<F, M>(&self, feasible: F, expected: M) -> PruneReport<KnobConfig>
    where
        F: FnMut(&KnobConfig) -> bool,
        M: FnMut(&KnobConfig) -> (f64, f64),
    {
        prune_space(self.full_factorial(), feasible, expected)
    }

    /// A reproducible random subsample of the space (without
    /// replacement); an alternative DSE strategy for large spaces.
    pub fn random_sample(&self, n: usize, seed: u64) -> Vec<KnobConfig> {
        let mut all = self.full_factorial();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        all.shuffle(&mut rng);
        all.truncate(n);
        all
    }
}

/// Profiles `configs` on the machine (`repetitions` noisy runs each,
/// averaged) and returns the mARGOt knowledge with the four EFPs the
/// paper uses: execution time, power, throughput and energy.
///
/// Configurations are profiled **in parallel** across all host cores.
/// Each configuration runs on a [`Machine::fork`] seeded from the
/// parent machine's construction seed and the configuration's index,
/// so the result is deterministic for a given machine seed and
/// bit-identical to [`profile_serial`] regardless of core count or
/// scheduling order.
///
/// Profiling never mutates the parent machine (each configuration
/// runs on its own fork), so a `&Machine` suffices and the same
/// machine can be profiled from several threads at once.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn profile(
    machine: &Machine,
    workload: &WorkloadProfile,
    configs: &[KnobConfig],
    repetitions: u32,
) -> Knowledge<KnobConfig> {
    profile_with_executor(machine, workload, configs, repetitions, &|_| {})
}

/// [`profile`] with a functional **executor** hook: `executor` is
/// invoked once per configuration (concurrently, from rayon workers)
/// before the analytic repetitions run. SOCRATES uses it to actually
/// *execute* each profiled configuration's kernel on the selected
/// execution engine — warming the compiled-kernel cache and surfacing
/// lowering errors during the sweep — while this crate stays agnostic
/// of the engine (the hook is an opaque closure).
///
/// The executor must not influence the analytic measurement (it
/// receives the configuration, not the machine); with any executor the
/// returned knowledge is bit-identical to [`profile`]'s, which is
/// exactly what lets the engine switch default to the compiled path
/// without perturbing profiled results.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn profile_with_executor(
    machine: &Machine,
    workload: &WorkloadProfile,
    configs: &[KnobConfig],
    repetitions: u32,
    executor: &(dyn Fn(&KnobConfig) + Sync),
) -> Knowledge<KnobConfig> {
    assert!(repetitions > 0, "need at least one repetition");
    (0..configs.len())
        .into_par_iter()
        .map(|i| {
            executor(&configs[i]);
            profile_point(machine, workload, &configs[i], i as u64, repetitions)
        })
        .collect::<Vec<_>>()
        .into_iter()
        .collect()
}

/// The sequential reference implementation of [`profile`]: identical
/// output, one configuration at a time on the calling thread. Kept for
/// regression-testing the parallel path and for benchmarking the
/// speedup.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn profile_serial(
    machine: &Machine,
    workload: &WorkloadProfile,
    configs: &[KnobConfig],
    repetitions: u32,
) -> Knowledge<KnobConfig> {
    profile_with_executor_serial(machine, workload, configs, repetitions, &|_| {})
}

/// The sequential reference implementation of
/// [`profile_with_executor`]: identical output, configurations visited
/// in order on the calling thread (so executor invocations are
/// sequential too).
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn profile_with_executor_serial(
    machine: &Machine,
    workload: &WorkloadProfile,
    configs: &[KnobConfig],
    repetitions: u32,
    executor: &(dyn Fn(&KnobConfig) + Sync),
) -> Knowledge<KnobConfig> {
    assert!(repetitions > 0, "need at least one repetition");
    configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| {
            executor(cfg);
            profile_point(machine, workload, cfg, i as u64, repetitions)
        })
        .collect()
}

/// Profiles one operating point on a forked noise stream.
fn profile_point(
    machine: &Machine,
    workload: &WorkloadProfile,
    cfg: &KnobConfig,
    stream: u64,
    repetitions: u32,
) -> OperatingPoint<KnobConfig> {
    let mut fork = machine.fork(stream);
    let mut time = 0.0;
    let mut power = 0.0;
    for _ in 0..repetitions {
        let run = fork.execute(workload, cfg);
        time += run.time_s;
        power += run.power_w;
    }
    time /= f64::from(repetitions);
    power /= f64::from(repetitions);
    let metrics = MetricValues::new()
        .with(Metric::exec_time(), time)
        .with(Metric::power(), power)
        .with(Metric::throughput(), 1.0 / time)
        .with(Metric::energy(), time * power);
    OperatingPoint::new(cfg.clone(), metrics)
}

/// Profiles the **entire** design space (the paper's full-factorial
/// DSE) in parallel: shorthand for [`profile`] over
/// [`DesignSpace::full_factorial`].
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn explore(
    machine: &Machine,
    workload: &WorkloadProfile,
    space: &DesignSpace,
    repetitions: u32,
) -> Knowledge<KnobConfig> {
    profile(machine, workload, &space.full_factorial(), repetitions)
}

/// Convenience: the Pareto frontier of a knowledge base on the paper's
/// Fig. 3 objectives (maximise throughput, minimise power).
pub fn power_throughput_pareto(knowledge: &Knowledge<KnobConfig>) -> Knowledge<KnobConfig> {
    knowledge.pareto_filter(&[(Metric::throughput(), true), (Metric::power(), false)])
}

/// Outcome of [`prune_space`]: the configurations that survive
/// analysis-driven pruning plus how many were discarded and why.
///
/// `kept` preserves the input enumeration order, so feeding it to
/// [`profile`] or [`ExplorationSchedule::new`] keeps the sweep
/// deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneReport<K> {
    /// Configurations that survive pruning, in enumeration order.
    pub kept: Vec<K>,
    /// Configurations rejected as statically infeasible (the analyzer
    /// could not certify the specialization as safe).
    pub infeasible: usize,
    /// Feasible configurations strictly Pareto-dominated by another
    /// feasible one on the static `(time, power)` expectation.
    pub dominated: usize,
}

impl<K> PruneReport<K> {
    /// Size of the original (unpruned) space.
    pub fn total(&self) -> usize {
        self.kept.len() + self.pruned()
    }

    /// Configurations removed, for either reason.
    pub fn pruned(&self) -> usize {
        self.infeasible + self.dominated
    }

    /// Fraction of the space removed (`0.0` for an empty space).
    pub fn prune_ratio(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.pruned() as f64 / self.total() as f64
        }
    }
}

/// Static analysis-driven space pruning: drops configurations whose
/// specialization is *infeasible* (per the `feasible` oracle — in
/// SOCRATES, the static analyzer's safety verdict) and feasible points
/// that are *strictly Pareto-dominated* on the deterministic
/// `(time, power)` expectation returned by `expected` (in SOCRATES,
/// `Machine::expected` over the analyzer's symbolic cost counters).
///
/// A point is dominated when some other feasible point is no worse on
/// both metrics and strictly better on at least one; metric ties keep
/// both points, so the result is independent of enumeration order.
/// Dominated points can never be the argmax of any objective that is
/// monotone in time and power (throughput, energy, Thr/W²…), which is
/// what makes skipping their profile runs safe.
///
/// This crate stays agnostic of the analyzer: both oracles are opaque
/// closures, evaluated once per configuration in enumeration order.
pub fn prune_space<K, F, M>(configs: Vec<K>, feasible: F, expected: M) -> PruneReport<K>
where
    F: FnMut(&K) -> bool,
    M: FnMut(&K) -> (f64, f64),
{
    let mut feasible = feasible;
    let mut expected = expected;
    let mut infeasible = 0usize;
    let mut candidates: Vec<(K, f64, f64)> = Vec::with_capacity(configs.len());
    for cfg in configs {
        if feasible(&cfg) {
            let (time, power) = expected(&cfg);
            candidates.push((cfg, time, power));
        } else {
            infeasible += 1;
        }
    }
    let dominated_by_some = |i: usize| {
        let (_, ti, pi) = &candidates[i];
        candidates
            .iter()
            .enumerate()
            .any(|(j, (_, tj, pj))| j != i && tj <= ti && pj <= pi && (tj < ti || pj < pi))
    };
    let keep: Vec<bool> = (0..candidates.len())
        .map(|i| !dominated_by_some(i))
        .collect();
    let dominated = keep.iter().filter(|&&k| !k).count();
    let kept = candidates
        .into_iter()
        .zip(keep)
        .filter_map(|((cfg, _, _), k)| k.then_some(cfg))
        .collect();
    PruneReport {
        kept,
        infeasible,
        dominated,
    }
}

/// A cooperative *online* exploration schedule: the design-time DSE
/// enumeration, re-used at deployment time so a fleet of instances
/// sweeps the space together instead of redundantly.
///
/// A coordinator calls [`next_unexplored`](Self::next_unexplored) to
/// hand each exploration slot a configuration nobody has covered yet;
/// organic coverage (an instance selecting a configuration on its own)
/// is folded in through [`mark_explored`](Self::mark_explored) so
/// already-observed points are never re-assigned. Assignment order is
/// the enumeration order — fully deterministic.
#[derive(Debug, Clone)]
pub struct ExplorationSchedule<K = KnobConfig> {
    configs: Vec<K>,
    /// Set view of `configs` for O(1) membership tests (a coordinator
    /// calls [`mark_explored`](Self::mark_explored) once per published
    /// observation).
    known: std::collections::HashSet<K>,
    cursor: usize,
    swept: std::collections::HashSet<K>,
}

impl<K: Clone + Eq + std::hash::Hash> ExplorationSchedule<K> {
    /// Builds a schedule over `configs` (duplicates are dropped,
    /// keeping the first occurrence's position).
    pub fn new(configs: Vec<K>) -> Self {
        let mut known = std::collections::HashSet::new();
        let configs: Vec<K> = configs
            .into_iter()
            .filter(|c| known.insert(c.clone()))
            .collect();
        ExplorationSchedule {
            configs,
            known,
            cursor: 0,
            swept: std::collections::HashSet::new(),
        }
    }

    /// The next configuration no instance has covered yet, or `None`
    /// once the sweep is complete. The returned configuration counts as
    /// covered immediately, so concurrent slots in the same round get
    /// distinct assignments.
    pub fn next_unexplored(&mut self) -> Option<K> {
        while self.cursor < self.configs.len() {
            let candidate = &self.configs[self.cursor];
            self.cursor += 1;
            if self.swept.insert(candidate.clone()) {
                return Some(candidate.clone());
            }
        }
        None
    }

    /// Records organic coverage of `config`; returns `true` if it was
    /// previously unexplored. Unknown configurations are ignored (and
    /// return `false`).
    pub fn mark_explored(&mut self, config: &K) -> bool {
        if !self.known.contains(config) {
            return false;
        }
        self.swept.insert(config.clone())
    }

    /// The next configuration no instance has covered yet **without
    /// claiming it**: the event-driven half of the sweep protocol,
    /// where the claim happens at *publish* time ([`claim`](Self::claim))
    /// instead of at hand-out. Repeated peeks return the same
    /// configuration until somebody claims it — the cursor only
    /// advances past configurations already swept — so a speculative
    /// assignment that never executes (its instance retired first)
    /// leaves no hole in the design space and needs no
    /// [`requeue`](Self::requeue).
    pub fn peek_unexplored(&mut self) -> Option<&K> {
        while self.cursor < self.configs.len() {
            if !self.swept.contains(&self.configs[self.cursor]) {
                return Some(&self.configs[self.cursor]);
            }
            self.cursor += 1;
        }
        None
    }

    /// Claims coverage of `config` at publish time — the counterpart of
    /// [`peek_unexplored`](Self::peek_unexplored): an event-driven
    /// runtime claims each configuration when its observation is
    /// *published*, not when the assignment is handed out, so the sweep
    /// records exactly what actually reached the shared knowledge.
    /// Organic coverage (an instance publishing its own selection)
    /// claims through the same call. Returns `true` if `config` was
    /// previously unexplored; unknown configurations are ignored.
    pub fn claim(&mut self, config: &K) -> bool {
        self.mark_explored(config)
    }

    /// Returns a handed-out configuration to the unexplored set — the
    /// coordinator calls this when an assignment was *not* executed
    /// after all (the assignee failed mid-step, or the configuration
    /// turned out stale for it), so the sweep neither over-reports
    /// coverage nor leaves a permanent hole in the design space. The
    /// configuration moves to the **back** of the enumeration order:
    /// the sweep keeps making progress on fresh configurations first,
    /// and the retry lands on whichever instance draws it next instead
    /// of bouncing straight back to the one that just failed it.
    /// Returns `false` for unknown or currently-unexplored
    /// configurations.
    pub fn requeue(&mut self, config: &K) -> bool {
        if !self.swept.remove(config) {
            return false;
        }
        let pos = self
            .configs
            .iter()
            .position(|c| c == config)
            .expect("swept configs are known");
        let moved = self.configs.remove(pos);
        self.configs.push(moved);
        if pos < self.cursor {
            // Everything after `pos` shifted left by one; the requeued
            // config now sits at the end, ahead of the cursor again.
            self.cursor -= 1;
        }
        true
    }

    /// Records organic coverage of a whole batch of configurations —
    /// e.g. everything a fleet round executed — in one call at a round
    /// barrier; returns how many were previously unexplored. Order-
    /// insensitive for coverage, but callers wanting deterministic
    /// bookkeeping should pass a deterministically ordered batch.
    pub fn mark_explored_batch<'a, I>(&mut self, configs: I) -> usize
    where
        K: 'a,
        I: IntoIterator<Item = &'a K>,
    {
        configs
            .into_iter()
            .filter(|config| self.mark_explored(config))
            .count()
    }

    /// Configurations in the schedule.
    pub fn total(&self) -> usize {
        self.configs.len()
    }

    /// Configurations not yet covered by any instance.
    pub fn remaining(&self) -> usize {
        self.configs.len() - self.swept.len()
    }

    /// Whether every configuration has been covered at least once.
    pub fn is_complete(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use platform_sim::paper_cf_combos;

    fn space() -> DesignSpace {
        DesignSpace::socrates(paper_cf_combos().to_vec(), &Topology::xeon_e5_2630_v3())
    }

    fn kernel() -> WorkloadProfile {
        WorkloadProfile::builder("2mm-like")
            .flops(2.5e9)
            .bytes(6e8)
            .parallel_fraction(0.995)
            .build()
    }

    #[test]
    fn paper_space_is_512_points() {
        // (4 standard levels + 4 CF combos) × 32 threads × 2 bindings.
        let s = space();
        assert_eq!(s.compiler_options.len(), 8);
        assert_eq!(s.size(), 8 * 32 * 2);
        assert_eq!(s.full_factorial().len(), 512);
    }

    #[test]
    fn duplicate_predictions_are_deduplicated() {
        let s = DesignSpace::socrates(
            vec![CompilerOptions::level(OptLevel::O3)],
            &Topology::xeon_e5_2630_v3(),
        );
        assert_eq!(s.compiler_options.len(), 4);
    }

    #[test]
    fn full_factorial_has_unique_points() {
        let all = space().full_factorial();
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len());
    }

    #[test]
    fn random_sample_is_reproducible_and_unique() {
        let s = space();
        let a = s.random_sample(50, 9);
        let b = s.random_sample(50, 9);
        assert_eq!(a, b);
        let c = s.random_sample(50, 10);
        assert_ne!(a, c);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn profiling_builds_complete_knowledge() {
        let m = Machine::xeon_e5_2630_v3(3);
        let configs = space().random_sample(20, 4);
        let k = profile(&m, &kernel(), &configs, 3);
        assert_eq!(k.len(), 20);
        let metrics = k.common_metrics();
        for want in [
            Metric::exec_time(),
            Metric::power(),
            Metric::throughput(),
            Metric::energy(),
        ] {
            assert!(metrics.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn profiling_averages_toward_expectation() {
        let m = Machine::xeon_e5_2630_v3(5);
        let cfg = KnobConfig::new(
            CompilerOptions::level(OptLevel::O2),
            8,
            BindingPolicy::Close,
        );
        let expected = m.expected(&kernel(), &cfg).time_s;
        let k = profile(&m, &kernel(), std::slice::from_ref(&cfg), 50);
        let observed = k.points()[0].metric(&Metric::exec_time()).unwrap();
        assert!(
            (observed / expected - 1.0).abs() < 0.02,
            "mean {observed} vs expected {expected}"
        );
    }

    #[test]
    fn pareto_frontier_is_much_smaller_than_space() {
        let m = Machine::xeon_e5_2630_v3(6).noiseless();
        let configs = space().full_factorial();
        let k = profile(&m, &kernel(), &configs, 1);
        let frontier = power_throughput_pareto(&k);
        assert!(
            frontier.len() >= 5,
            "frontier too small: {}",
            frontier.len()
        );
        assert!(
            frontier.len() * 4 < k.len(),
            "frontier {} not selective vs {}",
            frontier.len(),
            k.len()
        );
    }

    #[test]
    fn pareto_respects_dominance() {
        let m = Machine::xeon_e5_2630_v3(7).noiseless();
        let configs = space().full_factorial();
        let k = profile(&m, &kernel(), &configs, 1);
        let frontier = power_throughput_pareto(&k);
        for a in frontier.points() {
            for b in k.points() {
                let dominates = b.metric(&Metric::throughput()).unwrap()
                    > a.metric(&Metric::throughput()).unwrap()
                    && b.metric(&Metric::power()).unwrap() < a.metric(&Metric::power()).unwrap();
                assert!(!dominates, "{:?} dominated by {:?}", a.config, b.config);
            }
        }
    }

    #[test]
    fn executor_hook_never_perturbs_the_knowledge() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let m = Machine::xeon_e5_2630_v3(11);
        let configs = space().random_sample(24, 2);
        let plain = profile(&m, &kernel(), &configs, 2);
        let ran = AtomicUsize::new(0);
        let hooked = profile_with_executor(&m, &kernel(), &configs, 2, &|_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(plain, hooked, "executor must be measurement-invisible");
        assert_eq!(ran.load(Ordering::Relaxed), configs.len());
        let ran_serial = AtomicUsize::new(0);
        let serial = profile_with_executor_serial(&m, &kernel(), &configs, 2, &|_| {
            ran_serial.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(plain, serial);
        assert_eq!(ran_serial.load(Ordering::Relaxed), configs.len());
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_repetitions_panics() {
        let m = Machine::xeon_e5_2630_v3(1);
        let _ = profile(&m, &kernel(), &[], 0);
    }

    #[test]
    fn prune_drops_infeasible_and_dominated_points() {
        // Metrics chosen so 4 is dominated by 2 (worse on both), 3 is
        // infeasible, 1/2/5 form the surviving trade-off curve.
        let metrics = |c: &u32| match c {
            1 => (1.0, 9.0),
            2 => (3.0, 5.0),
            4 => (4.0, 6.0),
            5 => (9.0, 1.0),
            _ => unreachable!("infeasible points are never measured"),
        };
        let r = prune_space(vec![1u32, 2, 3, 4, 5], |c| *c != 3, metrics);
        assert_eq!(r.kept, vec![1, 2, 5], "enumeration order preserved");
        assert_eq!(r.infeasible, 1);
        assert_eq!(r.dominated, 1);
        assert_eq!(r.total(), 5);
        assert_eq!(r.pruned(), 2);
        assert!((r.prune_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prune_keeps_metric_ties_and_empty_spaces() {
        // Identical points never dominate each other…
        let r = prune_space(vec![1u32, 2], |_| true, |_| (2.0, 2.0));
        assert_eq!(r.kept, vec![1, 2]);
        assert_eq!(r.dominated, 0);
        // …a tie on one metric plus a strict win on the other does.
        let r = prune_space(vec![1u32, 2], |_| true, |c| (2.0, f64::from(*c)));
        assert_eq!(r.kept, vec![1]);
        assert_eq!(r.dominated, 1);
        let empty = prune_space(Vec::<u32>::new(), |_| true, |_| (1.0, 1.0));
        assert!(empty.kept.is_empty());
        assert_eq!(empty.prune_ratio(), 0.0);
    }

    #[test]
    fn pruned_factorial_agrees_with_the_expected_pareto_frontier() {
        // With a noiseless machine and the same (time, power) metrics,
        // pruning the space must keep exactly the expectation-level
        // Pareto frontier: every kept point is non-dominated and every
        // dropped point is dominated by a kept one.
        let s = space();
        let m = Machine::xeon_e5_2630_v3(13).noiseless();
        let w = kernel();
        let r = s.pruned_factorial(
            |_| true,
            |cfg| {
                let e = m.expected(&w, cfg);
                (e.time_s, e.power_w)
            },
        );
        assert_eq!(r.infeasible, 0);
        assert_eq!(r.kept.len() + r.dominated, s.size());
        assert!(r.dominated > 0, "a 512-point space has dominated points");
        assert!(
            r.prune_ratio() > 0.5,
            "domination should prune most of the space, got {}",
            r.prune_ratio()
        );
        for a in &r.kept {
            let ea = m.expected(&w, a);
            for b in s.full_factorial() {
                let eb = m.expected(&w, &b);
                assert!(
                    !(eb.time_s <= ea.time_s
                        && eb.power_w <= ea.power_w
                        && (eb.time_s < ea.time_s || eb.power_w < ea.power_w)),
                    "kept point {a:?} is dominated by {b:?}"
                );
            }
        }
    }

    #[test]
    fn schedule_hands_out_each_config_once_in_order() {
        let mut s = ExplorationSchedule::new(vec![1u32, 2, 3, 2]);
        assert_eq!(s.total(), 3, "duplicates are dropped");
        assert_eq!(s.next_unexplored(), Some(1));
        assert_eq!(s.next_unexplored(), Some(2));
        assert_eq!(s.next_unexplored(), Some(3));
        assert_eq!(s.next_unexplored(), None);
        assert!(s.is_complete());
    }

    #[test]
    fn organic_coverage_is_never_reassigned() {
        let mut s = ExplorationSchedule::new(vec![1u32, 2, 3]);
        assert!(s.mark_explored(&2));
        assert!(!s.mark_explored(&2), "already covered");
        assert!(!s.mark_explored(&99), "unknown config is ignored");
        assert_eq!(s.next_unexplored(), Some(1));
        assert_eq!(s.next_unexplored(), Some(3), "2 was covered organically");
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn requeue_returns_a_config_to_the_back_of_the_sweep() {
        let mut s = ExplorationSchedule::new(vec![1u32, 2, 3]);
        assert_eq!(s.next_unexplored(), Some(1));
        assert_eq!(s.next_unexplored(), Some(2));
        // Config 2 was handed out but never executed: it rejoins the
        // sweep at the back, so fresh configs keep priority.
        assert!(s.requeue(&2));
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_unexplored(), Some(3));
        assert_eq!(s.next_unexplored(), Some(2), "retried after the rest");
        assert!(s.is_complete());
        // Unknown or currently-unexplored configs are not requeued.
        assert!(!s.requeue(&99));
        let mut fresh = ExplorationSchedule::new(vec![1u32]);
        assert!(!fresh.requeue(&1));
    }

    #[test]
    fn requeued_configs_cycle_instead_of_starving_the_sweep() {
        // A config one assignee keeps failing is retried after every
        // other config, and a sweep where it is the only one left keeps
        // offering it (the honest "still unexplored" state).
        let mut s = ExplorationSchedule::new(vec![1u32, 2]);
        assert_eq!(s.next_unexplored(), Some(1));
        assert!(s.requeue(&1));
        assert_eq!(s.next_unexplored(), Some(2));
        assert_eq!(s.next_unexplored(), Some(1), "offered again at the back");
        assert!(s.requeue(&1));
        assert_eq!(s.remaining(), 1);
        assert_eq!(s.next_unexplored(), Some(1), "last one keeps retrying");
        assert!(s.is_complete());
    }

    #[test]
    fn peek_is_stable_until_claimed_at_publish() {
        let mut s = ExplorationSchedule::new(vec![1u32, 2, 3]);
        // A peek hands out without claiming: retired-before-publish
        // assignments leave no hole and need no requeue.
        assert_eq!(s.peek_unexplored(), Some(&1));
        assert_eq!(s.peek_unexplored(), Some(&1), "stable until claimed");
        assert_eq!(s.remaining(), 3, "nothing claimed yet");
        assert!(s.claim(&1), "publish-time claim");
        assert!(!s.claim(&1), "double publish claims once");
        assert_eq!(s.peek_unexplored(), Some(&2));
        // Organic coverage claims through the same call and is skipped.
        assert!(s.claim(&2));
        assert_eq!(s.peek_unexplored(), Some(&3));
        assert!(s.claim(&3));
        assert_eq!(s.peek_unexplored(), None);
        assert!(s.is_complete());
        assert!(!s.claim(&99), "unknown configs are ignored");
    }

    #[test]
    fn peek_claim_covers_the_same_space_as_next_unexplored() {
        // The event-driven protocol (peek, publish, claim) sweeps the
        // identical enumeration order as the round-based hand-out.
        let reference: Vec<u32> = {
            let mut s = ExplorationSchedule::new((0..17u32).collect());
            std::iter::from_fn(move || s.next_unexplored()).collect()
        };
        let mut s = ExplorationSchedule::new((0..17u32).collect());
        let mut swept = Vec::new();
        while let Some(&cfg) = s.peek_unexplored() {
            swept.push(cfg);
            assert!(s.claim(&cfg));
        }
        assert_eq!(swept, reference);
    }

    #[test]
    fn schedule_over_a_design_space_sweeps_everything() {
        let configs = space().full_factorial();
        let mut s = ExplorationSchedule::new(configs.clone());
        let mut seen = std::collections::HashSet::new();
        while let Some(cfg) = s.next_unexplored() {
            assert!(seen.insert(cfg));
        }
        assert_eq!(seen.len(), configs.len());
    }
}
