//! Regression tests pinning the contract of the parallel DSE engine:
//! `dse::profile` (rayon, all cores) must produce **bit-identical**
//! knowledge to `dse::profile_serial` (one thread, in order) for any
//! fixed machine seed and repetition count.

use dse::{explore, profile, profile_serial, DesignSpace};
use margot::Metric;
use platform_sim::{paper_cf_combos, Machine, Topology, WorkloadProfile};

/// Forces the rayon shim onto several worker threads so these tests
/// exercise real cross-thread scheduling even on single-core CI boxes.
/// An externally supplied `RAYON_NUM_THREADS` (e.g. CI's 16-thread
/// run) takes precedence.
fn force_multithreading() {
    if std::env::var("RAYON_NUM_THREADS").is_err() {
        std::env::set_var("RAYON_NUM_THREADS", "8");
    }
}

fn space() -> DesignSpace {
    DesignSpace::socrates(paper_cf_combos().to_vec(), &Topology::xeon_e5_2630_v3())
}

fn kernel() -> WorkloadProfile {
    WorkloadProfile::builder("2mm-like")
        .flops(2.5e9)
        .bytes(6e8)
        .parallel_fraction(0.995)
        .build()
}

#[test]
fn parallel_profile_is_bit_identical_to_serial() {
    force_multithreading();
    let configs = space().random_sample(96, 21);
    for (seed, repetitions) in [(0u64, 1u32), (7, 3), (12345, 5)] {
        let parallel = profile(
            &Machine::xeon_e5_2630_v3(seed),
            &kernel(),
            &configs,
            repetitions,
        );
        let serial = profile_serial(
            &Machine::xeon_e5_2630_v3(seed),
            &kernel(),
            &configs,
            repetitions,
        );
        assert_eq!(parallel.len(), serial.len());
        // Point-by-point bit equality: same config order, and every
        // metric's f64 bit pattern matches exactly.
        for (p, s) in parallel.points().iter().zip(serial.points().iter()) {
            assert_eq!(p.config, s.config);
            for metric in [
                Metric::exec_time(),
                Metric::power(),
                Metric::throughput(),
                Metric::energy(),
            ] {
                let pv = p.metric(&metric).expect("parallel metric present");
                let sv = s.metric(&metric).expect("serial metric present");
                assert_eq!(
                    pv.to_bits(),
                    sv.to_bits(),
                    "{metric} differs for {:?} (seed {seed}, reps {repetitions})",
                    p.config
                );
            }
        }
        // And the structural equality the rest of the stack relies on.
        assert_eq!(parallel, serial);
    }
}

#[test]
fn parallel_profile_is_reproducible_across_calls() {
    force_multithreading();
    let configs = space().random_sample(64, 3);
    let a = profile(&Machine::xeon_e5_2630_v3(11), &kernel(), &configs, 2);
    let b = profile(&Machine::xeon_e5_2630_v3(11), &kernel(), &configs, 2);
    assert_eq!(a, b);
}

#[test]
fn explore_matches_full_factorial_profile() {
    force_multithreading();
    let s = space();
    let by_explore = explore(&Machine::xeon_e5_2630_v3(4), &kernel(), &s, 1);
    let by_profile = profile_serial(
        &Machine::xeon_e5_2630_v3(4),
        &kernel(),
        &s.full_factorial(),
        1,
    );
    assert_eq!(by_explore.len(), s.size());
    assert_eq!(by_explore, by_profile);
}

#[test]
fn profiling_consumed_machines_stays_deterministic() {
    force_multithreading();
    // A machine that has already executed kernels must still fork the
    // same per-config streams: profiling is a function of the seed, not
    // of the machine's consumed RNG state.
    let configs = space().random_sample(16, 8);
    let fresh = Machine::xeon_e5_2630_v3(33);
    let mut consumed = Machine::xeon_e5_2630_v3(33);
    let cfg = &configs[0];
    for _ in 0..5 {
        let _ = consumed.execute(&kernel(), cfg);
    }
    assert_eq!(
        profile(&fresh, &kernel(), &configs, 3),
        profile(&consumed, &kernel(), &configs, 3),
    );
}
