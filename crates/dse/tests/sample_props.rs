//! Property tests of `DesignSpace::random_sample`: reproducibility,
//! subset-ness, uniqueness and the `len == min(n, space_size)` law.

use std::collections::HashSet;

use dse::DesignSpace;
use platform_sim::{paper_cf_combos, Topology};
use proptest::prelude::*;

/// Strategy: design spaces of varying size — the paper's 512-point
/// space, truncated variants, and tiny corner cases.
fn space_strategy() -> impl Strategy<Value = DesignSpace> {
    (1usize..=8, 1u32..=32, prop::bool::ANY).prop_map(|(n_co, max_tn, both_bp)| {
        let full = DesignSpace::socrates(paper_cf_combos().to_vec(), &Topology::xeon_e5_2630_v3());
        DesignSpace {
            compiler_options: full.compiler_options.into_iter().take(n_co).collect(),
            thread_counts: (1..=max_tn).collect(),
            binding_policies: if both_bp {
                full.binding_policies
            } else {
                full.binding_policies.into_iter().take(1).collect()
            },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same seed, same space → identical sample, element for element.
    #[test]
    fn same_seed_gives_identical_sample(
        space in space_strategy(),
        n in 0usize..700,
        seed in 0u64..1000,
    ) {
        prop_assert_eq!(space.random_sample(n, seed), space.random_sample(n, seed));
    }

    /// Every sampled configuration exists in the full-factorial space.
    #[test]
    fn sample_is_subset_of_full_space(
        space in space_strategy(),
        n in 0usize..700,
        seed in 0u64..1000,
    ) {
        let full: HashSet<_> = space.full_factorial().into_iter().collect();
        for cfg in space.random_sample(n, seed) {
            prop_assert!(full.contains(&cfg), "sampled config {cfg:?} not in space");
        }
    }

    /// Sampling is without replacement: no configuration appears twice.
    #[test]
    fn sample_has_no_duplicates(
        space in space_strategy(),
        n in 0usize..700,
        seed in 0u64..1000,
    ) {
        let sample = space.random_sample(n, seed);
        let unique: HashSet<_> = sample.iter().collect();
        prop_assert_eq!(unique.len(), sample.len());
    }

    /// The sample size is `min(n, space_size)` exactly.
    #[test]
    fn sample_len_is_min_of_n_and_space_size(
        space in space_strategy(),
        n in 0usize..700,
        seed in 0u64..1000,
    ) {
        prop_assert_eq!(
            space.random_sample(n, seed).len(),
            n.min(space.size())
        );
    }
}
