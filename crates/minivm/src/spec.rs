//! Specialization constants: the complete constant environment a kernel
//! is lowered (or interpreted) against.
//!
//! Both engines resolve identifiers in the same order — local variables,
//! then specialization constants, then globals — so a [`SpecConfig`] is
//! the *entire* configuration surface of a compiled artifact: array
//! dimensions, OpenMP pragma parameters such as `__socrates_num_threads`,
//! and the entry function's actual arguments are all baked in at
//! lowering time. Two executions with equal specs are bit-identical;
//! [`SpecConfig::fingerprint`] is the cache key half that captures this.

use crate::EngineError;
use minic::{Block, Item, Pragma, Stmt, TranslationUnit};
use std::collections::BTreeMap;

/// A specialization-constant value: mini-C scalars are two-typed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpecValue {
    /// An integer constant (array dimensions, thread counts, ...).
    I64(i64),
    /// A floating constant (entry arguments such as `alpha`).
    F64(f64),
}

impl From<i64> for SpecValue {
    fn from(v: i64) -> Self {
        SpecValue::I64(v)
    }
}

impl From<usize> for SpecValue {
    fn from(v: usize) -> Self {
        SpecValue::I64(v as i64)
    }
}

impl From<u32> for SpecValue {
    fn from(v: u32) -> Self {
        SpecValue::I64(i64::from(v))
    }
}

impl From<f64> for SpecValue {
    fn from(v: f64) -> Self {
        SpecValue::F64(v)
    }
}

/// The constant environment a kernel is specialized against: named
/// constants plus the entry function's actual arguments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpecConfig {
    consts: BTreeMap<String, SpecValue>,
    args: Vec<SpecValue>,
}

impl SpecConfig {
    /// An empty spec (no constants, no entry arguments).
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds a spec from the `#define NAME value` items of a translation
    /// unit (the Polybench dimension macros). Non-numeric and
    /// function-like macros are skipped.
    pub fn from_defines(tu: &TranslationUnit) -> Self {
        let mut spec = SpecConfig::new();
        for item in &tu.items {
            if let Item::Define(text) = item {
                let mut parts = text.split_whitespace();
                let (Some(name), Some(value)) = (parts.next(), parts.next()) else {
                    continue;
                };
                if !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                    continue; // function-like macro `F(x)` or similar
                }
                if let Ok(v) = value.parse::<i64>() {
                    spec.set(name, v);
                } else if let Ok(v) = value.parse::<f64>() {
                    spec.set(name, v);
                }
            }
        }
        spec
    }

    /// Builder-style: binds a named constant.
    #[must_use]
    pub fn bind(mut self, name: impl Into<String>, value: impl Into<SpecValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Binds a named constant in place.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<SpecValue>) {
        self.consts.insert(name.into(), value.into());
    }

    /// Builder-style: appends an entry-function argument.
    #[must_use]
    pub fn arg(mut self, value: impl Into<SpecValue>) -> Self {
        self.args.push(value.into());
        self
    }

    /// The entry-function arguments, in call order.
    pub fn args(&self) -> &[SpecValue] {
        &self.args
    }

    /// Looks up a named constant.
    pub fn lookup(&self, name: &str) -> Option<SpecValue> {
        self.consts.get(name).copied()
    }

    /// Looks up a named constant that must be an integer.
    pub fn int(&self, name: &str) -> Option<i64> {
        match self.consts.get(name) {
            Some(SpecValue::I64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Iterates the named constants in canonical (sorted) order.
    pub fn consts(&self) -> impl Iterator<Item = (&str, SpecValue)> {
        self.consts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// FNV-1a fingerprint over the canonical encoding of the spec; equal
    /// fingerprints mean equal constant environments, so this is the
    /// configuration half of a compiled-kernel cache key.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, value) in &self.consts {
            h.write(name.as_bytes());
            h.write(&[0xff]);
            hash_value(&mut h, *value);
        }
        h.write(&[0xfe]);
        for value in &self.args {
            hash_value(&mut h, *value);
        }
        h.finish()
    }
}

fn hash_value(h: &mut Fnv, value: SpecValue) {
    match value {
        SpecValue::I64(v) => {
            h.write(&[0x01]);
            h.write(&v.to_le_bytes());
        }
        SpecValue::F64(v) => {
            h.write(&[0x02]);
            h.write(&v.to_bits().to_le_bytes());
        }
    }
}

/// Incremental FNV-1a (64-bit) hasher; the crate-wide fingerprint and
/// checksum primitive.
#[derive(Debug, Clone)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Validates that every OpenMP pragma parameter referenced by `function`
/// (both function-attached pragmas and statement pragmas in its body) is
/// either an integer literal or bound in `spec`.
///
/// This is the lowering-time check both engines share, so an unbound
/// `num_threads(PARAM)` fails fast with
/// [`EngineError::UnboundPragmaParam`] instead of surfacing as a late
/// lookup failure mid-execution.
pub fn validate_pragmas(
    tu: &TranslationUnit,
    function: &str,
    spec: &SpecConfig,
) -> Result<(), EngineError> {
    let Some(f) = tu.function(function) else {
        return Ok(());
    };
    for p in &f.pragmas {
        check_pragma(p, function, spec)?;
    }
    if let Some(body) = &f.body {
        check_block(body, function, spec)?;
    }
    Ok(())
}

fn check_block(block: &Block, function: &str, spec: &SpecConfig) -> Result<(), EngineError> {
    for stmt in &block.stmts {
        check_stmt(stmt, function, spec)?;
    }
    Ok(())
}

fn check_stmt(stmt: &Stmt, function: &str, spec: &SpecConfig) -> Result<(), EngineError> {
    match stmt {
        Stmt::Pragma(p) => check_pragma(p, function, spec),
        Stmt::Block(b) => check_block(b, function, spec),
        Stmt::If {
            then_branch,
            else_branch,
            ..
        } => {
            check_block(then_branch, function, spec)?;
            if let Some(e) = else_branch {
                check_block(e, function, spec)?;
            }
            Ok(())
        }
        Stmt::While { body, .. } | Stmt::DoWhile { body, .. } | Stmt::For { body, .. } => {
            check_block(body, function, spec)
        }
        _ => Ok(()),
    }
}

fn check_pragma(p: &Pragma, function: &str, spec: &SpecConfig) -> Result<(), EngineError> {
    if let Some(omp) = p.as_omp() {
        if let Some(nt) = omp.num_threads() {
            let param = nt.trim();
            if param.parse::<i64>().is_err() && spec.lookup(param).is_none() {
                return Err(EngineError::UnboundPragmaParam {
                    function: function.to_string(),
                    param: param.to_string(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defines_seed_the_spec() {
        let tu = minic::parse("#define N 42\n#define EPS 0.5\n#define F(x) x\nint x;").unwrap();
        let spec = SpecConfig::from_defines(&tu);
        assert_eq!(spec.int("N"), Some(42));
        assert_eq!(spec.lookup("EPS"), Some(SpecValue::F64(0.5)));
        assert_eq!(spec.lookup("F"), None, "function-like macros are skipped");
    }

    #[test]
    fn fingerprint_tracks_bindings_and_args() {
        let a = SpecConfig::new().bind("N", 4i64).arg(1.5);
        let b = SpecConfig::new().bind("N", 4i64).arg(1.5);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), a.clone().bind("N", 5i64).fingerprint());
        assert_ne!(a.fingerprint(), a.clone().arg(2i64).fingerprint());
        // An i64 and an f64 with the same numeric value are distinct.
        let i = SpecConfig::new().bind("N", 1i64);
        let f = SpecConfig::new().bind("N", 1.0);
        assert_ne!(i.fingerprint(), f.fingerprint());
    }

    #[test]
    fn unbound_pragma_param_is_rejected() {
        let src = "void k() {\n#pragma omp parallel for num_threads(NT)\nfor (int i = 0; i < 4; i++) { }\n}";
        let tu = minic::parse(src).unwrap();
        let err = validate_pragmas(&tu, "k", &SpecConfig::new()).unwrap_err();
        assert!(
            matches!(err, EngineError::UnboundPragmaParam { ref function, ref param }
                if function == "k" && param == "NT")
        );
        // Binding the parameter or using a literal passes.
        assert!(validate_pragmas(&tu, "k", &SpecConfig::new().bind("NT", 8i64)).is_ok());
        let lit = minic::parse(
            "void k() {\n#pragma omp parallel for num_threads(8)\nfor (int i = 0; i < 4; i++) { }\n}",
        )
        .unwrap();
        assert!(validate_pragmas(&lit, "k", &SpecConfig::new()).is_ok());
    }
}
