//! The reference engine: a deliberately straightforward AST walker.
//!
//! Every execution rule here — evaluation order, type promotion,
//! wrapping integer arithmetic, the flop/load/store counting contract —
//! is the specification the bytecode engine must match bit for bit. The
//! walker resolves names by scanning scope vectors and re-visits the
//! tree on every iteration; it makes no attempt to be fast, which is
//! exactly what makes it a trustworthy differential oracle for the
//! compiled engine.

use crate::layout::{scalar_elem, ElemTy, Layout, Memory, Value};
use crate::spec::SpecConfig;
use crate::{EngineError, ExecutionReport, RetValue};
use minic::{
    AssignOp, BinaryOp, Block, Expr, ForInit, PostfixOp, Stmt, TranslationUnit, Type, UnaryOp,
};

/// Runs `init_array` (when defined) followed by `entry` under `spec` and
/// reports the final state. Validation (entry existence, arity, pragma
/// bindings) has already happened in [`crate::interpret`].
pub(crate) fn run(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
) -> Result<ExecutionReport, EngineError> {
    let layout = Layout::build(tu, spec)?;
    let mem = layout.new_memory();
    let mut interp = Interp {
        tu,
        spec,
        layout: &layout,
        mem,
        flops: 0,
        loads: 0,
        stores: 0,
        scopes: Vec::new(),
    };
    if tu.function("init_array").is_some() {
        interp.call("init_array", &[])?;
    }
    let args: Vec<Value> = spec.args().iter().map(|&a| Value::from(a)).collect();
    let ret = interp.call(entry, &args)?;
    Ok(ExecutionReport {
        checksum: layout.checksum(&interp.mem),
        flops: interp.flops,
        loads: interp.loads,
        stores: interp.stores,
        ret,
    })
}

/// One declared local variable.
struct Slot {
    name: String,
    ty: ElemTy,
    val: Value,
}

/// Statement outcome for control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Option<Value>),
}

/// A resolved assignment target.
enum Lv {
    Local(usize, usize),
    GlobalScalar(usize),
    Elem(usize, i64),
}

struct Interp<'a> {
    tu: &'a TranslationUnit,
    spec: &'a SpecConfig,
    layout: &'a Layout,
    mem: Memory,
    flops: u64,
    loads: u64,
    stores: u64,
    scopes: Vec<Vec<Slot>>,
}

impl<'a> Interp<'a> {
    fn call(&mut self, name: &str, args: &[Value]) -> Result<RetValue, EngineError> {
        let f = self
            .tu
            .function(name)
            .ok_or_else(|| EngineError::UnknownEntry {
                name: name.to_string(),
            })?;
        if f.params.len() != args.len() {
            return Err(EngineError::BadEntryArgs {
                entry: name.to_string(),
                expected: f.params.len(),
                got: args.len(),
            });
        }
        let mut frame = Vec::with_capacity(f.params.len());
        for (p, &a) in f.params.iter().zip(args) {
            let ty = scalar_elem(&p.ty).ok_or_else(|| EngineError::Unsupported {
                what: format!("non-scalar parameter `{}` of `{name}`", p.name),
            })?;
            frame.push(Slot {
                name: p.name.clone(),
                ty,
                val: a.coerce(ty),
            });
        }
        let saved = std::mem::take(&mut self.scopes);
        self.scopes.push(frame);
        let body = f.body.as_ref().expect("definitions have bodies");
        let flow = self.exec_stmts(&body.stmts);
        self.scopes = saved;
        let ret = match flow? {
            Flow::Return(v) => v,
            _ => None,
        };
        Ok(match &f.ret {
            Type::Void => RetValue::Void,
            ty => {
                let rt = scalar_elem(ty).ok_or_else(|| EngineError::Unsupported {
                    what: format!("return type of `{name}`"),
                })?;
                let v = ret.unwrap_or(Value::zero(rt)).coerce(rt);
                match v {
                    Value::I(x) => RetValue::I64(x),
                    Value::F(x) => RetValue::F64Bits(x.to_bits()),
                }
            }
        })
    }

    fn exec_block(&mut self, block: &Block) -> Result<Flow, EngineError> {
        self.scopes.push(Vec::new());
        let flow = self.exec_stmts(&block.stmts);
        self.scopes.pop();
        flow
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<Flow, EngineError> {
        for stmt in stmts {
            match self.exec(stmt)? {
                Flow::Normal => {}
                other => return Ok(other),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec(&mut self, stmt: &Stmt) -> Result<Flow, EngineError> {
        match stmt {
            Stmt::Decl(decls) => {
                for d in decls {
                    self.declare(d)?;
                }
                Ok(Flow::Normal)
            }
            Stmt::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_block(then_branch)
                } else if let Some(e) = else_branch {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            Stmt::While { cond, body } => {
                while self.eval(cond)?.truthy() {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        ret => return Ok(ret),
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::DoWhile { body, cond } => {
                loop {
                    match self.exec_block(body)? {
                        Flow::Break => break,
                        Flow::Normal | Flow::Continue => {}
                        ret => return Ok(ret),
                    }
                    if !self.eval(cond)?.truthy() {
                        break;
                    }
                }
                Ok(Flow::Normal)
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(Vec::new());
                let flow = self.exec_for(init, cond, step, body);
                self.scopes.pop();
                flow
            }
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.eval(e)?),
                    None => None,
                };
                Ok(Flow::Return(v))
            }
            Stmt::Break => Ok(Flow::Break),
            Stmt::Continue => Ok(Flow::Continue),
            Stmt::Pragma(_) => Ok(Flow::Normal),
            Stmt::Block(b) => self.exec_block(b),
            Stmt::Empty => Ok(Flow::Normal),
        }
    }

    fn exec_for(
        &mut self,
        init: &Option<ForInit>,
        cond: &Option<Expr>,
        step: &Option<Expr>,
        body: &Block,
    ) -> Result<Flow, EngineError> {
        match init {
            Some(ForInit::Decl(decls)) => {
                for d in decls {
                    self.declare(d)?;
                }
            }
            Some(ForInit::Expr(e)) => {
                self.eval(e)?;
            }
            None => {}
        }
        loop {
            if let Some(c) = cond {
                if !self.eval(c)?.truthy() {
                    break;
                }
            }
            match self.exec_block(body)? {
                Flow::Break => break,
                Flow::Normal | Flow::Continue => {}
                ret => return Ok(ret),
            }
            if let Some(s) = step {
                self.eval(s)?;
            }
        }
        Ok(Flow::Normal)
    }

    fn declare(&mut self, d: &minic::Decl) -> Result<(), EngineError> {
        if d.is_static {
            return Err(EngineError::Unsupported {
                what: format!("static local `{}`", d.name),
            });
        }
        let ty = scalar_elem(&d.ty).ok_or_else(|| EngineError::Unsupported {
            what: format!("non-scalar local `{}`", d.name),
        })?;
        let val = match &d.init {
            None => Value::zero(ty),
            Some(minic::Init::Expr(e)) => self.eval(e)?.coerce(ty),
            Some(minic::Init::List(_)) => {
                return Err(EngineError::Unsupported {
                    what: format!("list initializer on local `{}`", d.name),
                })
            }
        };
        self.scopes
            .last_mut()
            .expect("a scope is always active")
            .push(Slot {
                name: d.name.clone(),
                ty,
                val,
            });
        Ok(())
    }

    fn eval(&mut self, e: &Expr) -> Result<Value, EngineError> {
        match e {
            Expr::IntLit(v) => Ok(Value::I(*v)),
            Expr::FloatLit(v) => Ok(Value::F(*v)),
            Expr::StrLit(_) | Expr::CharLit(_) => Err(EngineError::Unsupported {
                what: "string/char literal in an executed expression".into(),
            }),
            Expr::Ident(n) => self.read_var(n),
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg => match self.eval(expr)? {
                    Value::F(v) => {
                        self.flops += 1;
                        Ok(Value::F(-v))
                    }
                    Value::I(v) => Ok(Value::I(v.wrapping_neg())),
                },
                UnaryOp::Not => Ok(Value::I(i64::from(!self.eval(expr)?.truthy()))),
                UnaryOp::BitNot => match self.eval(expr)? {
                    Value::I(v) => Ok(Value::I(!v)),
                    Value::F(_) => Err(EngineError::Unsupported {
                        what: "bitwise not on a float".into(),
                    }),
                },
                UnaryOp::PreInc => self.incdec(expr, 1, true),
                UnaryOp::PreDec => self.incdec(expr, -1, true),
                UnaryOp::Deref | UnaryOp::AddrOf => Err(EngineError::Unsupported {
                    what: format!("unary `{}`", op.as_str()),
                }),
            },
            Expr::Postfix { op, expr } => match op {
                PostfixOp::Inc => self.incdec(expr, 1, false),
                PostfixOp::Dec => self.incdec(expr, -1, false),
            },
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::LogAnd => {
                    if !self.eval(lhs)?.truthy() {
                        Ok(Value::I(0))
                    } else {
                        Ok(Value::I(i64::from(self.eval(rhs)?.truthy())))
                    }
                }
                BinaryOp::LogOr => {
                    if self.eval(lhs)?.truthy() {
                        Ok(Value::I(1))
                    } else {
                        Ok(Value::I(i64::from(self.eval(rhs)?.truthy())))
                    }
                }
                _ => {
                    let a = self.eval(lhs)?;
                    let b = self.eval(rhs)?;
                    self.binary(*op, a, b)
                }
            },
            Expr::Assign { op, lhs, rhs } => self.assign(*op, lhs, rhs),
            Expr::Ternary {
                cond,
                then_expr,
                else_expr,
            } => {
                let ty = unify(self.static_ty(then_expr), self.static_ty(else_expr));
                let taken = if self.eval(cond)?.truthy() {
                    then_expr
                } else {
                    else_expr
                };
                Ok(self.eval(taken)?.coerce(ty))
            }
            Expr::Call { callee, args } => match callee.as_str() {
                "sqrt" => {
                    if args.len() != 1 {
                        return Err(EngineError::Unsupported {
                            what: "sqrt arity".into(),
                        });
                    }
                    let v = self.eval(&args[0])?.as_f64();
                    self.flops += 1;
                    Ok(Value::F(v.sqrt()))
                }
                other => Err(EngineError::Unsupported {
                    what: format!("call to `{other}`"),
                }),
            },
            Expr::Index { .. } => {
                let (g, flat) = self.element(e)?;
                let def = &self.layout.globals[g];
                self.loads += 1;
                Ok(match def.elem {
                    ElemTy::I => Value::I(self.mem.i[def.base + flat as usize]),
                    ElemTy::F => Value::F(self.mem.f[def.base + flat as usize]),
                })
            }
            Expr::Cast { ty, expr } => {
                let v = self.eval(expr)?;
                match scalar_elem(ty) {
                    Some(t) => Ok(v.coerce(t)),
                    None => Err(EngineError::Unsupported {
                        what: format!("cast to {ty:?}"),
                    }),
                }
            }
            Expr::Comma(a, b) => {
                self.eval(a)?;
                self.eval(b)
            }
        }
    }

    /// Arithmetic/comparison with C usual promotions: either-float makes
    /// the operation a (counted) double-precision one; pure-int uses
    /// wrapping 64-bit semantics.
    fn binary(&mut self, op: BinaryOp, a: Value, b: Value) -> Result<Value, EngineError> {
        use BinaryOp::*;
        let float = a.ty() == ElemTy::F || b.ty() == ElemTy::F;
        match op {
            Add | Sub | Mul | Div | Rem => {
                if float {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    self.flops += 1;
                    Ok(Value::F(match op {
                        Add => x + y,
                        Sub => x - y,
                        Mul => x * y,
                        Div => x / y,
                        Rem => x % y,
                        _ => unreachable!(),
                    }))
                } else {
                    let (Value::I(x), Value::I(y)) = (a, b) else {
                        unreachable!()
                    };
                    if matches!(op, Div | Rem) && y == 0 {
                        return Err(EngineError::Runtime {
                            what: "integer division by zero".into(),
                        });
                    }
                    Ok(Value::I(match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => x.wrapping_div(y),
                        Rem => x.wrapping_rem(y),
                        _ => unreachable!(),
                    }))
                }
            }
            Eq | Ne | Lt | Gt | Le | Ge => {
                let r = if float {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => x < y,
                        Gt => x > y,
                        Le => x <= y,
                        Ge => x >= y,
                        _ => unreachable!(),
                    }
                } else {
                    let (Value::I(x), Value::I(y)) = (a, b) else {
                        unreachable!()
                    };
                    match op {
                        Eq => x == y,
                        Ne => x != y,
                        Lt => x < y,
                        Gt => x > y,
                        Le => x <= y,
                        Ge => x >= y,
                        _ => unreachable!(),
                    }
                };
                Ok(Value::I(i64::from(r)))
            }
            BitAnd | BitOr | BitXor | Shl | Shr => {
                let (Value::I(x), Value::I(y)) = (a, b) else {
                    return Err(EngineError::Unsupported {
                        what: format!("`{}` on a float", op.as_str()),
                    });
                };
                Ok(Value::I(match op {
                    BitAnd => x & y,
                    BitOr => x | y,
                    BitXor => x ^ y,
                    Shl => x.wrapping_shl(y as u32),
                    Shr => x.wrapping_shr(y as u32),
                    _ => unreachable!(),
                }))
            }
            LogAnd | LogOr => unreachable!("short-circuit ops handled by eval"),
        }
    }

    fn assign(&mut self, op: AssignOp, lhs: &Expr, rhs: &Expr) -> Result<Value, EngineError> {
        let lv = self.lvalue(lhs)?;
        let ty = self.lv_ty(&lv);
        let val = if op == AssignOp::Assign {
            self.eval(rhs)?.coerce(ty)
        } else {
            let cur = self.lv_read(&lv);
            let r = self.eval(rhs)?;
            let bop = match op {
                AssignOp::Add => BinaryOp::Add,
                AssignOp::Sub => BinaryOp::Sub,
                AssignOp::Mul => BinaryOp::Mul,
                AssignOp::Div => BinaryOp::Div,
                AssignOp::Rem => BinaryOp::Rem,
                AssignOp::And => BinaryOp::BitAnd,
                AssignOp::Or => BinaryOp::BitOr,
                AssignOp::Xor => BinaryOp::BitXor,
                AssignOp::Shl => BinaryOp::Shl,
                AssignOp::Shr => BinaryOp::Shr,
                AssignOp::Assign => unreachable!(),
            };
            self.binary(bop, cur, r)?.coerce(ty)
        };
        self.lv_write(&lv, val);
        Ok(val)
    }

    fn incdec(&mut self, target: &Expr, delta: i64, pre: bool) -> Result<Value, EngineError> {
        let lv = self.lvalue(target)?;
        let ty = self.lv_ty(&lv);
        let old = self.lv_read(&lv);
        let new = self.binary(BinaryOp::Add, old, Value::I(delta))?.coerce(ty);
        self.lv_write(&lv, new);
        Ok(if pre { new } else { old })
    }

    fn lvalue(&mut self, e: &Expr) -> Result<Lv, EngineError> {
        match e {
            Expr::Ident(n) => {
                for (si, scope) in self.scopes.iter().enumerate().rev() {
                    for (vi, slot) in scope.iter().enumerate().rev() {
                        if slot.name == *n {
                            return Ok(Lv::Local(si, vi));
                        }
                    }
                }
                if self.spec.lookup(n).is_some() {
                    return Err(EngineError::Unsupported {
                        what: format!("assignment to specialization constant `{n}`"),
                    });
                }
                match self.layout.global(n) {
                    Some(g) if g.is_scalar() => Ok(Lv::GlobalScalar(self.layout.by_name[n])),
                    Some(_) => Err(EngineError::Unsupported {
                        what: format!("assignment to array `{n}`"),
                    }),
                    None => Err(EngineError::UnboundIdent { name: n.clone() }),
                }
            }
            Expr::Index { .. } => {
                let (g, flat) = self.element(e)?;
                Ok(Lv::Elem(g, flat))
            }
            other => Err(EngineError::Unsupported {
                what: format!("assignment target {other:?}"),
            }),
        }
    }

    fn lv_ty(&self, lv: &Lv) -> ElemTy {
        match lv {
            Lv::Local(s, v) => self.scopes[*s][*v].ty,
            Lv::GlobalScalar(g) | Lv::Elem(g, _) => self.layout.globals[*g].elem,
        }
    }

    /// Reads the current value of a target; element reads count a load.
    fn lv_read(&mut self, lv: &Lv) -> Value {
        match lv {
            Lv::Local(s, v) => self.scopes[*s][*v].val,
            Lv::GlobalScalar(g) => {
                let def = &self.layout.globals[*g];
                match def.elem {
                    ElemTy::I => Value::I(self.mem.i[def.base]),
                    ElemTy::F => Value::F(self.mem.f[def.base]),
                }
            }
            Lv::Elem(g, flat) => {
                let def = &self.layout.globals[*g];
                self.loads += 1;
                match def.elem {
                    ElemTy::I => Value::I(self.mem.i[def.base + *flat as usize]),
                    ElemTy::F => Value::F(self.mem.f[def.base + *flat as usize]),
                }
            }
        }
    }

    /// Writes a (pre-coerced) value; element writes count a store.
    fn lv_write(&mut self, lv: &Lv, val: Value) {
        match lv {
            Lv::Local(s, v) => self.scopes[*s][*v].val = val,
            Lv::GlobalScalar(g) => {
                let def = &self.layout.globals[*g];
                match (def.elem, val) {
                    (ElemTy::I, Value::I(x)) => self.mem.i[def.base] = x,
                    (ElemTy::F, Value::F(x)) => self.mem.f[def.base] = x,
                    _ => unreachable!("values are coerced before writes"),
                }
            }
            Lv::Elem(g, flat) => {
                let def = &self.layout.globals[*g];
                self.stores += 1;
                match (def.elem, val) {
                    (ElemTy::I, Value::I(x)) => self.mem.i[def.base + *flat as usize] = x,
                    (ElemTy::F, Value::F(x)) => self.mem.f[def.base + *flat as usize] = x,
                    _ => unreachable!("values are coerced before writes"),
                }
            }
        }
    }

    /// Resolves an index chain `A[i]...[k]` to (global index, flat
    /// offset), evaluating index expressions left to right and
    /// bounds-checking the flattened offset.
    fn element(&mut self, e: &Expr) -> Result<(usize, i64), EngineError> {
        let mut indices: Vec<&Expr> = Vec::new();
        let mut base = e;
        while let Expr::Index { base: b, index } = base {
            indices.push(index);
            base = b;
        }
        indices.reverse();
        let Expr::Ident(name) = base else {
            return Err(EngineError::Unsupported {
                what: format!("subscript of non-identifier {base:?}"),
            });
        };
        let Some(&g) = self.layout.by_name.get(name) else {
            return Err(EngineError::UnboundIdent { name: name.clone() });
        };
        let def = &self.layout.globals[g];
        if def.dims.len() != indices.len() {
            return Err(EngineError::Unsupported {
                what: format!(
                    "`{name}` subscripted with {} of {} dimensions",
                    indices.len(),
                    def.dims.len()
                ),
            });
        }
        let (strides, len) = (def.strides.clone(), def.len);
        let mut flat = 0i64;
        for (idx, stride) in indices.iter().zip(&strides) {
            let v = match self.eval(idx)? {
                Value::I(v) => v,
                Value::F(_) => {
                    return Err(EngineError::Unsupported {
                        what: format!("non-integer subscript on `{name}`"),
                    })
                }
            };
            flat = flat.wrapping_add(v.wrapping_mul(*stride));
        }
        if flat < 0 || flat as usize >= len {
            return Err(EngineError::Runtime {
                what: format!("index {flat} out of bounds on `{name}` (len {len})"),
            });
        }
        Ok((g, flat))
    }

    fn read_var(&mut self, n: &str) -> Result<Value, EngineError> {
        for scope in self.scopes.iter().rev() {
            for slot in scope.iter().rev() {
                if slot.name == n {
                    return Ok(slot.val);
                }
            }
        }
        if let Some(v) = self.spec.lookup(n) {
            return Ok(Value::from(v));
        }
        match self.layout.global(n) {
            Some(g) if g.is_scalar() => Ok(match g.elem {
                ElemTy::I => Value::I(self.mem.i[g.base]),
                ElemTy::F => Value::F(self.mem.f[g.base]),
            }),
            Some(_) => Err(EngineError::Unsupported {
                what: format!("array `{n}` used as a value"),
            }),
            None => Err(EngineError::UnboundIdent {
                name: n.to_string(),
            }),
        }
    }

    /// Best-effort static type of an expression; used only to give the
    /// ternary operator the same result type in both engines. Unknown
    /// shapes default to integer (they fail later when evaluated).
    fn static_ty(&self, e: &Expr) -> ElemTy {
        match e {
            Expr::IntLit(_) | Expr::StrLit(_) | Expr::CharLit(_) => ElemTy::I,
            Expr::FloatLit(_) => ElemTy::F,
            Expr::Ident(n) => {
                for scope in self.scopes.iter().rev() {
                    for slot in scope.iter().rev() {
                        if slot.name == *n {
                            return slot.ty;
                        }
                    }
                }
                if let Some(v) = self.spec.lookup(n) {
                    return Value::from(v).ty();
                }
                match self.layout.global(n) {
                    Some(g) => g.elem,
                    None => ElemTy::I,
                }
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Neg | UnaryOp::PreInc | UnaryOp::PreDec => self.static_ty(expr),
                _ => ElemTy::I,
            },
            Expr::Postfix { expr, .. } => self.static_ty(expr),
            Expr::Binary { op, lhs, rhs } => match op {
                BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Rem => {
                    unify(self.static_ty(lhs), self.static_ty(rhs))
                }
                _ => ElemTy::I,
            },
            Expr::Assign { lhs, .. } => self.static_ty(lhs),
            Expr::Ternary {
                then_expr,
                else_expr,
                ..
            } => unify(self.static_ty(then_expr), self.static_ty(else_expr)),
            Expr::Call { callee, .. } => {
                if callee == "sqrt" {
                    ElemTy::F
                } else {
                    ElemTy::I
                }
            }
            Expr::Index { base, .. } => {
                let mut root = base.as_ref();
                while let Expr::Index { base, .. } = root {
                    root = base;
                }
                match root {
                    Expr::Ident(n) => self.layout.global(n).map_or(ElemTy::I, |g| g.elem),
                    _ => ElemTy::I,
                }
            }
            Expr::Cast { ty, .. } => scalar_elem(ty).unwrap_or(ElemTy::I),
            Expr::Comma(_, b) => self.static_ty(b),
        }
    }
}

fn unify(a: ElemTy, b: ElemTy) -> ElemTy {
    if a == ElemTy::F || b == ElemTy::F {
        ElemTy::F
    } else {
        ElemTy::I
    }
}
