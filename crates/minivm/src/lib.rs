//! Execution engines for weaved mini-C kernels.
//!
//! This crate gives the SOCRATES reproduction *functional* kernel
//! execution with two interchangeable engines:
//!
//! * [`interpret`] — a reference AST interpreter that walks the minic
//!   tree directly. Slow, simple, and the semantic ground truth.
//! * [`compile`] — lowers the program to a typed IR with every
//!   specialization constant (array dimensions, OpenMP pragma
//!   parameters, entry arguments) baked in, folds the integer work, and
//!   emits register bytecode executed by a tight dispatch loop with no
//!   per-step allocation.
//!
//! Both engines produce an [`ExecutionReport`] — a checksum of the final
//! global memory image plus counts of the *semantic* events (f64
//! arithmetic, array element loads and stores) — and the two reports are
//! bit-identical for any program in the supported dialect under the same
//! [`SpecConfig`]. That contract is what lets the compiled engine
//! replace the interpreter everywhere without perturbing a single
//! downstream golden trace.
//!
//! # The specialization-constant contract
//!
//! A [`SpecConfig`] is the *entire* configuration surface of a kernel:
//! named constants (resolved after locals and before globals, so they
//! shadow globals such as the weaver's `__socrates_num_threads`) plus
//! the entry function's argument list. Lowering folds the constants into
//! the IR, so a `CompiledKernel` is valid for exactly one spec
//! fingerprint — which is why compiled artifacts are cached per
//! `(app, dataset, config fingerprint)`.
//!
//! # Counted events
//!
//! `flops` counts executed f64 add/sub/mul/div/rem/negate/sqrt after
//! type promotion; `loads`/`stores` count array *element* accesses
//! (scalar locals and globals are free). Integer arithmetic, casts,
//! comparisons, and branches are deliberately uncounted: they are the
//! bookkeeping the compiler is allowed to fold away.

#![warn(missing_docs)]

pub mod analysis;
mod interp;
mod layout;
mod lower;
mod spec;
mod vm;

pub use analysis::{analyze, AnalysisReport, CostModel, Diagnostic, FaultKind, Poly, Verdict};
pub use spec::{validate_pragmas, SpecConfig, SpecValue};
pub use vm::{CompiledKernel, VmState};

use minic::TranslationUnit;
use serde::{Deserialize, Serialize};

/// An engine failure: unsupported dialect, unbound name, or runtime trap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An OpenMP pragma references a parameter the spec does not bind.
    UnboundPragmaParam {
        /// The function carrying the pragma.
        function: String,
        /// The unbound parameter name.
        param: String,
    },
    /// An identifier resolves to neither a local, a spec constant, nor a
    /// global.
    UnboundIdent {
        /// The unresolved name.
        name: String,
    },
    /// The requested entry function is not defined.
    UnknownEntry {
        /// The missing function name.
        name: String,
    },
    /// The spec supplies the wrong number of entry arguments.
    BadEntryArgs {
        /// The entry function name.
        entry: String,
        /// Parameter count the function declares.
        expected: usize,
        /// Argument count the spec supplies.
        got: usize,
    },
    /// The program uses a construct outside the executable dialect.
    Unsupported {
        /// What was encountered.
        what: String,
    },
    /// A runtime trap: division by zero or an out-of-bounds element
    /// access.
    Runtime {
        /// What trapped.
        what: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnboundPragmaParam { function, param } => write!(
                f,
                "pragma parameter `{param}` in `{function}` is not bound by the configuration"
            ),
            EngineError::UnboundIdent { name } => {
                write!(f, "unbound identifier `{name}`")
            }
            EngineError::UnknownEntry { name } => {
                write!(f, "entry function `{name}` is not defined")
            }
            EngineError::BadEntryArgs {
                entry,
                expected,
                got,
            } => write!(
                f,
                "entry `{entry}` takes {expected} argument(s) but the spec supplies {got}"
            ),
            EngineError::Unsupported { what } => write!(f, "unsupported: {what}"),
            EngineError::Runtime { what } => write!(f, "runtime error: {what}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The value returned by the entry function, preserved bit-exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RetValue {
    /// The entry returns `void`.
    Void,
    /// An integer return.
    I64(i64),
    /// A float return, stored as raw IEEE bits so `Eq` is exact.
    F64Bits(u64),
}

/// The observable outcome of one kernel execution: a checksum of every
/// global's final bit pattern plus the counted semantic events. Two
/// engines agree iff their reports are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// FNV-1a over all globals in declaration order, row-major, exact
    /// bit patterns.
    pub checksum: u64,
    /// Executed f64 add/sub/mul/div/rem/negate/sqrt operations.
    pub flops: u64,
    /// Array element reads (including the read half of `op=`).
    pub loads: u64,
    /// Array element writes.
    pub stores: u64,
    /// The entry function's return value.
    pub ret: RetValue,
}

/// Validates a program/spec pair without running it: the entry exists
/// and has a body, the spec's argument count matches, `init_array` (if
/// present) is parameterless, and every pragma parameter either side
/// references is bound. Both engines run this exact check, so they fail
/// identically and *before* any work happens.
pub fn validate(tu: &TranslationUnit, entry: &str, spec: &SpecConfig) -> Result<(), EngineError> {
    let f = tu
        .function(entry)
        .ok_or_else(|| EngineError::UnknownEntry {
            name: entry.to_string(),
        })?;
    if f.body.is_none() {
        return Err(EngineError::Unsupported {
            what: format!("`{entry}` has no body"),
        });
    }
    if f.params.len() != spec.args().len() {
        return Err(EngineError::BadEntryArgs {
            entry: entry.to_string(),
            expected: f.params.len(),
            got: spec.args().len(),
        });
    }
    if let Some(init) = tu.function("init_array") {
        if init.body.is_none() {
            return Err(EngineError::Unsupported {
                what: "`init_array` has no body".into(),
            });
        }
        if !init.params.is_empty() {
            return Err(EngineError::BadEntryArgs {
                entry: "init_array".into(),
                expected: init.params.len(),
                got: 0,
            });
        }
        validate_pragmas(tu, "init_array", spec)?;
    }
    validate_pragmas(tu, entry, spec)?;
    Ok(())
}

/// Runs `init_array` (when present) and then `entry` under `spec` with
/// the reference AST interpreter.
pub fn interpret(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
) -> Result<ExecutionReport, EngineError> {
    validate(tu, entry, spec)?;
    interp::run(tu, entry, spec)
}

/// Lowers and compiles `entry` (plus `init_array`) under `spec` into a
/// reusable [`CompiledKernel`] with the spec baked in.
pub fn compile(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
) -> Result<CompiledKernel, EngineError> {
    validate(tu, entry, spec)?;
    vm::codegen(lower::lower_program(tu, entry, spec)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs both engines and asserts bit-identical reports.
    fn both(src: &str, entry: &str, spec: &SpecConfig) -> ExecutionReport {
        let tu = minic::parse(src).unwrap();
        let a = interpret(&tu, entry, spec).unwrap();
        let k = compile(&tu, entry, spec).unwrap();
        let b = k.run().unwrap();
        assert_eq!(a, b, "engines diverge on:\n{src}");
        // Re-running the same compiled kernel with a reused state is
        // also bit-identical.
        let mut vm = VmState::new();
        assert_eq!(k.run_with(&mut vm).unwrap(), b);
        assert_eq!(k.run_with(&mut vm).unwrap(), b);
        b
    }

    #[test]
    fn scalar_kernel_with_exact_counts() {
        // 4 iterations: one load (C[i]), one flop (*alpha), one store.
        let src = r#"
double C[N];
void init_array() { for (int i = 0; i < N; i++) C[i] = i + 0.5; }
void kernel(double alpha) {
  for (int i = 0; i < N; i++) C[i] = C[i] * alpha;
}
"#;
        let spec = SpecConfig::new().bind("N", 4i64).arg(2.0);
        let r = both(src, "kernel", &spec);
        // init: 4 stores, 4 flops (i + 0.5 promotes). kernel: 4 loads,
        // 4 flops, 4 stores.
        assert_eq!(r.flops, 8);
        assert_eq!(r.loads, 4);
        assert_eq!(r.stores, 8);
        assert_eq!(r.ret, RetValue::Void);
    }

    #[test]
    fn compound_element_assign_counts_one_load_one_store() {
        let src = r#"
double A[N][N];
void kernel() {
  for (int i = 0; i < N; i++)
    for (int j = 0; j < N; j++)
      A[i][j] += i * j + 1.5;
}
"#;
        let spec = SpecConfig::new().bind("N", 3i64);
        let r = both(src, "kernel", &spec);
        assert_eq!(r.loads, 9, "compound assign loads the element once");
        assert_eq!(r.stores, 9);
        // Per element: i*j is integer (uncounted), `+ 1.5` promotes
        // (1 flop), `A[i][j] += ...` adds in f64 (1 flop).
        assert_eq!(r.flops, 18);
    }

    #[test]
    fn spec_constants_shadow_globals_and_bake_in() {
        let src = r#"
int __socrates_num_threads = 1;
int out;
void kernel() { out = __socrates_num_threads * 10; }
"#;
        let tu = minic::parse(src).unwrap();
        let spec = SpecConfig::new().bind("__socrates_num_threads", 7i64);
        let a = interpret(&tu, "kernel", &spec).unwrap();
        let b = compile(&tu, "kernel", &spec).unwrap().run().unwrap();
        assert_eq!(a, b);
        // Different spec, different checksum: the constant is baked.
        let spec2 = SpecConfig::new().bind("__socrates_num_threads", 3i64);
        let c = compile(&tu, "kernel", &spec2).unwrap().run().unwrap();
        assert_ne!(a.checksum, c.checksum);
    }

    #[test]
    fn control_flow_zoo_matches() {
        let src = r#"
double acc[1];
int steps;
void kernel() {
  int i = 0;
  while (1) {
    if (i >= 10) break;
    if (i % 2 == 0) { i++; continue; }
    acc[0] += i;
    i++;
  }
  do { acc[0] = acc[0] * 2.0; steps++; } while (steps < 3);
  for (;;) { steps--; if (steps == 0) break; }
  acc[0] = steps > 0 ? acc[0] : -acc[0];
}
"#;
        let r = both(src, "kernel", &SpecConfig::new());
        assert_eq!(r.ret, RetValue::Void);
    }

    #[test]
    fn short_circuit_skips_counted_events() {
        let src = r#"
double A[2];
int hits;
void kernel() {
  A[0] = 1.0;
  if (0 && A[1] > 0.0) hits = 1;
  if (1 || A[1] > 0.0) hits = hits + 2;
  if (A[0] > 0.5 && A[1] >= 0.0) hits = hits + 4;
}
"#;
        let r = both(src, "kernel", &SpecConfig::new());
        // A[1] is only loaded by the third condition's right side.
        assert_eq!(r.loads, 2, "short-circuited loads must not happen");
    }

    #[test]
    fn casts_promotion_and_int_semantics_match() {
        let src = r#"
long out[6];
double f[1];
void kernel() {
  int big = 1 << 62;
  out[0] = big * 4;
  out[1] = -7 / 2;
  out[2] = -7 % 2;
  out[3] = (int)(7.9);
  out[4] = (int)(-7.9);
  out[5] = 13 >> 1;
  f[0] = (double)(1 / 2) + 0.25;
}
"#;
        let r = both(src, "kernel", &SpecConfig::new());
        // `-7.9` is a counted float negation; `+ 0.25` is the other flop.
        assert_eq!(r.flops, 2);
    }

    #[test]
    fn sqrt_counts_a_flop_and_matches() {
        let src = r#"
double out[1];
void kernel(double x) { out[0] = sqrt(x * x + 1.0); }
"#;
        let spec = SpecConfig::new().arg(3.0);
        let r = both(src, "kernel", &spec);
        assert_eq!(r.flops, 3); // mul, add, sqrt
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn integer_return_value_is_preserved() {
        let src = "int kernel(int n) { int s = 0; for (int i = 1; i <= n; i++) s += i; return s; }";
        let spec = SpecConfig::new().arg(10i64);
        let r = both(src, "kernel", &spec);
        assert_eq!(r.ret, RetValue::I64(55));
    }

    #[test]
    fn float_return_bits_are_preserved() {
        let src = "double kernel() { return 0.1 + 0.2; }";
        let r = both(src, "kernel", &SpecConfig::new());
        assert_eq!(r.ret, RetValue::F64Bits((0.1f64 + 0.2f64).to_bits()));
    }

    #[test]
    fn division_by_zero_traps_in_both_engines() {
        let src = "int kernel(int n) { return 1 / n; }";
        let tu = minic::parse(src).unwrap();
        let spec = SpecConfig::new().arg(0i64);
        let a = interpret(&tu, "kernel", &spec).unwrap_err();
        let b = compile(&tu, "kernel", &spec).unwrap().run().unwrap_err();
        assert!(matches!(a, EngineError::Runtime { .. }));
        assert_eq!(a, b);
    }

    #[test]
    fn unbound_pragma_fails_before_execution() {
        let src = r#"
double A[4];
void kernel() {
#pragma omp parallel for num_threads(__socrates_num_threads)
  for (int i = 0; i < 4; i++) A[i] = 1.0;
}
"#;
        let tu = minic::parse(src).unwrap();
        let spec = SpecConfig::new();
        let a = interpret(&tu, "kernel", &spec).unwrap_err();
        let b = compile(&tu, "kernel", &spec).unwrap_err();
        assert_eq!(a, b);
        assert!(matches!(a, EngineError::UnboundPragmaParam { .. }));
        let ok = SpecConfig::new().bind("__socrates_num_threads", 4i64);
        both(src, "kernel", &ok);
    }

    #[test]
    fn entry_arity_is_validated_up_front() {
        let tu = minic::parse("void kernel(double a) { }").unwrap();
        let err = compile(&tu, "kernel", &SpecConfig::new()).unwrap_err();
        assert!(matches!(
            err,
            EngineError::BadEntryArgs {
                expected: 1,
                got: 0,
                ..
            }
        ));
        let err = interpret(&tu, "missing", &SpecConfig::new()).unwrap_err();
        assert!(matches!(err, EngineError::UnknownEntry { .. }));
    }

    #[test]
    fn ternary_unifies_mixed_branch_types() {
        let src = r#"
double out[2];
void kernel(int n) {
  out[0] = n > 0 ? 1 : 2.5;
  out[1] = n > 0 ? 2.5 : 1;
}
"#;
        let r1 = both(src, "kernel", &SpecConfig::new().arg(1i64));
        let r2 = both(src, "kernel", &SpecConfig::new().arg(-1i64));
        assert_ne!(r1.checksum, r2.checksum);
    }

    #[test]
    fn decrementing_and_strided_loops_match() {
        let src = r#"
double A[N];
void init_array() { for (int i = 0; i < N; i++) A[i] = i * 1.0; }
void kernel() {
  for (int i = N - 1; i >= 0; i -= 2) A[i] = A[i] + 1.0;
}
"#;
        let spec = SpecConfig::new().bind("N", 9i64);
        let r = both(src, "kernel", &spec);
        assert_eq!(r.loads, 5);
    }

    #[test]
    fn loop_scoped_redeclaration_resets_to_zero() {
        let src = r#"
long out[3];
void kernel() {
  for (int i = 0; i < 3; i++) {
    long acc;
    acc = acc + i + 1;
    out[i] = acc;
  }
}
"#;
        both(src, "kernel", &SpecConfig::new());
    }
}
