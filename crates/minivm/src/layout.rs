//! Global memory layout shared by both execution engines.
//!
//! The layout resolves every file-scope declaration against the
//! specialization constants: array dimensions become concrete row-major
//! extents, scalar globals become single slots, and constant
//! initializers (the weaver's `int __socrates_version = 0;`) are
//! evaluated once. Both engines allocate [`Memory`] from the same
//! [`Layout`], and the final-state checksum walks globals in declaration
//! order — so checksum equality is structural, not coincidental.

use crate::spec::{Fnv, SpecConfig, SpecValue};
use crate::EngineError;
use minic::{Expr, Init, Item, TranslationUnit, Type, UnaryOp};
use std::collections::HashMap;

/// The two scalar types of the mini-C machine model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ElemTy {
    /// 64-bit signed integer (`char`/`int`/`unsigned`/`long`).
    I,
    /// 64-bit IEEE float (`float`/`double` — both run double-precision).
    F,
}

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Value {
    I(i64),
    F(f64),
}

impl Value {
    pub(crate) fn zero(ty: ElemTy) -> Value {
        match ty {
            ElemTy::I => Value::I(0),
            ElemTy::F => Value::F(0.0),
        }
    }

    pub(crate) fn ty(self) -> ElemTy {
        match self {
            Value::I(_) => ElemTy::I,
            Value::F(_) => ElemTy::F,
        }
    }

    pub(crate) fn as_f64(self) -> f64 {
        match self {
            Value::I(v) => v as f64,
            Value::F(v) => v,
        }
    }

    pub(crate) fn truthy(self) -> bool {
        match self {
            Value::I(v) => v != 0,
            Value::F(v) => v != 0.0,
        }
    }

    /// Coerces to a declared slot type (C assignment conversion; the
    /// float-to-int direction uses Rust's saturating `as`).
    pub(crate) fn coerce(self, ty: ElemTy) -> Value {
        match (ty, self) {
            (ElemTy::I, Value::F(v)) => Value::I(v as i64),
            (ElemTy::F, Value::I(v)) => Value::F(v as f64),
            _ => self,
        }
    }
}

impl From<SpecValue> for Value {
    fn from(v: SpecValue) -> Value {
        match v {
            SpecValue::I64(x) => Value::I(x),
            SpecValue::F64(x) => Value::F(x),
        }
    }
}

/// One resolved file-scope declaration.
#[derive(Debug, Clone)]
pub(crate) struct GlobalDef {
    pub(crate) elem: ElemTy,
    /// Base offset into the heap of `elem`'s type.
    pub(crate) base: usize,
    /// Total element count (1 for scalars).
    pub(crate) len: usize,
    /// Array extents in declaration order; empty for scalars.
    pub(crate) dims: Vec<usize>,
    /// Row-major strides matching `dims`.
    pub(crate) strides: Vec<i64>,
    /// Constant initializer (scalars only); arrays zero-initialize.
    pub(crate) init: Option<Value>,
}

impl GlobalDef {
    pub(crate) fn is_scalar(&self) -> bool {
        self.dims.is_empty()
    }
}

/// The resolved global memory map of a translation unit under a spec.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    pub(crate) globals: Vec<GlobalDef>,
    pub(crate) by_name: HashMap<String, usize>,
    pub(crate) i_len: usize,
    pub(crate) f_len: usize,
}

/// Flat typed heaps holding every global; both engines execute against
/// this exact representation.
#[derive(Debug, Clone, Default)]
pub(crate) struct Memory {
    pub(crate) i: Vec<i64>,
    pub(crate) f: Vec<f64>,
}

impl Layout {
    /// Resolves every global declaration of `tu` against `spec`.
    pub(crate) fn build(tu: &TranslationUnit, spec: &SpecConfig) -> Result<Layout, EngineError> {
        let mut layout = Layout {
            globals: Vec::new(),
            by_name: HashMap::new(),
            i_len: 0,
            f_len: 0,
        };
        for item in &tu.items {
            let Item::Global(decls) = item else { continue };
            for decl in decls {
                let (elem, dims) = resolve_type(&decl.ty, &decl.name, spec)?;
                let mut len = 1usize;
                for &d in &dims {
                    len = len.checked_mul(d).ok_or_else(|| EngineError::Unsupported {
                        what: format!("array `{}` overflows the address space", decl.name),
                    })?;
                }
                if len > u32::MAX as usize / 2 {
                    return Err(EngineError::Unsupported {
                        what: format!("array `{}` is too large ({len} elements)", decl.name),
                    });
                }
                let init = match &decl.init {
                    None => None,
                    Some(Init::Expr(e)) if dims.is_empty() => {
                        Some(const_init(e, elem, &decl.name, spec)?)
                    }
                    Some(_) => {
                        return Err(EngineError::Unsupported {
                            what: format!("initializer on global `{}`", decl.name),
                        })
                    }
                };
                let mut strides = vec![1i64; dims.len()];
                for k in (0..dims.len().saturating_sub(1)).rev() {
                    strides[k] = strides[k + 1] * dims[k + 1] as i64;
                }
                let base = match elem {
                    ElemTy::I => {
                        let b = layout.i_len;
                        layout.i_len += len;
                        b
                    }
                    ElemTy::F => {
                        let b = layout.f_len;
                        layout.f_len += len;
                        b
                    }
                };
                if layout
                    .by_name
                    .insert(decl.name.clone(), layout.globals.len())
                    .is_some()
                {
                    return Err(EngineError::Unsupported {
                        what: format!("duplicate global `{}`", decl.name),
                    });
                }
                layout.globals.push(GlobalDef {
                    elem,
                    base,
                    len,
                    dims,
                    strides,
                    init,
                });
            }
        }
        Ok(layout)
    }

    pub(crate) fn global(&self, name: &str) -> Option<&GlobalDef> {
        self.by_name.get(name).map(|&i| &self.globals[i])
    }

    /// Allocates a fresh memory image (zeroed, initializers applied).
    pub(crate) fn new_memory(&self) -> Memory {
        let mut mem = Memory::default();
        self.reset_memory(&mut mem);
        mem
    }

    /// Resets an existing memory image in place (buffer-reusing path).
    pub(crate) fn reset_memory(&self, mem: &mut Memory) {
        mem.i.clear();
        mem.i.resize(self.i_len, 0);
        mem.f.clear();
        mem.f.resize(self.f_len, 0.0);
        for g in &self.globals {
            if let Some(init) = g.init {
                match (g.elem, init.coerce(g.elem)) {
                    (ElemTy::I, Value::I(v)) => mem.i[g.base] = v,
                    (ElemTy::F, Value::F(v)) => mem.f[g.base] = v,
                    _ => unreachable!("coerce returns the requested type"),
                }
            }
        }
    }

    /// FNV-1a checksum over every global's final value, in declaration
    /// order, element-row-major, hashing exact bit patterns.
    pub(crate) fn checksum(&self, mem: &Memory) -> u64 {
        let mut h = Fnv::new();
        for g in &self.globals {
            match g.elem {
                ElemTy::I => {
                    for &v in &mem.i[g.base..g.base + g.len] {
                        h.write(&v.to_le_bytes());
                    }
                }
                ElemTy::F => {
                    for &v in &mem.f[g.base..g.base + g.len] {
                        h.write(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
        h.finish()
    }
}

/// Maps a scalar mini-C type onto the two-type machine model.
pub(crate) fn scalar_elem(ty: &Type) -> Option<ElemTy> {
    match ty {
        Type::Char | Type::Int | Type::UInt | Type::Long => Some(ElemTy::I),
        Type::Float | Type::Double => Some(ElemTy::F),
        _ => None,
    }
}

/// Resolves a declared type to (element type, concrete extents).
fn resolve_type(
    ty: &Type,
    name: &str,
    spec: &SpecConfig,
) -> Result<(ElemTy, Vec<usize>), EngineError> {
    let mut dims_exprs: Vec<&Expr> = Vec::new();
    let mut base = ty;
    while let Type::Array(inner, dims) = base {
        dims_exprs.extend(dims.iter());
        base = inner;
    }
    let elem = scalar_elem(base).ok_or_else(|| EngineError::Unsupported {
        what: format!("type of global `{name}`"),
    })?;
    let mut dims = Vec::with_capacity(dims_exprs.len());
    for e in dims_exprs {
        let v = eval_dim(e, name, spec)?;
        if v <= 0 {
            return Err(EngineError::Unsupported {
                what: format!("non-positive dimension {v} on global `{name}`"),
            });
        }
        dims.push(v as usize);
    }
    Ok((elem, dims))
}

fn eval_dim(e: &Expr, name: &str, spec: &SpecConfig) -> Result<i64, EngineError> {
    e.eval_int(&|n| spec.int(n))
        .ok_or_else(|| match first_unbound_ident(e, spec) {
            Some(unbound) => EngineError::UnboundIdent { name: unbound },
            None => EngineError::Unsupported {
                what: format!("dimension of global `{name}` is not a constant expression"),
            },
        })
}

/// Finds the first identifier in `e` that the spec does not bind to an
/// integer — the root cause of an unevaluable dimension.
fn first_unbound_ident(e: &Expr, spec: &SpecConfig) -> Option<String> {
    match e {
        Expr::Ident(n) => (spec.int(n).is_none()).then(|| n.clone()),
        Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => first_unbound_ident(expr, spec),
        Expr::Binary { lhs, rhs, .. } => {
            first_unbound_ident(lhs, spec).or_else(|| first_unbound_ident(rhs, spec))
        }
        _ => None,
    }
}

/// Evaluates a constant scalar initializer.
fn const_init(e: &Expr, elem: ElemTy, name: &str, spec: &SpecConfig) -> Result<Value, EngineError> {
    let v = match e {
        Expr::FloatLit(v) => Some(Value::F(*v)),
        Expr::Unary {
            op: UnaryOp::Neg,
            expr,
        } => match expr.as_ref() {
            Expr::FloatLit(v) => Some(Value::F(-v)),
            _ => e.eval_int(&|n| spec.int(n)).map(Value::I),
        },
        _ => e.eval_int(&|n| spec.int(n)).map(Value::I),
    };
    match v {
        Some(v) => Ok(v.coerce(elem)),
        None => Err(EngineError::Unsupported {
            what: format!("non-constant initializer on global `{name}`"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_resolves_dims_through_the_spec() {
        let tu = minic::parse("static double A[N][M];\nstatic int t = 3;").unwrap();
        let spec = SpecConfig::new().bind("N", 4i64).bind("M", 5i64);
        let l = Layout::build(&tu, &spec).unwrap();
        let a = l.global("A").unwrap();
        assert_eq!(a.dims, vec![4, 5]);
        assert_eq!(a.strides, vec![5, 1]);
        assert_eq!(a.len, 20);
        let t = l.global("t").unwrap();
        assert!(t.is_scalar());
        let mem = l.new_memory();
        assert_eq!(mem.f.len(), 20);
        assert_eq!(mem.i[t.base], 3);
    }

    #[test]
    fn unbound_dimension_names_the_culprit() {
        let tu = minic::parse("static double A[N];").unwrap();
        let err = Layout::build(&tu, &SpecConfig::new()).unwrap_err();
        assert!(matches!(err, EngineError::UnboundIdent { ref name } if name == "N"));
    }

    #[test]
    fn checksum_tracks_every_global_in_order() {
        let tu = minic::parse("static double A[2];\nstatic int b;").unwrap();
        let l = Layout::build(&tu, &SpecConfig::new()).unwrap();
        let mut m1 = l.new_memory();
        let c0 = l.checksum(&m1);
        m1.f[1] = 1.0;
        assert_ne!(l.checksum(&m1), c0);
        m1.f[1] = 0.0;
        m1.i[0] = 7;
        assert_ne!(l.checksum(&m1), c0);
        l.reset_memory(&mut m1);
        assert_eq!(l.checksum(&m1), c0);
    }
}
