//! Static analysis over the typed IR: safety verification + cost model.
//!
//! [`analyze`] runs two passes over a `(program, SpecConfig)` pair at
//! lowering time, before any VM executes:
//!
//! * **Abstract interpretation** (`absint`) — an interval +
//!   initialization analysis whose domain degenerates to exact concrete
//!   execution while every value stays concrete (always true for the
//!   fully-specialized Polybench kernels). It proves — or refutes —
//!   freedom from the three trap classes the checked VM enforces
//!   dynamically: out-of-bounds element accesses, reads of
//!   never-written array cells, and integer division by zero. On
//!   control flow it cannot decide it falls back to a sound
//!   havoc-and-scan approximation, so a [`Verdict::Safe`] claim always
//!   covers *every* concrete execution.
//! * **Symbolic cost modeling** (`cost`) — lowers the program a second
//!   time with specialization constants kept symbolic and derives
//!   flop/load/store totals as polynomials in those constants
//!   (Faulhaber summation over canonical counted loops). Where the
//!   symbolic walker bails (data-dependent branches), the abstract
//!   interpreter's counters still give exact numbers for the concrete
//!   spec.
//!
//! The two are cross-checked: a symbolic polynomial that disagrees with
//! the abstract interpreter's exact count at the analyzed spec is
//! demoted to inexact rather than trusted.

mod absint;
mod cost;
mod interval;
mod poly;

pub use cost::CostModel;
pub use poly::Poly;

use crate::lower;
use crate::spec::SpecConfig;
use crate::EngineError;
use minic::TranslationUnit;
use serde::{Deserialize, Serialize};

/// The safety classes the analyzer verifies and the checked VM traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// An array element access whose flat index can leave `[0, len)`.
    OutOfBounds,
    /// A read of an array cell no store has written.
    UninitRead,
    /// An integer `/` or `%` whose divisor can be zero.
    DivByZero,
    /// The analysis step budget ran out before execution was covered.
    Budget,
}

impl FaultKind {
    /// Stable lowercase label (used in rendered diagnostics and goldens).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::OutOfBounds => "out-of-bounds",
            FaultKind::UninitRead => "uninit-read",
            FaultKind::DivByZero => "div-by-zero",
            FaultKind::Budget => "budget",
        }
    }
}

/// One typed, source-located analyzer finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The fault class.
    pub kind: FaultKind,
    /// `true`: the fault definitely occurs on the analyzed spec (the
    /// analysis was still an exact re-execution when it hit).
    /// `false`: the fault is possible on some path the analysis could
    /// not exclude.
    pub definite: bool,
    /// The function containing the site.
    pub function: String,
    /// 1-based source line of the containing function's definition.
    pub line: u32,
    /// The offending expression, rendered C-like from the IR.
    pub site: String,
    /// Human-readable specifics (index value, array extent, …).
    pub detail: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = if self.definite { "error" } else { "warning" };
        write!(
            f,
            "{sev}[{}]: {} at `{}` in `{}` (line {})",
            self.kind.label(),
            self.detail,
            self.site,
            self.function,
            self.line
        )
    }
}

/// The analyzer's overall safety claim, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Verdict {
    /// Every concrete execution under the analyzed spec is trap-free:
    /// the checked VM completes without trapping.
    Safe,
    /// The analysis could not prove safety (possible faults or budget
    /// exhaustion); no claim either way.
    Unknown,
    /// A trap definitely fires on the analyzed spec.
    Unsafe,
}

/// The result of analyzing one `(program, entry, SpecConfig)` triple.
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The safety claim.
    pub verdict: Verdict,
    /// Findings, deduplicated by (kind, site), definite faults first.
    pub diagnostics: Vec<Diagnostic>,
    /// Predicted semantic event counters for the analyzed spec.
    pub flops: u64,
    /// Predicted array element reads.
    pub loads: u64,
    /// Predicted array element writes.
    pub stores: u64,
    /// `true`: the predicted counters are exact — the analysis remained
    /// a concrete re-execution end to end, so they equal the VM's
    /// `ExecutionReport` field for field.
    pub counts_exact: bool,
    /// Symbolic cost model (polynomials in the spec constants), when the
    /// symbolic walker covered the whole program.
    pub cost: Option<CostModel>,
    /// Analysis wall-clock in nanoseconds.
    pub analysis_ns: u64,
}

impl AnalysisReport {
    /// `true` iff the verdict is [`Verdict::Safe`].
    pub fn is_safe(&self) -> bool {
        self.verdict == Verdict::Safe
    }

    /// Renders every diagnostic, one per line (golden-test format).
    pub fn render_diagnostics(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out
    }
}

/// Statically analyzes `entry` (plus `init_array`) of `tu` under `spec`.
///
/// Errors only when the program fails validation or lowering — i.e. for
/// exactly the inputs [`crate::compile`] rejects. Safety findings are
/// carried *inside* the report, not as errors.
pub fn analyze(
    tu: &TranslationUnit,
    entry: &str,
    spec: &SpecConfig,
) -> Result<AnalysisReport, EngineError> {
    let t0 = std::time::Instant::now();
    crate::validate(tu, entry, spec)?;
    let prog = lower::lower_program(tu, entry, spec)?;
    let abs = absint::abs_interpret(&prog, tu, entry);

    // The symbolic pass re-lowers with spec constants kept as names.
    // Lowering already succeeded concretely, so a symbolic failure would
    // be a bug; treat it as "no symbolic model" rather than an error.
    let mut cost = lower::lower_program_with(tu, entry, spec, true)
        .ok()
        .and_then(|sym| cost::derive(&sym, spec));
    if let Some(c) = &mut cost {
        // Cross-check: the polynomial evaluated at this spec must agree
        // with the abstract interpreter wherever both claim exactness.
        if c.exact && abs.definite && !c.matches(spec, abs.flops, abs.loads, abs.stores) {
            c.exact = false;
        }
    }

    Ok(AnalysisReport {
        verdict: abs.verdict,
        diagnostics: abs.diagnostics,
        flops: abs.flops,
        loads: abs.loads,
        stores: abs.stores,
        counts_exact: abs.definite,
        cost,
        analysis_ns: t0.elapsed().as_nanos() as u64,
    })
}
