//! Symbolic cost derivation over the symbolically lowered IR.
//!
//! Walks `init_array` + the entry function counting the VM's semantic
//! events — flops, array loads, array stores — as [`Poly`]nomials in the
//! integer specialization constants (kept as `IExpr::SymConst` by the
//! symbolic lowering) and the entry's integer arguments (`arg0`, …).
//! Counted `for` loops in canonical unit-stride form are summed in
//! closed form with Faulhaber polynomials, so perfect and triangular
//! nests stay exact. Anything the walker cannot express exactly —
//! data-dependent branches, `while`/`do-while`, `break`/`continue`,
//! non-unit strides — makes it bail: no model is returned, and the
//! abstract interpreter's per-spec counters remain the source of truth.

use super::poly::{self, Poly};
use crate::layout::ElemTy;
use crate::lower::{IAlu, IExpr, IStmt, LProgram, Pred};
use crate::spec::{SpecConfig, SpecValue};
use std::collections::HashMap;

/// Event totals as polynomials in the specialization constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// `true`: the polynomials are believed exact (cross-checked against
    /// the abstract interpreter at the analyzed spec; demoted on any
    /// disagreement).
    pub exact: bool,
    /// Executed f64 operations.
    pub flops: Poly,
    /// Array element reads.
    pub loads: Poly,
    /// Array element writes.
    pub stores: Poly,
}

impl CostModel {
    /// Evaluates all three polynomials at `spec`. `None` if a variable
    /// is unbound or a count comes out non-integral/negative.
    pub fn eval_at(&self, spec: &SpecConfig) -> Option<(u64, u64, u64)> {
        let bind = |name: &str| bind_var(spec, name);
        let f = u64::try_from(self.flops.eval(&bind)?).ok()?;
        let l = u64::try_from(self.loads.eval(&bind)?).ok()?;
        let s = u64::try_from(self.stores.eval(&bind)?).ok()?;
        Some((f, l, s))
    }

    pub(crate) fn matches(&self, spec: &SpecConfig, flops: u64, loads: u64, stores: u64) -> bool {
        self.eval_at(spec) == Some((flops, loads, stores))
    }
}

/// Resolves a polynomial variable: a named spec constant, or `argK` for
/// the entry's K-th integer argument.
fn bind_var(spec: &SpecConfig, name: &str) -> Option<i64> {
    if let Some(v) = spec.int(name) {
        return Some(v);
    }
    let k: usize = name.strip_prefix("arg")?.parse().ok()?;
    match spec.args().get(k)? {
        SpecValue::I64(v) => Some(*v),
        SpecValue::F64(_) => None,
    }
}

/// Derives the cost model for a symbolically lowered program, or `None`
/// when any construct falls outside the exactly-summable fragment.
pub(crate) fn derive(prog: &LProgram, spec: &SpecConfig) -> Option<CostModel> {
    let mut total = Cost::zero();
    if let Some(init) = &prog.init {
        let mut w = Walker::new(spec);
        let (c, _) = w.count_stmts(&init.stmts)?;
        total = total.add(&c)?;
    }
    let mut w = Walker::new(spec);
    for (k, &(slot, ty)) in prog.entry.params.iter().enumerate() {
        if ty == ElemTy::I {
            w.env.insert(slot, Poly::var(&format!("arg{k}")));
        }
    }
    let (c, _) = w.count_stmts(&prog.entry.stmts)?;
    total = total.add(&c)?;
    Some(CostModel {
        exact: true,
        flops: total.flops,
        loads: total.loads,
        stores: total.stores,
    })
}

#[derive(Clone)]
struct Cost {
    flops: Poly,
    loads: Poly,
    stores: Poly,
}

impl Cost {
    fn zero() -> Cost {
        Cost {
            flops: Poly::zero(),
            loads: Poly::zero(),
            stores: Poly::zero(),
        }
    }

    fn is_zero(&self) -> bool {
        self.flops.is_zero() && self.loads.is_zero() && self.stores.is_zero()
    }

    fn add(&self, o: &Cost) -> Option<Cost> {
        Some(Cost {
            flops: self.flops.add(&o.flops)?,
            loads: self.loads.add(&o.loads)?,
            stores: self.stores.add(&o.stores)?,
        })
    }

    fn map(&self, f: impl Fn(&Poly) -> Option<Poly>) -> Option<Cost> {
        Some(Cost {
            flops: f(&self.flops)?,
            loads: f(&self.loads)?,
            stores: f(&self.stores)?,
        })
    }

    fn eq(&self, o: &Cost) -> bool {
        self.flops == o.flops && self.loads == o.loads && self.stores == o.stores
    }
}

struct Walker<'s> {
    spec: &'s SpecConfig,
    /// Known int-local values as polynomials in spec constants, entry
    /// args, and enclosing loop-variable symbols. Absent = unknown.
    env: HashMap<u16, Poly>,
}

impl<'s> Walker<'s> {
    fn new(spec: &'s SpecConfig) -> Walker<'s> {
        Walker {
            spec,
            env: HashMap::new(),
        }
    }

    /// Counts a statement list. Returns the cost and whether control
    /// definitely left the function (a top-level `return`).
    fn count_stmts(&mut self, stmts: &[IStmt]) -> Option<(Cost, bool)> {
        let mut total = Cost::zero();
        for s in stmts {
            let (c, terminated) = self.count_stmt(s)?;
            total = total.add(&c)?;
            if terminated {
                return Some((total, true));
            }
        }
        Some((total, false))
    }

    fn count_stmt(&mut self, s: &IStmt) -> Option<(Cost, bool)> {
        match s {
            IStmt::SetLocal(slot, ty, e) => {
                let c = self.expr_cost(e)?;
                if *ty == ElemTy::I {
                    match self.eval_poly(e) {
                        Some(p) => self.env.insert(*slot, p),
                        None => self.env.remove(slot),
                    };
                }
                Some((c, false))
            }
            IStmt::SetGlob(.., e) | IStmt::Eval(e) => Some((self.expr_cost(e)?, false)),
            IStmt::SetElem(_, idx, value) => {
                let mut c = self.expr_cost(idx)?.add(&self.expr_cost(value)?)?;
                c.stores = c.stores.add(&Poly::constant(1))?;
                Some((c, false))
            }
            IStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let cc = self.expr_cost(cond)?;
                match self.eval_num(cond) {
                    Some(v) => {
                        let (bc, term) = self.count_stmts(if v != 0 { then_s } else { else_s })?;
                        Some((cc.add(&bc)?, term))
                    }
                    None => {
                        // Undecidable branch: sound only when both sides
                        // cost the same. Kill every local either side
                        // can assign, then compare.
                        let mut killed = Vec::new();
                        assigned_int_slots(then_s, &mut killed);
                        assigned_int_slots(else_s, &mut killed);
                        for slot in &killed {
                            self.env.remove(slot);
                        }
                        let (tc, tterm) = self.count_stmts(then_s)?;
                        let (ec, eterm) = self.count_stmts(else_s)?;
                        if tterm || eterm || !tc.eq(&ec) {
                            return None;
                        }
                        Some((cc.add(&tc)?, false))
                    }
                }
            }
            IStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                let (ic, iterm) = self.count_stmts(init)?;
                if iterm {
                    return Some((ic, true));
                }
                let lc = self.count_for_loop(cond.as_ref()?, step, body)?;
                Some((ic.add(&lc)?, false))
            }
            // Outside the exactly-summable fragment.
            IStmt::While { .. } | IStmt::DoWhile { .. } | IStmt::Break | IStmt::Continue => None,
            IStmt::Return(e) => {
                let c = match e {
                    Some(e) => self.expr_cost(e)?,
                    None => Cost::zero(),
                };
                Some((c, true))
            }
        }
    }

    /// The canonical counted loop: `for (v = P0; v <pred> B; v ± 1)`.
    fn count_for_loop(&mut self, cond: &IExpr, step: &[IStmt], body: &[IStmt]) -> Option<Cost> {
        // Condition shape: CmpI(pred, LocalI(v), bound).
        let IExpr::CmpI(pred, lhs, bound) = cond else {
            return None;
        };
        let IExpr::LocalI(v) = **lhs else { return None };
        // Step shape: exactly `v = v ± 1`.
        let [IStmt::SetLocal(sv, ElemTy::I, se)] = step else {
            return None;
        };
        if *sv != v {
            return None;
        }
        let IExpr::BinI(dir, sa, sb) = se else {
            return None;
        };
        let (IExpr::LocalI(va), IExpr::ConstI(1)) = (&**sa, &**sb) else {
            return None;
        };
        if *va != v || !matches!(dir, IAlu::Add | IAlu::Sub) {
            return None;
        }

        let p0 = self.env.get(&v)?.clone();
        let bound_poly = self.eval_poly(bound)?;
        // The bound and start must be loop-invariant: no local feeding
        // them may be assigned by the body or step, and neither may
        // reference the loop variable itself.
        let mut body_assigned = Vec::new();
        assigned_int_slots(body, &mut body_assigned);
        if body_assigned.contains(&v) || expr_uses_any_slot(bound, &body_assigned) {
            return None;
        }
        let sym = format!("__loop{v}");
        if p0.mentions(&sym) || bound_poly.mentions(&sym) {
            return None;
        }

        // Iteration-value range [lo, hi] and the exit value of v.
        let one = Poly::constant(1);
        let (lo, hi, exit) = match (dir, pred) {
            (IAlu::Add, Pred::Lt) => (p0.clone(), bound_poly.sub(&one)?, bound_poly.clone()),
            (IAlu::Add, Pred::Le) => (p0.clone(), bound_poly.clone(), bound_poly.add(&one)?),
            (IAlu::Sub, Pred::Ge) => (bound_poly.clone(), p0.clone(), bound_poly.sub(&one)?),
            (IAlu::Sub, Pred::Gt) => (bound_poly.add(&one)?, p0.clone(), bound_poly.clone()),
            _ => return None,
        };

        // Count one iteration with v symbolic. Locals the body assigns
        // are unknown across iterations.
        for slot in &body_assigned {
            self.env.remove(slot);
        }
        self.env.insert(v, Poly::var(&sym));
        let cond_c = self.expr_cost(cond)?;
        let (body_c, bterm) = self.count_stmts(body)?;
        if bterm {
            return None;
        }
        let step_c = self.expr_cost(se)?;
        let per_iter = cond_c.add(&body_c)?.add(&step_c)?;

        // Σ over the value range, plus the final (failing) condition
        // evaluation at the exit value.
        let summed = per_iter.map(|p| poly::sum_over(p, &sym, &lo, &hi))?;
        let exit_cond = cond_c.map(|p| subst(p, &sym, &exit))?;
        let total = summed.add(&exit_cond)?;

        // After the loop, v holds the exit value; the body's other
        // assignments are already killed.
        self.env.insert(v, exit);
        Some(total)
    }

    /// Counted events of one evaluation of `e`, with short-circuit and
    /// ternary operands resolved where statically possible.
    fn expr_cost(&self, e: &IExpr) -> Option<Cost> {
        Some(match e {
            IExpr::ConstI(_)
            | IExpr::ConstF(_)
            | IExpr::SymConst(_)
            | IExpr::LocalI(_)
            | IExpr::LocalF(_)
            | IExpr::GlobI(_)
            | IExpr::GlobF(_) => Cost::zero(),
            IExpr::LoadI(_, idx) | IExpr::LoadF(_, idx) => {
                let mut c = self.expr_cost(idx)?;
                c.loads = c.loads.add(&Poly::constant(1))?;
                c
            }
            IExpr::BinI(_, a, b) | IExpr::CmpI(_, a, b) => {
                self.expr_cost(a)?.add(&self.expr_cost(b)?)?
            }
            IExpr::CmpF(_, a, b) => self.expr_cost(a)?.add(&self.expr_cost(b)?)?,
            IExpr::BinF(_, a, b) => {
                let mut c = self.expr_cost(a)?.add(&self.expr_cost(b)?)?;
                c.flops = c.flops.add(&Poly::constant(1))?;
                c
            }
            IExpr::NegF(s) | IExpr::Sqrt(s) => {
                let mut c = self.expr_cost(s)?;
                c.flops = c.flops.add(&Poly::constant(1))?;
                c
            }
            IExpr::NegI(s)
            | IExpr::NotI(s)
            | IExpr::BitNotI(s)
            | IExpr::TruthyF(s)
            | IExpr::I2F(s)
            | IExpr::F2I(s) => self.expr_cost(s)?,
            IExpr::LogAnd(a, b) | IExpr::LogOr(a, b) => {
                let ca = self.expr_cost(a)?;
                let cb = self.expr_cost(b)?;
                if cb.is_zero() {
                    // Whether the right side runs is irrelevant.
                    ca
                } else {
                    let av = self.eval_num(a)?;
                    let runs_b = (av != 0) == matches!(e, IExpr::LogAnd(..));
                    if runs_b {
                        ca.add(&cb)?
                    } else {
                        ca
                    }
                }
            }
            IExpr::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => {
                let cc = self.expr_cost(cond)?;
                let tc = self.expr_cost(then_e)?;
                let ec = self.expr_cost(else_e)?;
                if tc.eq(&ec) {
                    cc.add(&tc)?
                } else {
                    let v = self.eval_num(cond)?;
                    cc.add(if v != 0 { &tc } else { &ec })?
                }
            }
        })
    }

    /// Evaluates an int expression to a polynomial where the grammar
    /// allows (constants, spec symbols, known locals, `+ - *`, unary
    /// minus).
    fn eval_poly(&self, e: &IExpr) -> Option<Poly> {
        match e {
            IExpr::ConstI(v) => Some(Poly::constant(*v)),
            IExpr::SymConst(n) => Some(Poly::var(n)),
            IExpr::LocalI(s) => self.env.get(s).cloned(),
            IExpr::BinI(op, a, b) => {
                let x = self.eval_poly(a)?;
                let y = self.eval_poly(b)?;
                match op {
                    IAlu::Add => x.add(&y),
                    IAlu::Sub => x.sub(&y),
                    IAlu::Mul => x.mul(&y),
                    _ => None,
                }
            }
            IExpr::NegI(s) => Some(self.eval_poly(s)?.neg()),
            _ => None,
        }
    }

    /// Evaluates an int expression numerically at the analyzed spec —
    /// spec-static control decisions only. Fails on anything touching
    /// loop variables, memory, or unknown locals.
    fn eval_num(&self, e: &IExpr) -> Option<i64> {
        match e {
            IExpr::CmpI(p, a, b) => {
                let (x, y) = (self.eval_num(a)?, self.eval_num(b)?);
                Some(i64::from(match p {
                    Pred::Eq => x == y,
                    Pred::Ne => x != y,
                    Pred::Lt => x < y,
                    Pred::Le => x <= y,
                    Pred::Gt => x > y,
                    Pred::Ge => x >= y,
                }))
            }
            IExpr::CmpF(p, a, b) => {
                let (x, y) = (self.eval_fnum(a)?, self.eval_fnum(b)?);
                Some(i64::from(match p {
                    Pred::Eq => x == y,
                    Pred::Ne => x != y,
                    Pred::Lt => x < y,
                    Pred::Le => x <= y,
                    Pred::Gt => x > y,
                    Pred::Ge => x >= y,
                }))
            }
            IExpr::NotI(s) => Some(i64::from(self.eval_num(s)? == 0)),
            IExpr::BitNotI(s) => Some(!self.eval_num(s)?),
            IExpr::TruthyF(s) => Some(i64::from(self.eval_fnum(s)? != 0.0)),
            IExpr::F2I(s) => Some(self.eval_fnum(s)? as i64),
            IExpr::LogAnd(a, b) => {
                if self.eval_num(a)? == 0 {
                    Some(0)
                } else {
                    Some(i64::from(self.eval_num(b)? != 0))
                }
            }
            IExpr::LogOr(a, b) => {
                if self.eval_num(a)? != 0 {
                    Some(1)
                } else {
                    Some(i64::from(self.eval_num(b)? != 0))
                }
            }
            IExpr::Ternary {
                cond,
                then_e,
                else_e,
                ty: ElemTy::I,
            } => {
                if self.eval_num(cond)? != 0 {
                    self.eval_num(then_e)
                } else {
                    self.eval_num(else_e)
                }
            }
            IExpr::BinI(op, a, b) => {
                let (x, y) = (self.eval_num(a)?, self.eval_num(b)?);
                Some(match op {
                    IAlu::Add => x.wrapping_add(y),
                    IAlu::Sub => x.wrapping_sub(y),
                    IAlu::Mul => x.wrapping_mul(y),
                    IAlu::Div if y != 0 => x.wrapping_div(y),
                    IAlu::Rem if y != 0 => x.wrapping_rem(y),
                    IAlu::And => x & y,
                    IAlu::Or => x | y,
                    IAlu::Xor => x ^ y,
                    IAlu::Shl => x.wrapping_shl(y as u32),
                    IAlu::Shr => x.wrapping_shr(y as u32),
                    _ => return None,
                })
            }
            IExpr::NegI(s) => Some(self.eval_num(s)?.wrapping_neg()),
            // Values that must be spec-static constants.
            _ => {
                let p = self.eval_poly(e)?;
                let bind = |name: &str| bind_var(self.spec, name);
                i64::try_from(p.eval(&bind)?).ok()
            }
        }
    }

    /// Minimal numeric float evaluation for spec-static comparisons.
    fn eval_fnum(&self, e: &IExpr) -> Option<f64> {
        match e {
            IExpr::ConstF(v) => Some(*v),
            IExpr::I2F(s) => Some(self.eval_num(s)? as f64),
            _ => None,
        }
    }
}

/// `p[v := r]` via the coefficient split.
fn subst(p: &Poly, v: &str, r: &Poly) -> Option<Poly> {
    let coeffs = p.coeffs_in(v)?;
    let mut out = Poly::zero();
    for (k, c) in coeffs.iter().enumerate() {
        if c.is_zero() {
            continue;
        }
        out = out.add(&c.mul(&r.pow(k as u32)?)?)?;
    }
    Some(out)
}

/// Int-typed local slots any statement in the region can write.
fn assigned_int_slots(stmts: &[IStmt], out: &mut Vec<u16>) {
    for s in stmts {
        match s {
            IStmt::SetLocal(slot, ElemTy::I, _) if !out.contains(slot) => {
                out.push(*slot);
            }
            IStmt::If { then_s, else_s, .. } => {
                assigned_int_slots(then_s, out);
                assigned_int_slots(else_s, out);
            }
            IStmt::While { body, .. } | IStmt::DoWhile { body, .. } => {
                assigned_int_slots(body, out);
            }
            IStmt::For {
                init, step, body, ..
            } => {
                assigned_int_slots(init, out);
                assigned_int_slots(step, out);
                assigned_int_slots(body, out);
            }
            _ => {}
        }
    }
}

/// Whether `e` reads any of the given int local slots.
fn expr_uses_any_slot(e: &IExpr, slots: &[u16]) -> bool {
    match e {
        IExpr::LocalI(s) => slots.contains(s),
        IExpr::ConstI(_)
        | IExpr::ConstF(_)
        | IExpr::SymConst(_)
        | IExpr::LocalF(_)
        | IExpr::GlobI(_)
        | IExpr::GlobF(_) => false,
        IExpr::LoadI(_, s)
        | IExpr::LoadF(_, s)
        | IExpr::NegI(s)
        | IExpr::NegF(s)
        | IExpr::NotI(s)
        | IExpr::BitNotI(s)
        | IExpr::TruthyF(s)
        | IExpr::I2F(s)
        | IExpr::F2I(s)
        | IExpr::Sqrt(s) => expr_uses_any_slot(s, slots),
        IExpr::BinI(_, a, b)
        | IExpr::BinF(_, a, b)
        | IExpr::CmpI(_, a, b)
        | IExpr::CmpF(_, a, b)
        | IExpr::LogAnd(a, b)
        | IExpr::LogOr(a, b) => expr_uses_any_slot(a, slots) || expr_uses_any_slot(b, slots),
        IExpr::Ternary {
            cond,
            then_e,
            else_e,
            ..
        } => {
            expr_uses_any_slot(cond, slots)
                || expr_uses_any_slot(then_e, slots)
                || expr_uses_any_slot(else_e, slots)
        }
    }
}
