//! Multivariate polynomials with exact rational coefficients.
//!
//! The symbolic cost model expresses event counts as polynomials in the
//! specialization constants (and, transiently, loop-variable symbols).
//! Coefficients are `i128` rationals; every operation is
//! overflow-checked and returns `None` on overflow, which the cost
//! walker treats as "no symbolic model" rather than a wrong one.
//! Summation over counted loops uses Faulhaber polynomials, so a
//! perfect triangular nest stays exact.

use std::collections::BTreeMap;

/// A reduced rational with a positive denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Ratio {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Ratio {
    pub(crate) const ZERO: Ratio = Ratio { num: 0, den: 1 };
    pub(crate) const ONE: Ratio = Ratio { num: 1, den: 1 };

    pub(crate) fn int(v: i64) -> Ratio {
        Ratio {
            num: i128::from(v),
            den: 1,
        }
    }

    fn normalized(num: i128, den: i128) -> Ratio {
        debug_assert!(den != 0);
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Ratio {
            num: sign * (num / g),
            den: (den / g).abs(),
        }
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn add(self, o: Ratio) -> Option<Ratio> {
        let num = self
            .num
            .checked_mul(o.den)?
            .checked_add(o.num.checked_mul(self.den)?)?;
        Some(Ratio::normalized(num, self.den.checked_mul(o.den)?))
    }

    fn mul(self, o: Ratio) -> Option<Ratio> {
        Some(Ratio::normalized(
            self.num.checked_mul(o.num)?,
            self.den.checked_mul(o.den)?,
        ))
    }

    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }

    fn div_int(self, k: i128) -> Option<Ratio> {
        if k == 0 {
            return None;
        }
        Some(Ratio::normalized(self.num, self.den.checked_mul(k)?))
    }
}

/// A monomial: variables with positive powers, sorted by name.
type Monomial = Vec<(Box<str>, u32)>;

/// A multivariate polynomial with rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Poly {
    terms: BTreeMap<Monomial, Ratio>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly::default()
    }

    /// A constant polynomial.
    pub fn constant(v: i64) -> Poly {
        Poly::from_ratio(Ratio::int(v))
    }

    pub(crate) fn from_ratio(r: Ratio) -> Poly {
        let mut terms = BTreeMap::new();
        if !r.is_zero() {
            terms.insert(Vec::new(), r);
        }
        Poly { terms }
    }

    /// The polynomial `name`.
    pub fn var(name: &str) -> Poly {
        let mut terms = BTreeMap::new();
        terms.insert(vec![(name.into(), 1)], Ratio::ONE);
        Poly { terms }
    }

    /// `true` for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, when the polynomial is constant and integral.
    pub fn as_const(&self) -> Option<i64> {
        if self.terms.is_empty() {
            return Some(0);
        }
        if self.terms.len() > 1 {
            return None;
        }
        let (m, r) = self.terms.iter().next()?;
        if !m.is_empty() || r.den != 1 {
            return None;
        }
        i64::try_from(r.num).ok()
    }

    fn insert(terms: &mut BTreeMap<Monomial, Ratio>, m: Monomial, r: Ratio) -> Option<()> {
        match terms.entry(m) {
            std::collections::btree_map::Entry::Vacant(e) => {
                if !r.is_zero() {
                    e.insert(r);
                }
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let sum = e.get().add(r)?;
                if sum.is_zero() {
                    e.remove();
                } else {
                    *e.get_mut() = sum;
                }
            }
        }
        Some(())
    }

    pub(crate) fn add(&self, o: &Poly) -> Option<Poly> {
        let mut terms = self.terms.clone();
        for (m, r) in &o.terms {
            Poly::insert(&mut terms, m.clone(), *r)?;
        }
        Some(Poly { terms })
    }

    pub(crate) fn neg(&self) -> Poly {
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, r)| (m.clone(), r.neg()))
                .collect(),
        }
    }

    pub(crate) fn sub(&self, o: &Poly) -> Option<Poly> {
        self.add(&o.neg())
    }

    pub(crate) fn mul(&self, o: &Poly) -> Option<Poly> {
        let mut terms = BTreeMap::new();
        for (ma, ra) in &self.terms {
            for (mb, rb) in &o.terms {
                Poly::insert(&mut terms, mul_monomials(ma, mb), ra.mul(*rb)?)?;
            }
        }
        Some(Poly { terms })
    }

    #[cfg(test)]
    pub(crate) fn mul_int(&self, k: i64) -> Option<Poly> {
        self.mul(&Poly::constant(k))
    }

    pub(crate) fn pow(&self, k: u32) -> Option<Poly> {
        let mut acc = Poly::constant(1);
        for _ in 0..k {
            acc = acc.mul(self)?;
        }
        Some(acc)
    }

    /// Splits into coefficients of powers of `v`: result `c` satisfies
    /// `self = Σ_k c[k] * v^k` and `c[k]` does not mention `v`.
    pub(crate) fn coeffs_in(&self, v: &str) -> Option<Vec<Poly>> {
        let mut out: Vec<Poly> = Vec::new();
        for (m, r) in &self.terms {
            let k = m
                .iter()
                .find(|(name, _)| name.as_ref() == v)
                .map_or(0, |&(_, p)| p) as usize;
            let rest: Monomial = m
                .iter()
                .filter(|(name, _)| name.as_ref() != v)
                .cloned()
                .collect();
            if out.len() <= k {
                out.resize(k + 1, Poly::zero());
            }
            Poly::insert(&mut out[k].terms, rest, *r)?;
        }
        if out.is_empty() {
            out.push(Poly::zero());
        }
        Some(out)
    }

    /// `true` when `v` appears in any term.
    pub(crate) fn mentions(&self, v: &str) -> bool {
        self.terms
            .keys()
            .any(|m| m.iter().any(|(name, _)| name.as_ref() == v))
    }

    /// Exact evaluation at integer variable values. Returns `None` if a
    /// variable is unbound, the arithmetic overflows, or the result is
    /// not an integer (a correct count polynomial always is on the trip
    /// counts it was derived from).
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<i64>) -> Option<i128> {
        let mut acc = Ratio::ZERO;
        for (m, r) in &self.terms {
            let mut term = *r;
            for (name, pow) in m {
                let v = i128::from(lookup(name)?);
                let mut p = 1i128;
                for _ in 0..*pow {
                    p = p.checked_mul(v)?;
                }
                term = term.mul(Ratio { num: p, den: 1 })?;
            }
            acc = acc.add(term)?;
        }
        (acc.den == 1).then_some(acc.num)
    }

    /// Every variable name mentioned, sorted and deduplicated.
    pub fn variables(&self) -> Vec<String> {
        let mut vars: Vec<String> = self
            .terms
            .keys()
            .flat_map(|m| m.iter().map(|(n, _)| n.to_string()))
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }
}

fn mul_monomials(a: &Monomial, b: &Monomial) -> Monomial {
    let mut out: BTreeMap<Box<str>, u32> = BTreeMap::new();
    for (n, p) in a.iter().chain(b) {
        *out.entry(n.clone()).or_insert(0) += p;
    }
    out.into_iter().collect()
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Highest total degree first reads naturally (N^2 + N + 1).
        let mut terms: Vec<(&Monomial, &Ratio)> = self.terms.iter().collect();
        terms.sort_by_key(|(m, _)| std::cmp::Reverse(m.iter().map(|&(_, p)| p).sum::<u32>()));
        for (i, (m, r)) in terms.iter().enumerate() {
            let neg = r.num < 0;
            if i == 0 {
                if neg {
                    write!(f, "-")?;
                }
            } else {
                f.write_str(if neg { " - " } else { " + " })?;
            }
            let num = r.num.abs();
            let coeff_is_one = num == 1 && r.den == 1;
            if !coeff_is_one || m.is_empty() {
                write!(f, "{num}")?;
                if r.den != 1 {
                    write!(f, "/{}", r.den)?;
                }
                if !m.is_empty() {
                    write!(f, "*")?;
                }
            }
            for (j, (name, pow)) in m.iter().enumerate() {
                if j > 0 {
                    write!(f, "*")?;
                }
                write!(f, "{name}")?;
                if *pow > 1 {
                    write!(f, "^{pow}")?;
                }
            }
        }
        Ok(())
    }
}

/// Coefficients of the Faulhaber polynomial `F_k(x) = Σ_{v=1}^{x} v^k`
/// (index = power of `x`, length `k + 2`), computed by the recurrence
/// `(k+1) F_k(x) = (x+1)^{k+1} - 1 - Σ_{j<k} C(k+1, j) F_j(x)`.
fn faulhaber(k: u32) -> Option<Vec<Vec<Ratio>>> {
    let k = k as usize;
    let mut fs: Vec<Vec<Ratio>> = Vec::with_capacity(k + 1);
    for cur in 0..=k {
        // (x+1)^{cur+1} via binomial coefficients.
        let mut rhs: Vec<Ratio> = (0..=cur + 1)
            .map(|i| {
                Some(Ratio {
                    num: binom(cur + 1, i)?,
                    den: 1,
                })
            })
            .collect::<Option<Vec<_>>>()?;
        rhs[0] = rhs[0].add(Ratio::int(-1))?; // subtract the 1
        for (j, fj) in fs.iter().enumerate() {
            let c = Ratio {
                num: binom(cur + 1, j)?,
                den: 1,
            };
            for (i, &fc) in fj.iter().enumerate() {
                rhs[i] = rhs[i].add(fc.mul(c)?.neg())?;
            }
        }
        let inv = (cur + 1) as i128;
        let fk = rhs
            .into_iter()
            .map(|r| r.div_int(inv))
            .collect::<Option<Vec<_>>>()?;
        fs.push(fk);
    }
    Some(fs)
}

fn binom(n: usize, k: usize) -> Option<i128> {
    if k > n {
        return Some(0);
    }
    let mut acc = 1i128;
    for i in 0..k {
        acc = acc.checked_mul((n - i) as i128)?;
        acc /= (i + 1) as i128;
    }
    Some(acc)
}

/// `Σ_{x=lo}^{hi} body[v := x]`, as a polynomial in the remaining
/// variables. Valid wherever the loop's trip count `hi - lo + 1` is
/// non-negative (true at every spec the model is evaluated on; counted
/// loops with zero trips fold away during lowering or contribute zero).
pub(crate) fn sum_over(body: &Poly, v: &str, lo: &Poly, hi: &Poly) -> Option<Poly> {
    if lo.mentions(v) || hi.mentions(v) {
        return None;
    }
    let coeffs = body.coeffs_in(v)?;
    let max_k = coeffs.len() as u32 - 1;
    let fs = faulhaber(max_k)?;
    let lo_m1 = lo.sub(&Poly::constant(1))?;
    let mut total = Poly::zero();
    for (k, ck) in coeffs.iter().enumerate() {
        if ck.is_zero() {
            continue;
        }
        // F_k(hi) - F_k(lo - 1), with the univariate coefficients lifted
        // by substituting the bound polynomials for x.
        let mut range_sum = Poly::zero();
        for (i, &fc) in fs[k].iter().enumerate() {
            let hi_pow = hi.pow(i as u32)?;
            let lo_pow = lo_m1.pow(i as u32)?;
            let diff = hi_pow.sub(&lo_pow)?;
            range_sum = range_sum.add(&diff.mul(&Poly::from_ratio(fc))?)?;
        }
        total = total.add(&ck.mul(&range_sum)?)?;
    }
    Some(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(p: &Poly, binds: &[(&str, i64)]) -> i128 {
        p.eval(&|n| binds.iter().find(|(name, _)| *name == n).map(|&(_, v)| v))
            .expect("poly evaluates")
    }

    #[test]
    fn arithmetic_and_eval() {
        let n = Poly::var("N");
        let p = n.mul(&n).unwrap().add(&n.mul_int(2).unwrap()).unwrap(); // N^2 + 2N
        assert_eq!(ev(&p, &[("N", 10)]), 120);
        assert_eq!(p.to_string(), "N^2 + 2*N");
        assert_eq!(Poly::constant(5).as_const(), Some(5));
        assert_eq!(p.as_const(), None);
        assert_eq!(p.variables(), vec!["N".to_string()]);
    }

    #[test]
    fn faulhaber_matches_brute_force() {
        for k in 0u32..=4 {
            let fs = faulhaber(k).unwrap();
            let fk = &fs[k as usize];
            for n in 0i128..=12 {
                let brute: i128 = (1..=n).map(|v| v.pow(k)).sum();
                // Evaluate the rational coefficient vector at x = n.
                let mut acc = Ratio::ZERO;
                for (i, &c) in fk.iter().enumerate() {
                    let xp = Ratio {
                        num: n.pow(i as u32),
                        den: 1,
                    };
                    acc = acc.add(c.mul(xp).unwrap()).unwrap();
                }
                assert_eq!(acc, Ratio { num: brute, den: 1 }, "k={k} n={n}");
            }
        }
    }

    #[test]
    fn sum_over_constant_body_is_trip_count() {
        // Σ_{i=0}^{N-1} 3  =  3N
        let body = Poly::constant(3);
        let s = sum_over(
            &body,
            "i",
            &Poly::constant(0),
            &Poly::var("N").sub(&Poly::constant(1)).unwrap(),
        )
        .unwrap();
        assert_eq!(ev(&s, &[("N", 7)]), 21);
    }

    #[test]
    fn sum_over_triangular_nest() {
        // Σ_{i=0}^{N-1} Σ_{j=0}^{i-1} 1 = N(N-1)/2
        let inner = sum_over(
            &Poly::constant(1),
            "j",
            &Poly::constant(0),
            &Poly::var("i").sub(&Poly::constant(1)).unwrap(),
        )
        .unwrap();
        let outer = sum_over(
            &inner,
            "i",
            &Poly::constant(0),
            &Poly::var("N").sub(&Poly::constant(1)).unwrap(),
        )
        .unwrap();
        assert_eq!(ev(&outer, &[("N", 10)]), 45);
        assert_eq!(ev(&outer, &[("N", 1)]), 0);
    }

    #[test]
    fn quadratic_body_sums_exactly() {
        // Σ_{i=1}^{N} i^2 = N(N+1)(2N+1)/6
        let i = Poly::var("i");
        let body = i.mul(&i).unwrap();
        let s = sum_over(&body, "i", &Poly::constant(1), &Poly::var("N")).unwrap();
        assert_eq!(ev(&s, &[("N", 5)]), 55);
        assert_eq!(ev(&s, &[("N", 100)]), 338350);
    }

    #[test]
    fn sum_with_bound_depending_on_summed_var_bails() {
        assert!(sum_over(&Poly::constant(1), "i", &Poly::constant(0), &Poly::var("i")).is_none());
    }
}
