//! The integer interval domain of the abstract interpreter.
//!
//! Singleton intervals replicate the VM's exact wrapping semantics, so
//! an analysis that stays on singletons is a faithful (counting)
//! re-execution of the integer slice of the program. Non-singleton
//! arithmetic is evaluated in `i128`; any candidate bound that leaves
//! the `i64` range widens to ⊤ — sound for the VM's wrapping ops
//! without modelling wrap-around shapes.

use crate::lower::{IAlu, Pred};

/// A closed integer interval `[lo, hi]` (`lo <= hi`). The full range
/// is the ⊤ element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interval {
    pub(crate) lo: i64,
    pub(crate) hi: i64,
}

impl Interval {
    pub(crate) const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    pub(crate) fn exact(v: i64) -> Interval {
        Interval { lo: v, hi: v }
    }

    pub(crate) fn new(lo: i64, hi: i64) -> Interval {
        debug_assert!(lo <= hi);
        Interval { lo, hi }
    }

    /// The single concrete value, when the interval is a singleton.
    pub(crate) fn singleton(self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    #[cfg(test)]
    pub(crate) fn is_top(self) -> bool {
        self == Interval::TOP
    }

    pub(crate) fn join(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    pub(crate) fn contains(self, v: i64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Applies a binary integer ALU op. `Div`/`Rem` assume the caller
    /// already excluded a zero divisor (fault handling happens there).
    pub(crate) fn alu(op: IAlu, a: Interval, b: Interval) -> Interval {
        if let (Some(x), Some(y)) = (a.singleton(), b.singleton()) {
            // Exact path: mirror `vm::exec` bit-for-bit.
            return Interval::exact(match op {
                IAlu::Add => x.wrapping_add(y),
                IAlu::Sub => x.wrapping_sub(y),
                IAlu::Mul => x.wrapping_mul(y),
                IAlu::Div => x.wrapping_div(y),
                IAlu::Rem => x.wrapping_rem(y),
                IAlu::And => x & y,
                IAlu::Or => x | y,
                IAlu::Xor => x ^ y,
                IAlu::Shl => x.wrapping_shl(y as u32),
                IAlu::Shr => x.wrapping_shr(y as u32),
            });
        }
        match op {
            IAlu::Add => from_candidates(&[
                i128::from(a.lo) + i128::from(b.lo),
                i128::from(a.hi) + i128::from(b.hi),
            ]),
            IAlu::Sub => from_candidates(&[
                i128::from(a.lo) - i128::from(b.hi),
                i128::from(a.hi) - i128::from(b.lo),
            ]),
            IAlu::Mul => from_candidates(&[
                i128::from(a.lo) * i128::from(b.lo),
                i128::from(a.lo) * i128::from(b.hi),
                i128::from(a.hi) * i128::from(b.lo),
                i128::from(a.hi) * i128::from(b.hi),
            ]),
            IAlu::Div => {
                // Candidates over the divisor's extremes and the values
                // nearest zero on each side that lie in the interval.
                let mut cands = Vec::with_capacity(16);
                for d in divisor_probes(b) {
                    cands.push(i128::from(a.lo) / i128::from(d));
                    cands.push(i128::from(a.hi) / i128::from(d));
                }
                if cands.is_empty() {
                    return Interval::TOP;
                }
                from_candidates(&cands)
            }
            IAlu::Rem => {
                // `x % y` has |result| < max|y| and takes the dividend's
                // sign (or zero).
                let m = i128::from(b.lo.unsigned_abs().max(b.hi.unsigned_abs()));
                if m == 0 {
                    return Interval::TOP;
                }
                let bound = m - 1;
                let lo = if a.lo >= 0 { 0 } else { -bound };
                let hi = if a.hi <= 0 { 0 } else { bound };
                from_candidates(&[lo, hi])
            }
            // Bit ops and shifts on non-singletons: give up (sound).
            IAlu::And | IAlu::Or | IAlu::Xor | IAlu::Shl | IAlu::Shr => Interval::TOP,
        }
    }

    pub(crate) fn neg(self) -> Interval {
        if let Some(v) = self.singleton() {
            return Interval::exact(v.wrapping_neg());
        }
        from_candidates(&[-i128::from(self.hi), -i128::from(self.lo)])
    }

    /// `(x == 0) as i64` over the interval.
    pub(crate) fn logical_not(self) -> Interval {
        match self.singleton() {
            Some(v) => Interval::exact(i64::from(v == 0)),
            None if !self.contains(0) => Interval::exact(0),
            None => Interval::new(0, 1),
        }
    }

    /// `(x != 0) as i64` over the interval.
    pub(crate) fn truthy(self) -> Interval {
        match self.singleton() {
            Some(v) => Interval::exact(i64::from(v != 0)),
            None if !self.contains(0) => Interval::exact(1),
            None => Interval::new(0, 1),
        }
    }

    pub(crate) fn bit_not(self) -> Interval {
        match self.singleton() {
            Some(v) => Interval::exact(!v),
            // `!x` = `-x - 1`: monotone decreasing, exact on bounds.
            None => from_candidates(&[-i128::from(self.hi) - 1, -i128::from(self.lo) - 1]),
        }
    }

    /// Evaluates a comparison to a 0/1 interval.
    pub(crate) fn cmp(p: Pred, a: Interval, b: Interval) -> Interval {
        let (always, never) = match p {
            Pred::Eq => (
                a.singleton().is_some() && a == b,
                a.hi < b.lo || b.hi < a.lo,
            ),
            Pred::Ne => (
                a.hi < b.lo || b.hi < a.lo,
                a.singleton().is_some() && a == b,
            ),
            Pred::Lt => (a.hi < b.lo, a.lo >= b.hi),
            Pred::Le => (a.hi <= b.lo, a.lo > b.hi),
            Pred::Gt => (a.lo > b.hi, a.hi <= b.lo),
            Pred::Ge => (a.lo >= b.hi, a.hi < b.lo),
        };
        if always {
            Interval::exact(1)
        } else if never {
            Interval::exact(0)
        } else {
            Interval::new(0, 1)
        }
    }
}

/// Builds the tightest interval covering `candidates`, widening to ⊤ on
/// `i64` overflow.
fn from_candidates(candidates: &[i128]) -> Interval {
    let mut lo = i128::MAX;
    let mut hi = i128::MIN;
    for &c in candidates {
        lo = lo.min(c);
        hi = hi.max(c);
    }
    if lo < i128::from(i64::MIN) || hi > i128::from(i64::MAX) {
        return Interval::TOP;
    }
    Interval::new(lo as i64, hi as i64)
}

/// The divisor values that can produce extreme quotients: the interval
/// endpoints and the in-interval values nearest zero on each side.
/// Zero itself is excluded (the caller handles the trap case).
fn divisor_probes(b: Interval) -> Vec<i64> {
    let mut probes = Vec::with_capacity(4);
    for cand in [b.lo, b.hi, -1, 1] {
        if cand != 0 && b.contains(cand) && !probes.contains(&cand) {
            probes.push(cand);
        }
    }
    probes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_follow_wrapping_vm_semantics() {
        let a = Interval::exact(i64::MAX);
        let b = Interval::exact(1);
        assert_eq!(Interval::alu(IAlu::Add, a, b), Interval::exact(i64::MIN));
        assert_eq!(
            Interval::alu(IAlu::Mul, Interval::exact(7), Interval::exact(6)),
            Interval::exact(42)
        );
        assert_eq!(
            Interval::alu(IAlu::Rem, Interval::exact(-7), Interval::exact(3)),
            Interval::exact(-1)
        );
    }

    #[test]
    fn range_arithmetic_is_conservative() {
        let a = Interval::new(0, 10);
        let b = Interval::new(2, 3);
        assert_eq!(Interval::alu(IAlu::Add, a, b), Interval::new(2, 13));
        assert_eq!(Interval::alu(IAlu::Mul, a, b), Interval::new(0, 30));
        assert_eq!(Interval::alu(IAlu::Sub, a, b), Interval::new(-3, 8));
        // Overflowing ranges widen to ⊤ instead of wrapping.
        let big = Interval::new(0, i64::MAX);
        assert!(Interval::alu(IAlu::Add, big, b).is_top());
    }

    #[test]
    fn division_probes_cover_sign_flips() {
        let a = Interval::new(-100, 100);
        let b = Interval::new(-2, 5); // contains -1 and 1 (0 excluded by caller)
        let d = Interval::alu(IAlu::Div, a, b);
        assert!(d.contains(100) && d.contains(-100), "{d:?}");
        let r = Interval::alu(IAlu::Rem, a, Interval::new(1, 4));
        assert_eq!(r, Interval::new(-3, 3));
    }

    #[test]
    fn comparisons_decide_when_ranges_separate() {
        let a = Interval::new(0, 5);
        let b = Interval::new(6, 9);
        assert_eq!(Interval::cmp(Pred::Lt, a, b), Interval::exact(1));
        assert_eq!(Interval::cmp(Pred::Ge, a, b), Interval::exact(0));
        assert_eq!(
            Interval::cmp(Pred::Eq, a, Interval::new(5, 6)),
            Interval::new(0, 1)
        );
        assert_eq!(
            Interval::cmp(Pred::Ne, a, Interval::new(7, 8)),
            Interval::exact(1)
        );
    }

    #[test]
    fn truthiness_lattice() {
        assert_eq!(Interval::exact(0).truthy(), Interval::exact(0));
        assert_eq!(Interval::new(3, 9).truthy(), Interval::exact(1));
        assert_eq!(Interval::new(-1, 1).truthy(), Interval::new(0, 1));
        assert_eq!(Interval::new(-1, 1).logical_not(), Interval::new(0, 1));
        assert_eq!(Interval::exact(0).logical_not(), Interval::exact(1));
    }
}
