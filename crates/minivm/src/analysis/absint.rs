//! Abstract interpretation of the lowered IR.
//!
//! The domain is deliberately *constant-propagation precise*: integers
//! are intervals whose singletons follow the VM's exact wrapping
//! semantics, floats are concrete-or-unknown, and the heap is mirrored
//! cell by cell. While every value stays concrete — which holds for the
//! entire run of a fully-specialized kernel with deterministic
//! initialization — the analysis *is* the execution, so its event
//! counters are exact and any fault it hits definitely fires.
//!
//! The first imprecise value can only enter through the havoc fallback:
//! when a control condition is not a singleton, the assigned set of the
//! undecidable region is widened to ⊤, the region is scanned once for
//! possible faults (warnings), and execution continues on the widened
//! state. That keeps the pass sound — a [`Verdict::Safe`] requires zero
//! findings of either severity — without a general fixpoint engine.

use super::interval::Interval;
use super::{Diagnostic, FaultKind, Verdict};
use crate::layout::{ElemTy, Layout, Value};
use crate::lower::{ArrRef, FAlu, IAlu, IExpr, IStmt, LFunc, LProgram, Pred};
use minic::TranslationUnit;
use std::collections::HashSet;

/// Total eval-node + statement budget. Polybench under the functional
/// dimension cap runs well below a million steps; this bound only exists
/// so adversarial generated programs cannot hang the analyzer.
const FUEL: u64 = 50_000_000;

/// Findings stop being recorded (but keep being counted) past this.
const MAX_DIAGS: usize = 32;

pub(crate) struct AbsIntReport {
    pub(crate) verdict: Verdict,
    pub(crate) diagnostics: Vec<Diagnostic>,
    /// `true`: the analysis was a concrete re-execution end to end.
    pub(crate) definite: bool,
    pub(crate) flops: u64,
    pub(crate) loads: u64,
    pub(crate) stores: u64,
}

/// Runs the abstract interpreter over `init_array` + the entry function.
pub(crate) fn abs_interpret(prog: &LProgram, tu: &TranslationUnit, entry: &str) -> AbsIntReport {
    abs_interpret_with_fuel(prog, tu, entry, FUEL)
}

pub(crate) fn abs_interpret_with_fuel(
    prog: &LProgram,
    tu: &TranslationUnit,
    entry: &str,
    fuel: u64,
) -> AbsIntReport {
    let mut a = Analyzer::new(prog, tu);
    a.fuel = fuel;
    let aborted = 'run: {
        if let Some(init) = &prog.init {
            a.set_function(tu, "init_array");
            if let Err(abort) = a.exec_fn(init, &[]) {
                break 'run Some(abort);
            }
        }
        a.set_function(tu, entry);
        a.exec_fn(&prog.entry, &prog.entry_args).err()
    };
    if aborted == Some(Abort::Fuel) {
        a.push_diag(
            FaultKind::Budget,
            false,
            "<analysis>".into(),
            format!("step budget of {fuel} exhausted before execution was covered"),
        );
    }
    let verdict = if a.faults > 0 {
        Verdict::Unsafe
    } else if a.warnings > 0 {
        Verdict::Unknown
    } else {
        Verdict::Safe
    };
    // Definite faults first, then warnings, preserving discovery order.
    a.diags.sort_by_key(|d| !d.definite);
    // An abort (fault or fuel) cut execution short: the counters cover a
    // prefix only, so they must not be reported as exact.
    let definite = a.definite && aborted.is_none();
    AbsIntReport {
        verdict,
        diagnostics: a.diags,
        definite,
        flops: a.flops,
        loads: a.loads,
        stores: a.stores,
    }
}

/// Why execution stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Abort {
    /// A definite fault: the VM would trap here, nothing later runs.
    Fault,
    /// Out of fuel: the remainder is unanalyzed, so no safety claim.
    Fuel,
}

/// Statement-level control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return,
}

/// An abstract value, typed like the IR node that produced it.
#[derive(Clone, Copy)]
enum AVal {
    I(Interval),
    F(Option<f64>),
}

impl AVal {
    fn as_i(self) -> Interval {
        match self {
            AVal::I(v) => v,
            // Unreachable on well-typed IR; ⊤ keeps it sound regardless.
            AVal::F(_) => Interval::TOP,
        }
    }

    fn as_f(self) -> Option<f64> {
        match self {
            AVal::F(v) => v,
            AVal::I(v) => v.singleton().map(|x| x as f64),
        }
    }
}

struct Analyzer<'p> {
    arrays: &'p [ArrRef],
    /// Heap mirrors (exact zero fill + scalar initializers, like
    /// `reset_memory`) and must-initialized bitmaps (scalars pre-marked,
    /// array cells only after a store).
    hi: Vec<Interval>,
    hf: Vec<Option<f64>>,
    init_hi: Vec<bool>,
    init_hf: Vec<bool>,
    /// Local slots of the function currently executing.
    li: Vec<Interval>,
    lf: Vec<Option<f64>>,
    /// `true` while the analysis is an exact concrete re-execution.
    definite: bool,
    /// `true` while walking a havoc-widened region in `scan_stmts`: the
    /// region may not execute at all, so stores must stay weak (join,
    /// never set init bits) even when their index is still a singleton.
    scanning: bool,
    fuel: u64,
    flops: u64,
    loads: u64,
    stores: u64,
    diags: Vec<Diagnostic>,
    seen: HashSet<(FaultKind, String)>,
    faults: usize,
    warnings: usize,
    /// Diagnostic context for the function being executed.
    cur_fn: String,
    cur_line: u32,
    namer: Namer,
}

impl<'p> Analyzer<'p> {
    fn new(prog: &'p LProgram, _tu: &TranslationUnit) -> Analyzer<'p> {
        let layout = &prog.layout;
        let mut init_hi = vec![false; layout.i_len];
        let mut init_hf = vec![false; layout.f_len];
        let mut hi = vec![Interval::exact(0); layout.i_len];
        let mut hf = vec![Some(0.0f64); layout.f_len];
        for g in &layout.globals {
            if g.is_scalar() {
                match g.elem {
                    ElemTy::I => init_hi[g.base] = true,
                    ElemTy::F => init_hf[g.base] = true,
                }
                if let Some(init) = g.init {
                    match (g.elem, init.coerce(g.elem)) {
                        (ElemTy::I, Value::I(v)) => hi[g.base] = Interval::exact(v),
                        (ElemTy::F, Value::F(v)) => hf[g.base] = Some(v),
                        _ => {}
                    }
                }
            }
        }
        Analyzer {
            arrays: &prog.arrays,
            hi,
            hf,
            init_hi,
            init_hf,
            li: Vec::new(),
            lf: Vec::new(),
            definite: true,
            scanning: false,
            fuel: FUEL,
            flops: 0,
            loads: 0,
            stores: 0,
            diags: Vec::new(),
            seen: HashSet::new(),
            faults: 0,
            warnings: 0,
            cur_fn: String::new(),
            cur_line: 0,
            namer: Namer::new(layout, &prog.arrays),
        }
    }

    fn set_function(&mut self, tu: &TranslationUnit, name: &str) {
        self.cur_fn = name.to_string();
        self.cur_line = minic::function_logical_line(tu, name).unwrap_or(0) as u32;
    }

    fn exec_fn(&mut self, f: &LFunc, args: &[Value]) -> Result<(), Abort> {
        // Fresh frames read as zero before their first write, matching a
        // fresh `VmState`; lowering writes every slot before any read.
        self.li = vec![Interval::exact(0); f.n_i as usize];
        self.lf = vec![Some(0.0); f.n_f as usize];
        for (&(slot, _), &arg) in f.params.iter().zip(args) {
            match arg {
                Value::I(v) => self.li[slot as usize] = Interval::exact(v),
                Value::F(v) => self.lf[slot as usize] = Some(v),
            }
        }
        self.exec_stmts(&f.stmts).map(|_| ())
    }

    fn burn(&mut self) -> Result<(), Abort> {
        match self.fuel.checked_sub(1) {
            Some(left) => {
                self.fuel = left;
                Ok(())
            }
            None => Err(Abort::Fuel),
        }
    }

    // ---- diagnostics ---------------------------------------------------

    fn push_diag(&mut self, kind: FaultKind, definite: bool, site: String, detail: String) {
        if definite {
            self.faults += 1;
        } else {
            self.warnings += 1;
        }
        if self.diags.len() >= MAX_DIAGS || !self.seen.insert((kind, site.clone())) {
            return;
        }
        self.diags.push(Diagnostic {
            kind,
            definite,
            function: self.cur_fn.clone(),
            line: self.cur_line,
            site,
            detail,
        });
    }

    /// Records a fault at the current definiteness: an exact execution
    /// aborts like the VM would; an approximate one warns and recovers.
    fn fault(&mut self, kind: FaultKind, site: String, detail: String) -> Result<(), Abort> {
        let definite = self.definite;
        self.push_diag(kind, definite, site, detail);
        if definite {
            Err(Abort::Fault)
        } else {
            Ok(())
        }
    }

    // ---- statements ----------------------------------------------------

    fn exec_stmts(&mut self, stmts: &[IStmt]) -> Result<Flow, Abort> {
        for s in stmts {
            match self.exec_stmt(s)? {
                Flow::Normal => {}
                flow => return Ok(flow),
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, s: &IStmt) -> Result<Flow, Abort> {
        self.burn()?;
        match s {
            IStmt::SetLocal(slot, ty, e) => {
                let v = self.eval(e)?;
                match ty {
                    ElemTy::I => self.li[*slot as usize] = v.as_i(),
                    ElemTy::F => self.lf[*slot as usize] = v.as_f(),
                }
                Ok(Flow::Normal)
            }
            IStmt::SetGlob(base, ty, e) => {
                let v = self.eval(e)?;
                match ty {
                    ElemTy::I => self.hi[*base as usize] = v.as_i(),
                    ElemTy::F => self.hf[*base as usize] = v.as_f(),
                }
                Ok(Flow::Normal)
            }
            IStmt::SetElem(arr, idx, value) => {
                let iv = self.eval(idx)?.as_i();
                let vv = self.eval(value)?;
                self.store(*arr, iv, vv, value.ty(), idx)?;
                Ok(Flow::Normal)
            }
            IStmt::Eval(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            IStmt::If {
                cond,
                then_s,
                else_s,
            } => {
                let c = self.eval(cond)?.as_i();
                match c.singleton() {
                    Some(v) => {
                        if v != 0 {
                            self.exec_stmts(then_s)
                        } else {
                            self.exec_stmts(else_s)
                        }
                    }
                    None => {
                        self.approximate(&[then_s, else_s])?;
                        Ok(Flow::Normal)
                    }
                }
            }
            IStmt::While { cond, body } => loop {
                self.burn()?;
                let c = self.eval(cond)?.as_i();
                let Some(v) = c.singleton() else {
                    self.approximate(&[body])?;
                    return Ok(Flow::Normal);
                };
                if v == 0 {
                    return Ok(Flow::Normal);
                }
                match self.exec_stmts(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return => return Ok(Flow::Return),
                    Flow::Normal | Flow::Continue => {}
                }
            },
            IStmt::DoWhile { body, cond } => loop {
                self.burn()?;
                match self.exec_stmts(body)? {
                    Flow::Break => return Ok(Flow::Normal),
                    Flow::Return => return Ok(Flow::Return),
                    Flow::Normal | Flow::Continue => {}
                }
                let c = self.eval(cond)?.as_i();
                let Some(v) = c.singleton() else {
                    self.approximate(&[body])?;
                    return Ok(Flow::Normal);
                };
                if v == 0 {
                    return Ok(Flow::Normal);
                }
            },
            IStmt::For {
                init,
                cond,
                step,
                body,
            } => {
                match self.exec_stmts(init)? {
                    Flow::Normal => {}
                    flow => return Ok(flow),
                }
                loop {
                    self.burn()?;
                    if let Some(cond) = cond {
                        let c = self.eval(cond)?.as_i();
                        let Some(v) = c.singleton() else {
                            self.approximate(&[body, step])?;
                            return Ok(Flow::Normal);
                        };
                        if v == 0 {
                            return Ok(Flow::Normal);
                        }
                    }
                    match self.exec_stmts(body)? {
                        Flow::Break => return Ok(Flow::Normal),
                        Flow::Return => return Ok(Flow::Return),
                        Flow::Normal | Flow::Continue => {}
                    }
                    match self.exec_stmts(step)? {
                        Flow::Normal => {}
                        Flow::Return => return Ok(Flow::Return),
                        // Break/continue cannot appear in a step
                        // expression; be conservative if they ever do.
                        _ => return Ok(Flow::Normal),
                    }
                }
            }
            IStmt::Return(e) => {
                if let Some(e) = e {
                    self.eval(e)?;
                }
                Ok(Flow::Return)
            }
            IStmt::Break => Ok(Flow::Break),
            IStmt::Continue => Ok(Flow::Continue),
        }
    }

    /// The sound fallback for control flow the analysis cannot decide:
    /// widen every location the regions can assign to ⊤ (which
    /// over-approximates the state at any point inside or after them),
    /// then scan the regions once, flagging every possible fault. The
    /// initialization bitmaps are left untouched — stores only ever add
    /// initialized cells, so the pre-region bitmap under-approximates
    /// every reachable one, which is the sound direction for must-init.
    fn approximate(&mut self, regions: &[&[IStmt]]) -> Result<(), Abort> {
        self.definite = false;
        for r in regions {
            self.havoc_stmts(r);
        }
        let was_scanning = self.scanning;
        self.scanning = true;
        let res = regions.iter().try_for_each(|r| self.scan_stmts(r));
        self.scanning = was_scanning;
        res
    }

    fn havoc_stmts(&mut self, stmts: &[IStmt]) {
        for s in stmts {
            match s {
                IStmt::SetLocal(slot, ty, _) => match ty {
                    ElemTy::I => self.li[*slot as usize] = Interval::TOP,
                    ElemTy::F => self.lf[*slot as usize] = None,
                },
                IStmt::SetGlob(base, ty, _) => match ty {
                    ElemTy::I => self.hi[*base as usize] = Interval::TOP,
                    ElemTy::F => self.hf[*base as usize] = None,
                },
                IStmt::SetElem(arr, _, value) => {
                    let a = self.arrays[*arr as usize];
                    let (base, len) = (a.base as usize, a.len as usize);
                    match value.ty() {
                        ElemTy::I => self.hi[base..base + len].fill(Interval::TOP),
                        ElemTy::F => self.hf[base..base + len].fill(None),
                    }
                }
                IStmt::If { then_s, else_s, .. } => {
                    self.havoc_stmts(then_s);
                    self.havoc_stmts(else_s);
                }
                IStmt::While { body, .. } | IStmt::DoWhile { body, .. } => {
                    self.havoc_stmts(body);
                }
                IStmt::For {
                    init, step, body, ..
                } => {
                    self.havoc_stmts(init);
                    self.havoc_stmts(step);
                    self.havoc_stmts(body);
                }
                IStmt::Eval(_) | IStmt::Return(_) | IStmt::Break | IStmt::Continue => {}
            }
        }
    }

    /// Walks a havoc-widened region, evaluating every expression to
    /// surface possible faults. Stores stay weak (`scanning` is set by
    /// [`Analyzer::approximate`]), so the widened state keeps
    /// over-approximating every point in the region and init bits never
    /// grow inside code that may not run.
    fn scan_stmts(&mut self, stmts: &[IStmt]) -> Result<(), Abort> {
        for s in stmts {
            self.burn()?;
            match s {
                IStmt::SetLocal(.., e) | IStmt::SetGlob(.., e) | IStmt::Eval(e) => {
                    self.eval(e)?;
                }
                IStmt::SetElem(arr, idx, value) => {
                    let iv = self.eval(idx)?.as_i();
                    let vv = self.eval(value)?;
                    self.store(*arr, iv, vv, value.ty(), idx)?;
                }
                IStmt::If {
                    cond,
                    then_s,
                    else_s,
                } => {
                    self.eval(cond)?;
                    self.scan_stmts(then_s)?;
                    self.scan_stmts(else_s)?;
                }
                IStmt::While { cond, body } | IStmt::DoWhile { body, cond } => {
                    self.eval(cond)?;
                    self.scan_stmts(body)?;
                }
                IStmt::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    self.scan_stmts(init)?;
                    if let Some(c) = cond {
                        self.eval(c)?;
                    }
                    self.scan_stmts(step)?;
                    self.scan_stmts(body)?;
                }
                IStmt::Return(e) => {
                    if let Some(e) = e {
                        self.eval(e)?;
                    }
                }
                IStmt::Break | IStmt::Continue => {}
            }
        }
        Ok(())
    }

    // ---- expressions ---------------------------------------------------

    fn eval(&mut self, e: &IExpr) -> Result<AVal, Abort> {
        self.burn()?;
        Ok(match e {
            IExpr::ConstI(v) => AVal::I(Interval::exact(*v)),
            IExpr::ConstF(v) => AVal::F(Some(*v)),
            // Symbolic constants never reach the concrete analyzer; ⊤ is
            // the sound answer if one ever does.
            IExpr::SymConst(_) => AVal::I(Interval::TOP),
            IExpr::LocalI(s) => AVal::I(self.li[*s as usize]),
            IExpr::LocalF(s) => AVal::F(self.lf[*s as usize]),
            IExpr::GlobI(g) => AVal::I(self.hi[*g as usize]),
            IExpr::GlobF(g) => AVal::F(self.hf[*g as usize]),
            IExpr::LoadI(arr, idx) | IExpr::LoadF(arr, idx) => {
                let iv = self.eval(idx)?.as_i();
                let elem = match e {
                    IExpr::LoadI(..) => ElemTy::I,
                    _ => ElemTy::F,
                };
                self.load(*arr, iv, elem, idx)?
            }
            IExpr::BinI(op, a, b) => {
                let x = self.eval(a)?.as_i();
                let y = self.eval(b)?.as_i();
                if matches!(op, IAlu::Div | IAlu::Rem) && y.contains(0) {
                    let site = self.namer.rend(e);
                    if y.singleton() == Some(0) {
                        self.fault(
                            FaultKind::DivByZero,
                            site,
                            "integer division by zero".into(),
                        )?;
                        // Unreachable while definite; recover with ⊤.
                        return Ok(AVal::I(Interval::TOP));
                    }
                    self.fault(
                        FaultKind::DivByZero,
                        site,
                        format!(
                            "divisor `{}` can be zero (range [{}, {}])",
                            self.namer.rend(b),
                            y.lo,
                            y.hi
                        ),
                    )?;
                }
                AVal::I(Interval::alu(*op, x, y))
            }
            IExpr::BinF(op, a, b) => {
                let x = self.eval(a)?.as_f();
                let y = self.eval(b)?.as_f();
                self.flops += 1;
                AVal::F(match (x, y) {
                    (Some(x), Some(y)) => Some(match op {
                        FAlu::Add => x + y,
                        FAlu::Sub => x - y,
                        FAlu::Mul => x * y,
                        FAlu::Div => x / y,
                        FAlu::Rem => x % y,
                    }),
                    _ => None,
                })
            }
            IExpr::CmpI(p, a, b) => {
                let x = self.eval(a)?.as_i();
                let y = self.eval(b)?.as_i();
                AVal::I(Interval::cmp(*p, x, y))
            }
            IExpr::CmpF(p, a, b) => {
                let x = self.eval(a)?.as_f();
                let y = self.eval(b)?.as_f();
                AVal::I(match (x, y) {
                    (Some(x), Some(y)) => Interval::exact(i64::from(match p {
                        Pred::Eq => x == y,
                        Pred::Ne => x != y,
                        Pred::Lt => x < y,
                        Pred::Le => x <= y,
                        Pred::Gt => x > y,
                        Pred::Ge => x >= y,
                    })),
                    _ => Interval::new(0, 1),
                })
            }
            IExpr::NegI(s) => AVal::I(self.eval(s)?.as_i().neg()),
            IExpr::NegF(s) => {
                let v = self.eval(s)?.as_f();
                self.flops += 1;
                AVal::F(v.map(|x| -x))
            }
            IExpr::NotI(s) => AVal::I(self.eval(s)?.as_i().logical_not()),
            IExpr::BitNotI(s) => AVal::I(self.eval(s)?.as_i().bit_not()),
            IExpr::TruthyF(s) => AVal::I(match self.eval(s)?.as_f() {
                Some(x) => Interval::exact(i64::from(x != 0.0)),
                None => Interval::new(0, 1),
            }),
            IExpr::I2F(s) => AVal::F(self.eval(s)?.as_i().singleton().map(|v| v as f64)),
            IExpr::F2I(s) => AVal::I(match self.eval(s)?.as_f() {
                Some(x) => Interval::exact(x as i64),
                None => Interval::TOP,
            }),
            IExpr::Sqrt(s) => {
                let v = self.eval(s)?.as_f();
                self.flops += 1;
                AVal::F(v.map(f64::sqrt))
            }
            IExpr::LogAnd(a, b) => {
                let x = self.eval(a)?.as_i();
                match x.singleton() {
                    Some(0) => AVal::I(Interval::exact(0)),
                    Some(_) => AVal::I(self.eval(b)?.as_i().truthy()),
                    None => {
                        // Undecided left side (only possible once the
                        // analysis is approximate): scan the right side
                        // for faults, answer 0/1.
                        self.eval(b)?;
                        AVal::I(Interval::new(0, 1))
                    }
                }
            }
            IExpr::LogOr(a, b) => {
                let x = self.eval(a)?.as_i();
                match x.singleton() {
                    Some(0) => AVal::I(self.eval(b)?.as_i().truthy()),
                    Some(_) => AVal::I(Interval::exact(1)),
                    None => {
                        self.eval(b)?;
                        AVal::I(Interval::new(0, 1))
                    }
                }
            }
            IExpr::Ternary {
                cond,
                then_e,
                else_e,
                ty,
            } => {
                let c = self.eval(cond)?.as_i();
                match c.singleton() {
                    Some(v) => {
                        if v != 0 {
                            self.eval(then_e)?
                        } else {
                            self.eval(else_e)?
                        }
                    }
                    None => {
                        let t = self.eval(then_e)?;
                        let f = self.eval(else_e)?;
                        match ty {
                            ElemTy::I => AVal::I(t.as_i().join(f.as_i())),
                            ElemTy::F => AVal::F(join_f(t.as_f(), f.as_f())),
                        }
                    }
                }
            }
        })
    }

    // ---- heap accesses -------------------------------------------------

    fn site(&self, arr: u16, idx_expr: &IExpr) -> String {
        format!("{}[{}]", self.namer.array(arr), self.namer.rend(idx_expr))
    }

    fn load(
        &mut self,
        arr: u16,
        idx: Interval,
        elem: ElemTy,
        idx_expr: &IExpr,
    ) -> Result<AVal, Abort> {
        let a = self.arrays[arr as usize];
        let len = i64::from(a.len);
        if let Some(v) = idx.singleton() {
            if v < 0 || v >= len {
                let site = self.site(arr, idx_expr);
                self.fault(
                    FaultKind::OutOfBounds,
                    site,
                    format!("index {v} out of bounds (len {len})"),
                )?;
                return Ok(top_of(elem));
            }
            let off = a.base as usize + v as usize;
            let init = match elem {
                ElemTy::I => self.init_hi[off],
                ElemTy::F => self.init_hf[off],
            };
            if !init {
                let site = self.site(arr, idx_expr);
                let detail = format!(
                    "read of `{}` index {v} before any write",
                    self.namer.array(arr)
                );
                self.fault(FaultKind::UninitRead, site, detail)?;
            }
            self.loads += 1;
            return Ok(match elem {
                ElemTy::I => AVal::I(self.hi[off]),
                ElemTy::F => AVal::F(self.hf[off]),
            });
        }
        // Abstract index (only once approximate): flag partial
        // out-of-bounds and any possibly-uninitialized cell in range.
        if idx.lo < 0 || idx.hi >= len {
            let site = self.site(arr, idx_expr);
            self.fault(
                FaultKind::OutOfBounds,
                site,
                format!(
                    "index range [{}, {}] can leave bounds (len {len})",
                    idx.lo, idx.hi
                ),
            )?;
        }
        let lo = idx.lo.max(0);
        let hi = idx.hi.min(len - 1);
        if lo <= hi {
            let (from, to) = (a.base as usize + lo as usize, a.base as usize + hi as usize);
            let any_uninit = match elem {
                ElemTy::I => self.init_hi[from..=to].iter().any(|&b| !b),
                ElemTy::F => self.init_hf[from..=to].iter().any(|&b| !b),
            };
            if any_uninit {
                let site = self.site(arr, idx_expr);
                let detail = format!(
                    "possible read of `{}` before initialization (index range [{}, {}])",
                    self.namer.array(arr),
                    idx.lo,
                    idx.hi
                );
                self.fault(FaultKind::UninitRead, site, detail)?;
            }
        }
        self.loads += 1;
        Ok(top_of(elem))
    }

    fn store(
        &mut self,
        arr: u16,
        idx: Interval,
        val: AVal,
        elem: ElemTy,
        idx_expr: &IExpr,
    ) -> Result<(), Abort> {
        let a = self.arrays[arr as usize];
        let len = i64::from(a.len);
        if let Some(v) = idx.singleton() {
            if v < 0 || v >= len {
                let site = self.site(arr, idx_expr);
                self.fault(
                    FaultKind::OutOfBounds,
                    site,
                    format!("index {v} out of bounds (len {len})"),
                )?;
                return Ok(());
            }
            let off = a.base as usize + v as usize;
            if self.scanning {
                // The enclosing region may never run: keep the store
                // weak and leave the init bit alone.
                match elem {
                    ElemTy::I => self.hi[off] = self.hi[off].join(val.as_i()),
                    ElemTy::F => self.hf[off] = join_f(self.hf[off], val.as_f()),
                }
            } else {
                match elem {
                    ElemTy::I => {
                        self.hi[off] = val.as_i();
                        self.init_hi[off] = true;
                    }
                    ElemTy::F => {
                        self.hf[off] = val.as_f();
                        self.init_hf[off] = true;
                    }
                }
            }
            self.stores += 1;
            return Ok(());
        }
        if idx.lo < 0 || idx.hi >= len {
            let site = self.site(arr, idx_expr);
            self.fault(
                FaultKind::OutOfBounds,
                site,
                format!(
                    "index range [{}, {}] can leave bounds (len {len})",
                    idx.lo, idx.hi
                ),
            )?;
        }
        // Weak update: every cell the store may hit joins the value; no
        // init bit is set (the store hits *one* unknown cell, not all).
        let lo = idx.lo.max(0);
        let hi = idx.hi.min(len - 1);
        if lo <= hi {
            for off in (a.base as usize + lo as usize)..=(a.base as usize + hi as usize) {
                match elem {
                    ElemTy::I => self.hi[off] = self.hi[off].join(val.as_i()),
                    ElemTy::F => self.hf[off] = join_f(self.hf[off], val.as_f()),
                }
            }
        }
        self.stores += 1;
        Ok(())
    }
}

fn top_of(elem: ElemTy) -> AVal {
    match elem {
        ElemTy::I => AVal::I(Interval::TOP),
        ElemTy::F => AVal::F(None),
    }
}

/// Join on concrete-or-unknown floats: bit-identical values survive.
fn join_f(a: Option<f64>, b: Option<f64>) -> Option<f64> {
    match (a, b) {
        (Some(x), Some(y)) if x.to_bits() == y.to_bits() => Some(x),
        _ => None,
    }
}

// ---- rendering ---------------------------------------------------------

/// Reverse name lookup for diagnostics: array table index → source name,
/// scalar global base offset → source name.
struct Namer {
    arrays: Vec<String>,
    scalar_i: Vec<(u32, String)>,
    scalar_f: Vec<(u32, String)>,
}

impl Namer {
    fn new(layout: &Layout, arrays: &[ArrRef]) -> Namer {
        let mut names = vec![String::new(); layout.globals.len()];
        for (name, &gi) in &layout.by_name {
            names[gi] = name.clone();
        }
        let mut arr_names = vec![String::from("<array>"); arrays.len()];
        let mut scalar_i = Vec::new();
        let mut scalar_f = Vec::new();
        let mut arr_idx = 0usize;
        for (gi, g) in layout.globals.iter().enumerate() {
            if g.is_scalar() {
                match g.elem {
                    ElemTy::I => scalar_i.push((g.base as u32, names[gi].clone())),
                    ElemTy::F => scalar_f.push((g.base as u32, names[gi].clone())),
                }
            } else {
                // `lower_program` assigns array table slots in global
                // declaration order; mirror that here.
                if arr_idx < arr_names.len() {
                    arr_names[arr_idx] = names[gi].clone();
                }
                arr_idx += 1;
            }
        }
        Namer {
            arrays: arr_names,
            scalar_i,
            scalar_f,
        }
    }

    fn array(&self, arr: u16) -> &str {
        self.arrays
            .get(arr as usize)
            .map_or("<array>", String::as_str)
    }

    fn scalar(&self, base: u32, elem: ElemTy) -> String {
        let table = match elem {
            ElemTy::I => &self.scalar_i,
            ElemTy::F => &self.scalar_f,
        };
        table
            .iter()
            .find(|(b, _)| *b == base)
            .map_or_else(|| format!("<glob+{base}>"), |(_, n)| n.clone())
    }

    /// Renders an IR expression C-like for diagnostics. Local slots have
    /// no source names in the IR; they print as `$i<slot>` / `$f<slot>`.
    fn rend(&self, e: &IExpr) -> String {
        match e {
            IExpr::ConstI(v) => v.to_string(),
            IExpr::ConstF(v) => format!("{v:?}"),
            IExpr::SymConst(n) => n.to_string(),
            IExpr::LocalI(s) => format!("$i{s}"),
            IExpr::LocalF(s) => format!("$f{s}"),
            IExpr::GlobI(g) => self.scalar(*g, ElemTy::I),
            IExpr::GlobF(g) => self.scalar(*g, ElemTy::F),
            IExpr::LoadI(arr, idx) | IExpr::LoadF(arr, idx) => {
                format!("{}[{}]", self.array(*arr), self.rend(idx))
            }
            IExpr::BinI(op, a, b) => {
                format!("({} {} {})", self.rend(a), ialu_str(*op), self.rend(b))
            }
            IExpr::BinF(op, a, b) => {
                format!("({} {} {})", self.rend(a), falu_str(*op), self.rend(b))
            }
            IExpr::CmpI(p, a, b) | IExpr::CmpF(p, a, b) => {
                format!("({} {} {})", self.rend(a), pred_str(*p), self.rend(b))
            }
            IExpr::NegI(s) | IExpr::NegF(s) => format!("(-{})", self.rend(s)),
            IExpr::NotI(s) => format!("(!{})", self.rend(s)),
            IExpr::BitNotI(s) => format!("(~{})", self.rend(s)),
            IExpr::TruthyF(s) => format!("({} != 0.0)", self.rend(s)),
            IExpr::I2F(s) => format!("(double){}", self.rend(s)),
            IExpr::F2I(s) => format!("(long){}", self.rend(s)),
            IExpr::Sqrt(s) => format!("sqrt({})", self.rend(s)),
            IExpr::LogAnd(a, b) => format!("({} && {})", self.rend(a), self.rend(b)),
            IExpr::LogOr(a, b) => format!("({} || {})", self.rend(a), self.rend(b)),
            IExpr::Ternary {
                cond,
                then_e,
                else_e,
                ..
            } => format!(
                "({} ? {} : {})",
                self.rend(cond),
                self.rend(then_e),
                self.rend(else_e)
            ),
        }
    }
}

fn ialu_str(op: IAlu) -> &'static str {
    match op {
        IAlu::Add => "+",
        IAlu::Sub => "-",
        IAlu::Mul => "*",
        IAlu::Div => "/",
        IAlu::Rem => "%",
        IAlu::And => "&",
        IAlu::Or => "|",
        IAlu::Xor => "^",
        IAlu::Shl => "<<",
        IAlu::Shr => ">>",
    }
}

fn falu_str(op: FAlu) -> &'static str {
    match op {
        FAlu::Add => "+",
        FAlu::Sub => "-",
        FAlu::Mul => "*",
        FAlu::Div => "/",
        FAlu::Rem => "%",
    }
}

fn pred_str(p: Pred) -> &'static str {
    match p {
        Pred::Eq => "==",
        Pred::Ne => "!=",
        Pred::Lt => "<",
        Pred::Le => "<=",
        Pred::Gt => ">",
        Pred::Ge => ">=",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Verdict;
    use crate::lower;
    use crate::spec::SpecConfig;

    fn spec_n(n: i64) -> SpecConfig {
        let mut s = SpecConfig::new();
        s.set("N", n);
        s
    }

    /// Symbolic lowering keeps `N` as an opaque constant, so the loop
    /// bound is ⊤ and the analyzer must take the havoc-and-scan path:
    /// a sound Unknown, never a Safe claim and never a definite fault.
    #[test]
    fn symbolic_bounds_force_sound_approximation() {
        let tu = minic::parse(
            "double A[8];
             void init_array() {
                 for (int i = 0; i < 8; i++) { A[i] = 1.0; }
             }
             double kernel_sym() {
                 double s = 0.0;
                 for (int i = 0; i < N; i++) { s = s + A[i]; }
                 return s;
             }",
        )
        .unwrap();
        let spec = spec_n(8);
        let prog = lower::lower_program_with(&tu, "kernel_sym", &spec, true).unwrap();
        let r = abs_interpret(&prog, &tu, "kernel_sym");
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(!r.definite);
        assert!(r.diagnostics.iter().all(|d| !d.definite));
        // The unknown-bound load shows up as a possible out-of-bounds.
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.kind == FaultKind::OutOfBounds),
            "{:?}",
            r.diagnostics
        );
    }

    /// Inside a havoc-widened region, a store through a *constant* index
    /// must stay weak: it may never execute, so it cannot license a
    /// later read. The read of `A[0]` must be flagged.
    #[test]
    fn scan_mode_store_does_not_initialize() {
        let tu = minic::parse(
            "double A[4];
             double kernel_weak() {
                 for (int i = 0; i < N; i++) { A[0] = 1.0; }
                 return A[0];
             }",
        )
        .unwrap();
        let spec = spec_n(0);
        let prog = lower::lower_program_with(&tu, "kernel_weak", &spec, true).unwrap();
        let r = abs_interpret(&prog, &tu, "kernel_weak");
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.kind == FaultKind::UninitRead && !d.definite),
            "store in a maybe-skipped loop must not mark A[0] initialized: {:?}",
            r.diagnostics
        );
    }

    /// Exhausting the step budget yields Unknown with a Budget
    /// diagnostic — and inexact counters.
    #[test]
    fn fuel_exhaustion_reports_budget() {
        let tu = minic::parse(
            "double A[4];
             void init_array() {
                 for (int i = 0; i < 4; i++) { A[i] = 1.0; }
             }
             double kernel_long() {
                 double s = 0.0;
                 for (int i = 0; i < 10000; i++) { s = s + A[i % 4]; }
                 return s;
             }",
        )
        .unwrap();
        let spec = SpecConfig::new();
        let prog = lower::lower_program(&tu, "kernel_long", &spec).unwrap();
        let r = abs_interpret_with_fuel(&prog, &tu, "kernel_long", 500);
        assert_eq!(r.verdict, Verdict::Unknown);
        assert!(!r.definite);
        assert!(r.diagnostics.iter().any(|d| d.kind == FaultKind::Budget));
    }
}
